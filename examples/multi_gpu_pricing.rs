//! Multi-GPU option pricing — the paper's §VI future work in action.
//!
//! Prices independent option books across 1, 2 and 4 simulated Tesla
//! P100s with run-time data-location tracking. Independent books scale
//! nearly linearly; a dependent post-processing chain shows why placement
//! must be locality-aware ("it requires to compute data location and
//! migration costs at run time", §VI).
//!
//! Run: `cargo run --release --example multi_gpu_pricing`

use gpu_sim::{DeviceProfile, Grid};
use grcuda::{MultiArg, MultiGpu, Options, PlacementPolicy};
use kernels::black_scholes::BLACK_SCHOLES;
use kernels::util::AXPY;

const BOOKS: usize = 8;
const OPTIONS_PER_BOOK: usize = 1 << 20;
const G: Grid = Grid {
    blocks: (64, 1, 1),
    threads: (256, 1, 1),
};

fn price_books(gpus: usize, policy: PlacementPolicy) -> (f64, usize, f32) {
    let mut m = MultiGpu::new(
        DeviceProfile::tesla_p100(),
        gpus,
        Options::parallel(),
        policy,
    );
    let n = OPTIONS_PER_BOOK;

    // Independent books: one pricing kernel each.
    let books: Vec<_> = (0..BOOKS)
        .map(|b| {
            let spots = m.array_f64(n);
            let prices = m.array_f64(n);
            let data: Vec<f64> = (0..n)
                .map(|i| 80.0 + (b * 5) as f64 + (i % 50) as f64)
                .collect();
            m.write_f64(&spots, &data);
            (spots, prices)
        })
        .collect();
    for (spots, prices) in &books {
        m.launch(
            &BLACK_SCHOLES,
            G,
            &[
                MultiArg::array(spots),
                MultiArg::array(prices),
                MultiArg::scalar(n as f64),
                MultiArg::scalar(100.0),
                MultiArg::scalar(0.02),
                MultiArg::scalar(0.30),
                MultiArg::scalar(1.0),
            ],
        )
        .unwrap();
    }
    m.sync();
    assert_eq!(m.races(), 0);
    let checksum: f32 = books.iter().map(|(_, p)| m.read_f64(p)[0] as f32).sum();
    (m.makespan(), m.migration_stats().0, checksum)
}

fn dependent_chain(gpus: usize, policy: PlacementPolicy) -> (f64, usize) {
    let mut m = MultiGpu::new(
        DeviceProfile::tesla_p100(),
        gpus,
        Options::parallel(),
        policy,
    );
    let n = 1 << 21;
    let acc = m.array_f32(n);
    let delta = m.array_f32(n);
    m.write_f32(&acc, &vec![0.0; n]);
    m.write_f32(&delta, &vec![0.01; n]);
    // A strictly serial accumulation: each step reads delta and updates
    // acc — no parallelism to extract, only migrations to avoid.
    for _ in 0..10 {
        m.launch(
            &AXPY,
            G,
            &[
                MultiArg::array(&delta),
                MultiArg::array(&acc),
                MultiArg::scalar(1.0),
                MultiArg::scalar(n as f64),
            ],
        )
        .unwrap();
    }
    m.sync();
    (m.makespan(), m.migration_stats().0)
}

fn main() {
    println!("Independent books ({BOOKS} x {OPTIONS_PER_BOOK} options, f64):");
    let (base, _, check1) = price_books(1, PlacementPolicy::SingleGpu);
    println!("  1 GPU : {:7.2} ms (1.00x)", base * 1e3);
    for gpus in [2usize, 4] {
        let (t, migs, check) = price_books(gpus, PlacementPolicy::LocalityAware);
        assert_eq!(check, check1, "results must not depend on the device count");
        println!(
            "  {gpus} GPUs: {:7.2} ms ({:.2}x), {migs} migrations",
            t * 1e3,
            base / t
        );
    }

    println!("\nDependent accumulation chain (10 steps):");
    let (t1, _) = dependent_chain(1, PlacementPolicy::SingleGpu);
    let (t_loc, m_loc) = dependent_chain(4, PlacementPolicy::LocalityAware);
    let (t_rr, m_rr) = dependent_chain(4, PlacementPolicy::RoundRobin);
    println!("  1 GPU               : {:7.2} ms", t1 * 1e3);
    println!(
        "  4 GPUs, locality    : {:7.2} ms, {m_loc} migrations",
        t_loc * 1e3
    );
    println!(
        "  4 GPUs, round-robin : {:7.2} ms, {m_rr} migrations  <- data ping-pong!",
        t_rr * 1e3
    );
    assert!(m_loc < m_rr, "locality-aware placement must migrate less");
    println!("\n(the paper's §VI: multi-GPU scheduling 'requires to compute data");
    println!(" location and migration costs at run time' — exactly what this does)");
}
