//! Soak service — bounded scheduler memory under sustained traffic.
//!
//! The paper's evaluation runs each benchmark for a handful of
//! iterations; a production runtime serves requests for the life of the
//! process. This example simulates such a service: every "request" is
//! the Fig. 4 VEC pipeline (two independent squares, a reduction, a CPU
//! read of the result), requests arrive back-to-back forever, and the
//! process must not grow.
//!
//! Two mechanisms keep the footprint O(live computations):
//!
//! * fine-grained CPU reads retire their producing chain, and the
//!   scheduler immediately drops the chain's stream claims and
//!   vertex→task/stream entries, auto-compacting the DAG as retired
//!   vertices accumulate;
//! * the periodic `sync()` (a request-loop heartbeat) retires
//!   everything, compacts the DAG to zero stored vertices, harvests the
//!   kernel history and reclaims the engine's completed task states.
//!
//! Run: `cargo run --release --example soak_service`

use gpu_sim::{DeviceProfile, Grid};
use grcuda::{Arg, GrCuda, Options};
use kernels::vec_ops::{REDUCE_SUM_DIFF, SQUARE};

const REQUESTS: usize = 8_000;
const SYNC_EVERY: usize = 50;
const REPORT_EVERY: usize = 2_000;

fn main() {
    let g = GrCuda::new(DeviceProfile::tesla_p100(), Options::parallel());
    let n = 1 << 12;
    let x = g.array_f32(n);
    let y = g.array_f32(n);
    let z = g.array_f32(1);
    let square = g.build_kernel(&SQUARE).expect("signature parses");
    let reduce = g.build_kernel(&REDUCE_SUM_DIFF).expect("signature parses");
    let grid = Grid::d1(16, 256);

    let start = std::time::Instant::now();
    let mut peak_stored = 0usize;
    for req in 1..=REQUESTS {
        // New input data for this request.
        x.fill_f32(3.0);
        y.fill_f32(2.0);
        square
            .launch(grid, &[Arg::array(&x), Arg::scalar(n as f64)])
            .unwrap();
        square
            .launch(grid, &[Arg::array(&y), Arg::scalar(n as f64)])
            .unwrap();
        reduce
            .launch(
                grid,
                &[
                    Arg::array(&x),
                    Arg::array(&y),
                    Arg::array(&z),
                    Arg::scalar(n as f64),
                ],
            )
            .unwrap();
        // The response: a fine-grained read that retires the chain.
        assert_eq!(z.get_f32(0), n as f32 * 5.0);
        peak_stored = peak_stored.max(g.scheduler_stats().stored_vertices);

        if req % SYNC_EVERY == 0 {
            // Heartbeat: full sync + timeline reset, after which the
            // scheduler is back at its empty-frontier baseline.
            g.sync();
            g.clear_timeline();
            let st = g.scheduler_stats();
            assert_eq!(st.stored_vertices, 0, "request {req}: DAG leak");
            assert_eq!(st.stream_claims, 0, "request {req}: claim leak");
            assert_eq!(st.vertex_tasks, 0, "request {req}: task-map leak");
            assert_eq!(st.launch_infos, 0, "request {req}: launch-info leak");
            assert_eq!(g.stats().retained_tasks, 0, "request {req}: engine leak");
        }
        if req % REPORT_EVERY == 0 {
            let st = g.scheduler_stats();
            println!(
                "req {req:>6}: lifetime vertices {:>7}  stored {:>3} (peak {peak_stored:>3})  \
                 live {:>3}  claims {}  maps {}/{}  launch_info {}",
                st.lifetime_vertices,
                st.stored_vertices,
                st.live_vertices,
                st.stream_claims,
                st.vertex_tasks,
                st.vertex_streams,
                st.launch_infos,
            );
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let st = g.scheduler_stats();
    println!(
        "\n{REQUESTS} requests ({} launches) in {wall:.2} s wall — {:.0} requests/s",
        REQUESTS * 3,
        REQUESTS as f64 / wall
    );
    println!(
        "lifetime vertices {}, stored at exit {}, peak stored {} — memory is O(live), not O(lifetime)",
        st.lifetime_vertices, st.stored_vertices, peak_stored
    );
    assert!(g.races().is_empty());
    assert!(
        peak_stored <= 256,
        "peak stored {peak_stored} is not bounded"
    );
}
