//! Multi-tenant soak service — four concurrent clients, one scheduler.
//!
//! The paper's evaluation runs each benchmark for a handful of
//! iterations from a single host thread; a production runtime serves
//! many clients for the life of the process. This example runs such a
//! service: a [`Server`] owns the scheduler on its service thread, and
//! four tenants submit from their own OS threads through `Send + Clone`
//! [`Client`] handles:
//!
//! * `vec`   — the Fig. 4 VEC pipeline (two independent squares fenced
//!   by a reduction), result checked every round;
//! * `scale` — short SCALE→AXPY chains, result checked every round;
//! * `axpy`  — single-kernel AXPY requests at a steady trickle;
//! * `greedy` — a misbehaving tenant that floods 4 requests per round.
//!
//! The service runs **weighted round-robin** fairness with `greedy`
//! weighted 1 against everyone else's 4: its backlog is admitted one
//! deficit-credit at a time, so flooding buys it queueing delay instead
//! of a larger share of the device. The per-tenant report at the end
//! makes the throttling visible: `greedy` completes everything it
//! submitted, but at a far worse mean/p99 virtual latency than the
//! well-behaved tenants.
//!
//! Cross-client submissions that land in the same pump cycle are
//! coalesced into one `launch_batch`, so the host-side overhead is paid
//! per cycle, not per client. Requests submitted here are admission-
//! checked synchronously and executed asynchronously; each tenant's
//! final `drain()` returns its stats (including per-request virtual
//! latencies), and reading an output element synchronizes with exactly
//! the chain producing it.
//!
//! Run: `cargo run --release --example soak_service`

use gpu_sim::DeviceProfile;
use grcuda::serve::{
    ArgSpec, ArrayRef, CallSpec, ElemKind, Fairness, KernelRef, RequestSpec, ServeConfig, Server,
    TenantStats,
};
use grcuda::{Grid, Options};
use kernels::util::{AXPY, SCALE};
use kernels::vec_ops::{REDUCE_SUM_DIFF, SQUARE};
use metrics::LatencySummary;

const ROUNDS: usize = 300;
const FLOOD_FACTOR: usize = 4;
const N: usize = 1 << 10;

fn grid() -> Grid {
    Grid::d1(16, 256)
}

fn call(kernel: KernelRef, args: Vec<ArgSpec>) -> CallSpec {
    CallSpec {
        kernel,
        grid: grid(),
        args,
    }
}

/// The Fig. 4 VEC pipeline as one request: square x, square y
/// (independent — the scheduler overlaps them), then reduce.
fn run_vec(client: grcuda::serve::Client) -> TenantStats {
    let x = client.alloc(ElemKind::F32, N).unwrap();
    let y = client.alloc(ElemKind::F32, N).unwrap();
    let z = client.alloc(ElemKind::F32, 1).unwrap();
    let square = client.kernel(&SQUARE).unwrap();
    let reduce = client.kernel(&REDUCE_SUM_DIFF).unwrap();
    let nf = N as f64;
    for _ in 0..ROUNDS {
        client.fill(x, 3.0).unwrap();
        client.fill(y, 2.0).unwrap();
        client
            .submit(RequestSpec {
                calls: vec![
                    call(square, vec![ArgSpec::Array(x), ArgSpec::Scalar(nf)]),
                    call(square, vec![ArgSpec::Array(y), ArgSpec::Scalar(nf)]),
                    call(
                        reduce,
                        vec![
                            ArgSpec::Array(x),
                            ArgSpec::Array(y),
                            ArgSpec::Array(z),
                            ArgSpec::Scalar(nf),
                        ],
                    ),
                ],
                deadline_us: None,
            })
            .unwrap();
        // The response read synchronizes with exactly this chain.
        assert_eq!(client.read(z, 0).unwrap(), (N as f32 * 5.0) as f64);
    }
    client.drain().unwrap()
}

/// Short SCALE→AXPY chains: y = 2x, then y += x, so y[0] == 3 with
/// x filled once to 1 — stable across rounds, checked every round.
fn run_scale(client: grcuda::serve::Client) -> TenantStats {
    let (x, y, scale, axpy) = setup_pair(&client);
    let nf = N as f64;
    for _ in 0..ROUNDS {
        client
            .submit(RequestSpec {
                calls: vec![
                    call(
                        scale,
                        vec![
                            ArgSpec::Array(x),
                            ArgSpec::Array(y),
                            ArgSpec::Scalar(2.0),
                            ArgSpec::Scalar(nf),
                        ],
                    ),
                    call(
                        axpy,
                        vec![
                            ArgSpec::Array(x),
                            ArgSpec::Array(y),
                            ArgSpec::Scalar(1.0),
                            ArgSpec::Scalar(nf),
                        ],
                    ),
                ],
                deadline_us: None,
            })
            .unwrap();
        assert_eq!(client.read(y, 0).unwrap(), 3.0);
    }
    client.drain().unwrap()
}

/// A steady trickle of single-AXPY requests, drained at the end.
fn run_axpy(client: grcuda::serve::Client) -> TenantStats {
    let (x, y, _scale, axpy) = setup_pair(&client);
    let nf = N as f64;
    for _ in 0..ROUNDS {
        client
            .submit(RequestSpec {
                calls: vec![call(
                    axpy,
                    vec![
                        ArgSpec::Array(x),
                        ArgSpec::Array(y),
                        ArgSpec::Scalar(0.5),
                        ArgSpec::Scalar(nf),
                    ],
                )],
                deadline_us: None,
            })
            .unwrap();
    }
    client.drain().unwrap()
}

/// The misbehaving tenant: floods several requests per round without
/// ever waiting. Weighted round-robin (weight 1 vs 4) admits its
/// backlog one credit at a time.
fn run_greedy(client: grcuda::serve::Client) -> TenantStats {
    let (x, y, scale, _axpy) = setup_pair(&client);
    let nf = N as f64;
    for _ in 0..ROUNDS {
        for _ in 0..FLOOD_FACTOR {
            client
                .submit(RequestSpec {
                    calls: vec![call(
                        scale,
                        vec![
                            ArgSpec::Array(x),
                            ArgSpec::Array(y),
                            ArgSpec::Scalar(1.5),
                            ArgSpec::Scalar(nf),
                        ],
                    )],
                    deadline_us: None,
                })
                .unwrap();
        }
    }
    client.drain().unwrap()
}

fn setup_pair(client: &grcuda::serve::Client) -> (ArrayRef, ArrayRef, KernelRef, KernelRef) {
    let x = client.alloc(ElemKind::F32, N).unwrap();
    let y = client.alloc(ElemKind::F32, N).unwrap();
    client.fill(x, 1.0).unwrap();
    client.fill(y, 1.0).unwrap();
    let scale = client.kernel(&SCALE).unwrap();
    let axpy = client.kernel(&AXPY).unwrap();
    (x, y, scale, axpy)
}

fn main() {
    let config = ServeConfig::new(DeviceProfile::tesla_p100(), Options::parallel())
        .with_fairness(Fairness::WeightedRoundRobin)
        .with_pipeline(8, 4);
    let server = Server::start(config);

    let start = std::time::Instant::now();
    let workers: Vec<std::thread::JoinHandle<TenantStats>> = vec![
        {
            let c = server.client("vec", 4);
            std::thread::spawn(move || run_vec(c))
        },
        {
            let c = server.client("scale", 4);
            std::thread::spawn(move || run_scale(c))
        },
        {
            let c = server.client("axpy", 4);
            std::thread::spawn(move || run_axpy(c))
        },
        {
            let c = server.client("greedy", 1);
            std::thread::spawn(move || run_greedy(c))
        },
    ];
    let stats: Vec<TenantStats> = workers
        .into_iter()
        .map(|h| h.join().expect("tenant thread panicked"))
        .collect();
    let wall = start.elapsed().as_secs_f64();
    let report = server.shutdown();

    println!("tenant   weight  submitted  completed  launches    mean vµs     p99 vµs");
    println!("{}", "-".repeat(76));
    for s in &stats {
        let lat = LatencySummary::from_samples(&s.latencies).expect("completed requests");
        println!(
            "{:<8} {:>6}  {:>9}  {:>9}  {:>8}  {:>10.2}  {:>10.2}",
            s.name,
            s.weight,
            s.submitted,
            s.completed,
            s.launches,
            lat.mean * 1e6,
            lat.p99 * 1e6,
        );
        assert_eq!(s.completed, s.submitted, "tenant {} lost requests", s.name);
        assert_eq!(s.rejected, 0);
    }
    println!(
        "\n{} requests ({} launches) from 4 client threads in {wall:.2} s wall — \
         virtual time {:.2} ms, {} races",
        report.total_completed(),
        report.total_launches(),
        report.virtual_now * 1e3,
        report.races,
    );
    assert_eq!(report.races, 0);

    // The flooding tenant was throttled, not starved: everything it
    // submitted completed, but its queueing delay dwarfs the
    // well-behaved tenants'.
    let greedy = stats.iter().find(|s| s.name == "greedy").unwrap();
    let scale = stats.iter().find(|s| s.name == "scale").unwrap();
    let g = LatencySummary::from_samples(&greedy.latencies).unwrap();
    let s = LatencySummary::from_samples(&scale.latencies).unwrap();
    println!(
        "greedy mean latency {:.1} vµs vs scale {:.1} vµs — flooding bought delay, not share",
        g.mean * 1e6,
        s.mean * 1e6
    );
}
