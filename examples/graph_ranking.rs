//! Graph ranking — the paper's HITS benchmark on a small web-graph,
//! showing cross-stream synchronization over multiple iterations.
//!
//! The authority chain (`Aᵀh → sum → divide`) and the hub chain
//! (`Aa → sum → divide`) run on two streams; each normalization writes a
//! vector the *other* chain reads next round, so every iteration needs
//! two cross-stream events. The host loop is ordinary Rust — the
//! scheduler discovers the pattern from the argument lists alone.
//!
//! Run: `cargo run --release --example graph_ranking`

use gpu_sim::{DeviceProfile, Grid};
use grcuda::{Arg, DeviceArray, GrCuda, Options};
use kernels::hits::{Csr, DIVIDE, SPMV, SUM_REDUCE};

fn main() {
    // A tiny two-hub web graph: pages 0 and 1 are directories linking
    // everywhere; pages 2..10 link back to page 0.
    let n = 10usize;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for t in 2..n {
        edges.push((0, t));
        if t % 2 == 0 {
            edges.push((1, t));
        }
        edges.push((t, 0));
    }
    let a_mat = Csr::from_edges(n, &edges);
    let t_edges: Vec<(usize, usize)> = edges.iter().map(|&(r, c)| (c, r)).collect();
    let at_mat = Csr::from_edges(n, &t_edges);

    let g = GrCuda::new(DeviceProfile::gtx1660_super(), Options::parallel());
    let grid = Grid::d1(64, 256);
    let nf = n as f64;

    let upload_csr = |m: &Csr| -> (DeviceArray, DeviceArray, DeviceArray) {
        let rp = g.array_i32(m.rowptr.len());
        rp.copy_from_i32(&m.rowptr);
        let ci = g.array_i32(m.colidx.len().max(1));
        ci.copy_from_i32(&m.colidx);
        let va = g.array_f32(m.vals.len().max(1));
        va.copy_from_f32(&m.vals);
        (rp, ci, va)
    };
    let (a_rp, a_ci, a_va) = upload_csr(&a_mat);
    let (t_rp, t_ci, t_va) = upload_csr(&at_mat);

    let h = g.array_f32(n);
    let a = g.array_f32(n);
    h.fill_f32(1.0 / n as f32);
    a.fill_f32(1.0 / n as f32);
    let tmp_a = g.array_f32(n);
    let tmp_h = g.array_f32(n);
    let sum_a = g.array_f32(1);
    let sum_h = g.array_f32(1);

    let spmv = g.build_kernel(&SPMV).unwrap();
    let sum = g.build_kernel(&SUM_REDUCE).unwrap();
    let div = g.build_kernel(&DIVIDE).unwrap();

    for _round in 0..8 {
        // Authority chain: a' = normalize(Aᵀ h)
        spmv.launch(
            grid,
            &[
                Arg::array(&t_rp),
                Arg::array(&t_ci),
                Arg::array(&t_va),
                Arg::array(&h),
                Arg::array(&tmp_a),
                Arg::scalar(nf),
            ],
        )
        .unwrap();
        sum.launch(
            grid,
            &[Arg::array(&tmp_a), Arg::array(&sum_a), Arg::scalar(nf)],
        )
        .unwrap();
        // Hub chain: h' = normalize(A a) — reads the OLD a concurrently.
        spmv.launch(
            grid,
            &[
                Arg::array(&a_rp),
                Arg::array(&a_ci),
                Arg::array(&a_va),
                Arg::array(&a),
                Arg::array(&tmp_h),
                Arg::scalar(nf),
            ],
        )
        .unwrap();
        sum.launch(
            grid,
            &[Arg::array(&tmp_h), Arg::array(&sum_h), Arg::scalar(nf)],
        )
        .unwrap();
        // The divides write a/h, which the *other* chain read above:
        // write-after-read edges across streams, inferred automatically.
        div.launch(
            grid,
            &[
                Arg::array(&tmp_a),
                Arg::array(&sum_a),
                Arg::array(&a),
                Arg::scalar(nf),
            ],
        )
        .unwrap();
        div.launch(
            grid,
            &[
                Arg::array(&tmp_h),
                Arg::array(&sum_h),
                Arg::array(&h),
                Arg::scalar(nf),
            ],
        )
        .unwrap();
    }

    let hubs = h.to_vec_f32();
    let auths = a.to_vec_f32();
    g.sync();
    assert!(
        g.races().is_empty(),
        "cross-stream WAR edges must be synchronized"
    );

    let top = |v: &[f32]| -> usize {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap()
    };
    println!("hub scores:       {hubs:.2?}");
    println!("authority scores: {auths:.2?}");
    println!(
        "top hub = page {}   top authority = page {}",
        top(&hubs),
        top(&auths)
    );
    assert_eq!(top(&hubs), 0, "the directory page must be the top hub");
    // Authorities are the pages the strong hubs point at: the even
    // pages are linked by BOTH directories, so one of them must win.
    let ta = top(&auths);
    assert!(
        ta >= 2 && ta % 2 == 0,
        "top authority must be a doubly-linked page, got {ta}"
    );
    println!(
        "\nDAG after 8 iterations: {} computational elements, {} streams, 0 races",
        g.dag_len(),
        g.timeline().streams_used()
    );
}
