//! Quickstart — the paper's Fig. 4 walk-through (the VEC benchmark).
//!
//! Host code is written *as if it were serial*: declare kernels with
//! NIDL signatures, allocate managed arrays, launch, read the result.
//! The scheduler infers the dependency DAG, puts the two independent
//! `square` kernels on separate streams, fences the reduction on both
//! with an event, and synchronizes only when the CPU reads `Z[0]`.
//!
//! Run: `cargo run --release --example quickstart`

use gpu_sim::{DeviceProfile, Grid};
use grcuda::{Arg, GrCuda, Options};
use kernels::vec_ops::{REDUCE_SUM_DIFF, SQUARE};
use metrics::render_timeline;

fn main() {
    let g = GrCuda::new(DeviceProfile::tesla_p100(), Options::parallel());
    let n = 1 << 22;

    // Fig. 4 (A): declare kernels — `buildkernel(code, name, signature)`.
    let square = g.build_kernel(&SQUARE).expect("signature parses");
    let reduce = g.build_kernel(&REDUCE_SUM_DIFF).expect("signature parses");

    // Fig. 4 (B): declare managed arrays — `float[N]`.
    let x = g.array_f32(n);
    let y = g.array_f32(n);
    let z = g.array_f32(1);
    x.fill_f32(3.0);
    y.fill_f32(2.0);

    // Fig. 4 (C): launch as if serial; the scheduler parallelizes.
    let grid = Grid::d1(64, 256);
    square
        .launch(grid, &[Arg::array(&x), Arg::scalar(n as f64)])
        .unwrap();
    square
        .launch(grid, &[Arg::array(&y), Arg::scalar(n as f64)])
        .unwrap();
    reduce
        .launch(
            grid,
            &[
                Arg::array(&x),
                Arg::array(&y),
                Arg::array(&z),
                Arg::scalar(n as f64),
            ],
        )
        .unwrap();

    // Fig. 4 (D): the CPU access synchronizes exactly what it needs.
    let res = z.get_f32(0);
    println!(
        "sum of squared differences = {res}  (expected {})",
        n as f32 * 5.0
    );
    assert_eq!(res, n as f32 * 5.0);

    // Render the DAG before syncing: `sync()` retires every vertex and
    // compacts the graph, reclaiming the structure we want to show.
    let dot = g.dag_dot("VEC");
    g.sync();
    println!("\nInferred computation DAG (Graphviz):\n{dot}");
    println!(
        "Execution timeline:\n{}",
        render_timeline(&g.timeline(), 90)
    );
    println!("streams created by the scheduler: {}", g.streams_created());
    println!("data races detected: {}", g.races().len());
    assert!(g.races().is_empty());
}
