//! Streaming option pricing — the paper's B&S benchmark as a service
//! loop: batches of spot prices for 10 stocks arrive continuously, and
//! the runtime overlaps each batch's transfer with the previous batch's
//! pricing.
//!
//! Shows the paper's §V-F observation live: on the Tesla P100 (20×
//! the fp64 rate of the GTX 1660 Super) the computation hides entirely
//! under the PCIe transfers, so the parallel scheduler prices at line
//! rate; on the consumer part the fp64 units are the bottleneck.
//!
//! Run: `cargo run --release --example streaming_options`

use gpu_sim::{DeviceProfile, Grid};
use grcuda::{Arg, GrCuda, Options};
use kernels::black_scholes::BLACK_SCHOLES;

const STOCKS: usize = 10;
const BATCH: usize = 200_000;
const BATCHES: usize = 4;

fn run(dev: DeviceProfile, options: Options) -> (f64, usize, f32) {
    let g = GrCuda::new(dev, options);
    let grid = Grid::d1(64, 256);
    let bs = g.build_kernel(&BLACK_SCHOLES).unwrap();

    let spots: Vec<_> = (0..STOCKS).map(|_| g.array_f64(BATCH)).collect();
    let prices: Vec<_> = (0..STOCKS).map(|_| g.array_f64(BATCH)).collect();

    let t0 = g.now();
    let mut checksum = 0.0f32;
    for batch in 0..BATCHES {
        // "New market data arrives": the host rewrites the inputs.
        for (s, arr) in spots.iter().enumerate() {
            let base = 60.0 + 10.0 * s as f64 + batch as f64;
            let data: Vec<f64> = (0..BATCH).map(|i| base + (i % 100) as f64 * 0.3).collect();
            arr.copy_from_f64(&data);
        }
        // Ten independent pricing kernels — the scheduler fans them out
        // over ten streams and overlaps their H2D transfers.
        for s in 0..STOCKS {
            bs.launch(
                grid,
                &[
                    Arg::array(&spots[s]),
                    Arg::array(&prices[s]),
                    Arg::scalar(BATCH as f64),
                    Arg::scalar(100.0), // strike
                    Arg::scalar(0.02),  // rate
                    Arg::scalar(0.30),  // volatility
                    Arg::scalar(1.0),   // expiry
                ],
            )
            .unwrap();
        }
        // The desk reads one quote per stock: precise synchronization.
        for p in &prices {
            checksum += p.get_f64(0) as f32;
        }
    }
    g.sync();
    let elapsed = g.now() - t0;
    assert!(g.races().is_empty());
    (elapsed, g.streams_created(), checksum)
}

fn main() {
    println!("Pricing {BATCHES} batches x {STOCKS} stocks x {BATCH} options (double precision)\n");
    for dev in [DeviceProfile::gtx1660_super(), DeviceProfile::tesla_p100()] {
        let name = dev.name.clone();
        let (serial, _, c1) = run(dev.clone(), Options::serial());
        let (parallel, streams, c2) = run(dev, Options::parallel());
        assert_eq!(c1, c2, "schedulers must price identically");
        println!(
            "{name:>16}: serial {:7.1} ms | parallel {:7.1} ms | speedup {:.2}x | {} streams",
            serial * 1e3,
            parallel * 1e3,
            serial / parallel,
            streams,
        );
    }
    println!("\n(paper: B&S speedup grows with fp64 capability — the P100 masks all");
    println!(" computation under the transfers, the GTX 1660 Super cannot)");
}
