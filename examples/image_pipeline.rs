//! Image pipeline — the paper's IMG benchmark (Fig. 6, 4 streams) with
//! control flow the host decides at run time.
//!
//! This example highlights the paper's core design point: the scheduler
//! never sees the pipeline in advance. The host picks the blur kernel
//! size with an ordinary `if` (a different code path per "photo"), and
//! the DAG is discovered launch by launch — something CUDA Graphs can't
//! express without rebuilding the graph.
//!
//! Run: `cargo run --release --example image_pipeline`

use gpu_sim::{DeviceProfile, Grid};
use grcuda::{Arg, DeviceArray, GrCuda, Options};
use kernels::image::{
    gaussian_kernel, COMBINE, EXTEND, GAUSSIAN_BLUR, MAXIMUM, MINIMUM, SOBEL, UNSHARPEN,
};
use metrics::render_timeline;

const SIDE: usize = 512;

fn main() {
    let g = GrCuda::new(DeviceProfile::gtx1660_super(), Options::parallel());
    let n = SIDE * SIDE;
    let (nf, sf) = (n as f64, SIDE as f64);
    let grid2 = Grid::d2(12, 12, 8, 8);
    let grid1 = Grid::d1(64, 256);

    // A synthetic photo: bright disc on a dark gradient.
    let img = g.array_f32(n);
    let photo: Vec<f32> = (0..n)
        .map(|i| {
            let (r, c) = (i / SIDE, i % SIDE);
            let d2 = (r as f32 - 256.0).powi(2) + (c as f32 - 256.0).powi(2);
            if d2 < 90.0 * 90.0 {
                0.9
            } else {
                0.1 + 0.2 * (r as f32 / SIDE as f32)
            }
        })
        .collect();
    img.copy_from_f32(&photo);

    let alloc = |g: &GrCuda| g.array_f32(n);
    let (blur_small, blur_large, blur_unsharp) = (alloc(&g), alloc(&g), alloc(&g));
    let (sobel_small, sobel_large) = (alloc(&g), alloc(&g));
    let (minv, maxv) = (g.array_f32(1), g.array_f32(1));
    let (unsharp, combine1, result) = (alloc(&g), alloc(&g), alloc(&g));

    let blur = g.build_kernel(&GAUSSIAN_BLUR).unwrap();
    let sobel = g.build_kernel(&SOBEL).unwrap();
    let maximum = g.build_kernel(&MAXIMUM).unwrap();
    let minimum = g.build_kernel(&MINIMUM).unwrap();
    let extend = g.build_kernel(&EXTEND).unwrap();
    let unsharpen = g.build_kernel(&UNSHARPEN).unwrap();
    let combine = g.build_kernel(&COMBINE).unwrap();

    // Run-time control flow: pick the blur radius per "photo quality".
    // (The paper: "selecting the appropriate kernel is done simply
    // through conditional statements in the host language".)
    let high_detail = std::env::args().any(|a| a == "--high-detail");
    let (d_small, sigma_small) = if high_detail {
        (3usize, 0.8)
    } else {
        (5usize, 1.5)
    };

    let k_small = g.array_f32(d_small * d_small);
    k_small.copy_from_f32(&gaussian_kernel(d_small, sigma_small));
    let k_large = g.array_f32(25);
    k_large.copy_from_f32(&gaussian_kernel(5, 2.0));
    let k_unsharp = g.array_f32(9);
    k_unsharp.copy_from_f32(&gaussian_kernel(3, 0.8));

    let blur_call = |dst: &DeviceArray, kern: &DeviceArray, d: usize| {
        blur.launch(
            grid2,
            &[
                Arg::array(&img),
                Arg::array(dst),
                Arg::scalar(sf),
                Arg::scalar(sf),
                Arg::array(kern),
                Arg::scalar(d as f64),
            ],
        )
        .unwrap();
    };

    // Three independent blurs of the same (read-only) photo.
    blur_call(&blur_small, &k_small, d_small);
    blur_call(&blur_large, &k_large, 5);
    blur_call(&blur_unsharp, &k_unsharp, 3);
    sobel
        .launch(
            grid2,
            &[
                Arg::array(&blur_small),
                Arg::array(&sobel_small),
                Arg::scalar(sf),
                Arg::scalar(sf),
            ],
        )
        .unwrap();
    sobel
        .launch(
            grid2,
            &[
                Arg::array(&blur_large),
                Arg::array(&sobel_large),
                Arg::scalar(sf),
                Arg::scalar(sf),
            ],
        )
        .unwrap();
    maximum
        .launch(
            grid1,
            &[Arg::array(&sobel_large), Arg::array(&maxv), Arg::scalar(nf)],
        )
        .unwrap();
    minimum
        .launch(
            grid1,
            &[Arg::array(&sobel_large), Arg::array(&minv), Arg::scalar(nf)],
        )
        .unwrap();
    extend
        .launch(
            grid1,
            &[
                Arg::array(&sobel_large),
                Arg::array(&minv),
                Arg::array(&maxv),
                Arg::scalar(nf),
            ],
        )
        .unwrap();
    unsharpen
        .launch(
            grid1,
            &[
                Arg::array(&img),
                Arg::array(&blur_unsharp),
                Arg::array(&unsharp),
                Arg::scalar(0.5),
                Arg::scalar(nf),
            ],
        )
        .unwrap();
    combine
        .launch(
            grid1,
            &[
                Arg::array(&unsharp),
                Arg::array(&blur_small),
                Arg::array(&sobel_small),
                Arg::array(&combine1),
                Arg::scalar(nf),
            ],
        )
        .unwrap();
    combine
        .launch(
            grid1,
            &[
                Arg::array(&combine1),
                Arg::array(&blur_large),
                Arg::array(&sobel_large),
                Arg::array(&result),
                Arg::scalar(nf),
            ],
        )
        .unwrap();

    // Reading a pixel synchronizes the whole pipeline behind it.
    let center = result.get_f32(256 * SIDE + 256);
    let corner = result.get_f32(0);
    println!(
        "kernel variant: {}",
        if high_detail {
            "high-detail (3x3)"
        } else {
            "standard (5x5)"
        }
    );
    println!("sharpened center pixel = {center:.3}, corner = {corner:.3}");
    assert!(
        center > corner,
        "the subject must be enhanced relative to background"
    );

    g.sync();
    println!("\nTimeline (the paper's Fig. 6 IMG runs this on 4 streams):");
    println!("{}", render_timeline(&g.timeline(), 100));
    println!(
        "streams: {}   races: {}",
        g.timeline().streams_used(),
        g.races().len()
    );
    assert!(g.races().is_empty());
}
