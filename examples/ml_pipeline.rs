//! ML ensemble — the paper's motivating example (Fig. 2) built directly
//! against the public API.
//!
//! Two classifier branches read the same input matrix `X` **read-only**
//! (`const` in the NIDL signatures); the scheduler runs them on two
//! streams concurrently and fences the final `argmax` ensemble on both.
//! This is the pipeline whose serial-vs-parallel schedule the paper draws
//! in Fig. 2 and whose timeline it shows in Fig. 10.
//!
//! Run: `cargo run --release --example ml_pipeline`

use gpu_sim::{DeviceProfile, Grid};
use grcuda::{Arg, GrCuda, Options};
use kernels::ml::{
    ARGMAX_COMBINE, NB_EXP, NB_LSE, NB_MATMUL, NB_ROW_MAX, RR_ADD_INTERCEPT, RR_MATMUL,
    RR_NORMALIZE, SOFTMAX,
};
use metrics::{render_timeline, OverlapMetrics};

const ROWS: usize = 10_000;
const FEATURES: usize = 200; // fixed by the paper
const CLASSES: usize = 10;

fn main() {
    let g = GrCuda::new(DeviceProfile::gtx1660_super(), Options::parallel());
    let grid = Grid::d1(64, 256);
    let (rf, ff, cf) = (ROWS as f64, FEATURES as f64, CLASSES as f64);

    // Input matrix and model parameters.
    let x = g.array_f32(ROWS * FEATURES);
    let w = g.array_f32(CLASSES * FEATURES);
    let b = g.array_f32(CLASSES);
    let logp = g.array_f32(CLASSES * FEATURES);
    for (arr, seed, lo, hi) in [
        (&x, 11u64, 0.0f32, 4.0f32),
        (&w, 12, -1.0, 1.0),
        (&b, 13, -0.5, 0.5),
        (&logp, 14, -3.0, -0.01),
    ] {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let data: Vec<f32> = (0..arr.len())
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                lo + (hi - lo) * ((state >> 11) as f32 / (1u64 << 53) as f32)
            })
            .collect();
        arr.copy_from_f32(&data);
    }
    // Intermediates.
    let z = g.array_f32(ROWS * FEATURES);
    let r2 = g.array_f32(ROWS * CLASSES);
    let r1 = g.array_f32(ROWS * CLASSES);
    let amax = g.array_f32(ROWS);
    let lse = g.array_f32(ROWS);
    let out = g.array_i32(ROWS);

    let k = |def| g.build_kernel(def).unwrap();

    // Ridge-regression branch (Fig. 2's right branch).
    k(&RR_NORMALIZE)
        .launch(
            grid,
            &[
                Arg::array(&x),
                Arg::array(&z),
                Arg::scalar(rf),
                Arg::scalar(ff),
            ],
        )
        .unwrap();
    // Naïve Bayes branch starts immediately: it reads X read-only.
    k(&NB_MATMUL)
        .launch(
            grid,
            &[
                Arg::array(&x),
                Arg::array(&logp),
                Arg::array(&r1),
                Arg::scalar(rf),
                Arg::scalar(ff),
                Arg::scalar(cf),
            ],
        )
        .unwrap();
    k(&RR_MATMUL)
        .launch(
            grid,
            &[
                Arg::array(&z),
                Arg::array(&w),
                Arg::array(&r2),
                Arg::scalar(rf),
                Arg::scalar(ff),
                Arg::scalar(cf),
            ],
        )
        .unwrap();
    k(&NB_ROW_MAX)
        .launch(
            grid,
            &[
                Arg::array(&r1),
                Arg::array(&amax),
                Arg::scalar(rf),
                Arg::scalar(cf),
            ],
        )
        .unwrap();
    k(&RR_ADD_INTERCEPT)
        .launch(
            grid,
            &[
                Arg::array(&r2),
                Arg::array(&b),
                Arg::scalar(rf),
                Arg::scalar(cf),
            ],
        )
        .unwrap();
    k(&NB_LSE)
        .launch(
            grid,
            &[
                Arg::array(&r1),
                Arg::array(&amax),
                Arg::array(&lse),
                Arg::scalar(rf),
                Arg::scalar(cf),
            ],
        )
        .unwrap();
    k(&SOFTMAX)
        .launch(grid, &[Arg::array(&r2), Arg::scalar(rf), Arg::scalar(cf)])
        .unwrap();
    k(&NB_EXP)
        .launch(
            grid,
            &[
                Arg::array(&r1),
                Arg::array(&amax),
                Arg::array(&lse),
                Arg::scalar(rf),
                Arg::scalar(cf),
            ],
        )
        .unwrap();
    // Ensemble: average the two posteriors, pick the winner.
    k(&ARGMAX_COMBINE)
        .launch(
            grid,
            &[
                Arg::array(&r1),
                Arg::array(&r2),
                Arg::array(&out),
                Arg::scalar(rf),
                Arg::scalar(cf),
            ],
        )
        .unwrap();

    // Reading predictions synchronizes both branches.
    let preds = out.to_vec_i32();
    let mut histogram = [0usize; CLASSES];
    for &p in &preds {
        histogram[p as usize] += 1;
    }
    println!("prediction histogram over {} rows: {:?}", ROWS, histogram);

    g.sync();
    let tl = g.timeline();
    println!("\nExecution timeline (two classifier branches on two streams):");
    println!("{}", render_timeline(&tl, 100));
    let m = OverlapMetrics::from_timeline(&tl);
    println!(
        "overlap: CT={:.0}% TC={:.0}% CC={:.0}% TOT={:.0}%   streams: {}",
        m.ct * 100.0,
        m.tc * 100.0,
        m.cc * 100.0,
        m.tot * 100.0,
        tl.streams_used()
    );
    assert!(g.races().is_empty());
    assert!(tl.streams_used() >= 2, "branches must run concurrently");
}
