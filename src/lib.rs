//! # grcuda-suite — umbrella package
//!
//! This package hosts the cross-crate integration tests (`tests/`) and
//! the runnable examples (`examples/`) of the grcuda-rs reproduction.
//! The actual library lives in the workspace crates:
//!
//! * [`gpu_sim`] — the discrete-event fluid-rate GPU simulator;
//! * [`cuda_sim`] — the CUDA-shaped API (streams, events, UM, graphs);
//! * [`dag`] — dependency-set based DAG construction;
//! * [`grcuda`] — **the paper's runtime scheduler**;
//! * [`kernels`] — the 33 benchmark kernels;
//! * [`benchmarks`] — the 6 task-parallel benchmarks and their runners;
//! * [`metrics`] — overlap/hardware/critical-path analysis.
//!
//! Start at [`grcuda::GrCuda`] or run `cargo run --release --example
//! quickstart`.

pub use benchmarks;
pub use cuda_sim;
pub use dag;
pub use gpu_sim;
pub use grcuda;
pub use kernels;
pub use metrics;
