#!/usr/bin/env bash
# Check intra-repo markdown links in README.md and docs/*.md.
#
# A link breaks the build when its target file does not exist
# (relative to the file containing the link) or, for a same-repo
# `file.md#anchor` / `#anchor` link, when no heading in the target
# renders to that GitHub-style anchor. External links (http/https) and
# mailto links are ignored.
set -euo pipefail
cd "$(dirname "$0")/.."

# GitHub's heading -> anchor rule: lowercase, drop everything but
# alphanumerics/spaces/hyphens, spaces become hyphens.
anchors_of() {
    sed -n 's/^#\{1,6\} \(.*\)$/\1/p' "$1" |
        tr '[:upper:]' '[:lower:]' |
        sed 's/[^a-z0-9 -]//g; s/ /-/g'
}

scan() {
    for doc in README.md docs/*.md; do
        [ -f "$doc" ] || continue
        dir=$(dirname "$doc")
        # Inline markdown link targets: [text](target)
        grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/^\[[^]]*\](\(.*\))$/\1/' |
            while IFS= read -r target; do
                case "$target" in
                http://* | https://* | mailto:*) continue ;;
                esac
                file=${target%%#*}
                anchor=${target#*#}
                [ "$anchor" = "$target" ] && anchor=""
                if [ -z "$file" ]; then
                    resolved=$doc # pure #anchor link: same file
                else
                    resolved=$dir/$file
                fi
                if [ ! -e "$resolved" ]; then
                    echo "BROKEN LINK in $doc: ($target) -> missing file $resolved"
                    continue
                fi
                if [ -n "$anchor" ] && [[ $resolved == *.md ]]; then
                    if ! anchors_of "$resolved" | grep -qx "$anchor"; then
                        echo "BROKEN ANCHOR in $doc: ($target) -> no heading #$anchor in $resolved"
                    fi
                fi
            done
    done
}

errors=$(scan)
if [ -n "$errors" ]; then
    echo "$errors"
    echo "doc link check: FAILED ($(echo "$errors" | wc -l) broken link(s))"
    exit 1
fi
echo "doc link check: all intra-repo links in README.md and docs/*.md resolve"
