#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no registry access, and nothing in this
//! workspace actually serializes (there is no `serde_json` either) — the
//! derives exist so profile/cost types keep the annotation the real
//! project would carry. These macros accept the same syntax and expand
//! to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: accepts `#[serde(...)]` attributes and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: accepts `#[serde(...)]` attributes
/// and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
