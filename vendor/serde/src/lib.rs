#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive macros so that
//! `use serde::{Deserialize, Serialize};` + `#[derive(...)]` compiles
//! unchanged. Swap this path dependency for the real crates.io `serde`
//! when the build environment has network access.

pub use serde_derive::{Deserialize, Serialize};
