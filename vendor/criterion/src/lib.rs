#![forbid(unsafe_code)]
// Vendored offline stand-in mirroring an upstream crate's API surface:
// per-item docs live with the upstream crate this shadows; the
// crate-level doc below covers what the stand-in implements.
#![allow(missing_docs)]

//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no registry access, so this crate provides
//! the authoring surface the workspace's benches use — [`Criterion`],
//! `benchmark_group`/`sample_size`/`bench_function`/`bench_with_input`,
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a plain
//! warmup-then-N-samples timer that prints mean and minimum wall time
//! per benchmark. No statistical analysis, HTML reports, or baseline
//! comparison. Swap this path dependency for the real crates.io
//! `criterion` when network access is available; the bench sources need
//! no changes.

use std::fmt::Display;
use std::time::Instant;

/// Re-export so `criterion::black_box` resolves; benches in this
/// workspace import `std::hint::black_box` directly anyway.
pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 10;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), DEFAULT_SAMPLES, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        total_ns: 0.0,
        min_ns: f64::INFINITY,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<48} (no iterations)");
    } else {
        println!(
            "{label:<48} mean {:>12} min {:>12}  ({} samples)",
            fmt_ns(b.total_ns / b.iters as f64),
            fmt_ns(b.min_ns),
            b.iters
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

pub struct Bencher {
    samples: usize,
    total_ns: f64,
    min_ns: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup, and forces lazy setup
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            let ns = t.elapsed().as_nanos() as f64;
            self.total_ns += ns;
            self.min_ns = self.min_ns.min(ns);
            self.iters += 1;
        }
    }
}

/// `group name / parameter` identifier, `Display`ed into the row label.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
