//! Config, RNG, and error plumbing for the [`proptest!`](crate::proptest) macro.

use std::fmt;

/// Mirrors `proptest::test_runner::Config` for the fields the workspace
/// sets (`with_cases`). Exported from the prelude as `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed `prop_assert*` inside a generated case.
#[derive(Debug)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    pub fn fail(reason: String) -> Self {
        TestCaseError { reason }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

/// Deterministic splitmix64 generator, seeded from the test's name so
/// every test draws an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero. Modulo bias is
    /// irrelevant at property-test sample sizes.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty choice");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
