//! `proptest::array` — fixed-size arrays of strategy-generated elements.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! uniform_fn {
    ($($name:ident => $n:literal),*) => {$(
        pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray { element }
        }
    )*};
}

uniform_fn!(
    uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4,
    uniform5 => 5, uniform6 => 6, uniform7 => 7, uniform8 => 8
);
