#![forbid(unsafe_code)]
// Vendored offline stand-in mirroring an upstream crate's API surface:
// per-item docs live with the upstream crate this shadows; the
// crate-level doc below covers what the stand-in implements.
#![allow(missing_docs)]

//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no registry access, so this crate
//! re-implements the slice of proptest's API that the workspace's
//! property tests use: the [`strategy::Strategy`] trait with `prop_map`, range /
//! tuple / `collection::vec` / `array::uniform7` / `bool::ANY`
//! strategies, [`prop_oneof!`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   (tests format them into their assertion messages) but is not
//!   minimized.
//! * **Deterministic.** The RNG is seeded from the test's name, so a
//!   failure reproduces on every run — there is no persistence file
//!   because none is needed.
//!
//! Swap this path dependency for the real crates.io `proptest` when the
//! build environment has network access; the test sources need no
//! changes.

pub mod array;
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Mirrors `proptest::prelude`: the trait, the config type, and the
    //! macros the test modules use unqualified.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The body of each generated test case runs in a closure returning
/// this; `prop_assert*` failures become `Err` and abort the case with a
/// message instead of unwinding mid-generation.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        ::core::panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, cfg.cases, e
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+), lhs, rhs
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Uniform choice among same-valued strategies. The real macro supports
/// `weight => strategy` arms; the workspace only uses unweighted ones.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $({
                let strat = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&strat, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}
