//! `proptest::bool` — the `ANY` coin-flip strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone, Copy)]
pub struct Any;

/// Uniform `true`/`false`.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
