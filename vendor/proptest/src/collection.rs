//! `proptest::collection` — vectors of strategy-generated elements.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A `Vec` whose length is uniform in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.start + rng.below(self.size.end - self.size.start);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
