//! The [`Strategy`] trait and the combinators the workspace uses.
//!
//! A strategy here is just "a way to generate a value from the RNG" —
//! the real crate's value *tree* (generation plus shrinking) collapses
//! to generation only.

use crate::test_runner::TestRng;
use std::ops::Range;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// One generator arm of a [`Union`].
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice among boxed generator arms; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        (self.arms[i])(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                ((self.start as i128) + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = (self.start as f64 + rng.unit_f64() * (self.end as f64 - self.start as f64)) as $t;
                // Narrowing (f32) or magnitude rounding can land exactly
                // on the exclusive upper bound; keep the range half-open.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
