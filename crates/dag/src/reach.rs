//! Happens-before reachability over the stored DAG.
//!
//! The schedule-sanitizer (see `grcuda::audit`) needs to answer "is
//! vertex `a` ordered before vertex `b` by the inferred edges?" for
//! every conflicting pair. [`Reachability`] materializes the transitive
//! closure of the stored edge set as one bitset row per stored vertex;
//! because vertex ids are monotonic and dependency edges always point
//! backwards (`from.id < to.id`), a single pass over the edges in
//! creation order is enough — every source row is final before any of
//! its outgoing edges is folded in.
//!
//! Row storage is indexed through a [`DenseMap`] keyed by the monotonic
//! vertex id, so the closure does zero hashing, consistent with the rest
//! of the scheduler's arena-map discipline.
//!
//! The same closure answers the *minimality* question: an edge is
//! [`Reachability::redundant_edges`]-redundant when removing just that
//! edge leaves its endpoints ordered anyway — either a parallel edge
//! between the same pair (inference records one edge per conflicting
//! value) or a transitive path covers it. Redundant edges are
//! informational (the covering relation still orders the pair); the DAG
//! can stamp them via [`ComputationDag::mark_redundant_edges`] so
//! [`crate::to_dot`] renders them dashed gray.

use crate::dense::DenseMap;
use crate::graph::ComputationDag;
use crate::vertex::VertexId;

/// Transitive closure ("happens-before") of a DAG's stored edges.
///
/// A snapshot: built from the stored vertex and edge sets at
/// construction time; later mutations of the DAG are not reflected.
#[derive(Debug)]
pub struct Reachability {
    /// Bitset slot of each stored vertex, arena-addressed by id.
    slot: DenseMap<VertexId, u32>,
    /// `n` rows of `words` u64s; bit `j` of row `i` is set iff stored
    /// vertex in slot `j` strictly happens-before the vertex in slot `i`.
    rows: Vec<u64>,
    words: usize,
}

impl Reachability {
    /// Closure over every stored edge.
    pub fn new(dag: &ComputationDag) -> Self {
        Self::without_edge(dag, usize::MAX)
    }

    /// Closure with the edge at index `skip` (into [`ComputationDag::edges`])
    /// removed — the "what if inference had not recorded this edge?"
    /// question the sanitizer's no-false-negative check asks. Pass
    /// `usize::MAX` (or any out-of-range index) to keep all edges.
    pub fn without_edge(dag: &ComputationDag, skip: usize) -> Self {
        Self::with_edges(dag, |k, _| k != skip)
    }

    /// Closure over the subset of stored edges for which `keep` returns
    /// true (called with each edge's index into [`ComputationDag::edges`]
    /// and the edge itself). This is how the sanitizer audits *views* of
    /// the schedule — e.g. "what the scheduler actually honored with
    /// dependency inference disabled".
    pub fn with_edges(
        dag: &ComputationDag,
        mut keep: impl FnMut(usize, &crate::graph::DepEdge) -> bool,
    ) -> Self {
        let n = dag.stored_len();
        let words = n.div_ceil(64).max(1);
        let mut slot: DenseMap<VertexId, u32> = DenseMap::new();
        for (i, v) in dag.vertices().iter().enumerate() {
            slot.insert(v.id, i as u32);
        }
        let mut rows = vec![0u64; n * words];
        // Edges are recorded while their target is being added, so the
        // vector is sorted by target id: one forward pass sees every
        // source row complete before folding it into a target.
        for (k, e) in dag.edges().iter().enumerate() {
            if !keep(k, e) {
                continue;
            }
            let (Some(&f), Some(&t)) = (slot.get(e.from), slot.get(e.to)) else {
                continue;
            };
            let (f, t) = (f as usize, t as usize);
            debug_assert!(f < t, "dependency edges point backwards");
            let (lo, hi) = rows.split_at_mut(t * words);
            let src = &lo[f * words..(f + 1) * words];
            let dst = &mut hi[..words];
            for (d, s) in dst.iter_mut().zip(src) {
                *d |= *s;
            }
            dst[f / 64] |= 1u64 << (f % 64);
        }
        Reachability { slot, rows, words }
    }

    /// Whether `from` strictly happens-before `to` through the (kept)
    /// edges. False for unknown (compacted) ids and for `from == to`.
    pub fn reaches(&self, from: VertexId, to: VertexId) -> bool {
        let (Some(&f), Some(&t)) = (self.slot.get(from), self.slot.get(to)) else {
            return false;
        };
        let (f, t) = (f as usize, t as usize);
        self.rows[t * self.words + f / 64] >> (f % 64) & 1 == 1
    }

    /// Whether a pair is ordered (either direction, or the same vertex).
    pub fn ordered(&self, a: VertexId, b: VertexId) -> bool {
        a == b || self.reaches(a, b) || self.reaches(b, a)
    }

    /// For each stored edge, whether it is *individually* redundant:
    /// dropping just that edge leaves `from` still happens-before `to`,
    /// through a parallel edge between the same pair or a transitive
    /// path. (Of two parallel edges each is individually redundant even
    /// though dropping both would break the ordering — the count reads
    /// "edges removable one at a time", not "a maximal removable set".)
    pub fn redundant_edges(&self, dag: &ComputationDag) -> Vec<bool> {
        let edges = dag.edges();
        let mut redundant = vec![false; edges.len()];
        // Edges are sorted by target, so scan each target's incoming
        // range once: edge k (u→v) is covered by a sibling edge j (w→v)
        // when u == w (parallel) or u happens-before w. A path u⟶w never
        // runs through v (w precedes v), so the full closure is safe to
        // consult even though it includes edge k itself.
        let mut lo = 0;
        while lo < edges.len() {
            let hi = (lo..edges.len())
                .take_while(|&i| edges[i].to == edges[lo].to)
                .count()
                + lo;
            for k in lo..hi {
                redundant[k] = (lo..hi).any(|j| {
                    j != k
                        && (edges[j].from == edges[k].from
                            || self.reaches(edges[k].from, edges[j].from))
                });
            }
            lo = hi;
        }
        redundant
    }
}

impl ComputationDag {
    /// Compute the happens-before closure and stamp every stored edge's
    /// [`crate::DepEdge::redundant`] flag (see
    /// [`Reachability::redundant_edges`]). Returns the number of
    /// redundant edges. Informational: the flag only affects rendering
    /// and the sanitizer's minimality counter, never scheduling.
    pub fn mark_redundant_edges(&mut self) -> usize {
        let reach = Reachability::new(self);
        let flags = reach.redundant_edges(self);
        let mut count = 0;
        for (e, r) in self.edges_mut().iter_mut().zip(&flags) {
            e.redundant = *r;
            count += *r as usize;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::{ArgAccess, ElementKind, Value};

    const X: Value = Value(0);
    const Y: Value = Value(1);
    const Z: Value = Value(2);

    fn kernel(dag: &mut ComputationDag, label: &str, args: Vec<ArgAccess>) -> VertexId {
        dag.add_computation(ElementKind::Kernel, label, args).0
    }

    /// K1 → K2 → K3 chain: closure is transitive, never reflexive.
    #[test]
    fn chain_is_transitively_reachable() {
        let mut dag = ComputationDag::new();
        let k1 = kernel(&mut dag, "K1", vec![ArgAccess::write(X)]);
        let k2 = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::read(X), ArgAccess::write(Y)],
        );
        let k3 = kernel(
            &mut dag,
            "K3",
            vec![ArgAccess::read(Y), ArgAccess::write(Z)],
        );
        let r = Reachability::new(&dag);
        assert!(r.reaches(k1, k2) && r.reaches(k2, k3) && r.reaches(k1, k3));
        assert!(!r.reaches(k3, k1) && !r.reaches(k2, k1));
        assert!(!r.reaches(k1, k1), "strict: a vertex never reaches itself");
        assert!(r.ordered(k1, k1) && r.ordered(k3, k1));
    }

    /// Fig. 4 diamond: the two squares are unordered, everything else is.
    #[test]
    fn diamond_branches_are_unordered() {
        let mut dag = ComputationDag::new();
        let k1x = kernel(&mut dag, "K1(X)", vec![ArgAccess::write(X)]);
        let k1y = kernel(&mut dag, "K1(Y)", vec![ArgAccess::write(Y)]);
        let k2 = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::read(X), ArgAccess::read(Y), ArgAccess::write(Z)],
        );
        let r = Reachability::new(&dag);
        assert!(!r.ordered(k1x, k1y), "independent branches stay unordered");
        assert!(r.ordered(k1x, k2) && r.ordered(k1y, k2));
    }

    /// Removing the only edge that orders a pair breaks the ordering;
    /// removing a transitively-covered edge does not.
    #[test]
    fn without_edge_breaks_exactly_that_ordering() {
        let mut dag = ComputationDag::new();
        let k1 = kernel(&mut dag, "K1", vec![ArgAccess::write(X)]);
        let k2 = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::read(X), ArgAccess::write(Y)],
        );
        let k3 = kernel(
            &mut dag,
            "K3",
            vec![ArgAccess::read(Y), ArgAccess::write(Z)],
        );
        assert_eq!(dag.edges().len(), 2);
        let r0 = Reachability::without_edge(&dag, 0);
        assert!(!r0.ordered(k1, k2) && !r0.ordered(k1, k3));
        assert!(r0.ordered(k2, k3));
        let r1 = Reachability::without_edge(&dag, 1);
        assert!(r1.ordered(k1, k2) && !r1.ordered(k2, k3));
    }

    /// A transitive edge K1→K3 next to K1→K2→K3 is redundant; the chain
    /// edges are not.
    #[test]
    fn transitive_edge_is_redundant() {
        let mut dag = ComputationDag::new();
        // K1 writes X and Y; K2 reads X, writes Z; K3 reads Y and Z.
        // Inference emits K1→K2 (X), K1→K3 (Y) and K2→K3 (Z); the direct
        // K1→K3 edge is covered by the K1→K2→K3 path.
        let _k1 = kernel(
            &mut dag,
            "K1",
            vec![ArgAccess::write(X), ArgAccess::write(Y)],
        );
        let _k2 = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::read(X), ArgAccess::write(Z)],
        );
        let _k3 = kernel(&mut dag, "K3", vec![ArgAccess::read(Y), ArgAccess::read(Z)]);
        assert_eq!(dag.mark_redundant_edges(), 1);
        let redundant: Vec<_> = dag.edges().iter().filter(|e| e.redundant).collect();
        assert_eq!(redundant.len(), 1);
        assert_eq!(redundant[0].value, Y, "the direct K1→K3 edge is covered");
    }

    /// Two parallel edges (same pair, different values) are each
    /// individually redundant.
    #[test]
    fn parallel_edges_are_each_redundant() {
        let mut dag = ComputationDag::new();
        let _k1 = kernel(
            &mut dag,
            "K1",
            vec![ArgAccess::write(X), ArgAccess::write(Y)],
        );
        let _k2 = kernel(&mut dag, "K2", vec![ArgAccess::read(X), ArgAccess::read(Y)]);
        assert_eq!(dag.edges().len(), 2);
        assert_eq!(dag.mark_redundant_edges(), 2);
    }

    /// A pure chain has no redundancy at all.
    #[test]
    fn chain_has_no_redundant_edges() {
        let mut dag = ComputationDag::new();
        for _ in 0..10 {
            kernel(&mut dag, "K", vec![ArgAccess::write(X)]);
        }
        assert_eq!(dag.edges().len(), 9);
        assert_eq!(dag.mark_redundant_edges(), 0);
    }

    /// The closure tolerates compaction: dropped ids are simply unknown.
    #[test]
    fn compacted_ids_are_unreachable() {
        let mut dag = ComputationDag::new();
        let k1 = kernel(&mut dag, "K1", vec![ArgAccess::write(X)]);
        let k2 = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::read(X), ArgAccess::write(Y)],
        );
        dag.retire(k2);
        dag.compact();
        let k3 = kernel(&mut dag, "K3", vec![ArgAccess::write(Z)]);
        let r = Reachability::new(&dag);
        assert!(!r.reaches(k1, k3) && !r.ordered(k1, k2));
        assert!(r.ordered(k3, k3));
    }

    /// Redundancy agrees with the definition: dropping a redundant edge
    /// keeps its pair ordered, dropping a non-redundant one breaks it.
    #[test]
    fn redundancy_matches_without_edge_semantics() {
        let mut dag = ComputationDag::new();
        // A small mixed workload with reads, writes and a join.
        for i in 0..24u64 {
            let v = Value(i % 4);
            let w = Value((i + 1) % 4);
            let args = if i % 3 == 0 {
                vec![ArgAccess::write(v), ArgAccess::read(w)]
            } else {
                vec![ArgAccess::read(v), ArgAccess::write(w)]
            };
            kernel(&mut dag, "K", args);
        }
        let full = Reachability::new(&dag);
        let flags = full.redundant_edges(&dag);
        for (k, e) in dag.edges().iter().enumerate() {
            let without = Reachability::without_edge(&dag, k);
            assert_eq!(
                without.ordered(e.from, e.to),
                flags[k],
                "edge {k} ({:?}→{:?}): redundancy flag disagrees with removal",
                e.from,
                e.to
            );
        }
    }
}
