#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # dag — the computation DAG with automatic dependency inference
//!
//! This crate implements §IV-A of the paper: GPU-touching operations
//! (kernels, CPU accesses to managed arrays, library calls) become
//! *computational elements* — vertices of a DAG built **incrementally at
//! run time**, with data dependencies inferred from the argument lists
//! instead of being declared by the user.
//!
//! ## Dependency sets
//!
//! Every vertex carries a *dependency set*, initially the set of all its
//! arguments. An argument is removed from the set when a subsequent
//! computation **writes** it (the new writer takes over responsibility for
//! ordering on that value); once a vertex's set is empty it can no longer
//! introduce dependencies and leaves the *frontier* of active vertices.
//! Read-only (`const`) arguments get the special rules of the paper's
//! Fig. 3:
//!
//! * a read-only use depends on the value's last **writer** but does *not*
//!   consume the argument from the writer's set — so any number of readers
//!   can hang off the same writer and run concurrently (cases A and C);
//! * a write after reads depends on the **readers** (write-after-read
//!   anti-dependency), not on the original writer, and consumes the value
//!   from everyone's sets (case B).
//!
//! The DAG deliberately never sees the whole program: only the frontier
//! is maintained, which is what allows the host program to use arbitrary
//! control flow (§IV-A: "The DAG is built at run time, not at
//! compile-time or eagerly").
//!
//! ## Generational storage
//!
//! Because only the frontier matters, everything behind it is garbage: a
//! long-running host program must not accumulate one vertex per launch
//! forever. Vertex ids are allocated monotonically and never reused;
//! [`ComputationDag::compact`] reclaims fully-retired vertices together
//! with their edges and per-value ordering state, keeping live ids
//! stable, and [`ComputationDag::maybe_compact`] triggers the same
//! reclamation automatically once retired vertices dominate storage.
//! Lifetime vs resident counts are exposed via [`ComputationDag::len`],
//! [`ComputationDag::stored_len`] and [`ComputationDag::live_len`].

//!
//! ## Arena storage for scheduler bookkeeping
//!
//! The same monotonic-id discipline lets every per-vertex (and per-value)
//! side table drop hashing entirely: [`DenseMap`]/[`DenseSet`] address a
//! sliding `VecDeque` window by `id - base`, giving O(1) hash-free
//! lookups on the launch hot path while retirement trims the window back
//! to the live frontier.

pub mod dense;
pub mod dot;
pub mod graph;
pub mod reach;
pub mod vertex;

pub use dense::{DenseKey, DenseMap, DenseSet};
pub use dot::{to_dot, to_dot_clustered};
pub use graph::{ComputationDag, DepEdge, MemNote, MemNoteKind};
pub use reach::Reachability;
pub use vertex::{ArgAccess, ElementKind, Value, Vertex, VertexId};

#[cfg(test)]
mod prop_tests;
