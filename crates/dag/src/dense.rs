//! Sliding-window arena maps for monotonic integer keys.
//!
//! The scheduler's per-vertex bookkeeping (vertex→task, vertex→stream,
//! vertex→device, pending launch metadata, per-value ordering state) is
//! keyed by ids that are allocated monotonically and retired roughly in
//! allocation order: at any instant the live keys form a narrow window
//! near the top of the id space. [`DenseMap`] exploits that shape — a
//! `VecDeque` of slots addressed by `key - base` — so every operation is
//! O(1) with **zero hashing** on the launch hot path, and removal trims
//! the window from both ends to keep storage proportional to the live
//! span, not the lifetime key count.
//!
//! Keys far apart *do* cost O(span) slots; that is the deliberate trade:
//! the scheduler compacts retired state aggressively (see
//! `ComputationDag::compact` and the soak harness's boundedness asserts),
//! so the window never grows past the in-flight frontier.

use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;

/// A key usable with [`DenseMap`]: a `Copy` newtype (or plain integer)
/// convertible to and from a `u64` index.
pub trait DenseKey: Copy {
    /// The integer index of this key.
    fn index(self) -> u64;
    /// Reconstruct a key from its index (used by iteration/retain).
    fn from_index(i: u64) -> Self;
}

impl DenseKey for u32 {
    fn index(self) -> u64 {
        self as u64
    }
    fn from_index(i: u64) -> Self {
        i as u32
    }
}

impl DenseKey for u64 {
    fn index(self) -> u64 {
        self
    }
    fn from_index(i: u64) -> Self {
        i
    }
}

impl DenseKey for crate::vertex::VertexId {
    fn index(self) -> u64 {
        self.0 as u64
    }
    fn from_index(i: u64) -> Self {
        crate::vertex::VertexId(i as u32)
    }
}

impl DenseKey for crate::vertex::Value {
    fn index(self) -> u64 {
        self.0
    }
    fn from_index(i: u64) -> Self {
        crate::vertex::Value(i)
    }
}

/// An O(1), hash-free map over a sliding window of monotonic keys. See
/// the [module docs](self) for the storage model.
#[derive(Clone)]
pub struct DenseMap<K: DenseKey, T> {
    /// Index of `slots[0]`. Meaningless while `slots` is empty.
    base: u64,
    /// The window: `slots[i]` holds the entry for index `base + i`.
    slots: VecDeque<Option<T>>,
    /// Number of occupied slots.
    len: usize,
    _key: PhantomData<K>,
}

impl<K: DenseKey, T> Default for DenseMap<K, T> {
    fn default() -> Self {
        DenseMap {
            base: 0,
            slots: VecDeque::new(),
            len: 0,
            _key: PhantomData,
        }
    }
}

impl<K: DenseKey, T: fmt::Debug> fmt::Debug for DenseMap<K, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(
                self.slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.as_ref().map(|v| (self.base + i as u64, v))),
            )
            .finish()
    }
}

impl<K: DenseKey, T> DenseMap<K, T> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Width of the current key window (occupied plus vacant slots) —
    /// the map's actual storage footprint, exposed for boundedness tests.
    pub fn window(&self) -> usize {
        self.slots.len()
    }

    fn offset(&self, key: K) -> Option<usize> {
        let i = key.index();
        if self.slots.is_empty() || i < self.base {
            return None;
        }
        let off = (i - self.base) as usize;
        (off < self.slots.len()).then_some(off)
    }

    /// Insert `value` under `key`, returning the previous entry if any.
    pub fn insert(&mut self, key: K, value: T) -> Option<T> {
        let i = key.index();
        if self.slots.is_empty() {
            // Fresh window: anchor it at the key so a cleared map never
            // re-grows slots for long-gone smaller ids.
            self.base = i;
            self.slots.push_back(Some(value));
            self.len = 1;
            return None;
        }
        if i < self.base {
            for _ in i + 1..self.base {
                self.slots.push_front(None);
            }
            self.slots.push_front(Some(value));
            self.base = i;
            self.len += 1;
            return None;
        }
        let off = (i - self.base) as usize;
        if off >= self.slots.len() {
            self.slots.resize_with(off + 1, || None);
        }
        let prev = self.slots[off].replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Look up the entry for `key`.
    pub fn get(&self, key: K) -> Option<&T> {
        self.offset(key).and_then(|o| self.slots[o].as_ref())
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: K) -> Option<&mut T> {
        self.offset(key).and_then(|o| self.slots[o].as_mut())
    }

    /// True if `key` has an entry.
    pub fn contains_key(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// The entry for `key`, inserting a default value first if vacant.
    pub fn entry_or_default(&mut self, key: K) -> &mut T
    where
        T: Default,
    {
        if !self.contains_key(key) {
            self.insert(key, T::default());
        }
        self.get_mut(key).expect("entry just ensured")
    }

    /// Remove and return the entry for `key`, trimming the window.
    pub fn remove(&mut self, key: K) -> Option<T> {
        let off = self.offset(key)?;
        let prev = self.slots[off].take();
        if prev.is_some() {
            self.len -= 1;
            self.trim();
        }
        prev
    }

    /// Drop vacant slots at both window ends so storage tracks the live
    /// span. O(vacancies dropped) — amortized O(1) per removal.
    fn trim(&mut self) {
        if self.len == 0 {
            self.slots.clear();
            return;
        }
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
        while matches!(self.slots.back(), Some(None)) {
            self.slots.pop_back();
        }
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
    }

    /// Keep only the entries for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(K, &mut T) -> bool) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(v) = slot {
                if !keep(K::from_index(self.base + i as u64), v) {
                    *slot = None;
                    self.len -= 1;
                }
            }
        }
        self.trim();
    }

    /// Iterate the entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (K::from_index(self.base + i as u64), v)))
    }

    /// Iterate the keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }
}

/// A hash-free set over a sliding window of monotonic keys — a
/// [`DenseMap`] with unit values.
#[derive(Clone)]
pub struct DenseSet<K: DenseKey> {
    map: DenseMap<K, ()>,
}

impl<K: DenseKey> Default for DenseSet<K> {
    fn default() -> Self {
        DenseSet {
            map: DenseMap::new(),
        }
    }
}

impl<K: DenseKey> fmt::Debug for DenseSet<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.map.keys().map(|k| k.index()))
            .finish()
    }
}

impl<K: DenseKey> DenseSet<K> {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Add `key`; returns true if it was newly inserted.
    pub fn insert(&mut self, key: K) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// True if `key` is a member.
    pub fn contains(&self, key: K) -> bool {
        self.map.contains_key(key)
    }

    /// Remove `key`; returns true if it was a member.
    pub fn remove(&mut self, key: K) -> bool {
        self.map.remove(key).is_some()
    }

    /// Remove every member.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterate the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        self.map.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: DenseMap<u32, &str> = DenseMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, "a"), None);
        assert_eq!(m.insert(7, "b"), None);
        assert_eq!(m.insert(5, "a2"), Some("a"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(5), Some(&"a2"));
        assert_eq!(m.get(6), None);
        assert_eq!(m.get(7), Some(&"b"));
        assert_eq!(m.remove(5), Some("a2"));
        assert_eq!(m.remove(5), None);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(7), Some(&"b"));
    }

    #[test]
    fn window_trims_to_live_span() {
        let mut m: DenseMap<u32, u32> = DenseMap::new();
        for k in 100..200 {
            m.insert(k, k * 10);
        }
        assert_eq!(m.window(), 100);
        // Retiring the prefix slides the window forward.
        for k in 100..190 {
            m.remove(k);
        }
        assert_eq!(m.len(), 10);
        assert_eq!(m.window(), 10);
        // Draining completely resets the window: a far-away new key must
        // not allocate the gap.
        for k in 190..200 {
            m.remove(k);
        }
        assert!(m.is_empty());
        m.insert(1_000_000, 1);
        assert_eq!(m.window(), 1);
        assert_eq!(m.get(1_000_000), Some(&1));
        assert_eq!(m.get(100), None);
    }

    #[test]
    fn out_of_order_and_backward_inserts() {
        let mut m: DenseMap<u64, i32> = DenseMap::new();
        m.insert(50, 1);
        m.insert(40, 2); // grows the window backwards
        m.insert(60, 3);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(40), Some(&2));
        assert_eq!(m.get(45), None);
        assert_eq!(
            m.iter().map(|(k, &v)| (k, v)).collect::<Vec<_>>(),
            vec![(40, 2), (50, 1), (60, 3)]
        );
    }

    #[test]
    fn entry_or_default_inserts_once() {
        let mut m: DenseMap<u32, Vec<u32>> = DenseMap::new();
        m.entry_or_default(3).push(1);
        m.entry_or_default(3).push(2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(3), Some(&vec![1, 2]));
    }

    #[test]
    fn retain_keeps_matching_entries_and_trims() {
        let mut m: DenseMap<u32, u32> = DenseMap::new();
        for k in 0..10 {
            m.insert(k, k);
        }
        m.retain(|k, _| k % 2 == 0 && k >= 4);
        assert_eq!(m.len(), 3);
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![4, 6, 8]);
        assert_eq!(m.window(), 5, "trimmed to 4..=8");
    }

    #[test]
    fn clear_resets_anchor() {
        let mut m: DenseMap<u32, u32> = DenseMap::new();
        m.insert(10, 1);
        m.clear();
        assert!(m.is_empty());
        m.insert(100, 2);
        assert_eq!(m.window(), 1);
    }

    #[test]
    fn dense_set_behaves_like_a_set() {
        let mut s: DenseSet<u32> = DenseSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(9));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![9]);
        s.clear();
        assert!(s.is_empty());
    }
}
