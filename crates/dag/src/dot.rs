//! Graphviz DOT export of a computation DAG, used by the `fig6` binary to
//! render the benchmark structures of the paper's Fig. 6.

use crate::graph::ComputationDag;

/// Render the DAG in Graphviz DOT syntax. Vertices are labeled with
/// their kernel name and current dependency set; edges with the value
/// that caused the dependency (dashed for read-only uses), mirroring how
/// the paper draws its figures.
pub fn to_dot(dag: &ComputationDag, title: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", escape(title)));
    out.push_str("  rankdir=TB;\n  node [shape=ellipse, fontname=\"monospace\"];\n");
    for v in dag.vertices() {
        let set: Vec<String> = v.dep_set.iter().map(|x| format!("v{}", x.0)).collect();
        out.push_str(&format!(
            "  n{} [label=\"{}\\n{{{}}}\"{}];\n",
            v.id.0,
            escape(&v.label),
            set.join(","),
            if v.active { "" } else { ", style=dotted" },
        ));
    }
    for e in dag.edges() {
        out.push_str(&format!(
            "  n{} -> n{} [label=\"v{}\"{}];\n",
            e.from.0,
            e.to.0,
            e.value.0,
            if e.read_only { ", style=dashed" } else { "" },
        ));
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::{ArgAccess, ElementKind, Value};

    #[test]
    fn dot_contains_vertices_and_edges() {
        let mut dag = ComputationDag::new();
        let (_, _) =
            dag.add_computation(ElementKind::Kernel, "K1", vec![ArgAccess::write(Value(0))]);
        let (_, _) = dag.add_computation(
            ElementKind::Kernel,
            "K2",
            vec![ArgAccess::read(Value(0)), ArgAccess::write(Value(1))],
        );
        let dot = to_dot(&dag, "t");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 ->") || dot.contains("n0 -> n1"));
        assert!(dot.contains("K1"));
        assert!(
            dot.contains("style=dashed"),
            "read-only edge must be dashed"
        );
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut dag = ComputationDag::new();
        let (_, _) = dag.add_computation(
            ElementKind::Kernel,
            "K\"x\"",
            vec![ArgAccess::write(Value(0))],
        );
        let dot = to_dot(&dag, "a\"b");
        assert!(dot.contains("K\\\"x\\\""));
        assert!(dot.contains("a\\\"b"));
    }
}
