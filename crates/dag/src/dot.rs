//! Graphviz DOT export of a computation DAG, used by the `fig6` binary to
//! render the benchmark structures of the paper's Fig. 6 and by the
//! multi-GPU scheduler to visualize device placement.

use crate::graph::{ComputationDag, MemNoteKind};

/// Fill colors cycled per device (Graphviz X11 names), chosen to stay
/// readable with black monospace labels.
const DEVICE_COLORS: [&str; 8] = [
    "lightblue",
    "palegreen",
    "lightsalmon",
    "plum",
    "khaki",
    "lightcyan",
    "mistyrose",
    "lightgray",
];

/// Render the DAG in Graphviz DOT syntax. Vertices are labeled with
/// their kernel name and current dependency set; edges with the value
/// that caused the dependency (dashed for read-only uses), mirroring how
/// the paper draws its figures.
///
/// Scheduling metadata is rendered when present: vertices are filled
/// with a per-device color (and labeled `@devN`) once a placement policy
/// assigned them, and edges that crossed devices are drawn bold and
/// labeled with the bytes migrated to satisfy them — red with a `via
/// host` tag when the move staged through the host, blue with a `p2p`
/// tag when it went over a direct peer link — making multi-GPU schedules
/// and interconnect usage visually debuggable.
///
/// Under a finite device-memory configuration the memory manager's
/// actions are rendered too: each eviction a computation forced appears
/// as an orange note node with a dotted edge *from* the vertex
/// (`spilled` when a real device→host copy moved the data, `dropped`
/// for free drops of clean copies), and each ahead-of-launch prefetch
/// as a green note node with a dotted edge *into* the vertex.
pub fn to_dot(dag: &ComputationDag, title: &str) -> String {
    render(dag, title, &[])
}

/// [`to_dot`] with cluster-node boundaries drawn: devices are grouped
/// by `node_of` (indexed by device id, as [`gpu_sim`-style] topologies
/// report it) and every node's placed vertices are boxed in a Graphviz
/// `subgraph cluster_N`. Migration edges that crossed a node boundary
/// (stamped via
/// [`crate::graph::ComputationDag::annotate_migration_route`]) are
/// drawn bold magenta with a `cross-node` tag, visually separating NIC
/// round trips from in-node peer or host-staged moves. Unplaced
/// vertices render outside any box; an empty `node_of` degrades to the
/// plain single-box render.
///
/// [`gpu_sim`-style]: ../gpu_sim/index.html
pub fn to_dot_clustered(dag: &ComputationDag, title: &str, node_of: &[u32]) -> String {
    render(dag, title, node_of)
}

fn render(dag: &ComputationDag, title: &str, node_of: &[u32]) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", escape(title)));
    out.push_str("  rankdir=TB;\n  node [shape=ellipse, fontname=\"monospace\"];\n");
    let vertex_line = |v: &crate::vertex::Vertex| {
        let set: Vec<String> = v.dep_set.iter().map(|x| format!("v{}", x.0)).collect();
        let mut attrs = String::new();
        let mut styles: Vec<&str> = Vec::new();
        let label_dev = match v.device {
            Some(d) => {
                let color = DEVICE_COLORS[d as usize % DEVICE_COLORS.len()];
                attrs.push_str(&format!(", fillcolor={color}"));
                styles.push("filled");
                format!("\\n@dev{d}")
            }
            None => String::new(),
        };
        if !v.active {
            styles.push("dotted");
        }
        if !styles.is_empty() {
            attrs.push_str(&format!(", style=\"{}\"", styles.join(",")));
        }
        format!(
            "  n{} [label=\"{}{}\\n{{{}}}\"{}];\n",
            v.id.0,
            escape(&v.label),
            label_dev,
            set.join(","),
            attrs,
        )
    };
    // Node the vertex belongs to, when the machine is clustered and the
    // vertex was placed on a known device.
    let node_home = |v: &crate::vertex::Vertex| -> Option<u32> {
        v.device.and_then(|d| node_of.get(d as usize).copied())
    };
    if node_of.is_empty() {
        for v in dag.vertices() {
            out.push_str(&vertex_line(v));
        }
    } else {
        let nodes = node_of.iter().copied().max().unwrap_or(0) as usize + 1;
        for nd in 0..nodes {
            let mut body = String::new();
            for v in dag.vertices() {
                if node_home(v) == Some(nd as u32) {
                    body.push_str("  ");
                    body.push_str(&vertex_line(v));
                }
            }
            if !body.is_empty() {
                out.push_str(&format!(
                    "  subgraph cluster_{nd} {{\n    label=\"node {nd}\";\n    style=dashed;\n"
                ));
                out.push_str(&body);
                out.push_str("  }\n");
            }
        }
        for v in dag.vertices() {
            if node_home(v).is_none() {
                out.push_str(&vertex_line(v));
            }
        }
    }
    for e in dag.edges() {
        let mut label = format!("v{}", e.value.0);
        let mut attrs = String::new();
        if e.migrated_bytes > 0 {
            if e.cross_node {
                label.push_str(&format!(
                    "\\n{} migrated (cross-node)",
                    human_bytes(e.migrated_bytes)
                ));
                attrs.push_str(", style=bold, color=magenta");
            } else if e.p2p {
                label.push_str(&format!(
                    "\\n{} migrated (p2p)",
                    human_bytes(e.migrated_bytes)
                ));
                attrs.push_str(", style=bold, color=blue");
            } else {
                label.push_str(&format!(
                    "\\n{} migrated (via host)",
                    human_bytes(e.migrated_bytes)
                ));
                attrs.push_str(", style=bold, color=red");
            }
        } else if e.redundant {
            // Transitively-covered edge (see
            // [`crate::graph::ComputationDag::mark_redundant_edges`]):
            // kept for bookkeeping, rendered de-emphasized.
            label.push_str("\\n(redundant)");
            attrs.push_str(", style=dashed, color=gray");
        } else if e.read_only {
            attrs.push_str(", style=dashed");
        }
        out.push_str(&format!(
            "  n{} -> n{} [label=\"{}\"{}];\n",
            e.from.0, e.to.0, label, attrs,
        ));
    }
    for (i, note) in dag.mem_notes().iter().enumerate() {
        let size = human_bytes(note.bytes);
        match note.kind {
            MemNoteKind::Evicted { spilled } => {
                let how = if spilled { "spilled" } else { "dropped" };
                out.push_str(&format!(
                    "  mem{i} [label=\"evict v{}\\n{size} {how}\", shape=note, \
                     fontname=\"monospace\", color=orange];\n",
                    note.value.0,
                ));
                out.push_str(&format!(
                    "  n{} -> mem{i} [style=dotted, color=orange];\n",
                    note.vertex.0,
                ));
            }
            MemNoteKind::Prefetched => {
                out.push_str(&format!(
                    "  mem{i} [label=\"prefetch v{}\\n{size}\", shape=note, \
                     fontname=\"monospace\", color=green];\n",
                    note.value.0,
                ));
                out.push_str(&format!(
                    "  mem{i} -> n{} [style=dotted, color=green];\n",
                    note.vertex.0,
                ));
            }
        }
    }
    out.push_str("}\n");
    out
}

fn human_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::{ArgAccess, ElementKind, Value};

    #[test]
    fn dot_contains_vertices_and_edges() {
        let mut dag = ComputationDag::new();
        let (_, _) =
            dag.add_computation(ElementKind::Kernel, "K1", vec![ArgAccess::write(Value(0))]);
        let (_, _) = dag.add_computation(
            ElementKind::Kernel,
            "K2",
            vec![ArgAccess::read(Value(0)), ArgAccess::write(Value(1))],
        );
        let dot = to_dot(&dag, "t");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 ->") || dot.contains("n0 -> n1"));
        assert!(dot.contains("K1"));
        assert!(
            dot.contains("style=dashed"),
            "read-only edge must be dashed"
        );
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut dag = ComputationDag::new();
        let (_, _) = dag.add_computation(
            ElementKind::Kernel,
            "K\"x\"",
            vec![ArgAccess::write(Value(0))],
        );
        let dot = to_dot(&dag, "a\"b");
        assert!(dot.contains("K\\\"x\\\""));
        assert!(dot.contains("a\\\"b"));
    }

    #[test]
    fn devices_color_vertices_and_migrations_label_edges() {
        let mut dag = ComputationDag::new();
        let (k1, _) =
            dag.add_computation(ElementKind::Kernel, "K1", vec![ArgAccess::write(Value(0))]);
        let (k2, _) = dag.add_computation(
            ElementKind::Kernel,
            "K2",
            vec![ArgAccess::read(Value(0)), ArgAccess::write(Value(1))],
        );
        dag.set_device(k1, 0);
        dag.set_device(k2, 1);
        dag.annotate_migration(k2, Value(0), 4 << 20, false);
        let dot = to_dot(&dag, "multi");
        assert!(dot.contains("@dev0") && dot.contains("@dev1"));
        assert!(dot.contains("fillcolor=lightblue"));
        assert!(dot.contains("fillcolor=palegreen"));
        assert!(dot.contains("4.0 MiB migrated (via host)"));
        assert!(dot.contains("style=bold, color=red"));
        assert!(!dot.contains("color=blue"), "no p2p edge was annotated");
    }

    #[test]
    fn p2p_and_host_migration_edges_are_styled_differently() {
        // A three-step chain whose first hop crosses an NVLink (P2P) and
        // whose second crosses islands (host-mediated): the render must
        // distinguish them by color and tag, with byte labels on both.
        let mut dag = ComputationDag::new();
        let (k1, _) =
            dag.add_computation(ElementKind::Kernel, "K1", vec![ArgAccess::write(Value(0))]);
        let (k2, _) = dag.add_computation(
            ElementKind::Kernel,
            "K2",
            vec![ArgAccess::read(Value(0)), ArgAccess::write(Value(1))],
        );
        let (k3, _) = dag.add_computation(
            ElementKind::Kernel,
            "K3",
            vec![ArgAccess::read(Value(1)), ArgAccess::write(Value(2))],
        );
        dag.set_device(k1, 0);
        dag.set_device(k2, 1);
        dag.set_device(k3, 2);
        dag.annotate_migration(k2, Value(0), 4 << 20, true);
        dag.annotate_migration(k3, Value(1), 3 << 10, false);
        let p2p_edges: Vec<_> = dag.edges().iter().filter(|e| e.p2p).collect();
        assert_eq!(p2p_edges.len(), 1);
        assert_eq!((p2p_edges[0].from, p2p_edges[0].to), (k1, k2));
        let dot = to_dot(&dag, "links");
        assert!(dot.contains("4.0 MiB migrated (p2p)"));
        assert!(dot.contains("style=bold, color=blue"));
        assert!(dot.contains("3.0 KiB migrated (via host)"));
        assert!(dot.contains("style=bold, color=red"));
        // Styling is per edge, not global: exactly one of each.
        assert_eq!(dot.matches("color=blue").count(), 1);
        assert_eq!(dot.matches("color=red").count(), 1);
    }

    #[test]
    fn one_migration_stamps_exactly_one_edge() {
        // A writer after two readers has two WAR edges for the same
        // value; the single physical migration must label only the edge
        // crossing devices, not both.
        let mut dag = ComputationDag::new();
        let (w, _) =
            dag.add_computation(ElementKind::Kernel, "W", vec![ArgAccess::write(Value(0))]);
        let (r1, _) =
            dag.add_computation(ElementKind::Kernel, "R1", vec![ArgAccess::read(Value(0))]);
        let (r2, _) =
            dag.add_computation(ElementKind::Kernel, "R2", vec![ArgAccess::read(Value(0))]);
        let (w2, _) =
            dag.add_computation(ElementKind::Kernel, "W2", vec![ArgAccess::write(Value(0))]);
        dag.set_device(w, 0);
        dag.set_device(r1, 1);
        dag.set_device(r2, 0);
        dag.set_device(w2, 0);
        dag.annotate_migration(w2, Value(0), 1024, false);
        let stamped: Vec<_> = dag
            .edges()
            .iter()
            .filter(|e| e.migrated_bytes > 0)
            .collect();
        assert_eq!(stamped.len(), 1, "one migration, one labeled edge");
        assert_eq!(stamped[0].from, r1, "the cross-device parent carries it");
        assert_eq!(stamped[0].to, w2);
        let dot = to_dot(&dag, "t");
        assert_eq!(dot.matches("migrated").count(), 1);
    }

    #[test]
    fn eviction_and_prefetch_notes_render_as_aux_nodes() {
        let mut dag = ComputationDag::new();
        let (k1, _) =
            dag.add_computation(ElementKind::Kernel, "K1", vec![ArgAccess::write(Value(0))]);
        let (k2, _) =
            dag.add_computation(ElementKind::Kernel, "K2", vec![ArgAccess::write(Value(1))]);
        dag.annotate_prefetch(k1, Value(0), 2 << 20);
        dag.annotate_evict(k2, Value(0), 2 << 20, true);
        dag.annotate_evict(k2, Value(2), 512, false);
        assert_eq!(dag.mem_notes().len(), 3);
        let dot = to_dot(&dag, "mem");
        assert!(dot.contains("prefetch v0\\n2.0 MiB"));
        assert!(dot.contains("evict v0\\n2.0 MiB spilled"));
        assert!(dot.contains("evict v2\\n512 B dropped"));
        assert!(dot.contains("color=green") && dot.contains("color=orange"));
        // Direction: prefetch feeds the vertex, eviction hangs off it.
        assert!(dot.contains("mem0 -> n0"));
        assert!(dot.contains("n1 -> mem1"));
        // Compaction prunes notes with their vertices.
        let mut dag2 = dag.clone();
        dag2.retire(k2);
        dag2.retire(k1);
        dag2.compact();
        assert!(dag2.mem_notes().is_empty());
        assert!(!to_dot(&dag2, "mem").contains("evict"));
    }

    #[test]
    fn notes_for_unknown_vertices_are_ignored() {
        let mut dag = ComputationDag::new();
        dag.annotate_evict(crate::vertex::VertexId(7), Value(0), 64, false);
        dag.annotate_prefetch(crate::vertex::VertexId(7), Value(0), 64);
        assert!(dag.mem_notes().is_empty());
    }

    #[test]
    fn redundant_edges_render_dashed_gray() {
        // K1 writes X,Y; K2 reads X writes Z; K3 reads Y,Z — the direct
        // K1→K3 edge is covered by the K1→K2→K3 path and must render
        // de-emphasized once stamped.
        let mut dag = ComputationDag::new();
        let (_, _) = dag.add_computation(
            ElementKind::Kernel,
            "K1",
            vec![ArgAccess::write(Value(0)), ArgAccess::write(Value(1))],
        );
        let (_, _) = dag.add_computation(
            ElementKind::Kernel,
            "K2",
            vec![ArgAccess::read(Value(0)), ArgAccess::write(Value(2))],
        );
        let (_, _) = dag.add_computation(
            ElementKind::Kernel,
            "K3",
            vec![ArgAccess::read(Value(1)), ArgAccess::read(Value(2))],
        );
        assert!(!to_dot(&dag, "t").contains("redundant"), "not stamped yet");
        assert_eq!(dag.mark_redundant_edges(), 1);
        let dot = to_dot(&dag, "t");
        assert_eq!(dot.matches("(redundant)").count(), 1);
        assert_eq!(dot.matches("style=dashed, color=gray").count(), 1);
    }

    #[test]
    fn clustered_render_boxes_nodes_and_colors_cross_node_edges() {
        // 2 nodes × 2 GPUs: K1@dev0 (node 0) feeds K2@dev2 (node 1) —
        // a cross-node migration — and K2 feeds K3@dev3 in-node.
        let mut dag = ComputationDag::new();
        let (k1, _) =
            dag.add_computation(ElementKind::Kernel, "K1", vec![ArgAccess::write(Value(0))]);
        let (k2, _) = dag.add_computation(
            ElementKind::Kernel,
            "K2",
            vec![ArgAccess::read(Value(0)), ArgAccess::write(Value(1))],
        );
        let (k3, _) = dag.add_computation(
            ElementKind::Kernel,
            "K3",
            vec![ArgAccess::read(Value(1)), ArgAccess::write(Value(2))],
        );
        dag.set_device(k1, 0);
        dag.set_device(k2, 2);
        dag.set_device(k3, 3);
        dag.annotate_migration_route(k2, Value(0), 4 << 20, false, true);
        dag.annotate_migration_route(k3, Value(1), 1 << 20, true, false);
        let node_of = [0, 0, 1, 1];
        let dot = to_dot_clustered(&dag, "cluster", &node_of);
        // One box per node, each holding its vertices.
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("subgraph cluster_1"));
        assert!(dot.contains("label=\"node 0\""));
        assert!(dot.contains("label=\"node 1\""));
        let c1 = dot.find("subgraph cluster_1").unwrap();
        assert!(dot[c1..].contains("@dev2") && dot[c1..].contains("@dev3"));
        assert!(!dot[..c1].contains("@dev2"));
        // Cross-node edge styled distinctly from the in-node p2p one.
        assert!(dot.contains("4.0 MiB migrated (cross-node)"));
        assert_eq!(dot.matches("color=magenta").count(), 1);
        assert!(dot.contains("1.0 MiB migrated (p2p)"));
        assert_eq!(dot.matches("color=blue").count(), 1);
        // The plain render stays box-free (single-box path untouched).
        assert!(!to_dot(&dag, "plain").contains("subgraph"));
        // An empty map degrades to the plain render.
        assert_eq!(to_dot_clustered(&dag, "plain", &[]), to_dot(&dag, "plain"));
    }

    #[test]
    fn unplaced_vertices_render_outside_cluster_boxes() {
        let mut dag = ComputationDag::new();
        let (k1, _) =
            dag.add_computation(ElementKind::Kernel, "K1", vec![ArgAccess::write(Value(0))]);
        let (_, _) =
            dag.add_computation(ElementKind::Kernel, "K2", vec![ArgAccess::read(Value(0))]);
        dag.set_device(k1, 1);
        let dot = to_dot_clustered(&dag, "partial", &[0, 0, 1, 1]);
        assert!(dot.contains("subgraph cluster_0"), "placed vertex boxed");
        assert!(!dot.contains("subgraph cluster_1"), "empty nodes omitted");
        let close = dot.rfind('}').unwrap();
        let after_boxes = &dot[dot.rfind("  }\n").unwrap()..close];
        assert!(after_boxes.contains("K2"), "unplaced vertex at top level");
    }

    #[test]
    fn unplaced_vertices_render_without_device_decoration() {
        let mut dag = ComputationDag::new();
        let (_, _) =
            dag.add_computation(ElementKind::Kernel, "K", vec![ArgAccess::write(Value(0))]);
        let dot = to_dot(&dag, "plain");
        assert!(!dot.contains("@dev"));
        assert!(!dot.contains("fillcolor"));
    }
}
