//! Property-based tests of the dependency-inference algebra.
//!
//! The central claim of the paper's scheduler is: *any execution order
//! consistent with the inferred dependencies is observationally equivalent
//! to sequential execution*. We check it on randomly generated programs
//! with an abstract machine whose writes mix the identities of everything
//! the computation read — so any missed RAW, WAR, or WAW edge changes the
//! final state with overwhelming probability.

use proptest::prelude::*;
use std::collections::HashMap;

use crate::graph::ComputationDag;
use crate::vertex::{ArgAccess, ElementKind, Value, VertexId};

/// One randomly generated computation: which values it touches and how.
#[derive(Debug, Clone)]
struct Op {
    args: Vec<ArgAccess>,
}

fn op_strategy(num_values: u64) -> impl Strategy<Value = Op> {
    proptest::collection::vec((0..num_values, proptest::bool::ANY), 1..4).prop_map(|pairs| {
        let mut args: Vec<ArgAccess> = Vec::new();
        for (v, ro) in pairs {
            let value = Value(v);
            // Keep one access per value: a write subsumes a read.
            if let Some(a) = args.iter_mut().find(|a| a.value == value) {
                a.read_only &= ro;
            } else {
                args.push(ArgAccess {
                    value,
                    read_only: ro,
                });
            }
        }
        Op { args }
    })
}

/// Deterministic mixing function for the abstract machine.
fn mix(a: u64, b: u64) -> u64 {
    // splitmix64-style avalanche over the pair.
    let mut x = a.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(b);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Execute `ops[i]` against the abstract state: every written value
/// receives a digest of the op id and of all argument values read.
fn exec(i: usize, op: &Op, state: &mut HashMap<Value, u64>) {
    let mut digest = i as u64 + 1;
    for a in &op.args {
        digest = mix(digest, *state.get(&a.value).unwrap_or(&0));
    }
    for a in &op.args {
        if !a.read_only {
            state.insert(a.value, digest);
        }
    }
}

/// Build the DAG for `ops` and return each op's dependency list.
fn infer_deps(ops: &[Op]) -> Vec<Vec<VertexId>> {
    let mut dag = ComputationDag::new();
    ops.iter()
        .map(|op| {
            dag.add_computation(ElementKind::Kernel, "op", op.args.clone())
                .1
        })
        .collect()
}

/// Run ops in an arbitrary topological order of the inferred DAG,
/// greedily preferring the *highest* ready id — maximally different from
/// submission order, so ordering bugs surface.
fn exec_reverse_greedy(ops: &[Op], deps: &[Vec<VertexId>]) -> HashMap<Value, u64> {
    let n = ops.len();
    let mut remaining: Vec<usize> = deps.iter().map(|d| d.len()).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ds) in deps.iter().enumerate() {
        for d in ds {
            children[d.0 as usize].push(i);
        }
    }
    let mut done = vec![false; n];
    let mut state = HashMap::new();
    for _ in 0..n {
        let next = (0..n)
            .rev()
            .find(|&i| !done[i] && remaining[i] == 0)
            .expect("inferred DAG must always have a ready vertex (acyclic)");
        exec(next, &ops[next], &mut state);
        done[next] = true;
        for &c in &children[next] {
            remaining[c] -= 1;
        }
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any dependency-respecting order is equivalent to program order.
    #[test]
    fn scheduler_preserves_sequential_semantics(
        ops in proptest::collection::vec(op_strategy(5), 1..24)
    ) {
        let deps = infer_deps(&ops);
        let mut seq_state = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            exec(i, op, &mut seq_state);
        }
        let dag_state = exec_reverse_greedy(&ops, &deps);
        prop_assert_eq!(seq_state, dag_state);
    }

    /// Dependencies always point to earlier computations: the DAG is
    /// acyclic by construction.
    #[test]
    fn dependencies_point_backwards(
        ops in proptest::collection::vec(op_strategy(4), 1..32)
    ) {
        let deps = infer_deps(&ops);
        for (i, ds) in deps.iter().enumerate() {
            for d in ds {
                prop_assert!((d.0 as usize) < i);
            }
            // And are duplicate-free.
            let mut sorted = ds.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), ds.len());
        }
    }

    /// Dependency sets only ever shrink, and read-only children never
    /// shrink their parent's set.
    #[test]
    fn dep_sets_shrink_monotonically(
        ops in proptest::collection::vec(op_strategy(4), 2..24)
    ) {
        let mut dag = ComputationDag::new();
        let mut ids = Vec::new();
        let mut prev_sizes: Vec<usize> = Vec::new();
        for op in &ops {
            let all_read_only = op.args.iter().all(|a| a.read_only);
            let before: Vec<usize> =
                ids.iter().map(|&id| dag.dep_set(id).len()).collect();
            let (id, _) = dag.add_computation(ElementKind::Kernel, "op", op.args.clone());
            let after: Vec<usize> =
                ids.iter().map(|&id| dag.dep_set(id).len()).collect();
            for (b, a) in before.iter().zip(&after) {
                prop_assert!(a <= b, "dependency set grew");
                if all_read_only {
                    prop_assert_eq!(a, b, "read-only op consumed a parent set entry");
                }
            }
            ids.push(id);
            prev_sizes = after;
        }
        let _ = prev_sizes;
    }

    /// The frontier only contains active, non-exhausted vertices, and a
    /// full retire empties it.
    #[test]
    fn frontier_invariants(
        ops in proptest::collection::vec(op_strategy(4), 1..24)
    ) {
        let mut dag = ComputationDag::new();
        for op in &ops {
            let _ = dag.add_computation(ElementKind::Kernel, "op", op.args.clone());
            for id in dag.frontier() {
                let v = dag.vertex(id);
                prop_assert!(v.active && !v.exhausted());
            }
        }
        dag.retire_all();
        prop_assert!(dag.frontier().is_empty());
        // After a full retire nothing produces dependencies.
        let (_, deps) = dag.add_computation(
            ElementKind::Kernel,
            "probe",
            vec![ArgAccess::write(Value(0)), ArgAccess::write(Value(1))],
        );
        prop_assert!(deps.is_empty());
    }

    /// Two consecutive read-only users of the same value are never made
    /// dependent on each other (the concurrency the paper's Fig. 3 is
    /// designed to expose).
    #[test]
    fn readers_are_mutually_independent(n_readers in 2usize..8) {
        let mut dag = ComputationDag::new();
        let (w, _) = dag.add_computation(
            ElementKind::Kernel, "W", vec![ArgAccess::write(Value(0))]);
        let mut reader_ids = Vec::new();
        for i in 0..n_readers {
            let out = Value(100 + i as u64);
            let (id, deps) = dag.add_computation(
                ElementKind::Kernel,
                "R",
                vec![ArgAccess::read(Value(0)), ArgAccess::write(out)],
            );
            prop_assert_eq!(deps, vec![w], "every reader depends on the writer only");
            reader_ids.push(id);
        }
    }
}

// ---------------------------------------------------------------------
// DenseMap/DenseSet window edges under a drain-style workload.
//
// The serving layer retires requests out of arrival order (fairness
// policies reorder admissions), so the arena maps see exactly the
// patterns that stress the sliding window: removal at the window base
// followed by compaction, queries below the new base, and re-insertion
// into freed interior slots. Model-checked against std HashMap/HashSet.
// ---------------------------------------------------------------------

use crate::dense::{DenseMap, DenseSet};
use std::collections::{BTreeMap, HashSet};

/// One step of the window workload.
#[derive(Debug, Clone, Copy)]
enum WinOp {
    /// Insert key `k` (possibly re-inserting a freed slot or extending
    /// the window at either end).
    Insert(u32),
    /// Remove key `k` (hit or miss; removing the minimum compacts).
    Remove(u32),
    /// Remove the smallest live key, then probe it again — it now sits
    /// at (or below) the compacted `base`.
    RemoveHead,
    /// Probe a key strictly below the window base.
    GetBelowBase,
    /// Re-insert the most recently removed key into its freed slot.
    ReinsertFreed,
    /// Reset the window anchor entirely.
    Clear,
}

fn win_op_strategy() -> impl Strategy<Value = WinOp> {
    let key = 0..48u32;
    prop_oneof![
        key.clone().prop_map(WinOp::Insert),
        key.clone().prop_map(WinOp::Insert), // bias toward growth
        key.prop_map(WinOp::Remove),
        Just(WinOp::RemoveHead),
        Just(WinOp::GetBelowBase),
        Just(WinOp::ReinsertFreed),
        Just(WinOp::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DenseMap and DenseSet agree with HashMap/HashSet semantics on
    /// random window workloads, iterate in ascending key order, and
    /// keep their window exactly as wide as the live key span.
    #[test]
    fn dense_window_matches_model_on_drain_patterns(
        ops in proptest::collection::vec(win_op_strategy(), 1..60),
    ) {
        let mut map: DenseMap<u32, u64> = DenseMap::new();
        let mut set: DenseSet<u32> = DenseSet::new();
        let mut model: BTreeMap<u32, u64> = BTreeMap::new();
        let mut model_set: HashSet<u32> = HashSet::new();
        let mut last_removed: Option<u32> = None;
        let mut stamp: u64 = 0;

        for op in &ops {
            stamp += 1;
            match *op {
                WinOp::Insert(k) => {
                    prop_assert_eq!(map.insert(k, stamp), model.insert(k, stamp));
                    prop_assert_eq!(set.insert(k), model_set.insert(k));
                }
                WinOp::Remove(k) => {
                    prop_assert_eq!(map.remove(k), model.remove(&k));
                    prop_assert_eq!(set.remove(k), model_set.remove(&k));
                    last_removed = Some(k);
                }
                WinOp::RemoveHead => {
                    if let Some((&k, _)) = model.iter().next() {
                        // The head key is exactly `base` after the
                        // previous compaction.
                        prop_assert!(map.contains_key(k));
                        prop_assert_eq!(map.remove(k), model.remove(&k));
                        set.remove(k);
                        model_set.remove(&k);
                        // Compaction moved base past k: the slot is gone,
                        // not merely vacant.
                        prop_assert_eq!(map.get(k), None);
                        prop_assert!(!set.contains(k));
                        last_removed = Some(k);
                    }
                }
                WinOp::GetBelowBase => {
                    if let Some((&min, _)) = model.iter().next() {
                        if min > 0 {
                            prop_assert_eq!(map.get(min - 1), None);
                            prop_assert_eq!(map.remove(min - 1), None);
                            prop_assert!(!set.contains(min - 1));
                        }
                    } else {
                        prop_assert_eq!(map.get(0), None);
                    }
                }
                WinOp::ReinsertFreed => {
                    if let Some(k) = last_removed.take() {
                        prop_assert_eq!(map.insert(k, stamp), model.insert(k, stamp));
                        prop_assert_eq!(set.insert(k), model_set.insert(k));
                        prop_assert_eq!(map.get(k), Some(&stamp));
                    }
                }
                WinOp::Clear => {
                    map.clear();
                    set.clear();
                    model.clear();
                    model_set.clear();
                    // A cleared window re-anchors: a low key after high
                    // keys must not allocate a giant window.
                    prop_assert_eq!(map.window(), 0);
                }
            }
            // Global invariants after every step.
            prop_assert_eq!(map.len(), model.len());
            prop_assert_eq!(set.len(), model_set.len());
            let got: Vec<(u32, u64)> = map.iter().map(|(k, v)| (k, *v)).collect();
            let want: Vec<(u32, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, want, "map iteration diverged after {:?}", op);
            let got_set: Vec<u32> = set.iter().collect();
            let mut want_set: Vec<u32> = model_set.iter().copied().collect();
            want_set.sort_unstable();
            prop_assert_eq!(got_set, want_set, "set iteration diverged after {:?}", op);
            // The trimmed window is exactly the live key span.
            match (model.iter().next(), model.iter().next_back()) {
                (Some((&lo, _)), Some((&hi, _))) => {
                    prop_assert_eq!(map.window(), (hi - lo + 1) as usize);
                }
                _ => prop_assert_eq!(map.window(), 0),
            }
        }
    }
}
