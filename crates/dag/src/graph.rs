//! The incrementally-built computation DAG.

use crate::dense::DenseMap;
use crate::vertex::{ArgAccess, ElementKind, Value, Vertex, VertexId};

/// A dependency edge, labeled (as in the paper's figures) with the value
/// that caused it and whether the child's access is read-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// The dependency source (must execute first).
    pub from: VertexId,
    /// The dependent computation.
    pub to: VertexId,
    /// The argument value that created the dependency.
    pub value: Value,
    /// True if `to` only reads `value`.
    pub read_only: bool,
    /// Bytes migrated across devices to satisfy this edge (0 when both
    /// endpoints ran on the same device or the data was host-staged).
    /// Set by the scheduler via [`ComputationDag::annotate_migration`].
    pub migrated_bytes: usize,
    /// True when the migration went over a direct peer-to-peer link;
    /// false for host-mediated migrations (meaningful only when
    /// `migrated_bytes > 0`).
    pub p2p: bool,
    /// True when the migration crossed a cluster-node boundary (a
    /// GPU→host→NIC→host→GPU route; meaningful only when
    /// `migrated_bytes > 0`). Set via
    /// [`ComputationDag::annotate_migration_route`]; rendered with its
    /// own color by [`crate::to_dot_clustered`].
    pub cross_node: bool,
    /// True when the edge is individually redundant: a parallel edge or
    /// transitive path orders the same pair, so dropping just this edge
    /// changes nothing. Stamped by
    /// [`ComputationDag::mark_redundant_edges`] (false until then);
    /// informational only — rendered dashed gray by [`crate::to_dot`]
    /// and counted by the schedule sanitizer's minimality check.
    pub redundant: bool,
}

/// A memory-manager action attributed to a computation — the eviction
/// and prefetch traffic a capacity-limited scheduler generated while
/// placing it, recorded via [`ComputationDag::annotate_evict`] /
/// [`ComputationDag::annotate_prefetch`] and rendered by
/// [`crate::to_dot`] as auxiliary nodes hanging off the vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemNote {
    /// The computation whose scheduling caused the action.
    pub vertex: VertexId,
    /// The array involved.
    pub value: Value,
    /// Its size in bytes.
    pub bytes: usize,
    /// What happened.
    pub kind: MemNoteKind,
}

/// The kind of a [`MemNote`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemNoteKind {
    /// A resident array was evicted to make room for this computation's
    /// arguments; `spilled` is true when a real device→host copy moved
    /// the data (false for free drops of still-valid host copies).
    Evicted {
        /// Whether the eviction paid a spill copy.
        spilled: bool,
    },
    /// An argument was bulk-prefetched ahead of this launch.
    Prefetched,
}

/// Per-value ordering index: the last active writer and the active
/// readers since that write. This is the O(1) realization of the
/// dependency-set scan described in the paper.
#[derive(Debug, Default, Clone)]
struct ValueState {
    last_writer: Option<VertexId>,
    readers_since_write: Vec<VertexId>,
}

/// The computation DAG of §IV-A. Vertices are added one at a time as the
/// host program issues computations; dependencies on *active* prior
/// computations are inferred from argument overlap and returned to the
/// caller (the scheduler), which turns them into stream/event decisions.
///
/// ## Generational storage and compaction
///
/// A long-running host program issues computations forever, but only the
/// frontier of *active* vertices can ever be a dependency source. The
/// DAG therefore stores vertices generationally: ids are allocated
/// monotonically and never reused, while [`ComputationDag::compact`]
/// drops fully-retired vertices (and their edges and per-value ordering
/// state) so the resident footprint stays O(live computations) instead of
/// O(lifetime launches). Ids of live vertices are stable across
/// compaction; looking up a compacted id panics, exactly like looking up
/// an id that was never allocated.
#[derive(Debug, Default, Clone)]
pub struct ComputationDag {
    /// Stored vertices in ascending-id order: the live set plus retired
    /// vertices not yet reclaimed by [`ComputationDag::compact`].
    vertices: Vec<Vertex>,
    /// Total vertices ever registered; also the next id to allocate.
    next_id: u32,
    /// Count of stored vertices that are retired — compaction fuel.
    retired_stored: usize,
    edges: Vec<DepEdge>,
    /// Per-value ordering state, arena-addressed by the monotonic value
    /// id — dependency inference does zero hashing.
    values: DenseMap<Value, ValueState>,
    /// Eviction/prefetch annotations, pruned with their vertices on
    /// compaction so they stay O(live computations) too.
    mem_notes: Vec<MemNote>,
}

impl ComputationDag {
    /// An empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices ever added over the DAG's lifetime (compacted
    /// vertices included).
    pub fn len(&self) -> usize {
        self.next_id as usize
    }

    /// True if no computation was ever registered.
    pub fn is_empty(&self) -> bool {
        self.next_id == 0
    }

    /// Number of vertices currently stored (live frontier plus retired
    /// vertices awaiting compaction).
    pub fn stored_len(&self) -> usize {
        self.vertices.len()
    }

    /// Number of stored vertices still active (not yet retired).
    pub fn live_len(&self) -> usize {
        self.vertices.len() - self.retired_stored
    }

    /// Number of per-value ordering states currently tracked.
    pub fn value_states_len(&self) -> usize {
        self.values.len()
    }

    /// Storage slot of a stored vertex (ids are stored in ascending
    /// order, so a binary search suffices).
    fn slot(&self, id: VertexId) -> Option<usize> {
        self.vertices.binary_search_by_key(&id, |v| v.id).ok()
    }

    /// Look up a stored vertex, or `None` if the id was compacted away
    /// (or never allocated).
    pub fn try_vertex(&self, id: VertexId) -> Option<&Vertex> {
        self.slot(id).map(|i| &self.vertices[i])
    }

    /// Look up a vertex.
    ///
    /// # Panics
    /// Panics if the vertex was reclaimed by [`ComputationDag::compact`].
    pub fn vertex(&self, id: VertexId) -> &Vertex {
        self.try_vertex(id)
            .unwrap_or_else(|| panic!("vertex {id:?} is not stored (compacted or never added)"))
    }

    /// All stored vertices in submission order.
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// All stored dependency edges in creation order (edges whose
    /// endpoints were compacted are dropped with them).
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Mutable view of the stored edges, for the redundancy stamper.
    pub(crate) fn edges_mut(&mut self) -> &mut [DepEdge] {
        &mut self.edges
    }

    /// The current frontier: active vertices whose dependency set is not
    /// yet exhausted — the only vertices that can still be dependency
    /// sources (§IV-A: "the scheduler updates the current graph
    /// frontier").
    pub fn frontier(&self) -> Vec<VertexId> {
        self.vertices
            .iter()
            .filter(|v| v.active && !v.exhausted())
            .map(|v| v.id)
            .collect()
    }

    /// The dependency set of a vertex (exposed for tests that mirror the
    /// paper's Fig. 3/4 walk-throughs).
    pub fn dep_set(&self, id: VertexId) -> Vec<Value> {
        self.vertex(id).dep_set.iter().copied().collect()
    }

    /// Register a new computational element and infer its dependencies.
    ///
    /// Returns the new vertex id and the (deduplicated) list of *active*
    /// vertices it depends on. The rules follow the paper's Fig. 3:
    ///
    /// * read-only argument → depend on the value's last active writer;
    ///   the writer's dependency set is **not** consumed;
    /// * written argument → depend on the active readers since the last
    ///   write if any (WAR), otherwise on the last writer (RAW/WAW);
    ///   either way the value is consumed from all previous holders'
    ///   dependency sets and this vertex becomes the value's writer.
    pub fn add_computation(
        &mut self,
        kind: ElementKind,
        label: impl Into<String>,
        args: Vec<ArgAccess>,
    ) -> (VertexId, Vec<VertexId>) {
        let id = VertexId(self.next_id);
        // Fail loudly rather than wrap: a wrapped id would land out of
        // order in the ascending-sorted storage and silently break the
        // binary-search lookups (and with them, dependency inference).
        self.next_id = self
            .next_id
            .checked_add(1)
            .expect("vertex id space exhausted (2^32 computations)");
        let vertex = Vertex::new(id, kind, label.into(), args.clone());
        self.vertices.push(vertex);

        let mut deps: Vec<VertexId> = Vec::new();
        for arg in &args {
            let state = self.values.entry_or_default(arg.value);
            if arg.read_only {
                if let Some(w) = state.last_writer {
                    if w != id && self.is_dep_source(w, arg.value) {
                        push_unique(&mut deps, w);
                        self.record_edge(w, id, arg.value, true);
                    }
                }
                let state = self.values.entry_or_default(arg.value);
                state.readers_since_write.push(id);
            } else {
                // Writer: WAR on readers if any, else RAW/WAW on writer.
                let readers = std::mem::take(
                    &mut self.values.entry_or_default(arg.value).readers_since_write,
                );
                let prev_writer = self.values.entry_or_default(arg.value).last_writer;
                let mut found_dep = false;
                for r in readers {
                    if r == id {
                        continue;
                    }
                    if self.is_dep_source(r, arg.value) {
                        push_unique(&mut deps, r);
                        self.record_edge(r, id, arg.value, false);
                        found_dep = true;
                    }
                    self.consume(r, arg.value);
                }
                if let Some(w) = prev_writer {
                    if w != id {
                        if !found_dep && self.is_dep_source(w, arg.value) {
                            push_unique(&mut deps, w);
                            self.record_edge(w, id, arg.value, false);
                        }
                        self.consume(w, arg.value);
                    }
                }
                self.values.entry_or_default(arg.value).last_writer = Some(id);
            }
        }

        for d in &deps {
            if let Some(i) = self.slot(*d) {
                self.vertices[i].children.push(id);
            }
        }
        self.vertices
            .last_mut()
            .expect("vertex pushed above")
            .parents = deps.clone();
        (id, deps)
    }

    /// Register a CPU access to a value (paper §IV-A: array accesses are
    /// computational elements too, but accesses that cannot introduce
    /// dependencies are executed immediately without being modeled).
    ///
    /// Returns `(Some(vertex), deps)` if the access conflicts with active
    /// GPU work and had to be modeled, or `(None, vec![])` if it is free.
    pub fn add_array_access(
        &mut self,
        label: impl Into<String>,
        value: Value,
        write: bool,
    ) -> (Option<VertexId>, Vec<VertexId>) {
        if !self.access_conflicts(value, write) {
            return (None, Vec::new());
        }
        let arg = if write {
            ArgAccess::write(value)
        } else {
            ArgAccess::read(value)
        };
        let (id, deps) = self.add_computation(ElementKind::ArrayAccess, label, vec![arg]);
        (Some(id), deps)
    }

    /// Whether a CPU access to `value` would depend on active GPU work.
    pub fn access_conflicts(&self, value: Value, write: bool) -> bool {
        let Some(state) = self.values.get(value) else {
            return false;
        };
        if let Some(w) = state.last_writer {
            if self.is_dep_source(w, value) {
                return true;
            }
        }
        if write
            && state
                .readers_since_write
                .iter()
                .any(|&r| self.is_dep_source(r, value))
        {
            return true;
        }
        false
    }

    /// Mark a vertex inactive: the CPU has synchronized with it (or the
    /// scheduler has retired it), so it can no longer be a dependency
    /// source. Ancestors are retired transitively — if the CPU saw this
    /// result, everything upstream is also complete.
    ///
    /// Returns the ids of all *newly* retired vertices, so the scheduler
    /// can reclaim its per-vertex bookkeeping (stream claims, task and
    /// stream maps) along with them.
    pub fn retire(&mut self, id: VertexId) -> Vec<VertexId> {
        let mut retired = Vec::new();
        let mut stack = vec![id];
        while let Some(v) = stack.pop() {
            let Some(i) = self.slot(v) else {
                continue; // already compacted away — long retired
            };
            if !self.vertices[i].active {
                continue;
            }
            self.vertices[i].active = false;
            self.retired_stored += 1;
            retired.push(v);
            stack.extend(self.vertices[i].parents.iter().copied());
        }
        retired
    }

    /// Retire every vertex (full-device synchronization).
    pub fn retire_all(&mut self) {
        for v in &mut self.vertices {
            v.active = false;
        }
        self.retired_stored = self.vertices.len();
    }

    /// Reclaim the storage of retired vertices. Live vertices keep their
    /// ids; edges touching a dropped vertex and per-value ordering states
    /// that can no longer source a dependency are dropped with them.
    /// Returns the number of vertices reclaimed.
    pub fn compact(&mut self) -> usize {
        if self.retired_stored == 0 {
            return 0;
        }
        let dropped = self.retired_stored;
        self.vertices.retain(|v| v.active);
        self.retired_stored = 0;

        let vertices = &self.vertices;
        let stored = |id: VertexId| vertices.binary_search_by_key(&id, |v| v.id).is_ok();
        self.edges.retain(|e| stored(e.from) && stored(e.to));
        self.mem_notes.retain(|n| stored(n.vertex));

        // A value state is only worth keeping while some referenced
        // vertex can still introduce a dependency through the value.
        let is_source = |id: VertexId, value: Value| {
            vertices
                .binary_search_by_key(&id, |v| v.id)
                .is_ok_and(|i| vertices[i].active && vertices[i].dep_set.contains(&value))
        };
        self.values.retain(|value, st| {
            st.readers_since_write.retain(|&r| is_source(r, value));
            if st.last_writer.is_some_and(|w| !is_source(w, value)) {
                st.last_writer = None;
            }
            st.last_writer.is_some() || !st.readers_since_write.is_empty()
        });
        dropped
    }

    /// Compact when retired vertices dominate the stored set (amortized
    /// O(1) per retirement). Returns the number of vertices reclaimed.
    pub fn maybe_compact(&mut self) -> usize {
        if self.retired_stored > 32 && self.retired_stored * 2 >= self.vertices.len() {
            self.compact()
        } else {
            0
        }
    }

    /// Whether `v` can be a dependency source through `value`: it must be
    /// stored, active and still hold `value` in its dependency set.
    fn is_dep_source(&self, v: VertexId, value: Value) -> bool {
        self.try_vertex(v)
            .is_some_and(|vert| vert.active && vert.dep_set.contains(&value))
    }

    /// Remove `value` from `v`'s dependency set (a later writer consumed
    /// it).
    fn consume(&mut self, v: VertexId, value: Value) {
        if let Some(i) = self.slot(v) {
            self.vertices[i].dep_set.remove(&value);
        }
    }

    fn record_edge(&mut self, from: VertexId, to: VertexId, value: Value, read_only: bool) {
        self.edges.push(DepEdge {
            from,
            to,
            value,
            read_only,
            migrated_bytes: 0,
            p2p: false,
            cross_node: false,
            redundant: false,
        });
    }

    /// Record the device a scheduler placed a vertex on (no-op if the
    /// vertex was already compacted away).
    pub fn set_device(&mut self, id: VertexId, device: u32) {
        if let Some(i) = self.slot(id) {
            self.vertices[i].device = Some(device);
        }
    }

    /// Record that satisfying `to`'s dependency on `value` migrated
    /// `bytes` across devices — the run-time migration-cost accounting
    /// rendered by [`crate::to_dot`]. `p2p` records whether the move
    /// went over a direct peer link or staged through the host (the two
    /// are styled differently in the render). Exactly one incoming edge
    /// is stamped (a writer after several readers has one WAR edge per
    /// reader for the same value, but the data moved once): preferably
    /// the edge whose source sits on another device, else the first
    /// match.
    pub fn annotate_migration(&mut self, to: VertexId, value: Value, bytes: usize, p2p: bool) {
        self.annotate_migration_route(to, value, bytes, p2p, false);
    }

    /// [`ComputationDag::annotate_migration`] with the cluster route
    /// recorded: `cross_node` marks migrations whose endpoints sit on
    /// different cluster nodes (the GPU→host→NIC→host→GPU path).
    pub fn annotate_migration_route(
        &mut self,
        to: VertexId,
        value: Value,
        bytes: usize,
        p2p: bool,
        cross_node: bool,
    ) {
        let to_device = self.try_vertex(to).and_then(|v| v.device);
        let matches: Vec<usize> = self
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.to == to && e.value == value)
            .map(|(i, _)| i)
            .collect();
        let cross = matches.iter().copied().find(|&i| {
            let from = self.edges[i].from;
            let from_device = self.try_vertex(from).and_then(|v| v.device);
            from_device.is_some() && from_device != to_device
        });
        if let Some(i) = cross.or_else(|| matches.first().copied()) {
            self.edges[i].migrated_bytes = bytes;
            self.edges[i].p2p = p2p;
            self.edges[i].cross_node = cross_node;
        }
    }

    /// Record that placing `vertex` evicted `value` (`bytes` big) from
    /// its device; `spilled` distinguishes a real device→host spill copy
    /// from a free drop. Rendered by [`crate::to_dot`]. No-op for
    /// compacted vertices.
    pub fn annotate_evict(&mut self, vertex: VertexId, value: Value, bytes: usize, spilled: bool) {
        if self.slot(vertex).is_some() {
            self.mem_notes.push(MemNote {
                vertex,
                value,
                bytes,
                kind: MemNoteKind::Evicted { spilled },
            });
        }
    }

    /// Record that `value` (`bytes` big) was bulk-prefetched ahead of
    /// `vertex`'s launch. Rendered by [`crate::to_dot`]. No-op for
    /// compacted vertices.
    pub fn annotate_prefetch(&mut self, vertex: VertexId, value: Value, bytes: usize) {
        if self.slot(vertex).is_some() {
            self.mem_notes.push(MemNote {
                vertex,
                value,
                bytes,
                kind: MemNoteKind::Prefetched,
            });
        }
    }

    /// The stored eviction/prefetch annotations (pruned with their
    /// vertices on compaction).
    pub fn mem_notes(&self) -> &[MemNote] {
        &self.mem_notes
    }
}

fn push_unique(v: &mut Vec<VertexId>, x: VertexId) {
    if !v.contains(&x) {
        v.push(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: Value = Value(0);
    const Y: Value = Value(1);
    const Z: Value = Value(2);
    const W: Value = Value(3);
    const R: Value = Value(4);

    fn kernel(
        dag: &mut ComputationDag,
        label: &str,
        args: Vec<ArgAccess>,
    ) -> (VertexId, Vec<VertexId>) {
        dag.add_computation(ElementKind::Kernel, label, args)
    }

    /// Paper Fig. 3 case A: K1(X, const Y) then K2(const X, Z):
    /// K2 read-depends on K1 through X.
    #[test]
    fn fig3_case_a_read_after_write() {
        let mut dag = ComputationDag::new();
        let (k1, d1) = kernel(
            &mut dag,
            "K1",
            vec![ArgAccess::write(X), ArgAccess::read(Y)],
        );
        assert!(d1.is_empty());
        let (k2, d2) = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::read(X), ArgAccess::write(Z)],
        );
        assert_eq!(d2, vec![k1]);
        // The read-only use does NOT consume X from K1's set.
        assert!(dag.dep_set(k1).contains(&X));
        let _ = k2;
    }

    /// Paper Fig. 3 case B: a third kernel *writing* X depends on the
    /// reader K2 (WAR), not on both K1 and K2.
    #[test]
    fn fig3_case_b_write_after_read_depends_on_reader_only() {
        let mut dag = ComputationDag::new();
        let (k1, _) = kernel(
            &mut dag,
            "K1",
            vec![ArgAccess::write(X), ArgAccess::read(Y)],
        );
        let (k2, _) = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::read(X), ArgAccess::write(Z)],
        );
        let (_k3, d3) = kernel(
            &mut dag,
            "K3",
            vec![ArgAccess::write(X), ArgAccess::write(W)],
        );
        assert_eq!(d3, vec![k2], "K3 must depend on the reader K2 only");
        // The write consumed X everywhere.
        assert!(!dag.dep_set(k1).contains(&X));
        assert!(!dag.dep_set(k2).contains(&X));
    }

    /// Paper Fig. 3 case C: a third kernel *reading* X depends on the
    /// writer K1 (not the reader K2), and K1's set is untouched.
    #[test]
    fn fig3_case_c_second_reader_depends_on_writer() {
        let mut dag = ComputationDag::new();
        let (k1, _) = kernel(
            &mut dag,
            "K1",
            vec![ArgAccess::write(X), ArgAccess::read(Y)],
        );
        let (_k2, _) = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::read(X), ArgAccess::write(Z)],
        );
        let (_k3, d3) = kernel(
            &mut dag,
            "K3",
            vec![ArgAccess::read(X), ArgAccess::write(W)],
        );
        assert_eq!(d3, vec![k1], "second reader hangs off the writer");
        assert!(dag.dep_set(k1).contains(&X), "K1's set is not updated");
    }

    /// Paper §IV-A text after Fig. 3: "if a new kernel requires X as
    /// read-only argument, it will depend on K1, otherwise it will depend
    /// on both K2 and K3, and all dependency sets will be updated."
    #[test]
    fn fig3_follow_up_writer_depends_on_both_readers() {
        let mut dag = ComputationDag::new();
        let (k1, _) = kernel(
            &mut dag,
            "K1",
            vec![ArgAccess::write(X), ArgAccess::read(Y)],
        );
        let (k2, _) = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::read(X), ArgAccess::write(Z)],
        );
        let (k3, _) = kernel(
            &mut dag,
            "K3",
            vec![ArgAccess::read(X), ArgAccess::write(W)],
        );
        let (_k4, d4) = kernel(&mut dag, "K4", vec![ArgAccess::write(X)]);
        assert_eq!(d4, vec![k2, k3]);
        for k in [k1, k2, k3] {
            assert!(!dag.dep_set(k).contains(&X));
        }
    }

    /// Paper Fig. 4: the VEC benchmark walk-through. K1(X), K1(Y) are
    /// independent; K2(const X, const Y, Z) depends on both; the CPU
    /// access to Z depends on K2.
    #[test]
    fn fig4_vec_walkthrough() {
        let mut dag = ComputationDag::new();
        let (k1x, d1) = kernel(&mut dag, "K1(X)", vec![ArgAccess::write(X)]);
        let (k1y, d2) = kernel(&mut dag, "K1(Y)", vec![ArgAccess::write(Y)]);
        assert!(
            d1.is_empty() && d2.is_empty(),
            "the two squares are independent"
        );
        let (k2, d3) = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::read(X), ArgAccess::read(Y), ArgAccess::write(Z)],
        );
        assert_eq!(d3, vec![k1x, k1y]);
        // CPU reads Z[0]: must be modeled and depend on K2.
        let (v, deps) = dag.add_array_access("Z[0]", Z, false);
        assert!(v.is_some());
        assert_eq!(deps, vec![k2]);
    }

    /// Paper Fig. 2: the ML pipeline has two independent branches joined
    /// by the ensemble kernel.
    #[test]
    fn fig2_ml_pipeline_branches() {
        let mut dag = ComputationDag::new();
        let r1 = Value(10);
        let r2 = Value(11);
        // FC(X→Y), then NB(Y→R1) and NO(Y→Z) read Y concurrently,
        // RI(Z→R2), EN(R1,R2→R).
        let (fc, _) = kernel(
            &mut dag,
            "FC",
            vec![ArgAccess::read(X), ArgAccess::write(Y)],
        );
        let (nb, dnb) = kernel(
            &mut dag,
            "NB",
            vec![ArgAccess::read(Y), ArgAccess::write(r1)],
        );
        let (no, dno) = kernel(
            &mut dag,
            "NO",
            vec![ArgAccess::read(Y), ArgAccess::write(Z)],
        );
        assert_eq!(dnb, vec![fc]);
        assert_eq!(
            dno,
            vec![fc],
            "NO depends on FC, not on NB — branches are parallel"
        );
        let (ri, dri) = kernel(
            &mut dag,
            "RI",
            vec![ArgAccess::read(Z), ArgAccess::write(r2)],
        );
        assert_eq!(dri, vec![no]);
        let (_en, den) = kernel(
            &mut dag,
            "EN",
            vec![
                ArgAccess::read(r1),
                ArgAccess::read(r2),
                ArgAccess::write(R),
            ],
        );
        assert_eq!(den, vec![nb, ri]);
    }

    #[test]
    fn consecutive_cpu_accesses_are_free_when_gpu_idle() {
        let mut dag = ComputationDag::new();
        // No GPU computation yet: access is immediate, unmodeled.
        let (v, deps) = dag.add_array_access("X[0]", X, true);
        assert!(v.is_none() && deps.is_empty());
        assert!(dag.is_empty());
    }

    #[test]
    fn cpu_read_does_not_conflict_with_prior_cpu_reads() {
        let mut dag = ComputationDag::new();
        let (_k, _) = kernel(&mut dag, "K", vec![ArgAccess::write(X)]);
        let (a1, _) = dag.add_array_access("X[0]", X, false);
        assert!(a1.is_some());
        // Retire the chain: the CPU has synced with the kernel.
        dag.retire(a1.unwrap());
        // A second read no longer conflicts.
        let (a2, deps) = dag.add_array_access("X[1]", X, false);
        assert!(
            a2.is_none(),
            "consecutive accesses are executed immediately: {deps:?}"
        );
    }

    #[test]
    fn retire_is_transitive_to_ancestors() {
        let mut dag = ComputationDag::new();
        let (k1, _) = kernel(&mut dag, "K1", vec![ArgAccess::write(X)]);
        let (k2, _) = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::read(X), ArgAccess::write(Y)],
        );
        let (k3, _) = kernel(
            &mut dag,
            "K3",
            vec![ArgAccess::read(Y), ArgAccess::write(Z)],
        );
        dag.retire(k3);
        assert!(!dag.vertex(k1).active);
        assert!(!dag.vertex(k2).active);
        assert!(!dag.vertex(k3).active);
        // New reader of X needs no dependency: everything retired.
        let (_k4, d4) = kernel(
            &mut dag,
            "K4",
            vec![ArgAccess::read(X), ArgAccess::write(W)],
        );
        assert!(d4.is_empty());
    }

    #[test]
    fn exhausted_vertices_leave_the_frontier() {
        let mut dag = ComputationDag::new();
        let (k1, _) = kernel(&mut dag, "K1", vec![ArgAccess::write(X)]);
        assert_eq!(dag.frontier(), vec![k1]);
        let (k2, _) = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::write(X), ArgAccess::write(Y)],
        );
        // K1's only dep-set entry was consumed by the writer K2.
        assert!(dag.vertex(k1).exhausted());
        assert_eq!(dag.frontier(), vec![k2]);
    }

    #[test]
    fn first_child_ordering_is_recorded() {
        let mut dag = ComputationDag::new();
        let (k1, _) = kernel(&mut dag, "K1", vec![ArgAccess::write(X)]);
        let (k2, _) = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::read(X), ArgAccess::write(Y)],
        );
        let (k3, _) = kernel(
            &mut dag,
            "K3",
            vec![ArgAccess::read(X), ArgAccess::write(Z)],
        );
        assert_eq!(dag.vertex(k1).children, vec![k2, k3]);
    }

    #[test]
    fn edges_are_labeled_with_the_causing_value() {
        let mut dag = ComputationDag::new();
        let (k1, _) = kernel(&mut dag, "K1", vec![ArgAccess::write(X)]);
        let (k2, _) = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::read(X), ArgAccess::write(Y)],
        );
        let e = dag.edges();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].from, k1);
        assert_eq!(e[0].to, k2);
        assert_eq!(e[0].value, X);
        assert!(e[0].read_only);
    }

    #[test]
    fn same_value_written_twice_by_same_kernel_is_single_dep() {
        let mut dag = ComputationDag::new();
        let (k1, _) = kernel(&mut dag, "K1", vec![ArgAccess::write(X)]);
        let (_k2, d2) = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::write(X), ArgAccess::read(X)],
        );
        assert_eq!(d2, vec![k1]);
    }

    #[test]
    fn compact_drops_retired_and_keeps_live_ids_stable() {
        let mut dag = ComputationDag::new();
        let (k1, _) = kernel(&mut dag, "K1", vec![ArgAccess::write(X)]);
        let (k2, _) = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::read(X), ArgAccess::write(Y)],
        );
        // Retire the chain through k2, then start fresh live work.
        let retired = dag.retire(k2);
        assert_eq!(retired.len(), 2, "retire reports the transitive set");
        let (k3, _) = kernel(&mut dag, "K3", vec![ArgAccess::write(Z)]);
        assert_eq!(dag.stored_len(), 3);
        assert_eq!(dag.compact(), 2);
        assert_eq!(dag.stored_len(), 1);
        assert_eq!(dag.live_len(), 1);
        assert_eq!(dag.len(), 3, "lifetime count survives compaction");
        // Live id is stable; compacted ids are gone.
        assert_eq!(dag.vertex(k3).id, k3);
        assert!(dag.try_vertex(k1).is_none());
        assert!(dag.try_vertex(k2).is_none());
        // New ids keep increasing past compacted ones.
        let (k4, _) = kernel(&mut dag, "K4", vec![ArgAccess::write(W)]);
        assert!(k4 > k3);
    }

    #[test]
    fn compact_prunes_edges_and_value_states() {
        let mut dag = ComputationDag::new();
        let (_k1, _) = kernel(&mut dag, "K1", vec![ArgAccess::write(X)]);
        let (k2, _) = kernel(
            &mut dag,
            "K2",
            vec![ArgAccess::read(X), ArgAccess::write(Y)],
        );
        assert_eq!(dag.edges().len(), 1);
        assert_eq!(dag.value_states_len(), 2);
        dag.retire(k2);
        dag.compact();
        assert!(dag.edges().is_empty(), "edges die with their vertices");
        assert_eq!(
            dag.value_states_len(),
            0,
            "fully-retired values release their ordering state"
        );
        // Post-compaction accesses behave exactly as post-retire ones.
        let (a, deps) = dag.add_array_access("X[0]", X, true);
        assert!(a.is_none() && deps.is_empty());
    }

    #[test]
    fn dependencies_are_identical_with_and_without_compaction() {
        // Replay the same op sequence on two DAGs, compacting one after
        // every retire: the inferred dependency lists must never differ.
        let ops: Vec<(bool, u64)> = (0..60u64).map(|i| (i % 3 != 1, i % 4)).collect();
        let mut plain = ComputationDag::new();
        let mut compacted = ComputationDag::new();
        for (round, chunk) in ops.chunks(6).enumerate() {
            let mut last = None;
            for (write, v) in chunk {
                let arg = if *write {
                    ArgAccess::write(Value(*v))
                } else {
                    ArgAccess::read(Value(*v))
                };
                let (i1, d1) = plain.add_computation(ElementKind::Kernel, "op", vec![arg]);
                let (i2, d2) = compacted.add_computation(ElementKind::Kernel, "op", vec![arg]);
                assert_eq!(i1, i2, "ids never reused, so they stay aligned");
                assert_eq!(d1, d2, "round {round}: deps diverged");
                last = Some(i1);
            }
            let last = last.unwrap();
            plain.retire(last);
            compacted.retire(last);
            compacted.compact();
        }
        assert_eq!(plain.len(), compacted.len());
        assert!(compacted.stored_len() <= plain.stored_len());
    }

    #[test]
    fn storage_stays_bounded_across_retire_compact_cycles() {
        let mut dag = ComputationDag::new();
        for _ in 0..200 {
            for _ in 0..8 {
                let _ = kernel(&mut dag, "k", vec![ArgAccess::write(X), ArgAccess::read(Y)]);
            }
            dag.retire_all();
            dag.compact();
            assert_eq!(dag.stored_len(), 0);
            assert_eq!(dag.live_len(), 0);
            assert!(dag.edges().is_empty());
            assert_eq!(dag.value_states_len(), 0);
        }
        assert_eq!(dag.len(), 1600, "lifetime count keeps growing");
    }

    #[test]
    fn maybe_compact_waits_for_enough_garbage() {
        let mut dag = ComputationDag::new();
        let (k, _) = kernel(&mut dag, "K", vec![ArgAccess::write(X)]);
        dag.retire(k);
        assert_eq!(dag.maybe_compact(), 0, "too little garbage to bother");
        for _ in 0..80 {
            let (k, _) = kernel(&mut dag, "K", vec![ArgAccess::write(X)]);
            dag.retire(k);
        }
        assert!(dag.maybe_compact() > 0, "mostly-dead storage compacts");
        assert_eq!(dag.stored_len(), 0);
    }

    #[test]
    fn deps_only_point_backwards() {
        let mut dag = ComputationDag::new();
        for i in 0..20u64 {
            let v = Value(i % 3);
            let (id, deps) = kernel(
                &mut dag,
                "k",
                vec![if i % 2 == 0 {
                    ArgAccess::write(v)
                } else {
                    ArgAccess::read(v)
                }],
            );
            for d in deps {
                assert!(d < id);
            }
        }
    }
}
