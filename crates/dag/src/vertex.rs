//! Vertices of the computation DAG.

use std::collections::BTreeSet;

/// Identifier of a computational element inside one [`crate::ComputationDag`].
/// Monotonically increasing in submission order, so `a.0 < b.0` iff `a`
/// was submitted before `b` — the property that makes the graph acyclic
/// by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

/// Identifier of a data value (a managed array) referenced by arguments.
/// This mirrors `gpu_sim::ValueId`; the crate is kept dependency-free so
/// the DAG logic can be tested in isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value(pub u64);

/// What kind of computational element a vertex represents (§IV-A lists
/// exactly these three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementKind {
    /// A GPU kernel execution.
    Kernel,
    /// A CPU access (read or write) to a managed unified-memory array.
    ArrayAccess,
    /// A pre-registered library function (e.g. RAPIDS); scheduled
    /// synchronously when it does not expose stream choice.
    Library,
}

/// One argument of a computational element: which value it touches and
/// whether the access is read-only (`const`/`in` NIDL annotations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArgAccess {
    /// The value (managed array) accessed.
    pub value: Value,
    /// True if the element only reads the value. Scalars passed by copy
    /// are never registered as arguments at all (paper Fig. 4: "scalar
    /// value passed by copy, ignored for dependencies").
    pub read_only: bool,
}

impl ArgAccess {
    /// A read-only (const) argument.
    pub fn read(value: Value) -> Self {
        ArgAccess {
            value,
            read_only: true,
        }
    }

    /// A read-write argument (the conservative default when no
    /// annotation is given).
    pub fn write(value: Value) -> Self {
        ArgAccess {
            value,
            read_only: false,
        }
    }
}

/// A computational element in the DAG.
#[derive(Debug, Clone)]
pub struct Vertex {
    /// This vertex's id.
    pub id: VertexId,
    /// Element class.
    pub kind: ElementKind,
    /// Display label (kernel name etc.).
    pub label: String,
    /// The argument list the element was created with.
    pub args: Vec<ArgAccess>,
    /// The *dependency set*: values through which this vertex can still
    /// introduce dependencies on future computations. Starts as all
    /// argument values; shrinks as later writers consume them.
    pub dep_set: BTreeSet<Value>,
    /// Direct parents (dependencies), deduplicated, in discovery order.
    pub parents: Vec<VertexId>,
    /// Direct children (dependents), in creation order. The stream
    /// manager schedules the *first* child on the parent's stream.
    pub children: Vec<VertexId>,
    /// Whether the vertex is still *active*: not yet synchronized by the
    /// CPU. Only active vertices can be dependency sources.
    pub active: bool,
    /// Device the scheduler placed the computation on. `None` until a
    /// placement policy assigned one — including on single-GPU runs,
    /// where the scheduler deliberately records nothing so single-GPU
    /// DOT renders stay undecorated. Purely diagnostic for the DAG
    /// itself — the scheduler keys its decisions on its own maps — but
    /// it lets [`crate::to_dot`] color multi-GPU schedules by device.
    pub device: Option<u32>,
}

impl Vertex {
    pub(crate) fn new(
        id: VertexId,
        kind: ElementKind,
        label: String,
        args: Vec<ArgAccess>,
    ) -> Self {
        let dep_set = args.iter().map(|a| a.value).collect();
        Vertex {
            id,
            kind,
            label,
            args,
            dep_set,
            parents: Vec::new(),
            children: Vec::new(),
            active: true,
            device: None,
        }
    }

    /// True once the dependency set is empty: the vertex "can no longer
    /// introduce dependencies" (§IV-A) and leaves the frontier.
    pub fn exhausted(&self) -> bool {
        self.dep_set.is_empty()
    }

    /// Whether this vertex writes the given value.
    pub fn writes(&self, v: Value) -> bool {
        self.args.iter().any(|a| a.value == v && !a.read_only)
    }

    /// Whether this vertex reads (only) the given value.
    pub fn reads_only(&self, v: Value) -> bool {
        self.args.iter().any(|a| a.value == v && a.read_only)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_vertex_dep_set_is_all_args() {
        let v = Vertex::new(
            VertexId(0),
            ElementKind::Kernel,
            "k".into(),
            vec![ArgAccess::write(Value(1)), ArgAccess::read(Value(2))],
        );
        assert_eq!(v.dep_set.len(), 2);
        assert!(v.dep_set.contains(&Value(1)) && v.dep_set.contains(&Value(2)));
        assert!(!v.exhausted());
        assert!(v.active);
    }

    #[test]
    fn access_predicates() {
        let v = Vertex::new(
            VertexId(0),
            ElementKind::Kernel,
            "k".into(),
            vec![ArgAccess::write(Value(1)), ArgAccess::read(Value(2))],
        );
        assert!(v.writes(Value(1)));
        assert!(!v.writes(Value(2)));
        assert!(v.reads_only(Value(2)));
        assert!(!v.reads_only(Value(1)));
        assert!(!v.writes(Value(3)));
    }

    #[test]
    fn duplicate_arg_values_collapse_in_dep_set() {
        let v = Vertex::new(
            VertexId(0),
            ElementKind::Kernel,
            "k".into(),
            vec![ArgAccess::read(Value(1)), ArgAccess::write(Value(1))],
        );
        assert_eq!(v.dep_set.len(), 1);
    }
}
