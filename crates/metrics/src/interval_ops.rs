//! Set operations over time intervals `[start, end)`.

/// A half-open time interval.
pub type Span = (f64, f64);

/// Merge overlapping/touching intervals into a sorted disjoint union.
pub fn union(mut spans: Vec<Span>) -> Vec<Span> {
    spans.retain(|s| s.1 > s.0);
    spans.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<Span> = Vec::with_capacity(spans.len());
    for s in spans {
        match out.last_mut() {
            Some(last) if s.0 <= last.1 => last.1 = last.1.max(s.1),
            _ => out.push(s),
        }
    }
    out
}

/// Total measure of a disjoint union.
pub fn measure(spans: &[Span]) -> f64 {
    spans.iter().map(|s| s.1 - s.0).sum()
}

/// Measure of the intersection between one interval and a disjoint
/// union.
pub fn overlap_with(span: Span, disjoint: &[Span]) -> f64 {
    let mut acc = 0.0;
    for &(a, b) in disjoint {
        if b <= span.0 {
            continue;
        }
        if a >= span.1 {
            break;
        }
        acc += b.min(span.1) - a.max(span.0);
    }
    acc
}

/// Time covered by at least `k` of the given (possibly overlapping)
/// intervals.
pub fn covered_at_least(spans: &[Span], k: usize) -> f64 {
    let mut events: Vec<(f64, i32)> = Vec::with_capacity(spans.len() * 2);
    for &(a, b) in spans {
        if b > a {
            events.push((a, 1));
            events.push((b, -1));
        }
    }
    events.sort_by(|x, y| x.0.total_cmp(&y.0).then(y.1.cmp(&x.1)));
    let mut depth = 0i32;
    let mut acc = 0.0;
    let mut last = f64::NAN;
    for (t, d) in events {
        if depth >= k as i32 && last.is_finite() {
            acc += t - last;
        }
        depth += d;
        last = t;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_merges_overlaps() {
        let u = union(vec![(0.0, 2.0), (1.0, 3.0), (5.0, 6.0)]);
        assert_eq!(u, vec![(0.0, 3.0), (5.0, 6.0)]);
        assert_eq!(measure(&u), 4.0);
    }

    #[test]
    fn union_drops_empty_intervals() {
        let u = union(vec![(1.0, 1.0), (2.0, 1.5)]);
        assert!(u.is_empty());
    }

    #[test]
    fn overlap_with_computes_intersection() {
        let dis = union(vec![(0.0, 2.0), (4.0, 8.0)]);
        assert_eq!(overlap_with((1.0, 5.0), &dis), 2.0); // [1,2) + [4,5)
        assert_eq!(overlap_with((2.0, 4.0), &dis), 0.0);
        assert_eq!(overlap_with((-1.0, 10.0), &dis), 6.0);
    }

    #[test]
    fn covered_at_least_counts_depth() {
        let spans = vec![(0.0, 4.0), (2.0, 6.0), (3.0, 5.0)];
        assert_eq!(covered_at_least(&spans, 1), 6.0);
        assert_eq!(covered_at_least(&spans, 2), 3.0); // [2,5)
        assert_eq!(covered_at_least(&spans, 3), 1.0); // [3,4)
        assert_eq!(covered_at_least(&spans, 4), 0.0);
    }

    #[test]
    fn covered_handles_touching_endpoints() {
        let spans = vec![(0.0, 1.0), (1.0, 2.0)];
        assert_eq!(covered_at_least(&spans, 1), 2.0);
        assert_eq!(covered_at_least(&spans, 2), 0.0);
    }
}

#[cfg(test)]
mod prop {
    use super::*;
    use proptest::prelude::*;

    fn spans() -> impl Strategy<Value = Vec<Span>> {
        proptest::collection::vec((0.0f64..100.0, 0.0f64..10.0), 0..20)
            .prop_map(|v| v.into_iter().map(|(a, d)| (a, a + d)).collect())
    }

    proptest! {
        #[test]
        fn union_measure_bounded_by_sum(sp in spans()) {
            let total: f64 = sp.iter().map(|s| s.1 - s.0).sum();
            let u = union(sp.clone());
            let m = measure(&u);
            prop_assert!(m <= total + 1e-9);
            // Union is disjoint and sorted.
            for w in u.windows(2) {
                prop_assert!(w[0].1 < w[1].0);
            }
            // depth>=1 coverage equals union measure.
            prop_assert!((covered_at_least(&sp, 1) - m).abs() < 1e-9);
        }

        #[test]
        fn deeper_coverage_is_smaller(sp in spans()) {
            let c1 = covered_at_least(&sp, 1);
            let c2 = covered_at_least(&sp, 2);
            let c3 = covered_at_least(&sp, 3);
            prop_assert!(c2 <= c1 + 1e-9);
            prop_assert!(c3 <= c2 + 1e-9);
        }
    }
}
