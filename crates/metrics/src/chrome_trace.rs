//! Chrome-tracing export: render a [`gpu_sim::Timeline`] as a
//! `chrome://tracing` / Perfetto JSON trace.
//!
//! Each stream becomes a "thread", kernels and transfers become complete
//! (`"ph": "X"`) events with microsecond timestamps — the visual
//! equivalent of the paper's Fig. 10, but interactive. Write the output
//! to a file and load it at <https://ui.perfetto.dev>.

use gpu_sim::{TaskKind, Timeline};

/// Serialize the timeline as Chrome trace-event JSON (an array of
/// complete events). Deterministic output: events in completion order.
pub fn to_chrome_trace(tl: &Timeline, process_name: &str) -> String {
    let mut out = String::from("[\n");
    // Process + thread metadata.
    out.push_str(&format!(
        "  {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(process_name)
    ));
    let mut streams: Vec<u32> = tl
        .intervals()
        .iter()
        .filter(|iv| iv.kind == TaskKind::Kernel || iv.kind.is_transfer())
        .map(|iv| iv.stream)
        .collect();
    streams.sort_unstable();
    streams.dedup();
    for &s in &streams {
        let name = if s == u32::MAX {
            "host".to_string()
        } else {
            format!("stream {s}")
        };
        out.push_str(&format!(
            ",\n  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{name}\"}}}}",
            tid(s)
        ));
    }
    for iv in tl.intervals() {
        if iv.kind != TaskKind::Kernel && !iv.kind.is_transfer() {
            continue;
        }
        let cat = match iv.kind {
            TaskKind::Kernel => "kernel",
            TaskKind::CopyH2D => "h2d",
            TaskKind::CopyD2H => "d2h",
            TaskKind::CopyP2P => "p2p",
            TaskKind::FaultH2D | TaskKind::FaultD2H => "um-fault",
            _ => "other",
        };
        out.push_str(&format!(
            ",\n  {{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"bytes\":{},\"task\":{}}}}}",
            escape(&iv.label),
            tid(iv.stream),
            iv.start * 1e6,
            iv.duration() * 1e6,
            iv.meta.bytes,
            iv.task,
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Map the presentation stream to a trace thread id (host = 0).
fn tid(stream: u32) -> u32 {
    if stream == u32::MAX {
        0
    } else {
        stream + 1
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Interval, TaskMeta};

    fn iv(kind: TaskKind, stream: u32, start: f64, end: f64, label: &str) -> Interval {
        Interval {
            task: 7,
            kind,
            stream,
            device: 0,
            link: None,
            label: label.into(),
            start,
            end,
            meta: TaskMeta {
                bytes: 128.0,
                ..Default::default()
            },
        }
    }

    #[test]
    fn trace_is_wellformed_json_array() {
        let mut tl = Timeline::new();
        tl.push_for_test(iv(TaskKind::CopyH2D, 0, 0.0, 1e-3, "x"));
        tl.push_for_test(iv(TaskKind::Kernel, 1, 1e-3, 3e-3, "square"));
        let s = to_chrome_trace(&tl, "VEC");
        assert!(s.trim_start().starts_with('['));
        assert!(s.trim_end().ends_with(']'));
        // Rough JSON sanity: balanced braces and the expected fields.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"cat\":\"kernel\""));
        assert!(s.contains("\"cat\":\"h2d\""));
        assert!(s.contains("\"name\":\"square\""));
        assert!(s.contains("\"ts\":1000.000"));
        assert!(s.contains("\"dur\":2000.000"));
    }

    #[test]
    fn host_stream_maps_to_tid_zero() {
        let mut tl = Timeline::new();
        tl.push_for_test(iv(TaskKind::FaultD2H, u32::MAX, 0.0, 1e-6, "umfault"));
        let s = to_chrome_trace(&tl, "t");
        assert!(s.contains("\"tid\":0"));
        assert!(s.contains("um-fault"));
    }

    #[test]
    fn labels_with_quotes_are_escaped() {
        let mut tl = Timeline::new();
        tl.push_for_test(iv(TaskKind::Kernel, 0, 0.0, 1.0, "k\"q\""));
        let s = to_chrome_trace(&tl, "p\"n");
        assert!(s.contains("k\\\"q\\\""));
        assert!(s.contains("p\\\"n"));
    }

    #[test]
    fn markers_and_host_tasks_are_excluded() {
        let mut tl = Timeline::new();
        tl.push_for_test(iv(TaskKind::Marker, 0, 0.0, 0.0, "ev"));
        tl.push_for_test(iv(TaskKind::Host, 0, 0.0, 1.0, "cpu"));
        let s = to_chrome_trace(&tl, "t");
        assert!(!s.contains("\"name\":\"ev\""));
        assert!(!s.contains("\"name\":\"cpu\""));
    }
}
