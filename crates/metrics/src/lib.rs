#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # metrics — timeline analysis for the paper's evaluation figures
//!
//! Post-processing over [`gpu_sim::Timeline`]s:
//!
//! * [`overlap`] — the four overlap classes of §V-F / Fig. 10–11
//!   (CT, TC, CC, TOT);
//! * [`hardware`] — the hardware-utilization metrics of Fig. 12
//!   (device-memory throughput, L2 throughput, IPC, GFLOPS), computed the
//!   way the paper does: per-kernel counters collected separately and
//!   combined with the execution timeline;
//! * [`mod@critical_path`] — the contention-free execution-time bound of
//!   Fig. 9 (longest dependency path using solo durations);
//! * [`links`] — per-interconnect-link usage (busy time, bytes,
//!   utilization) over host and peer links;
//! * [`latency`] — nearest-rank per-request latency percentiles
//!   (p50/p90/p99) for the multi-tenant serving benchmarks;
//! * [`memory`] — per-device resident-bytes timelines under finite
//!   device memory (peak/mean pressure from the memory manager's step
//!   samples);
//! * [`ascii_timeline`] — the Fig. 10-style execution timeline rendering;
//! * [`chrome_trace`] — Perfetto/`chrome://tracing` JSON export of the
//!   same timelines.

pub mod ascii_timeline;
pub mod chrome_trace;
pub mod critical_path;
pub mod hardware;
pub mod interval_ops;
pub mod latency;
pub mod links;
pub mod memory;
pub mod overlap;

pub use ascii_timeline::render_timeline;
pub use chrome_trace::to_chrome_trace;
pub use critical_path::critical_path;
pub use hardware::HardwareMetrics;
pub use latency::{percentile, LatencySummary};
pub use links::{link_usage, LinkUsage};
pub use memory::MemoryTimeline;
pub use overlap::OverlapMetrics;
