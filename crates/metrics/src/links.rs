//! Per-link interconnect usage: how busy each link was and how many
//! bytes moved over it.
//!
//! Complements the overlap metrics: where [`crate::overlap`] asks how
//! much transfer time hid behind computation, this asks *which wires*
//! the transfers used — the host PCIe links or the peer (NVLink-style)
//! links of the machine's [`Topology`] — and how saturated each was over
//! the GPU execution span.

use gpu_sim::{Time, Timeline, Topology};

use crate::interval_ops::{measure, union, Span};

/// Usage of one interconnect link over a timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkUsage {
    /// Index into [`Topology::links`].
    pub link: u32,
    /// Human-readable link name (`host-d0`, `d0-d1`, ...).
    pub label: String,
    /// True for a device↔device (peer) link.
    pub is_d2d: bool,
    /// Transfers completed on this link.
    pub transfers: usize,
    /// Bytes moved over this link.
    pub bytes: f64,
    /// Wall (virtual) time the link carried at least one transfer.
    pub busy: Time,
    /// `busy` as a fraction of the timeline's GPU execution span
    /// (0 when the span is empty).
    pub utilization: f64,
}

/// Per-link usage over a timeline, one entry per topology link in link
/// order (host links first). Transfers are attributed by the engine:
/// peer copies to their peer link, bulk copies and fault migrations to
/// their device's host link.
pub fn link_usage(tl: &Timeline, topo: &Topology) -> Vec<LinkUsage> {
    let span = tl.gpu_span();
    topo.links()
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let spans: Vec<Span> = tl.of_link(i as u32).map(|iv| (iv.start, iv.end)).collect();
            let transfers = spans.len();
            let bytes: f64 = tl.of_link(i as u32).map(|iv| iv.meta.bytes).sum();
            let busy = measure(&union(spans));
            LinkUsage {
                link: i as u32,
                label: l.label(),
                is_d2d: l.is_d2d(),
                transfers,
                bytes,
                busy,
                utilization: if span > 0.0 { busy / span } else { 0.0 },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceProfile, Interval, TaskKind, TaskMeta, TopologyKind};

    fn iv(kind: TaskKind, device: u32, link: Option<u32>, start: f64, end: f64) -> Interval {
        Interval {
            task: 0,
            kind,
            stream: 0,
            device,
            link,
            label: String::new(),
            start,
            end,
            meta: TaskMeta {
                bytes: 100.0,
                ..Default::default()
            },
        }
    }

    #[test]
    fn usage_splits_host_and_peer_links() {
        let topo = Topology::preset(TopologyKind::NvlinkPair, 2, &DeviceProfile::tesla_p100());
        let peer = topo.d2d_link(0, 1).unwrap().0;
        let mut tl = Timeline::new();
        // Two overlapping copies on host link 0 (busy 3s), one peer copy.
        tl.push_for_test(iv(TaskKind::CopyH2D, 0, Some(0), 0.0, 2.0));
        tl.push_for_test(iv(TaskKind::CopyH2D, 0, Some(0), 1.0, 3.0));
        tl.push_for_test(iv(TaskKind::CopyP2P, 1, Some(peer), 2.0, 4.0));
        let usage = link_usage(&tl, &topo);
        assert_eq!(usage.len(), 3);
        assert_eq!(usage[0].label, "host-d0");
        assert!(!usage[0].is_d2d);
        assert_eq!(usage[0].transfers, 2);
        assert_eq!(usage[0].bytes, 200.0);
        assert_eq!(usage[0].busy, 3.0, "overlap is not double-counted");
        assert_eq!(usage[1].transfers, 0, "host link 1 idle");
        let p = &usage[peer as usize];
        assert_eq!(p.label, "d0-d1");
        assert!(p.is_d2d);
        assert_eq!(p.transfers, 1);
        assert_eq!(p.busy, 2.0);
        // Span is 4s: utilizations follow.
        assert!((usage[0].utilization - 0.75).abs() < 1e-12);
        assert!((p.utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_timeline_yields_zero_usage() {
        let topo = Topology::pcie_only(2, &DeviceProfile::tesla_p100());
        let usage = link_usage(&Timeline::new(), &topo);
        assert_eq!(usage.len(), 2);
        assert!(usage
            .iter()
            .all(|u| u.transfers == 0 && u.bytes == 0.0 && u.busy == 0.0 && u.utilization == 0.0));
    }
}
