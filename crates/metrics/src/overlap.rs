//! The four overlap classes of §V-F (Figs. 10–11).
//!
//! * **CT** — computation against transfer: percentage of GPU kernel
//!   computation that overlaps with any data transfer;
//! * **TC** — transfer against computation: percentage of data transfer
//!   that overlaps with any kernel computation;
//! * **CC** — percentage of GPU computation overlapped with other GPU
//!   computation;
//! * **TOT** — any type of overlap, with multiply-overlapped time counted
//!   once (the union of overlap intervals), relative to total GPU busy
//!   time.

use gpu_sim::Timeline;

use crate::interval_ops::{covered_at_least, overlap_with, union, Span};

/// Overlap fractions in `[0, 1]`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OverlapMetrics {
    /// Computation overlapped by transfer / total computation.
    pub ct: f64,
    /// Transfer overlapped by computation / total transfer.
    pub tc: f64,
    /// Computation overlapped by other computation / total computation.
    pub cc: f64,
    /// Time covered by ≥2 concurrent GPU operations / GPU busy time.
    pub tot: f64,
}

impl OverlapMetrics {
    /// Compute all four classes from a timeline.
    pub fn from_timeline(tl: &Timeline) -> OverlapMetrics {
        Self::from_spans(
            tl.kernels().map(|iv| (iv.start, iv.end)).collect(),
            tl.transfers().map(|iv| (iv.start, iv.end)).collect(),
        )
    }

    /// Overlap classes restricted to one device's intervals — the
    /// per-device utilization view of a multi-GPU schedule.
    pub fn for_device(tl: &Timeline, device: u32) -> OverlapMetrics {
        Self::from_spans(
            tl.of_device(device)
                .filter(|iv| iv.kind == gpu_sim::TaskKind::Kernel)
                .map(|iv| (iv.start, iv.end))
                .collect(),
            tl.of_device(device)
                .filter(|iv| iv.kind.is_transfer())
                .map(|iv| (iv.start, iv.end))
                .collect(),
        )
    }

    /// Per-device overlap metrics for every device that carried GPU
    /// work, in device order.
    pub fn per_device(tl: &Timeline) -> Vec<(u32, OverlapMetrics)> {
        tl.devices_used()
            .into_iter()
            .map(|d| (d, Self::for_device(tl, d)))
            .collect()
    }

    fn from_spans(kernels: Vec<Span>, transfers: Vec<Span>) -> OverlapMetrics {
        let kernel_total: f64 = kernels.iter().map(|s| s.1 - s.0).sum();
        let transfer_total: f64 = transfers.iter().map(|s| s.1 - s.0).sum();

        let transfer_union = union(transfers.clone());
        let kernel_union = union(kernels.clone());

        // CT: for each kernel interval, the portion covered by the
        // transfer union.
        let ct_time: f64 = kernels
            .iter()
            .map(|&k| overlap_with(k, &transfer_union))
            .sum();
        // TC: symmetric.
        let tc_time: f64 = transfers
            .iter()
            .map(|&t| overlap_with(t, &kernel_union))
            .sum();
        // CC: kernel time covered by at least two kernels, counted per
        // covered instant ("the overlap is counted only once").
        let cc_time = covered_at_least(&kernels, 2);

        // TOT: instants where ≥2 GPU operations (of any kind) are active,
        // relative to busy time (≥1 active).
        let mut all = kernels;
        all.extend_from_slice(&transfers);
        let busy = covered_at_least(&all, 1);
        let tot_time = covered_at_least(&all, 2);

        OverlapMetrics {
            ct: ratio(ct_time, kernel_total),
            tc: ratio(tc_time, transfer_total),
            cc: ratio(cc_time, kernel_total),
            tot: ratio(tot_time, busy),
        }
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        (num / den).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Interval, TaskKind, TaskMeta, Timeline};

    fn tl(entries: &[(TaskKind, f64, f64)]) -> Timeline {
        // Build through the public-ish surface: reconstruct intervals.
        let mut t = Timeline::new();
        for (i, &(kind, start, end)) in entries.iter().enumerate() {
            t.push_for_test(Interval {
                task: i as u32,
                kind,
                stream: i as u32,
                device: 0,
                link: None,
                label: format!("op{i}"),
                start,
                end,
                meta: TaskMeta::default(),
            });
        }
        t
    }

    #[test]
    fn no_overlap_yields_zeros() {
        let t = tl(&[
            (TaskKind::CopyH2D, 0.0, 1.0),
            (TaskKind::Kernel, 1.0, 2.0),
            (TaskKind::Kernel, 2.0, 3.0),
        ]);
        let m = OverlapMetrics::from_timeline(&t);
        assert_eq!(m, OverlapMetrics::default());
    }

    #[test]
    fn full_transfer_compute_overlap() {
        // Kernel [0,2), transfer [0,2): CT=1, TC=1, CC=0, TOT=1.
        let t = tl(&[(TaskKind::Kernel, 0.0, 2.0), (TaskKind::CopyH2D, 0.0, 2.0)]);
        let m = OverlapMetrics::from_timeline(&t);
        assert!((m.ct - 1.0).abs() < 1e-12);
        assert!((m.tc - 1.0).abs() < 1e-12);
        assert_eq!(m.cc, 0.0);
        assert!((m.tot - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_ct_tc_asymmetry() {
        // Kernel [0,4), transfer [3,5): 1s of 4 kernel-seconds → CT=0.25,
        // 1s of 2 transfer-seconds → TC=0.5.
        let t = tl(&[(TaskKind::Kernel, 0.0, 4.0), (TaskKind::FaultH2D, 3.0, 5.0)]);
        let m = OverlapMetrics::from_timeline(&t);
        assert!((m.ct - 0.25).abs() < 1e-12);
        assert!((m.tc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cc_counts_multiply_overlapped_time_once() {
        // Three kernels all covering [0,1): covered_at_least(2) = 1s of
        // 3 kernel-seconds → CC = 1/3.
        let t = tl(&[
            (TaskKind::Kernel, 0.0, 1.0),
            (TaskKind::Kernel, 0.0, 1.0),
            (TaskKind::Kernel, 0.0, 1.0),
        ]);
        let m = OverlapMetrics::from_timeline(&t);
        assert!((m.cc - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.tot - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vec_shape_pure_transfer_overlap() {
        // The paper's VEC: speedup comes only from transfer/compute
        // overlap — high TC, zero CC.
        let t = tl(&[
            (TaskKind::CopyH2D, 0.0, 2.0),
            (TaskKind::Kernel, 1.0, 2.0),
            (TaskKind::CopyH2D, 2.0, 4.0),
            (TaskKind::Kernel, 3.0, 4.0),
        ]);
        let m = OverlapMetrics::from_timeline(&t);
        assert_eq!(m.cc, 0.0);
        assert!(m.tc > 0.4);
        assert!((m.ct - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_timeline_is_all_zero() {
        let m = OverlapMetrics::from_timeline(&Timeline::new());
        assert_eq!(m, OverlapMetrics::default());
    }

    #[test]
    fn per_device_metrics_split_by_device() {
        let mut t = Timeline::new();
        // Device 0: kernel fully overlapped by a transfer. Device 1: a
        // lone kernel. Mixing them would dilute device 0's CT.
        for (i, (kind, device, start, end)) in [
            (TaskKind::Kernel, 0u32, 0.0, 2.0),
            (TaskKind::CopyH2D, 0, 0.0, 2.0),
            (TaskKind::Kernel, 1, 0.0, 2.0),
        ]
        .into_iter()
        .enumerate()
        {
            t.push_for_test(Interval {
                task: i as u32,
                kind,
                stream: i as u32,
                device,
                link: None,
                label: format!("op{i}"),
                start,
                end,
                meta: TaskMeta::default(),
            });
        }
        let per = OverlapMetrics::per_device(&t);
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].0, 0);
        assert!((per[0].1.ct - 1.0).abs() < 1e-12);
        assert_eq!(per[1].0, 1);
        assert_eq!(per[1].1, OverlapMetrics::default(), "no overlap on dev 1");
    }
}
