//! Fig. 10-style execution timeline rendering.
//!
//! Produces a per-stream ASCII Gantt chart of one benchmark execution,
//! the textual analogue of the paper's Fig. 10 ("Example of a possible
//! execution timeline for the ML benchmark").

use gpu_sim::{TaskKind, Timeline};

/// Render a timeline as one text row per stream.
///
/// Kernels draw as `K`/name segments, host→device transfers as `>`,
/// device→host as `<`, fault migrations as `f`. `width` is the chart
/// width in characters.
pub fn render_timeline(tl: &Timeline, width: usize) -> String {
    let Some(t0) = tl.gpu_start() else {
        return String::from("(empty timeline)\n");
    };
    let t1 = tl.gpu_end().unwrap();
    let span = (t1 - t0).max(1e-12);
    let scale = |t: f64| -> usize {
        (((t - t0) / span) * (width as f64 - 1.0))
            .round()
            .clamp(0.0, width as f64 - 1.0) as usize
    };

    // Collect GPU streams in first-use order.
    let mut streams: Vec<u32> = Vec::new();
    for iv in tl.intervals() {
        if (iv.kind == TaskKind::Kernel || iv.kind.is_transfer()) && !streams.contains(&iv.stream) {
            streams.push(iv.stream);
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "GPU span: {:.3} ms ({} streams)\n",
        span * 1e3,
        streams.len()
    ));
    for &s in &streams {
        let mut row = vec![b' '; width];
        for iv in tl.intervals() {
            if iv.stream != s || !(iv.kind == TaskKind::Kernel || iv.kind.is_transfer()) {
                continue;
            }
            let (a, b) = (scale(iv.start), scale(iv.end).max(scale(iv.start)));
            let fill = match iv.kind {
                TaskKind::Kernel => b'#',
                TaskKind::CopyH2D => b'>',
                TaskKind::CopyD2H => b'<',
                TaskKind::CopyP2P => b'=',
                TaskKind::FaultH2D | TaskKind::FaultD2H => b'f',
                _ => b'?',
            };
            for c in row.iter_mut().take(b + 1).skip(a) {
                *c = fill;
            }
            // Stamp a prefix of the label into kernel segments.
            if iv.kind == TaskKind::Kernel {
                let label: Vec<u8> = iv.label.bytes().take(b.saturating_sub(a)).collect();
                for (k, ch) in label.iter().enumerate() {
                    row[a + k] = *ch;
                }
            }
        }
        let name = if s == u32::MAX {
            "host".to_string()
        } else {
            format!("s{s:<3}")
        };
        out.push_str(&format!("{name:>5} |{}|\n", String::from_utf8_lossy(&row)));
    }
    out.push_str("       ('#'/text = kernel, '>' = H2D, '<' = D2H, 'f' = UM fault)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Interval, TaskMeta};

    fn iv(kind: TaskKind, stream: u32, start: f64, end: f64, label: &str) -> Interval {
        Interval {
            task: 0,
            kind,
            stream,
            device: 0,
            link: None,
            label: label.into(),
            start,
            end,
            meta: TaskMeta::default(),
        }
    }

    #[test]
    fn renders_streams_and_legend() {
        let mut tl = Timeline::new();
        tl.push_for_test(iv(TaskKind::CopyH2D, 0, 0.0, 1.0, "x"));
        tl.push_for_test(iv(TaskKind::Kernel, 0, 1.0, 3.0, "square"));
        tl.push_for_test(iv(TaskKind::Kernel, 1, 0.5, 2.0, "square"));
        let s = render_timeline(&tl, 40);
        assert!(s.contains("s0"));
        assert!(s.contains("s1"));
        assert!(s.contains('>'));
        assert!(s.contains("sq"), "kernel label prefix appears: {s}");
        assert!(s.contains("2 streams"));
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        assert!(render_timeline(&Timeline::new(), 40).contains("empty"));
    }
}
