//! Contention-free execution-time bound (Fig. 9).
//!
//! "By looking at dependencies between kernels and measuring their
//! execution time with serial scheduling so that each kernel has full
//! access to the GPU resources, we estimate the resource contention [...]
//! introduced by space-sharing." The bound is the longest dependency path
//! through the benchmark's DAG when every node takes its *solo* duration
//! — i.e. the finish time on a hypothetical machine with infinite
//! replicated resources but the same per-task speed.

/// One node of a dependency graph: solo duration plus indices of the
/// nodes it depends on (which must be smaller — topological order).
#[derive(Debug, Clone)]
pub struct PathNode {
    /// Contention-free duration of the task, seconds.
    pub duration: f64,
    /// Indices of prerequisite nodes.
    pub deps: Vec<usize>,
}

/// Busy time per device: the union of each device's kernel/transfer
/// intervals (overlap counted once), in device order. On a multi-GPU
/// schedule this is the per-device utilization report, and its maximum
/// ([`device_busy_bound`]) lower-bounds the makespan the same way the
/// dependency critical path does: no placement can finish before the
/// busiest device drains.
pub fn per_device_busy(tl: &gpu_sim::Timeline) -> Vec<(u32, f64)> {
    use crate::interval_ops::covered_at_least;
    tl.devices_used()
        .into_iter()
        .map(|d| {
            let spans: Vec<(f64, f64)> = tl
                .of_device(d)
                .filter(|iv| iv.kind == gpu_sim::TaskKind::Kernel || iv.kind.is_transfer())
                .map(|iv| (iv.start, iv.end))
                .collect();
            (d, covered_at_least(&spans, 1))
        })
        .collect()
}

/// The busiest device's busy time — a placement-independent lower bound
/// on the multi-GPU makespan (see [`per_device_busy`]).
pub fn device_busy_bound(tl: &gpu_sim::Timeline) -> f64 {
    per_device_busy(tl)
        .into_iter()
        .map(|(_, b)| b)
        .fold(0.0, f64::max)
}

/// Longest-path finish time over a topologically-ordered DAG.
///
/// # Panics
/// Panics if a dependency index is not smaller than the node's own index.
pub fn critical_path(nodes: &[PathNode]) -> f64 {
    let mut finish = vec![0.0f64; nodes.len()];
    let mut overall: f64 = 0.0;
    for (i, n) in nodes.iter().enumerate() {
        let mut start: f64 = 0.0;
        for &d in &n.deps {
            assert!(d < i, "critical_path requires topological order");
            start = start.max(finish[d]);
        }
        finish[i] = start + n.duration;
        overall = overall.max(finish[i]);
    }
    overall
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(duration: f64, deps: &[usize]) -> PathNode {
        PathNode {
            duration,
            deps: deps.to_vec(),
        }
    }

    #[test]
    fn empty_graph_is_zero() {
        assert_eq!(critical_path(&[]), 0.0);
    }

    #[test]
    fn chain_sums() {
        let g = [n(1.0, &[]), n(2.0, &[0]), n(3.0, &[1])];
        assert_eq!(critical_path(&g), 6.0);
    }

    #[test]
    fn parallel_branches_take_the_max() {
        // Diamond: 0 → {1 (5s), 2 (1s)} → 3.
        let g = [n(1.0, &[]), n(5.0, &[0]), n(1.0, &[0]), n(1.0, &[1, 2])];
        assert_eq!(critical_path(&g), 7.0);
    }

    #[test]
    fn independent_roots_overlap_fully() {
        let g = [n(4.0, &[]), n(2.0, &[]), n(3.0, &[])];
        assert_eq!(critical_path(&g), 4.0);
    }

    #[test]
    #[should_panic(expected = "topological order")]
    fn forward_dependency_panics() {
        let g = [n(1.0, &[1]), n(1.0, &[])];
        critical_path(&g);
    }

    #[test]
    fn device_busy_accounts_overlap_once_per_device() {
        use gpu_sim::{Interval, TaskKind, TaskMeta, Timeline};
        let mut t = Timeline::new();
        for (i, (device, start, end)) in [(0u32, 0.0, 2.0), (0, 1.0, 3.0), (1, 0.0, 1.0)]
            .into_iter()
            .enumerate()
        {
            t.push_for_test(Interval {
                task: i as u32,
                kind: TaskKind::Kernel,
                stream: i as u32,
                device,
                link: None,
                label: format!("k{i}"),
                start,
                end,
                meta: TaskMeta::default(),
            });
        }
        assert_eq!(per_device_busy(&t), vec![(0, 3.0), (1, 1.0)]);
        assert_eq!(device_busy_bound(&t), 3.0);
    }
}
