//! Per-request latency distributions for the serving benchmarks.
//!
//! The serve layer (`grcuda::serve`) measures one virtual-time latency
//! per completed request; this module turns a sample vector into the
//! gated `serve.p50/p90/p99` figures. Percentiles use the
//! **nearest-rank** definition — `value = sorted[ceil(q/100 · n) - 1]`
//! — so every reported figure is an actual sample (no interpolation)
//! and the result is bit-deterministic for a deterministic input
//! vector, which is what lets `bench_gate` diff the keys exactly.

/// Nearest-rank percentile of `samples` at `q` (in percent, `0 < q ≤
/// 100`). Returns `None` on an empty vector. The input need not be
/// sorted; a sorted copy is taken internally.
///
/// With n samples the rank is `ceil(q/100 · n)` clamped to at least 1,
/// so `percentile(&v, 100.0)` is the maximum and `percentile(&v, 50.0)`
/// on `n = 1` is the lone sample.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency samples must not be NaN"));
    let n = sorted.len();
    let rank = ((q / 100.0) * n as f64).ceil() as usize;
    let rank = rank.clamp(1, n);
    Some(sorted[rank - 1])
}

/// Summary statistics of one latency sample vector.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Nearest-rank 50th percentile (median).
    pub p50: f64,
    /// Nearest-rank 90th percentile.
    pub p90: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
    /// Maximum sample.
    pub max: f64,
}

impl LatencySummary {
    /// Summarize a sample vector. Returns `None` on an empty vector.
    pub fn from_samples(samples: &[f64]) -> Option<LatencySummary> {
        if samples.is_empty() {
            return None;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        Some(LatencySummary {
            n: samples.len(),
            mean,
            p50: percentile(samples, 50.0)?,
            p90: percentile(samples, 90.0)?,
            p99: percentile(samples, 99.0)?,
            max: percentile(samples, 100.0)?,
        })
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}",
            self.n, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_vector_has_no_percentiles() {
        assert_eq!(percentile(&[], 50.0), None);
        assert!(LatencySummary::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let v = [7.25];
        assert_eq!(percentile(&v, 1.0), Some(7.25));
        assert_eq!(percentile(&v, 50.0), Some(7.25));
        assert_eq!(percentile(&v, 99.0), Some(7.25));
        assert_eq!(percentile(&v, 100.0), Some(7.25));
        let s = LatencySummary::from_samples(&v).unwrap();
        assert_eq!(
            (s.n, s.mean, s.p50, s.p99, s.max),
            (1, 7.25, 7.25, 7.25, 7.25)
        );
    }

    #[test]
    fn nearest_rank_on_known_decade() {
        // Canonical nearest-rank example: 10 samples 1..=10.
        let v: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        // rank(50%) = ceil(0.5·10) = 5 → 5.0 (not the interpolated 5.5).
        assert_eq!(percentile(&v, 50.0), Some(5.0));
        // rank(90%) = ceil(0.9·10) = 9 → 9.0.
        assert_eq!(percentile(&v, 90.0), Some(9.0));
        // rank(99%) = ceil(0.99·10) = 10 → 10.0.
        assert_eq!(percentile(&v, 99.0), Some(10.0));
        // rank(25%) = ceil(0.25·10) = 3 → 3.0.
        assert_eq!(percentile(&v, 25.0), Some(3.0));
        assert_eq!(percentile(&v, 100.0), Some(10.0));
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let v = [9.0, 1.0, 5.0, 3.0, 7.0];
        // sorted: [1,3,5,7,9]; rank(50%) = ceil(2.5) = 3 → 5.0.
        assert_eq!(percentile(&v, 50.0), Some(5.0));
        // rank(99%) = ceil(4.95) = 5 → 9.0.
        assert_eq!(percentile(&v, 99.0), Some(9.0));
    }

    #[test]
    fn duplicate_heavy_vector_reports_the_duplicated_value() {
        // 99 fast requests at 1.0 and one slow outlier at 100.0.
        let mut v = vec![1.0; 99];
        v.push(100.0);
        // rank(50%) = 50 → 1.0; rank(99%) = 99 → still 1.0 (the outlier
        // is strictly the top 1%); rank(100%) = 100 → 100.0.
        assert_eq!(percentile(&v, 50.0), Some(1.0));
        assert_eq!(percentile(&v, 99.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(100.0));
        let s = LatencySummary::from_samples(&v).unwrap();
        assert_eq!(s.p99, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 1.99).abs() < 1e-12);
    }

    #[test]
    fn two_samples_split_at_the_median() {
        let v = [1.0, 2.0];
        // rank(50%) = ceil(1.0) = 1 → 1.0.
        assert_eq!(percentile(&v, 50.0), Some(1.0));
        assert_eq!(percentile(&v, 51.0), Some(2.0));
    }

    #[test]
    fn summary_display_is_stable() {
        let s = LatencySummary::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(
            format!("{s}"),
            "n=3 mean=2.000 p50=2.000 p90=3.000 p99=3.000 max=3.000"
        );
    }
}
