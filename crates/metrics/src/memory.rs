//! Per-device resident-bytes timelines under finite device memory.
//!
//! The capacity-aware memory manager samples every residency change as
//! a `(time, resident bytes)` step point per device (see
//! `gpu_sim::memgr`). This module turns those raw samples into the
//! queries the evaluation wants: peak pressure, the resident set at an
//! instant, and the time-weighted mean — the memory counterpart of the
//! overlap and link-usage metrics.

use gpu_sim::Time;

/// Per-device resident-bytes step functions.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryTimeline {
    /// For each device, `(time, resident bytes)` change points in
    /// non-decreasing time order. Devices start at zero resident bytes.
    pub per_device: Vec<Vec<(Time, usize)>>,
}

impl MemoryTimeline {
    /// Wrap the samples a context recorded (e.g.
    /// `Cuda::memory_timeline` / `GrCuda::memory_timeline`). Samples
    /// are empty under unlimited capacity — every query then reports
    /// zero pressure.
    pub fn from_samples(per_device: Vec<Vec<(Time, usize)>>) -> Self {
        debug_assert!(per_device
            .iter()
            .all(|s| s.windows(2).all(|w| w[0].0 <= w[1].0)));
        MemoryTimeline { per_device }
    }

    /// Number of devices covered.
    pub fn device_count(&self) -> usize {
        self.per_device.len()
    }

    /// Peak bytes resident on a device over the recorded window.
    pub fn peak(&self, device: u32) -> usize {
        self.per_device[device as usize]
            .iter()
            .map(|&(_, b)| b)
            .max()
            .unwrap_or(0)
    }

    /// Resident bytes on a device at time `t` (step semantics: the last
    /// change at or before `t`; zero before the first sample).
    pub fn at(&self, device: u32, t: Time) -> usize {
        self.per_device[device as usize]
            .iter()
            .take_while(|&&(st, _)| st <= t)
            .last()
            .map(|&(_, b)| b)
            .unwrap_or(0)
    }

    /// Time-weighted mean resident bytes on a device over `[0,
    /// horizon]`. The step value before the first sample is zero; the
    /// last sample extends to the horizon.
    pub fn mean(&self, device: u32, horizon: Time) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        let samples = &self.per_device[device as usize];
        let mut acc = 0.0;
        let mut level = 0usize;
        let mut t_prev: Time = 0.0;
        for &(t, b) in samples {
            let t = t.min(horizon);
            acc += level as f64 * (t - t_prev).max(0.0);
            level = b;
            t_prev = t;
            if t >= horizon {
                break;
            }
        }
        acc += level as f64 * (horizon - t_prev).max(0.0);
        acc / horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl() -> MemoryTimeline {
        MemoryTimeline::from_samples(vec![
            vec![(1.0, 100), (2.0, 300), (3.0, 50)],
            Vec::new(), // idle device
        ])
    }

    #[test]
    fn peak_and_at_follow_the_steps() {
        let t = tl();
        assert_eq!(t.device_count(), 2);
        assert_eq!(t.peak(0), 300);
        assert_eq!(t.peak(1), 0);
        assert_eq!(t.at(0, 0.5), 0, "zero before the first sample");
        assert_eq!(t.at(0, 1.0), 100);
        assert_eq!(t.at(0, 2.5), 300);
        assert_eq!(t.at(0, 99.0), 50);
        assert_eq!(t.at(1, 99.0), 0);
    }

    #[test]
    fn mean_is_time_weighted() {
        let t = tl();
        // [0,1): 0, [1,2): 100, [2,3): 300, [3,4): 50 → mean over 4 s.
        let want = (0.0 + 100.0 + 300.0 + 50.0) / 4.0;
        assert!((t.mean(0, 4.0) - want).abs() < 1e-9);
        assert_eq!(t.mean(0, 0.0), 0.0);
        assert_eq!(t.mean(1, 4.0), 0.0);
        // A horizon inside the samples truncates them.
        assert!((t.mean(0, 2.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn unlimited_runs_report_zero_pressure() {
        let t = MemoryTimeline::from_samples(vec![Vec::new()]);
        assert_eq!(t.peak(0), 0);
        assert_eq!(t.at(0, 1.0), 0);
        assert_eq!(t.mean(0, 1.0), 0.0);
    }
}
