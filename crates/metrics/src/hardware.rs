//! Hardware-utilization metrics (Fig. 12).
//!
//! The paper measures per-kernel counters (bytes to device memory and
//! L2, executed instructions, floating-point operations) with `nvprof`/
//! `ncu` in separate runs, then combines them with the un-instrumented
//! execution timeline: "this evaluation is useful to estimate the global
//! GPU behavior when space-sharing is performed". We do the same, except
//! the counters come from the kernels' cost models — which is precisely
//! the quantity the profiler would report.
//!
//! Because the counters depend only on the kernels (not on scheduling),
//! every metric here scales as `1 / execution time`: a parallel schedule
//! that finishes 1.6× sooner shows 1.6× the memory throughput, matching
//! the paper's observation that the throughput gain is "in-line with the
//! total speedup".

use gpu_sim::{DeviceProfile, Timeline};

/// Aggregate hardware metrics over one benchmark execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HardwareMetrics {
    /// Device-memory throughput, bytes/second.
    pub dram_throughput: f64,
    /// L2 throughput, bytes/second.
    pub l2_throughput: f64,
    /// Average executed instructions per clock cycle per SM.
    pub ipc: f64,
    /// Combined single+double precision GFLOPS.
    pub gflops: f64,
    /// The GPU execution span the totals were divided by, seconds.
    pub span: f64,
}

impl HardwareMetrics {
    /// Compute metrics from a timeline on a device.
    pub fn from_timeline(tl: &Timeline, dev: &DeviceProfile) -> HardwareMetrics {
        let span = tl.gpu_span();
        if span <= 0.0 {
            return HardwareMetrics::default();
        }
        let mut bytes = 0.0;
        let mut l2 = 0.0;
        let mut instr = 0.0;
        let mut flops = 0.0;
        for iv in tl.kernels() {
            bytes += iv.meta.bytes;
            l2 += iv.meta.l2_bytes;
            instr += iv.meta.instructions;
            flops += iv.meta.flops32 + iv.meta.flops64;
        }
        let cycles = span * dev.clock_hz() * dev.sms as f64;
        HardwareMetrics {
            dram_throughput: bytes / span,
            l2_throughput: l2 / span,
            ipc: if cycles > 0.0 { instr / cycles } else { 0.0 },
            gflops: flops / span / 1e9,
            span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Interval, TaskKind, TaskMeta, Timeline};

    fn kernel_iv(start: f64, end: f64, bytes: f64, instr: f64, flops: f64) -> Interval {
        Interval {
            task: 0,
            kind: TaskKind::Kernel,
            stream: 0,
            device: 0,
            link: None,
            label: "k".into(),
            start,
            end,
            meta: TaskMeta {
                bytes,
                l2_bytes: bytes * 2.0,
                instructions: instr,
                flops32: flops,
                flops64: 0.0,
            },
        }
    }

    #[test]
    fn empty_timeline_is_zero() {
        let m = HardwareMetrics::from_timeline(&Timeline::new(), &DeviceProfile::gtx1660_super());
        assert_eq!(m, HardwareMetrics::default());
    }

    #[test]
    fn throughput_is_bytes_over_span() {
        let mut tl = Timeline::new();
        tl.push_for_test(kernel_iv(0.0, 2.0, 100e9, 1e9, 4e9));
        let m = HardwareMetrics::from_timeline(&tl, &DeviceProfile::gtx1660_super());
        assert!((m.dram_throughput - 50e9).abs() < 1.0);
        assert!((m.l2_throughput - 100e9).abs() < 1.0);
        assert!((m.gflops - 2.0).abs() < 1e-9);
        assert_eq!(m.span, 2.0);
    }

    #[test]
    fn faster_schedule_shows_higher_throughput() {
        // Same work in half the time → 2x every rate metric (the paper's
        // Fig. 12 observation).
        let mut slow = Timeline::new();
        slow.push_for_test(kernel_iv(0.0, 1.0, 10e9, 1e9, 1e9));
        slow.push_for_test(kernel_iv(1.0, 2.0, 10e9, 1e9, 1e9));
        let mut fast = Timeline::new();
        fast.push_for_test(kernel_iv(0.0, 1.0, 10e9, 1e9, 1e9));
        fast.push_for_test(kernel_iv(0.0, 1.0, 10e9, 1e9, 1e9));
        let dev = DeviceProfile::gtx1660_super();
        let ms = HardwareMetrics::from_timeline(&slow, &dev);
        let mf = HardwareMetrics::from_timeline(&fast, &dev);
        assert!((mf.dram_throughput / ms.dram_throughput - 2.0).abs() < 1e-9);
        assert!((mf.ipc / ms.ipc - 2.0).abs() < 1e-9);
        assert!((mf.gflops / ms.gflops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ipc_uses_device_clock() {
        let dev = DeviceProfile::gtx1660_super();
        let mut tl = Timeline::new();
        // instructions = 1 second worth of full issue on all SMs → IPC
        // equals the issue width baked into clock_hz bookkeeping (128).
        tl.push_for_test(kernel_iv(0.0, 1.0, 0.0, dev.instr_rate, 0.0));
        let m = HardwareMetrics::from_timeline(&tl, &dev);
        assert!((m.ipc - 128.0).abs() < 1e-6);
    }
}
