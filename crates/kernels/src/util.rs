//! Generic utility kernels.
//!
//! These round out the suite (several paper benchmarks use small helper
//! launches for initialization and staging) and are handy in unit tests
//! and examples that need a kernel without benchmark baggage.

use gpu_sim::{DataBuffer, KernelCost};

use crate::helpers::{reduction_f32, s, streaming_f32};
use crate::KernelDef;

/// `memset_f32(x, value, n)`: fill with a constant.
pub static MEMSET_F32: KernelDef = KernelDef {
    name: "memset_f32",
    nidl: "pointer float, float, sint32",
    func: memset_func,
    cost: memset_cost,
    writes: &[true],
};

fn memset_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let value = scalars[0] as f32;
    let n = s(scalars[1]);
    for v in bufs[0].as_f32_mut().iter_mut().take(n) {
        *v = value;
    }
}

fn memset_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    streaming_f32(0.0, bufs[0].len() as f64, 0.0)
}

/// `axpy(x, y, a, n)`: y ← a·x + y.
pub static AXPY: KernelDef = KernelDef {
    name: "axpy",
    nidl: "const pointer float, pointer float, float, sint32",
    func: axpy_func,
    cost: axpy_cost,
    writes: &[false, true],
};

fn axpy_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let a = scalars[0] as f32;
    let n = s(scalars[1]);
    let x = bufs[0].as_f32();
    let mut y = bufs[1].as_f32_mut();
    for i in 0..n {
        y[i] += a * x[i];
    }
}

fn axpy_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    streaming_f32(2.0 * n, n, 2.0)
}

/// `scale(x, out, a, n)`: out ← a·x.
pub static SCALE: KernelDef = KernelDef {
    name: "scale",
    nidl: "const pointer float, pointer float, float, sint32",
    func: scale_func,
    cost: scale_cost,
    writes: &[false, true],
};

fn scale_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let a = scalars[0] as f32;
    let n = s(scalars[1]);
    let x = bufs[0].as_f32();
    let mut out = bufs[1].as_f32_mut();
    for i in 0..n {
        out[i] = a * x[i];
    }
}

fn scale_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    streaming_f32(n, n, 1.0)
}

/// `dot(x, y, out, n)`: `out[0] ← xᵀy`.
pub static DOT: KernelDef = KernelDef {
    name: "dot",
    nidl: "const pointer float, const pointer float, pointer float, sint32",
    func: dot_func,
    cost: dot_cost,
    writes: &[false, false, true],
};

fn dot_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let n = s(scalars[0]);
    let x = bufs[0].as_f32();
    let y = bufs[1].as_f32();
    let acc: f64 = x
        .iter()
        .zip(y.iter())
        .take(n)
        .map(|(&a, &b)| a as f64 * b as f64)
        .sum();
    bufs[2].as_f32_mut()[0] = acc as f32;
}

fn dot_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    reduction_f32(2.0 * bufs[0].len() as f64, 1.0)
}

/// `pin(w, s, wn, sn)`: fold a large read-only weight array into a
/// smaller state array, `s[i] ← 0.5·s[i] + 1e-6·w[i mod wn]`. The
/// weight/state lengths are independent, which makes it the building
/// block of workloads that *anchor* a chain to a device: whichever
/// device holds `w` dominates both the byte count and the transfer cost
/// of this kernel, so every placement policy keeps it (and therefore
/// `s`) there.
pub static PIN: KernelDef = KernelDef {
    name: "pin",
    nidl: "const pointer float, pointer float, sint32, sint32",
    func: pin_func,
    cost: pin_cost,
    writes: &[false, true],
};

fn pin_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let wn = s(scalars[0]);
    let sn = s(scalars[1]);
    let w = bufs[0].as_f32();
    let mut st = bufs[1].as_f32_mut();
    for i in 0..sn {
        st[i] = 0.5 * st[i] + 1e-6 * w[i % wn];
    }
}

fn pin_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let wn = bufs[0].len() as f64;
    let sn = bufs[1].len() as f64;
    streaming_f32(wn + sn, sn, 2.0)
}

/// `join_sample(a, s, j, an, sn, jn)`: sample two read-only inputs of
/// independent lengths into a small output,
/// `j[i] ← a[(3i+1) mod an] + s[(5i+2) mod sn]`. The mixed-length join
/// every fork/join workload needs — and the kernel whose placement
/// separates byte-count locality from transfer-cost awareness, because
/// its inputs typically live on different devices behind different
/// links.
pub static JOIN: KernelDef = KernelDef {
    name: "join_sample",
    nidl: "const pointer float, const pointer float, pointer float, sint32, sint32, sint32",
    func: join_func,
    cost: join_cost,
    writes: &[false, false, true],
};

fn join_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let an = s(scalars[0]);
    let sn = s(scalars[1]);
    let jn = s(scalars[2]);
    let a = bufs[0].as_f32();
    let st = bufs[1].as_f32();
    let mut j = bufs[2].as_f32_mut();
    for i in 0..jn {
        j[i] = a[(3 * i + 1) % an] + st[(5 * i + 2) % sn];
    }
}

fn join_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let reads = (bufs[0].len() + bufs[1].len()) as f64;
    let writes = bufs[2].len() as f64;
    streaming_f32(reads, writes, 1.0)
}

/// `copy_f32(x, out, n)`: plain copy.
pub static COPY_F32: KernelDef = KernelDef {
    name: "copy_f32",
    nidl: "const pointer float, pointer float, sint32",
    func: copy_func,
    cost: copy_cost,
    writes: &[false, true],
};

fn copy_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let n = s(scalars[0]);
    let x = bufs[0].as_f32();
    bufs[1].as_f32_mut()[..n].copy_from_slice(&x[..n]);
}

fn copy_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    streaming_f32(n, n, 0.0)
}

/// `scale_i32(x, out, a, n)`: out ← a·x over 32-bit integers (saturating
/// at the i32 range like real integer SIMD lanes would wrap — we
/// saturate to keep results deterministic and comparison-friendly).
pub static SCALE_I32: KernelDef = KernelDef {
    name: "scale_i32",
    nidl: "const pointer sint32, pointer sint32, float, sint32",
    func: scale_i32_func,
    cost: scale_i32_cost,
    writes: &[false, true],
};

fn scale_i32_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let a = scalars[0] as i64;
    let n = s(scalars[1]);
    let x = bufs[0].as_i32();
    let mut out = bufs[1].as_i32_mut();
    for i in 0..n {
        out[i] = (a * x[i] as i64).clamp(i32::MIN as i64, i32::MAX as i64) as i32;
    }
}

fn scale_i32_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    streaming_f32(n, n, 1.0)
}

/// `memset_u8(x, value, n)`: fill a byte (`char`) array with a constant.
pub static MEMSET_U8: KernelDef = KernelDef {
    name: "memset_u8",
    nidl: "pointer char, float, sint32",
    func: memset_u8_func,
    cost: memset_u8_cost,
    writes: &[true],
};

fn memset_u8_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let value = scalars[0] as u8;
    let n = s(scalars[1]);
    for v in bufs[0].as_u8_mut().iter_mut().take(n) {
        *v = value;
    }
}

fn memset_u8_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    // Byte elements: a quarter of the f32 streaming traffic.
    streaming_f32(0.0, bufs[0].len() as f64 / 4.0, 0.0)
}

/// `threshold_u8(x, out, t, n)`: binarize a byte image,
/// `out[i] = 255 if x[i] ≥ t else 0` (the staging step of 8-bit image
/// pipelines).
pub static THRESHOLD_U8: KernelDef = KernelDef {
    name: "threshold_u8",
    nidl: "const pointer char, pointer char, float, sint32",
    func: threshold_u8_func,
    cost: threshold_u8_cost,
    writes: &[false, true],
};

fn threshold_u8_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let t = scalars[0] as u8;
    let n = s(scalars[1]);
    let x = bufs[0].as_u8();
    let mut out = bufs[1].as_u8_mut();
    for i in 0..n {
        out[i] = if x[i] >= t { 255 } else { 0 };
    }
}

fn threshold_u8_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    streaming_f32(n / 4.0, n / 4.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::TypedData;

    fn buf(v: Vec<f32>) -> DataBuffer {
        DataBuffer::new(TypedData::F32(v))
    }

    #[test]
    fn memset_fills() {
        let x = DataBuffer::f32_zeros(3);
        memset_func(std::slice::from_ref(&x), &[2.5, 3.0]);
        assert_eq!(*x.as_f32(), vec![2.5; 3]);
    }

    #[test]
    fn memset_u8_fills() {
        let x = DataBuffer::new(TypedData::U8(vec![0; 4]));
        memset_u8_func(std::slice::from_ref(&x), &[9.0, 3.0]);
        assert_eq!(*x.as_u8(), vec![9, 9, 9, 0]);
    }

    #[test]
    fn threshold_u8_binarizes() {
        let x = DataBuffer::new(TypedData::U8(vec![10, 200, 127, 128]));
        let out = DataBuffer::new(TypedData::U8(vec![0; 4]));
        threshold_u8_func(&[x, out.clone()], &[128.0, 4.0]);
        assert_eq!(*out.as_u8(), vec![0, 255, 0, 255]);
    }

    #[test]
    fn scale_i32_scales_and_saturates() {
        let x = DataBuffer::new(TypedData::I32(vec![1, -2, i32::MAX]));
        let out = DataBuffer::new(TypedData::I32(vec![0; 3]));
        scale_i32_func(&[x, out.clone()], &[3.0, 3.0]);
        assert_eq!(*out.as_i32(), vec![3, -6, i32::MAX]);
    }

    #[test]
    fn axpy_accumulates() {
        let x = buf(vec![1.0, 2.0]);
        let y = buf(vec![10.0, 20.0]);
        axpy_func(&[x, y.clone()], &[3.0, 2.0]);
        assert_eq!(*y.as_f32(), vec![13.0, 26.0]);
    }

    #[test]
    fn scale_scales() {
        let x = buf(vec![1.0, -2.0]);
        let out = DataBuffer::f32_zeros(2);
        scale_func(&[x, out.clone()], &[0.5, 2.0]);
        assert_eq!(*out.as_f32(), vec![0.5, -1.0]);
    }

    #[test]
    fn dot_computes_inner_product() {
        let x = buf(vec![1.0, 2.0, 3.0]);
        let y = buf(vec![4.0, 5.0, 6.0]);
        let out = DataBuffer::f32_zeros(1);
        dot_func(&[x, y, out.clone()], &[3.0]);
        assert_eq!(out.as_f32()[0], 32.0);
    }

    #[test]
    fn copy_respects_prefix_length() {
        let x = buf(vec![1.0, 2.0, 3.0]);
        let out = DataBuffer::f32_zeros(3);
        copy_func(&[x, out.clone()], &[2.0]);
        assert_eq!(*out.as_f32(), vec![1.0, 2.0, 0.0]);
    }
}
