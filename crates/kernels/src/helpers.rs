//! Shared cost-model building blocks.
//!
//! Calibration idioms used by every kernel:
//!
//! * **streaming** kernels (map-like): DRAM traffic = bytes in + bytes
//!   out, ~4 instructions per flop, negligible latency floor;
//! * **reduction** kernels: read-dominated DRAM traffic plus a latency
//!   floor for the tree depth (the paper's VEC derives from NVIDIA's
//!   "Faster Parallel Reductions on Kepler");
//! * **cache-friendly** kernels (dense matrices, stencils): most traffic
//!   hits L2; DRAM sees only compulsory misses. The paper's Fig. 12
//!   observes exactly this split ("benchmarks that operate on dense
//!   matrices make heavier use of L2 cache").

use gpu_sim::KernelCost;

/// Latency floor per level of a tree reduction (dependent warp rounds).
pub const REDUCTION_LEVEL_LATENCY: f64 = 1.2e-6;

/// Cost of a streaming (map-style) f32 kernel touching `read` + `write`
/// elements with `flops_per_elem` single-precision operations each.
pub fn streaming_f32(read_elems: f64, write_elems: f64, flops_per_elem: f64) -> KernelCost {
    let n = read_elems.max(write_elems);
    KernelCost {
        flops32: n * flops_per_elem,
        flops64: 0.0,
        dram_bytes: 4.0 * (read_elems + write_elems),
        l2_bytes: 4.0 * (read_elems + write_elems),
        instructions: n * (4.0 + flops_per_elem),
        min_time: 0.0,
        inefficiency: 0.0,
    }
}

/// Cost of a streaming f64 kernel (B&S): same shape, double the bytes.
pub fn streaming_f64(read_elems: f64, write_elems: f64, flops_per_elem: f64) -> KernelCost {
    let n = read_elems.max(write_elems);
    KernelCost {
        flops32: 0.0,
        flops64: n * flops_per_elem,
        dram_bytes: 8.0 * (read_elems + write_elems),
        l2_bytes: 8.0 * (read_elems + write_elems),
        instructions: n * (6.0 + flops_per_elem),
        min_time: 0.0,
        inefficiency: 0.0,
    }
}

/// Cost of a tree reduction over `n` f32 elements.
pub fn reduction_f32(n: f64, flops_per_elem: f64) -> KernelCost {
    let levels = (n.max(2.0)).log2().ceil();
    KernelCost {
        flops32: n * flops_per_elem,
        flops64: 0.0,
        dram_bytes: 4.0 * n,
        l2_bytes: 4.0 * n * 1.5, // partial sums bounce through L2
        instructions: n * (4.0 + flops_per_elem),
        min_time: levels * REDUCTION_LEVEL_LATENCY,
        inefficiency: 0.0,
    }
}

/// Cost of a dense compute kernel where a working set of `hot_elems`
/// f32 values is re-read `reuse` times: the re-reads hit L2, DRAM sees
/// each element once.
pub fn cached_f32(hot_elems: f64, reuse: f64, flops_total: f64) -> KernelCost {
    KernelCost {
        flops32: flops_total,
        flops64: 0.0,
        dram_bytes: 4.0 * hot_elems,
        l2_bytes: 4.0 * hot_elems * reuse.max(1.0),
        instructions: flops_total * 1.5 + hot_elems,
        min_time: 0.0,
        inefficiency: 0.0,
    }
}

/// Round a float scalar argument back to `usize` (scalars ride in the
/// `&[f64]` argument list).
pub fn s(x: f64) -> usize {
    debug_assert!(x >= 0.0 && x.fract() == 0.0, "scalar {x} is not an index");
    x as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_cost_scales_linearly() {
        let a = streaming_f32(1e6, 1e6, 2.0);
        let b = streaming_f32(2e6, 2e6, 2.0);
        assert!((b.dram_bytes / a.dram_bytes - 2.0).abs() < 1e-12);
        assert!((b.flops32 / a.flops32 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reduction_has_log_latency_floor() {
        let c = reduction_f32(1024.0, 1.0);
        assert!((c.min_time - 10.0 * REDUCTION_LEVEL_LATENCY).abs() < 1e-12);
    }

    #[test]
    fn cached_kernel_amplifies_l2_not_dram() {
        let c = cached_f32(1e6, 8.0, 1e7);
        assert!(c.l2_bytes > 7.0 * c.dram_bytes);
    }

    #[test]
    fn f64_streaming_doubles_bytes() {
        let a = streaming_f32(1e6, 1e6, 1.0);
        let b = streaming_f64(1e6, 1e6, 1.0);
        assert!((b.dram_bytes / a.dram_bytes - 2.0).abs() < 1e-12);
        assert_eq!(b.flops32, 0.0);
        assert!(b.flops64 > 0.0);
    }

    #[test]
    fn scalar_cast_roundtrips() {
        assert_eq!(s(42.0), 42);
        assert_eq!(s(0.0), 0);
    }
}
