#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # kernels — the paper's 33 benchmark kernels
//!
//! The paper evaluates its scheduler on "6 benchmarks and a total of 33
//! different kernels representing common GPU workloads" (§V-B). Each
//! kernel here has two halves:
//!
//! * a **functional implementation** (`func`): a plain CPU routine over
//!   [`DataBuffer`]s that produces the same numbers the CUDA kernel
//!   would. It runs when the simulated launch completes, so every
//!   experiment's output is checkable against a reference;
//! * a **cost model** (`cost`): a [`KernelCost`] derived from the actual
//!   argument sizes (flops, DRAM/L2 bytes, instructions, latency floor)
//!   that the simulator turns into a device-specific duration and
//!   resource demand.
//!
//! Kernels are grouped by benchmark: [`vec_ops`] (VEC), [`black_scholes`]
//! (B&S), [`image`] (IMG), [`ml`] (ML ensemble), [`hits`] (HITS),
//! [`dl`] (deep learning), plus a few generic [`util`] kernels.
//!
//! The original CUDA sources the paper derives its kernels from are
//! cited in §V-B (NVIDIA samples, LightSpMV, an open-source Gaussian
//! blur); the functional implementations here are written from the same
//! specifications.

pub mod black_scholes;
pub mod dl;
pub mod helpers;
pub mod hits;
pub mod image;
pub mod ml;
pub mod util;
pub mod vec_ops;

use gpu_sim::{DataBuffer, KernelCost};

/// A kernel's functional implementation: buffers in declaration order
/// plus the scalar arguments of the launch.
pub type KernelFn = fn(&[DataBuffer], &[f64]);

/// A kernel's cost model: same inputs, returns the analytic work
/// description.
pub type CostFn = fn(&[DataBuffer], &[f64]) -> KernelCost;

/// A registered kernel: what GrCUDA's `buildkernel` would return after
/// NVRTC compilation, minus the PTX.
#[derive(Clone, Copy)]
pub struct KernelDef {
    /// Kernel name (appears on timelines and in figures).
    pub name: &'static str,
    /// NIDL signature string, exactly as a GrCUDA user would write it
    /// (`const pointer float` marks read-only arrays — the annotation
    /// the scheduler's Fig. 3 rules rely on).
    pub nidl: &'static str,
    /// Functional CPU implementation.
    pub func: KernelFn,
    /// Analytic cost model.
    pub cost: CostFn,
    /// Declared write effects: one flag per *pointer* parameter, in
    /// declaration order — true iff the implementation writes that
    /// buffer. This is ground truth about `func`, declared independently
    /// of the NIDL string, so the schedule sanitizer can cross-check the
    /// two: a parameter annotated `const` in [`KernelDef::nidl`] but
    /// flagged written here is a lying signature (the scheduler would
    /// under-synchronize it).
    pub writes: WriteEffects,
}

/// Per-pointer-parameter write effects of a kernel implementation (see
/// [`KernelDef::writes`]).
pub type WriteEffects = &'static [bool];

impl std::fmt::Debug for KernelDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelDef")
            .field("name", &self.name)
            .field("nidl", &self.nidl)
            .finish()
    }
}

/// Every kernel in the suite, for registry-driven tests and docs.
pub fn all_kernels() -> Vec<&'static KernelDef> {
    vec![
        // VEC
        &vec_ops::SQUARE,
        &vec_ops::REDUCE_SUM_DIFF,
        // B&S
        &black_scholes::BLACK_SCHOLES,
        // IMG
        &image::GAUSSIAN_BLUR,
        &image::SOBEL,
        &image::MAXIMUM,
        &image::MINIMUM,
        &image::EXTEND,
        &image::UNSHARPEN,
        &image::COMBINE,
        &image::COPY_IMG,
        // ML
        &ml::RR_NORMALIZE,
        &ml::RR_MATMUL,
        &ml::RR_ADD_INTERCEPT,
        &ml::SOFTMAX,
        &ml::NB_MATMUL,
        &ml::NB_ROW_MAX,
        &ml::NB_LSE,
        &ml::NB_EXP,
        &ml::ARGMAX_COMBINE,
        // HITS
        &hits::SPMV,
        &hits::SUM_REDUCE,
        &hits::DIVIDE,
        // DL
        &dl::CONV2D,
        &dl::POOL2D,
        &dl::GAP,
        &dl::CONCAT,
        &dl::DENSE,
        // util
        &util::MEMSET_F32,
        &util::AXPY,
        &util::SCALE,
        &util::DOT,
        &util::COPY_F32,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_33_kernels() {
        // The paper reports "a total of 33 different kernels".
        assert_eq!(all_kernels().len(), 33);
    }

    #[test]
    fn kernel_names_are_unique() {
        let mut names: Vec<&str> = all_kernels().iter().map(|k| k.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn every_kernel_has_a_nonempty_signature() {
        for k in all_kernels() {
            assert!(!k.nidl.is_empty(), "{} has no signature", k.name);
            assert!(k.nidl.contains("pointer"), "{} takes no arrays?", k.name);
        }
    }

    #[test]
    fn write_effects_match_signatures_exactly() {
        // Every shipped kernel is honest: its declared write effects
        // must line up one-to-one with the NIDL pointer parameters, and
        // a parameter is written iff it is not `const`/`in`-annotated.
        // (The schedule sanitizer relies on this agreement; lying
        // signatures are exercised separately with hand-built defs.)
        let mut kernels = all_kernels();
        kernels.extend([&util::PIN, &util::JOIN]);
        kernels.extend([&util::SCALE_I32, &util::MEMSET_U8, &util::THRESHOLD_U8]);
        for k in kernels {
            let pointer_params: Vec<&str> = k
                .nidl
                .split(',')
                .map(str::trim)
                .filter(|p| p.contains("pointer") || p.split_whitespace().any(|w| w == "ptr"))
                .collect();
            assert_eq!(
                k.writes.len(),
                pointer_params.len(),
                "{}: one write-effect flag per pointer parameter",
                k.name
            );
            for (i, p) in pointer_params.iter().enumerate() {
                let read_only = p.split_whitespace().any(|w| w == "const" || w == "in");
                assert_eq!(
                    k.writes[i], !read_only,
                    "{}: pointer param {i} ({p:?}) disagrees with its write effect",
                    k.name
                );
            }
        }
    }

    #[test]
    fn every_cost_model_is_finite_and_nonnegative() {
        // Smoke-check the cost models on small representative inputs via
        // each module's own tests; here just assert the registry wiring
        // does not alias functions accidentally.
        let ks = all_kernels();
        for (i, a) in ks.iter().enumerate() {
            for b in ks.iter().skip(i + 1) {
                assert!(
                    !(a.func as usize == b.func as usize && a.name != b.name) || a.nidl == b.nidl,
                    "{} and {} share an implementation unexpectedly",
                    a.name,
                    b.name
                );
            }
        }
    }
}
