//! IMG — image processing pipeline (paper §V-B).
//!
//! "An image processing pipeline that combines a sharpened picture with
//! copies blurred at low and medium frequencies, to sharpen the edges,
//! soften everything else, and enhance the subject. The benchmark has
//! complex dependencies on 4 streams." Derived from the open-source CUDA
//! Gaussian blur the paper cites plus the classic Sobel operator.
//!
//! Images are single-channel `f32` matrices stored row-major; scalar
//! arguments carry the geometry.

use gpu_sim::{DataBuffer, KernelCost};

use crate::helpers::{cached_f32, reduction_f32, s, streaming_f32};
use crate::KernelDef;

/// `gaussian_blur(img, out, rows, cols, kernel, diameter)`: 2-D
/// convolution with a precomputed Gaussian kernel.
pub static GAUSSIAN_BLUR: KernelDef = KernelDef {
    name: "gaussian_blur",
    nidl: "const pointer float, pointer float, sint32, sint32, const pointer float, sint32",
    func: blur_func,
    cost: blur_cost,
    writes: &[false, true, false],
};

fn blur_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let rows = s(scalars[0]);
    let cols = s(scalars[1]);
    let diameter = s(scalars[2]);
    let img = bufs[0].as_f32();
    let mut out = bufs[1].as_f32_mut();
    let kern = bufs[2].as_f32();
    let radius = (diameter / 2) as isize;
    for r in 0..rows as isize {
        for c in 0..cols as isize {
            let mut acc = 0.0f32;
            for dr in -radius..=radius {
                for dc in -radius..=radius {
                    let rr = (r + dr).clamp(0, rows as isize - 1) as usize;
                    let cc = (c + dc).clamp(0, cols as isize - 1) as usize;
                    let ki = ((dr + radius) * diameter as isize + (dc + radius)) as usize;
                    acc += img[rr * cols + cc] * kern[ki];
                }
            }
            out[r as usize * cols + c as usize] = acc;
        }
    }
}

fn blur_cost(bufs: &[DataBuffer], scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    let d = scalars[2].max(1.0);
    // Stencil: each pixel read d² times, but neighbours hit L2/shared
    // memory; DRAM sees each pixel ~once. The inefficiency models halo
    // handling and shared-memory bank pressure (calibrated against the
    // paper's IMG serial times).
    cached_f32(2.0 * n, d * d / 2.0, n * d * d * 2.0).with_inefficiency(4.0)
}

/// `sobel(img, out, rows, cols)`: gradient-magnitude edge detection.
pub static SOBEL: KernelDef = KernelDef {
    name: "sobel",
    nidl: "const pointer float, pointer float, sint32, sint32",
    func: sobel_func,
    cost: sobel_cost,
    writes: &[false, true],
};

fn sobel_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let rows = s(scalars[0]);
    let cols = s(scalars[1]);
    let img = bufs[0].as_f32();
    let mut out = bufs[1].as_f32_mut();
    const GX: [[f32; 3]; 3] = [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]];
    const GY: [[f32; 3]; 3] = [[-1.0, -2.0, -1.0], [0.0, 0.0, 0.0], [1.0, 2.0, 1.0]];
    for r in 0..rows as isize {
        for c in 0..cols as isize {
            let mut gx = 0.0f32;
            let mut gy = 0.0f32;
            for dr in -1..=1isize {
                for dc in -1..=1isize {
                    let rr = (r + dr).clamp(0, rows as isize - 1) as usize;
                    let cc = (c + dc).clamp(0, cols as isize - 1) as usize;
                    let p = img[rr * cols + cc];
                    gx += p * GX[(dr + 1) as usize][(dc + 1) as usize];
                    gy += p * GY[(dr + 1) as usize][(dc + 1) as usize];
                }
            }
            out[r as usize * cols + c as usize] = (gx * gx + gy * gy).sqrt();
        }
    }
}

fn sobel_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    cached_f32(2.0 * n, 4.5, n * 20.0).with_inefficiency(4.0)
}

/// `maximum(x, out, n)`: `out[0] ← max(x)`.
pub static MAXIMUM: KernelDef = KernelDef {
    name: "maximum",
    nidl: "const pointer float, pointer float, sint32",
    func: max_func,
    cost: minmax_cost,
    writes: &[false, true],
};

fn max_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let n = s(scalars[0]);
    let x = bufs[0].as_f32();
    bufs[1].as_f32_mut()[0] = x.iter().take(n).copied().fold(f32::NEG_INFINITY, f32::max);
}

/// `minimum(x, out, n)`: `out[0] ← min(x)`.
pub static MINIMUM: KernelDef = KernelDef {
    name: "minimum",
    nidl: "const pointer float, pointer float, sint32",
    func: min_func,
    cost: minmax_cost,
    writes: &[false, true],
};

fn min_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let n = s(scalars[0]);
    let x = bufs[0].as_f32();
    bufs[1].as_f32_mut()[0] = x.iter().take(n).copied().fold(f32::INFINITY, f32::min);
}

fn minmax_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    reduction_f32(bufs[0].len() as f64, 1.0)
}

/// `extend(x, min, max, n)`: linearly rescale the dynamic range of `x`
/// to `[0, 1]` in place, given the precomputed extremes.
pub static EXTEND: KernelDef = KernelDef {
    name: "extend",
    nidl: "pointer float, const pointer float, const pointer float, sint32",
    func: extend_func,
    cost: extend_cost,
    writes: &[true, false, false],
};

fn extend_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let n = s(scalars[0]);
    let lo = bufs[1].as_f32()[0];
    let hi = bufs[2].as_f32()[0];
    let span = (hi - lo).max(1e-12);
    let mut x = bufs[0].as_f32_mut();
    for v in x.iter_mut().take(n) {
        *v = ((*v - lo) / span).clamp(0.0, 1.0);
    }
}

fn extend_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    streaming_f32(n, n, 4.0)
}

/// `unsharpen(img, blurred, out, amount, n)`: classic unsharp masking —
/// sharpen by subtracting the blur.
pub static UNSHARPEN: KernelDef = KernelDef {
    name: "unsharpen",
    nidl: "const pointer float, const pointer float, pointer float, float, sint32",
    func: unsharpen_func,
    cost: unsharpen_cost,
    writes: &[false, false, true],
};

fn unsharpen_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let amount = scalars[0] as f32;
    let n = s(scalars[1]);
    let img = bufs[0].as_f32();
    let blur = bufs[1].as_f32();
    let mut out = bufs[2].as_f32_mut();
    for i in 0..n {
        out[i] = (img[i] * (1.0 + amount) - blur[i] * amount).clamp(0.0, 1.0);
    }
}

fn unsharpen_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[2].len() as f64;
    streaming_f32(2.0 * n, n, 5.0)
}

/// `combine(x, y, mask, out, n)`: blend two images through a mask:
/// out = x·mask + y·(1−mask).
pub static COMBINE: KernelDef = KernelDef {
    name: "combine",
    nidl: "const pointer float, const pointer float, const pointer float, pointer float, sint32",
    func: combine_func,
    cost: combine_cost,
    writes: &[false, false, false, true],
};

fn combine_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let n = s(scalars[0]);
    let x = bufs[0].as_f32();
    let y = bufs[1].as_f32();
    let m = bufs[2].as_f32();
    let mut out = bufs[3].as_f32_mut();
    for i in 0..n {
        out[i] = x[i] * m[i] + y[i] * (1.0 - m[i]);
    }
}

fn combine_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[3].len() as f64;
    streaming_f32(3.0 * n, n, 4.0)
}

/// `copy(x, out, n)`: pixel copy (the pipeline stages frames with it).
pub static COPY_IMG: KernelDef = KernelDef {
    name: "copy_img",
    nidl: "const pointer float, pointer float, sint32",
    func: copy_func,
    cost: copy_cost,
    writes: &[false, true],
};

fn copy_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let n = s(scalars[0]);
    let x = bufs[0].as_f32();
    let mut out = bufs[1].as_f32_mut();
    out[..n].copy_from_slice(&x[..n]);
}

fn copy_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    streaming_f32(n, n, 0.0)
}

/// Build a normalized Gaussian kernel of the given diameter and sigma
/// (helper for the IMG benchmark and its tests).
pub fn gaussian_kernel(diameter: usize, sigma: f64) -> Vec<f32> {
    let radius = diameter as isize / 2;
    let mut k = Vec::with_capacity(diameter * diameter);
    let mut sum = 0.0f64;
    for dr in -radius..=radius {
        for dc in -radius..=radius {
            let w = (-((dr * dr + dc * dc) as f64) / (2.0 * sigma * sigma)).exp();
            k.push(w as f32);
            sum += w;
        }
    }
    for w in &mut k {
        *w = (*w as f64 / sum) as f32;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::TypedData;

    fn img(v: Vec<f32>) -> DataBuffer {
        DataBuffer::new(TypedData::F32(v))
    }

    #[test]
    fn gaussian_kernel_is_normalized() {
        let k = gaussian_kernel(5, 1.5);
        assert_eq!(k.len(), 25);
        let sum: f32 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        // Center weight is the largest.
        let center = k[12];
        assert!(k.iter().all(|&w| w <= center));
    }

    #[test]
    fn blur_preserves_constant_images() {
        let rows = 8;
        let cols = 8;
        let x = img(vec![0.5; rows * cols]);
        let out = DataBuffer::f32_zeros(rows * cols);
        let kern = img(gaussian_kernel(3, 1.0));
        blur_func(&[x, out.clone(), kern], &[rows as f64, cols as f64, 3.0]);
        for &v in out.as_f32().iter() {
            assert!((v - 0.5).abs() < 1e-5);
        }
    }

    #[test]
    fn blur_smooths_an_impulse() {
        let _rows = 5;
        let _cols = 5;
        let mut data = vec![0.0f32; 25];
        data[12] = 1.0;
        let x = img(data);
        let out = DataBuffer::f32_zeros(25);
        let kern = img(gaussian_kernel(3, 1.0));
        blur_func(&[x, out.clone(), kern], &[5.0, 5.0, 3.0]);
        let o = out.as_f32();
        assert!(o[12] < 1.0 && o[12] > 0.2);
        assert!(o[7] > 0.0, "energy spreads to neighbours");
    }

    #[test]
    fn sobel_finds_a_vertical_edge() {
        let rows = 4;
        let cols = 6;
        let mut data = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 3..cols {
                data[r * cols + c] = 1.0;
            }
        }
        let x = img(data);
        let out = DataBuffer::f32_zeros(rows * cols);
        sobel_func(&[x, out.clone()], &[rows as f64, cols as f64]);
        let o = out.as_f32();
        // Strong response at the edge columns, zero far away.
        assert!(o[cols + 2] > 1.0);
        assert!(o[cols].abs() < 1e-6);
    }

    #[test]
    fn min_max_extend_normalizes_range() {
        let x = img(vec![2.0, 4.0, 6.0, 10.0]);
        let lo = DataBuffer::f32_zeros(1);
        let hi = DataBuffer::f32_zeros(1);
        min_func(&[x.clone(), lo.clone()], &[4.0]);
        max_func(&[x.clone(), hi.clone()], &[4.0]);
        assert_eq!(lo.as_f32()[0], 2.0);
        assert_eq!(hi.as_f32()[0], 10.0);
        extend_func(&[x.clone(), lo, hi], &[4.0]);
        let o = x.as_f32();
        assert_eq!(o[0], 0.0);
        assert_eq!(o[3], 1.0);
        assert!((o[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn unsharpen_amplifies_detail() {
        let imgb = img(vec![0.8, 0.2]);
        let blur = img(vec![0.5, 0.5]);
        let out = DataBuffer::f32_zeros(2);
        unsharpen_func(&[imgb, blur, out.clone()], &[0.5, 2.0]);
        let o = out.as_f32();
        assert!(o[0] > 0.8, "bright pixel gets brighter");
        assert!(o[1] < 0.2, "dark pixel gets darker");
    }

    #[test]
    fn combine_blends_through_mask() {
        let x = img(vec![1.0, 1.0]);
        let y = img(vec![0.0, 0.0]);
        let m = img(vec![1.0, 0.25]);
        let out = DataBuffer::f32_zeros(2);
        combine_func(&[x, y, m, out.clone()], &[2.0]);
        assert_eq!(*out.as_f32(), vec![1.0, 0.25]);
    }

    #[test]
    fn copy_copies() {
        let x = img(vec![1.0, 2.0, 3.0]);
        let out = DataBuffer::f32_zeros(3);
        copy_func(&[x, out.clone()], &[3.0]);
        assert_eq!(*out.as_f32(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn blur_cost_grows_with_kernel_diameter() {
        let x = DataBuffer::f32_zeros(1 << 16);
        let o = DataBuffer::f32_zeros(1 << 16);
        let k3 = img(gaussian_kernel(3, 1.0));
        let k7 = img(gaussian_kernel(7, 2.0));
        let c3 = blur_cost(&[x.clone(), o.clone(), k3], &[256.0, 256.0, 3.0]);
        let c7 = blur_cost(&[x, o, k7], &[256.0, 256.0, 7.0]);
        assert!(c7.flops32 > 4.0 * c3.flops32);
    }
}
