//! ML — machine-learning ensemble (paper §V-B, Figs. 2 and 10).
//!
//! "An ML pipeline that combines Categorical Naïve Bayes and Ridge
//! Regression classifiers by applying softmax normalization and averaging
//! scores. The input matrix has 200 features. This benchmark contains
//! branch imbalance (the Naïve Bayes classifier takes longer) and
//! read-only arguments."
//!
//! Layouts: the input `X` is `rows × features` row-major `f32`; model
//! matrices are `classes × features`; score matrices are
//! `rows × classes`.

use gpu_sim::{DataBuffer, KernelCost};

use crate::helpers::{cached_f32, s, streaming_f32};
use crate::KernelDef;

/// `rr_normalize(x, z, rows, features)`: column standardization
/// (subtract the feature mean, divide by the feature standard
/// deviation) — the `NORM` stage of the ridge branch.
pub static RR_NORMALIZE: KernelDef = KernelDef {
    name: "rr_normalize",
    nidl: "const pointer float, pointer float, sint32, sint32",
    func: rr_normalize_func,
    cost: rr_normalize_cost,
    writes: &[false, true],
};

fn rr_normalize_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let rows = s(scalars[0]);
    let features = s(scalars[1]);
    let x = bufs[0].as_f32();
    let mut z = bufs[1].as_f32_mut();
    for j in 0..features {
        let mut mean = 0.0f64;
        for i in 0..rows {
            mean += x[i * features + j] as f64;
        }
        mean /= rows as f64;
        let mut var = 0.0f64;
        for i in 0..rows {
            let d = x[i * features + j] as f64 - mean;
            var += d * d;
        }
        let std = (var / rows as f64).sqrt().max(1e-12);
        for i in 0..rows {
            z[i * features + j] = ((x[i * features + j] as f64 - mean) / std) as f32;
        }
    }
}

fn rr_normalize_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    // Three dependent passes over the matrix with column-strided access
    // (poor coalescing): heavily latency-bound.
    streaming_f32(3.0 * n, n, 5.0).with_inefficiency(30.0)
}

/// `rr_matmul(z, w, out, rows, features, classes)`: score matrix
/// `out = z · wᵀ` — the tall-skinny GEMM whose low parallelism per row
/// the paper blames for ML's low serial IPC (§V-F).
pub static RR_MATMUL: KernelDef = KernelDef {
    name: "rr_matmul",
    nidl: "const pointer float, const pointer float, pointer float, sint32, sint32, sint32",
    func: matmul_func,
    cost: matmul_cost,
    writes: &[false, false, true],
};

/// `nb_matmul(x, logp, out, rows, features, classes)`: Naïve Bayes
/// log-likelihoods, structurally the same GEMM against the per-class
/// log-probability table.
pub static NB_MATMUL: KernelDef = KernelDef {
    name: "nb_matmul",
    nidl: "const pointer float, const pointer float, pointer float, sint32, sint32, sint32",
    func: matmul_func,
    cost: matmul_cost,
    writes: &[false, false, true],
};

fn matmul_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let rows = s(scalars[0]);
    let features = s(scalars[1]);
    let classes = s(scalars[2]);
    let a = bufs[0].as_f32();
    let b = bufs[1].as_f32(); // classes × features
    let mut out = bufs[2].as_f32_mut();
    for i in 0..rows {
        for c in 0..classes {
            let mut acc = 0.0f64;
            for j in 0..features {
                acc += a[i * features + j] as f64 * b[c * features + j] as f64;
            }
            out[i * classes + c] = acc as f32;
        }
    }
}

/// The paper measures a serial IPC of just 0.04 for ML (§V-F): its
/// tall-matrix kernels are severely latency-bound and run at a tiny
/// fraction of peak. Calibrated against the paper's GTX 1660 Super
/// serial execution times (~0.8 us per input row).
const MATMUL_INEFFICIENCY: f64 = 200.0;

fn matmul_cost(bufs: &[DataBuffer], scalars: &[f64]) -> KernelCost {
    let rows = scalars[0];
    let features = scalars[1];
    let classes = scalars[2];
    let flops = 2.0 * rows * features * classes;
    // X streams from DRAM once; the small model matrix lives in L2.
    let mut c = cached_f32(bufs[0].len() as f64 + bufs[2].len() as f64, classes, flops)
        .with_inefficiency(MATMUL_INEFFICIENCY);
    // Tall matrices with few columns leave threads idle: latency floor
    // proportional to the dot-product length.
    c.min_time = 2e-6 + features * 1e-9;
    c
}

/// `rr_add_intercept(out, b, rows, classes)`: `out[i][c] += b[c]` — the
/// `ADDV` stage.
pub static RR_ADD_INTERCEPT: KernelDef = KernelDef {
    name: "rr_add_intercept",
    nidl: "pointer float, const pointer float, sint32, sint32",
    func: add_intercept_func,
    cost: add_intercept_cost,
    writes: &[true, false],
};

fn add_intercept_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let rows = s(scalars[0]);
    let classes = s(scalars[1]);
    let mut out = bufs[0].as_f32_mut();
    let b = bufs[1].as_f32();
    for i in 0..rows {
        for c in 0..classes {
            out[i * classes + c] += b[c];
        }
    }
}

fn add_intercept_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    streaming_f32(n, n, 1.0)
}

/// `softmax(m, rows, classes)`: numerically-stable in-place row softmax.
pub static SOFTMAX: KernelDef = KernelDef {
    name: "softmax",
    nidl: "pointer float, sint32, sint32",
    func: softmax_func,
    cost: softmax_cost,
    writes: &[true],
};

fn softmax_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let rows = s(scalars[0]);
    let classes = s(scalars[1]);
    let mut m = bufs[0].as_f32_mut();
    for i in 0..rows {
        let row = &mut m[i * classes..(i + 1) * classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f64;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v as f64;
        }
        for v in row.iter_mut() {
            *v = (*v as f64 / sum) as f32;
        }
    }
}

fn softmax_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    streaming_f32(n, n, 12.0).with_inefficiency(8.0)
}

/// `nb_row_max(m, amax, rows, classes)`: per-row maximum — the `MAX`
/// stage of the Naïve Bayes branch.
pub static NB_ROW_MAX: KernelDef = KernelDef {
    name: "nb_row_max",
    nidl: "const pointer float, pointer float, sint32, sint32",
    func: nb_row_max_func,
    cost: rowwise_cost,
    writes: &[false, true],
};

fn nb_row_max_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let rows = s(scalars[0]);
    let classes = s(scalars[1]);
    let m = bufs[0].as_f32();
    let mut amax = bufs[1].as_f32_mut();
    for i in 0..rows {
        amax[i] = m[i * classes..(i + 1) * classes]
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
    }
}

/// `nb_lse(m, amax, lse, rows, classes)`: per-row log-sum-exp given the
/// row maxima — the `LSE` stage.
pub static NB_LSE: KernelDef = KernelDef {
    name: "nb_lse",
    nidl: "const pointer float, const pointer float, pointer float, sint32, sint32",
    func: nb_lse_func,
    cost: rowwise_cost,
    writes: &[false, false, true],
};

fn nb_lse_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let rows = s(scalars[0]);
    let classes = s(scalars[1]);
    let m = bufs[0].as_f32();
    let amax = bufs[1].as_f32();
    let mut lse = bufs[2].as_f32_mut();
    for i in 0..rows {
        let sum: f64 = m[i * classes..(i + 1) * classes]
            .iter()
            .map(|&v| ((v - amax[i]) as f64).exp())
            .sum();
        lse[i] = sum.ln() as f32;
    }
}

/// `nb_exp(m, amax, lse, rows, classes)`: normalize in place:
/// `m[i][c] ← exp(m − amax − lse)` — the `EXP` stage producing
/// probabilities.
pub static NB_EXP: KernelDef = KernelDef {
    name: "nb_exp",
    nidl: "pointer float, const pointer float, const pointer float, sint32, sint32",
    func: nb_exp_func,
    cost: rowwise_cost,
    writes: &[true, false, false],
};

fn nb_exp_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let rows = s(scalars[0]);
    let classes = s(scalars[1]);
    let mut m = bufs[0].as_f32_mut();
    let amax = bufs[1].as_f32();
    let lse = bufs[2].as_f32();
    for i in 0..rows {
        for c in 0..classes {
            let v = m[i * classes + c];
            m[i * classes + c] = ((v - amax[i] - lse[i]) as f64).exp() as f32;
        }
    }
}

fn rowwise_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    // Row-strided reductions over 10-wide rows: latency-bound too.
    streaming_f32(n, n / 8.0, 8.0).with_inefficiency(10.0)
}

/// `argmax_combine(r1, r2, out, rows, classes)`: the `ARGMAX` ensemble
/// stage — average the two classifiers' probabilities and pick the
/// winning class per row.
pub static ARGMAX_COMBINE: KernelDef = KernelDef {
    name: "argmax_combine",
    nidl: "const pointer float, const pointer float, pointer sint32, sint32, sint32",
    func: argmax_func,
    cost: argmax_cost,
    writes: &[false, false, true],
};

fn argmax_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let rows = s(scalars[0]);
    let classes = s(scalars[1]);
    let r1 = bufs[0].as_f32();
    let r2 = bufs[1].as_f32();
    let mut out = bufs[2].as_i32_mut();
    for i in 0..rows {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for c in 0..classes {
            let v = 0.5 * (r1[i * classes + c] + r2[i * classes + c]);
            if v > best_v {
                best_v = v;
                best = c;
            }
        }
        out[i] = best as i32;
    }
}

fn argmax_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    streaming_f32(2.0 * n, n / 8.0, 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::TypedData;

    fn buf(v: Vec<f32>) -> DataBuffer {
        DataBuffer::new(TypedData::F32(v))
    }

    #[test]
    fn normalize_zero_means_unit_variance() {
        let rows = 50;
        let features = 3;
        let data: Vec<f32> = (0..rows * features)
            .map(|i| ((i * 37) % 17) as f32 - 5.0)
            .collect();
        let x = buf(data);
        let z = DataBuffer::f32_zeros(rows * features);
        rr_normalize_func(&[x, z.clone()], &[rows as f64, features as f64]);
        let zv = z.as_f32();
        for j in 0..features {
            let mean: f64 =
                (0..rows).map(|i| zv[i * features + j] as f64).sum::<f64>() / rows as f64;
            let var: f64 = (0..rows)
                .map(|i| (zv[i * features + j] as f64 - mean).powi(2))
                .sum::<f64>()
                / rows as f64;
            assert!(mean.abs() < 1e-5, "column {j} mean = {mean}");
            assert!((var - 1.0).abs() < 1e-4, "column {j} var = {var}");
        }
    }

    #[test]
    fn matmul_matches_manual_dot_products() {
        // 2×3 input, 2 classes.
        let x = buf(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let w = buf(vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0]); // class0=[1,0,0], class1=[0,1,1]
        let out = DataBuffer::f32_zeros(4);
        matmul_func(&[x, w, out.clone()], &[2.0, 3.0, 2.0]);
        assert_eq!(*out.as_f32(), vec![1.0, 5.0, 4.0, 11.0]);
    }

    #[test]
    fn add_intercept_broadcasts() {
        let m = buf(vec![0.0, 0.0, 1.0, 1.0]);
        let b = buf(vec![10.0, 20.0]);
        add_intercept_func(&[m.clone(), b], &[2.0, 2.0]);
        assert_eq!(*m.as_f32(), vec![10.0, 20.0, 11.0, 21.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_preserve_order() {
        let m = buf(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        softmax_func(std::slice::from_ref(&m), &[2.0, 3.0]);
        let v = m.as_f32();
        for i in 0..2 {
            let sum: f32 = v[i * 3..(i + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(v[i * 3] < v[i * 3 + 1] && v[i * 3 + 1] < v[i * 3 + 2]);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let m = buf(vec![1000.0, 1001.0]);
        softmax_func(std::slice::from_ref(&m), &[1.0, 2.0]);
        let v = m.as_f32();
        assert!(v.iter().all(|x| x.is_finite()));
        assert!((v[0] + v[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn nb_chain_produces_normalized_probabilities() {
        let rows = 3;
        let classes = 4;
        let m = buf((0..12).map(|i| (i as f32) * 0.3 - 2.0).collect());
        let amax = DataBuffer::f32_zeros(rows);
        let lse = DataBuffer::f32_zeros(rows);
        nb_row_max_func(&[m.clone(), amax.clone()], &[rows as f64, classes as f64]);
        nb_lse_func(
            &[m.clone(), amax.clone(), lse.clone()],
            &[rows as f64, classes as f64],
        );
        nb_exp_func(&[m.clone(), amax, lse], &[rows as f64, classes as f64]);
        let v = m.as_f32();
        for i in 0..rows {
            let sum: f32 = v[i * classes..(i + 1) * classes].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
            assert!(v[i * classes..(i + 1) * classes].iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn argmax_combines_both_classifiers() {
        // Classifier 1 prefers class 0; classifier 2 strongly prefers 1.
        let r1 = buf(vec![0.6, 0.4]);
        let r2 = buf(vec![0.1, 0.9]);
        let out = DataBuffer::i32_zeros(1);
        argmax_func(&[r1, r2, out.clone()], &[1.0, 2.0]);
        assert_eq!(out.as_i32()[0], 1);
    }

    #[test]
    fn matmul_cost_counts_fma_flops() {
        let x = DataBuffer::f32_zeros(1000 * 200);
        let w = DataBuffer::f32_zeros(10 * 200);
        let out = DataBuffer::f32_zeros(1000 * 10);
        let c = matmul_cost(&[x, w, out], &[1000.0, 200.0, 10.0]);
        assert_eq!(c.flops32, 2.0 * 1000.0 * 200.0 * 10.0);
        assert_eq!(c.inefficiency, MATMUL_INEFFICIENCY);
        assert!(c.min_time > 0.0, "tall-matrix latency floor");
    }
}
