//! VEC — Vector Squares (paper §V-B, Fig. 4).
//!
//! "A simple benchmark that measures a basic case of task-level
//! parallelism and computes the sum of differences of 2 squared vectors."
//! Derived from NVIDIA's *Faster Parallel Reductions on Kepler* pattern:
//! two independent element-wise squares followed by a fused
//! difference-and-reduce.

use gpu_sim::{DataBuffer, KernelCost};

use crate::helpers::{reduction_f32, s, streaming_f32};
use crate::KernelDef;

/// `square(x, n)`: `x[i] ← x[i]²` in place (paper Fig. 4's K1).
pub static SQUARE: KernelDef = KernelDef {
    name: "square",
    nidl: "pointer float, sint32",
    func: square_func,
    cost: square_cost,
    writes: &[true],
};

fn square_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let n = s(scalars[0]);
    let mut x = bufs[0].as_f32_mut();
    for v in x.iter_mut().take(n) {
        *v *= *v;
    }
}

fn square_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    // read + write each element, 1 multiply.
    streaming_f32(n, n, 1.0)
}

/// `reduce_sum_diff(x, y, z, n)`: `z[0] ← Σ (x[i] − y[i])` with x and y
/// read-only (paper Fig. 4's K2, `const ptr, const ptr, ptr, sint32`).
pub static REDUCE_SUM_DIFF: KernelDef = KernelDef {
    name: "reduce_sum_diff",
    nidl: "const pointer float, const pointer float, pointer float, sint32",
    func: reduce_func,
    cost: reduce_cost,
    writes: &[false, false, true],
};

fn reduce_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let n = s(scalars[0]);
    let x = bufs[0].as_f32();
    let y = bufs[1].as_f32();
    // f64 accumulator mirrors the shared-memory tree reduction's
    // stability rather than naive f32 serial summation.
    let acc: f64 = x
        .iter()
        .zip(y.iter())
        .take(n)
        .map(|(&a, &b)| (a - b) as f64)
        .sum();
    bufs[2].as_f32_mut()[0] = acc as f32;
}

fn reduce_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    // Reads two arrays, one subtract + one add per element.
    let mut c = reduction_f32(2.0 * n, 1.0);
    c.flops32 = 2.0 * n;
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_squares_in_place() {
        let x = DataBuffer::new(gpu_sim::TypedData::F32(vec![1.0, -2.0, 3.0]));
        square_func(std::slice::from_ref(&x), &[3.0]);
        assert_eq!(*x.as_f32(), vec![1.0, 4.0, 9.0]);
    }

    #[test]
    fn square_respects_n() {
        let x = DataBuffer::new(gpu_sim::TypedData::F32(vec![2.0, 2.0]));
        square_func(std::slice::from_ref(&x), &[1.0]);
        assert_eq!(*x.as_f32(), vec![4.0, 2.0]);
    }

    #[test]
    fn reduce_computes_sum_of_differences() {
        let x = DataBuffer::new(gpu_sim::TypedData::F32(vec![4.0, 9.0, 16.0]));
        let y = DataBuffer::new(gpu_sim::TypedData::F32(vec![1.0, 1.0, 1.0]));
        let z = DataBuffer::f32_zeros(1);
        reduce_func(&[x, y, z.clone()], &[3.0]);
        assert_eq!(z.as_f32()[0], 26.0);
    }

    #[test]
    fn vec_end_to_end_matches_closed_form() {
        // sum((i²) - (i²)) over identical inputs = 0.
        let n = 1000;
        let data: Vec<f32> = (0..n).map(|i| i as f32 * 0.01).collect();
        let x = DataBuffer::new(gpu_sim::TypedData::F32(data.clone()));
        let y = DataBuffer::new(gpu_sim::TypedData::F32(data));
        let z = DataBuffer::f32_zeros(1);
        square_func(std::slice::from_ref(&x), &[n as f64]);
        square_func(std::slice::from_ref(&y), &[n as f64]);
        reduce_func(&[x, y, z.clone()], &[n as f64]);
        assert!(z.as_f32()[0].abs() < 1e-3);
    }

    #[test]
    fn costs_scale_with_input() {
        let small = DataBuffer::f32_zeros(1_000);
        let large = DataBuffer::f32_zeros(1_000_000);
        let cs = square_cost(&[small], &[1e3]);
        let cl = square_cost(&[large], &[1e6]);
        assert!(cl.dram_bytes > 900.0 * cs.dram_bytes);
    }

    #[test]
    fn reduce_cost_has_latency_floor() {
        let x = DataBuffer::f32_zeros(1 << 20);
        let c = reduce_cost(
            &[x.clone(), x.clone(), DataBuffer::f32_zeros(1)],
            &[(1 << 20) as f64],
        );
        assert!(c.min_time > 0.0);
    }
}
