//! HITS — hubs and authorities on a graph (paper §V-B).
//!
//! "It computes the HITS algorithm on a graph using repeated sparse
//! matrix-vector multiplication on a matrix and its transpose, and is
//! implemented with LightSpMV. It contains complex cross-synchronizations
//! and multiple iterations."
//!
//! The sparse matrix is CSR: `rowptr` (`i32`, `n+1` entries), `colidx`
//! (`i32`, nnz entries), `vals` (`f32`, nnz entries). One HITS iteration:
//! `a ← Aᵀh`, `h ← A a`, each followed by a sum-reduction and a
//! normalizing division (the paper's Fig. 6 shows SPMV → SUM → DIV on
//! two cross-synchronized streams).

use gpu_sim::{DataBuffer, KernelCost};

use crate::helpers::{reduction_f32, s, streaming_f32, REDUCTION_LEVEL_LATENCY};
use crate::KernelDef;

/// `spmv(rowptr, colidx, vals, x, y, n)`: y ← A·x over CSR (LightSpMV's
/// vector-kernel shape).
pub static SPMV: KernelDef = KernelDef {
    name: "spmv",
    nidl: "const pointer sint32, const pointer sint32, const pointer float, \
           const pointer float, pointer float, sint32",
    func: spmv_func,
    cost: spmv_cost,
    writes: &[false, false, false, false, true],
};

fn spmv_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let n = s(scalars[0]);
    let rowptr = bufs[0].as_i32();
    let colidx = bufs[1].as_i32();
    let vals = bufs[2].as_f32();
    let x = bufs[3].as_f32();
    let mut y = bufs[4].as_f32_mut();
    for r in 0..n {
        let lo = rowptr[r] as usize;
        let hi = rowptr[r + 1] as usize;
        let mut acc = 0.0f64;
        for k in lo..hi {
            acc += vals[k] as f64 * x[colidx[k] as usize] as f64;
        }
        y[r] = acc as f32;
    }
}

fn spmv_cost(bufs: &[DataBuffer], scalars: &[f64]) -> KernelCost {
    let n = scalars[0];
    let nnz = bufs[2].len() as f64;
    KernelCost {
        flops32: 2.0 * nnz,
        flops64: 0.0,
        // CSR streams rowptr/colidx/vals once; x is gathered with poor
        // locality (partial L2 hits), y written once.
        dram_bytes: 4.0 * (n + 1.0) + 4.0 * nnz + 4.0 * nnz + 4.0 * nnz * 0.5 + 4.0 * n,
        l2_bytes: 4.0 * nnz * 2.0,
        instructions: nnz * 8.0 + n * 4.0,
        min_time: 2e-6,
        inefficiency: 0.0,
    }
}

/// `sum_reduce(x, out, n)`: `out[0] ← Σ x` (normalization denominator).
pub static SUM_REDUCE: KernelDef = KernelDef {
    name: "sum_reduce",
    nidl: "const pointer float, pointer float, sint32",
    func: sum_func,
    cost: sum_cost,
    writes: &[false, true],
};

fn sum_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let n = s(scalars[0]);
    let x = bufs[0].as_f32();
    let acc: f64 = x.iter().take(n).map(|&v| v as f64).sum();
    bufs[1].as_f32_mut()[0] = acc as f32;
}

fn sum_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    reduction_f32(bufs[0].len() as f64, 1.0)
}

/// `divide(x, denom, out, n)`: `out[i] ← x[i] / denom[0]` — normalizes the
/// hub/authority scores each iteration.
pub static DIVIDE: KernelDef = KernelDef {
    name: "divide",
    nidl: "const pointer float, const pointer float, pointer float, sint32",
    func: divide_func,
    cost: divide_cost,
    writes: &[false, false, true],
};

fn divide_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let n = s(scalars[0]);
    let x = bufs[0].as_f32();
    let d = bufs[1].as_f32()[0].max(1e-12);
    let mut out = bufs[2].as_f32_mut();
    for i in 0..n {
        out[i] = x[i] / d;
    }
}

fn divide_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    let mut c = streaming_f32(n, n, 1.0);
    c.min_time = REDUCTION_LEVEL_LATENCY;
    c
}

/// Build a deterministic pseudo-random CSR adjacency matrix with `n`
/// rows and roughly `deg` out-edges per row (uniform weights), plus its
/// transpose — the two operands of one HITS iteration.
pub fn random_graph_csr(n: usize, deg: usize, seed: u64) -> (Csr, Csr) {
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * deg);
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for r in 0..n {
        for _ in 0..deg {
            let c = (next() as usize) % n;
            edges.push((r, c));
        }
    }
    (
        Csr::from_edges(n, &edges),
        Csr::from_edges(n, &transpose(&edges)),
    )
}

fn transpose(edges: &[(usize, usize)]) -> Vec<(usize, usize)> {
    edges.iter().map(|&(r, c)| (c, r)).collect()
}

/// A CSR matrix in the three-array layout LightSpMV consumes.
#[derive(Debug, Clone)]
pub struct Csr {
    /// `n + 1` row offsets.
    pub rowptr: Vec<i32>,
    /// Column index per non-zero.
    pub colidx: Vec<i32>,
    /// Value per non-zero (all 1.0 for adjacency matrices).
    pub vals: Vec<f32>,
}

impl Csr {
    /// Build CSR from an edge list (duplicates kept, as HITS tolerates
    /// multi-edges).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut counts = vec![0i32; n + 1];
        for &(r, _) in edges {
            counts[r + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let rowptr = counts.clone();
        let mut cursor = rowptr.clone();
        let mut colidx = vec![0i32; edges.len()];
        for &(r, c) in edges {
            colidx[cursor[r] as usize] = c as i32;
            cursor[r] += 1;
        }
        Csr {
            rowptr,
            colidx,
            vals: vec![1.0; edges.len()],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rowptr.len() - 1
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::TypedData;

    fn b_f32(v: Vec<f32>) -> DataBuffer {
        DataBuffer::new(TypedData::F32(v))
    }
    fn b_i32(v: Vec<i32>) -> DataBuffer {
        DataBuffer::new(TypedData::I32(v))
    }

    #[test]
    fn csr_from_edges_roundtrips() {
        // 0→1, 0→2, 2→0
        let m = Csr::from_edges(3, &[(0, 1), (0, 2), (2, 0)]);
        assert_eq!(m.rowptr, vec![0, 2, 2, 3]);
        assert_eq!(m.colidx, vec![1, 2, 0]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn spmv_matches_dense_multiply() {
        // A = [[0,1,1],[0,0,0],[1,0,0]], x = [1,2,3] → Ax = [5,0,1]
        let m = Csr::from_edges(3, &[(0, 1), (0, 2), (2, 0)]);
        let y = DataBuffer::f32_zeros(3);
        spmv_func(
            &[
                b_i32(m.rowptr),
                b_i32(m.colidx),
                b_f32(m.vals),
                b_f32(vec![1.0, 2.0, 3.0]),
                y.clone(),
            ],
            &[3.0],
        );
        assert_eq!(*y.as_f32(), vec![5.0, 0.0, 1.0]);
    }

    #[test]
    fn sum_and_divide_normalize() {
        let x = b_f32(vec![1.0, 3.0]);
        let d = DataBuffer::f32_zeros(1);
        sum_func(&[x.clone(), d.clone()], &[2.0]);
        assert_eq!(d.as_f32()[0], 4.0);
        let out = DataBuffer::f32_zeros(2);
        divide_func(&[x, d, out.clone()], &[2.0]);
        assert_eq!(*out.as_f32(), vec![0.25, 0.75]);
    }

    #[test]
    fn hits_iteration_converges_on_a_star_graph() {
        // Star: hub 0 points at 1..=4. Node 0 must end with all the hub
        // score, nodes 1..=4 share the authority score.
        let n = 5;
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
        let a_mat = Csr::from_edges(n, &edges);
        let at_mat = Csr::from_edges(n, &edges.iter().map(|&(r, c)| (c, r)).collect::<Vec<_>>());
        let mut h = vec![1.0f32; n];
        let mut a = vec![1.0f32; n];
        for _ in 0..10 {
            // a = Aᵀ h; normalize
            let ab = DataBuffer::f32_zeros(n);
            spmv_func(
                &[
                    b_i32(at_mat.rowptr.clone()),
                    b_i32(at_mat.colidx.clone()),
                    b_f32(at_mat.vals.clone()),
                    b_f32(h.clone()),
                    ab.clone(),
                ],
                &[n as f64],
            );
            let sum = DataBuffer::f32_zeros(1);
            sum_func(&[ab.clone(), sum.clone()], &[n as f64]);
            let an = DataBuffer::f32_zeros(n);
            divide_func(&[ab, sum, an.clone()], &[n as f64]);
            a = an.as_f32().clone();
            // h = A a; normalize
            let hb = DataBuffer::f32_zeros(n);
            spmv_func(
                &[
                    b_i32(a_mat.rowptr.clone()),
                    b_i32(a_mat.colidx.clone()),
                    b_f32(a_mat.vals.clone()),
                    b_f32(a.clone()),
                    hb.clone(),
                ],
                &[n as f64],
            );
            let sum = DataBuffer::f32_zeros(1);
            sum_func(&[hb.clone(), sum.clone()], &[n as f64]);
            let hn = DataBuffer::f32_zeros(n);
            divide_func(&[hb, sum, hn.clone()], &[n as f64]);
            h = hn.as_f32().clone();
        }
        assert!((h[0] - 1.0).abs() < 1e-5, "hub score concentrates: {h:?}");
        for i in 1..n {
            assert!(
                (a[i] - 0.25).abs() < 1e-5,
                "authority spreads evenly: {a:?}"
            );
        }
        assert!(a[0] < 1e-6);
    }

    #[test]
    fn random_graph_has_matching_transpose() {
        let (a, at) = random_graph_csr(100, 8, 42);
        assert_eq!(a.nnz(), at.nnz());
        assert_eq!(a.rows(), at.rows());
        assert_eq!(a.nnz(), 800);
    }

    #[test]
    fn spmv_cost_scales_with_nnz() {
        let (a, _) = random_graph_csr(1000, 4, 1);
        let (b, _) = random_graph_csr(1000, 16, 1);
        let ca = spmv_cost(
            &[
                b_i32(a.rowptr.clone()),
                b_i32(a.colidx.clone()),
                b_f32(a.vals.clone()),
                b_f32(vec![0.0; 1000]),
                DataBuffer::f32_zeros(1000),
            ],
            &[1000.0],
        );
        let cb = spmv_cost(
            &[
                b_i32(b.rowptr.clone()),
                b_i32(b.colidx.clone()),
                b_f32(b.vals.clone()),
                b_f32(vec![0.0; 1000]),
                DataBuffer::f32_zeros(1000),
            ],
            &[1000.0],
        );
        assert!(cb.flops32 / ca.flops32 > 3.9);
    }
}
