//! B&S — Black & Scholes European call option pricing (paper §V-B).
//!
//! "Black & Scholes equation for European call options, for 10 underlying
//! stocks, and 10 vectors of prices. Adapted from [the NVIDIA CUDA
//! sample] to simulate a computationally intensive streaming benchmark
//! with double-precision arithmetic and many independent kernels that can
//! be overlapped with no dependencies."
//!
//! The benchmark launches this one kernel ten times on ten independent
//! price vectors; its defining property is heavy **fp64** work, which is
//! why the paper sees such different behaviour between the fp64-starved
//! GTX 1660 Super and the full-rate Tesla P100 (§V-F).

use gpu_sim::{DataBuffer, KernelCost};

use crate::helpers::{s, streaming_f64};
use crate::KernelDef;

/// `bs(x, y, n)`: `y[i] ← call price of spot x[i]`. Strike, rate,
/// volatility and expiry ride as scalar arguments (they match the CUDA
/// sample's constants by default).
pub static BLACK_SCHOLES: KernelDef = KernelDef {
    name: "bs",
    nidl: "const pointer double, pointer double, sint32, double, double, double, double",
    func: bs_func,
    cost: bs_cost,
    writes: &[false, true],
};

/// Cumulative normal distribution via the Abramowitz–Stegun polynomial
/// (the approximation the CUDA sample uses).
fn cnd(d: f64) -> f64 {
    const A1: f64 = 0.31938153;
    const A2: f64 = -0.356563782;
    const A3: f64 = 1.781477937;
    const A4: f64 = -1.821255978;
    const A5: f64 = 1.330274429;
    const RSQRT2PI: f64 = 0.398_942_280_401_432_7;
    let k = 1.0 / (1.0 + 0.2316419 * d.abs());
    let poly = k * (A1 + k * (A2 + k * (A3 + k * (A4 + k * A5))));
    let cnd = RSQRT2PI * (-0.5 * d * d).exp() * poly;
    if d > 0.0 {
        1.0 - cnd
    } else {
        cnd
    }
}

/// Price one option.
fn price(spot: f64, strike: f64, rate: f64, vol: f64, t: f64) -> f64 {
    let sqrt_t = t.sqrt();
    let d1 = ((spot / strike).ln() + (rate + 0.5 * vol * vol) * t) / (vol * sqrt_t);
    let d2 = d1 - vol * sqrt_t;
    let expiry_discount = (-rate * t).exp();
    spot * cnd(d1) - strike * expiry_discount * cnd(d2)
}

fn bs_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let n = s(scalars[0]);
    let (strike, rate, vol, t) = params(scalars);
    let x = bufs[0].as_f64();
    let mut y = bufs[1].as_f64_mut();
    for i in 0..n {
        y[i] = price(x[i], strike, rate, vol, t);
    }
}

fn params(scalars: &[f64]) -> (f64, f64, f64, f64) {
    let strike = scalars.get(1).copied().unwrap_or(100.0);
    let rate = scalars.get(2).copied().unwrap_or(0.02);
    let vol = scalars.get(3).copied().unwrap_or(0.30);
    let t = scalars.get(4).copied().unwrap_or(1.0);
    (strike, rate, vol, t)
}

fn bs_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    // ~15 arithmetic expressions, but ln/exp/sqrt/div expand to long
    // fp64 sequences on consumer parts: calibrated against the paper's
    // GTX 1660 Super serial times (~2 ns/option of pure fp64 work),
    // about 300 fp64-equivalent operations per option.
    streaming_f64(n, n, 300.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnd_is_a_cdf() {
        assert!((cnd(0.0) - 0.5).abs() < 1e-9);
        assert!(cnd(5.0) > 0.999);
        assert!(cnd(-5.0) < 0.001);
        // monotone
        assert!(cnd(-1.0) < cnd(0.0) && cnd(0.0) < cnd(1.0));
        // symmetric
        assert!((cnd(1.3) + cnd(-1.3) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn at_the_money_price_is_positive_and_below_spot() {
        let p = price(100.0, 100.0, 0.02, 0.3, 1.0);
        assert!(p > 0.0 && p < 100.0, "p = {p}");
        // Textbook value for these parameters ≈ 12.8216.
        assert!((p - 12.8216).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn deep_in_the_money_tends_to_intrinsic_value() {
        let p = price(300.0, 100.0, 0.02, 0.3, 1.0);
        let intrinsic = 300.0 - 100.0 * (-0.02f64).exp();
        assert!(
            (p - intrinsic).abs() < 0.5,
            "p = {p}, intrinsic = {intrinsic}"
        );
    }

    #[test]
    fn kernel_prices_a_vector() {
        let x = DataBuffer::new(gpu_sim::TypedData::F64(vec![80.0, 100.0, 120.0]));
        let y = DataBuffer::f64_zeros(3);
        bs_func(&[x, y.clone()], &[3.0]);
        let out = y.as_f64();
        assert!(
            out[0] < out[1] && out[1] < out[2],
            "call price increases with spot"
        );
    }

    #[test]
    fn cost_is_fp64_dominated() {
        let x = DataBuffer::f64_zeros(1 << 20);
        let y = DataBuffer::f64_zeros(1 << 20);
        let c = bs_cost(&[x, y], &[(1 << 20) as f64]);
        assert_eq!(c.flops32, 0.0);
        assert!(c.flops64 > 0.0);
        // On a GTX 1660 Super this kernel must be compute-bound, on a
        // P100 transfer/memory-bound — the paper's §V-F observation.
        let g = gpu_sim::Grid::d1(4096, 256);
        let (t1660, _) = c.solo_profile(g, &gpu_sim::DeviceProfile::gtx1660_super());
        let (tp100, _) = c.solo_profile(g, &gpu_sim::DeviceProfile::tesla_p100());
        // (the ratio is < 30x because the P100 run becomes memory-bound
        // once its fp64 units stop being the bottleneck)
        assert!(t1660 > 5.0 * tp100, "t1660={t1660}, tp100={tp100}");
    }
}
