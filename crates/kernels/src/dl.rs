//! DL — convolutional embedding network (paper §V-B).
//!
//! "A convolutional neural network that projects 2 input images to low
//! dimensional embeddings and combines the embeddings using a dense
//! layer. Similar neural networks can be used, for example, to classify
//! if 2 images contain the same subject."
//!
//! The paper's Fig. 6 shows, per input image: CONV → POOL → CONV → POOL,
//! then a global pooling, a CONCAT joining the two towers and a final
//! DOT (dense) layer. Tensors are stored `[channels][height][width]`
//! row-major `f32`; filters are `[out_c][in_c][kh][kw]`.

use gpu_sim::{DataBuffer, KernelCost};

use crate::helpers::{cached_f32, s, streaming_f32};
use crate::KernelDef;

/// `conv2d(x, w, y, in_c, h, w_dim, out_c, k)`: valid-padding 2-D
/// convolution with ReLU activation (stride 1).
pub static CONV2D: KernelDef = KernelDef {
    name: "conv2d",
    nidl: "const pointer float, const pointer float, pointer float, \
           sint32, sint32, sint32, sint32, sint32",
    func: conv2d_func,
    cost: conv2d_cost,
    writes: &[false, false, true],
};

/// Output spatial size of a valid convolution.
pub fn conv_out(h: usize, k: usize) -> usize {
    h + 1 - k
}

fn conv2d_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let in_c = s(scalars[0]);
    let h = s(scalars[1]);
    let w_dim = s(scalars[2]);
    let out_c = s(scalars[3]);
    let k = s(scalars[4]);
    let oh = conv_out(h, k);
    let ow = conv_out(w_dim, k);
    let x = bufs[0].as_f32();
    let w = bufs[1].as_f32();
    let mut y = bufs[2].as_f32_mut();
    for oc in 0..out_c {
        for r in 0..oh {
            for c in 0..ow {
                let mut acc = 0.0f64;
                for ic in 0..in_c {
                    for kr in 0..k {
                        for kc in 0..k {
                            let xv = x[ic * h * w_dim + (r + kr) * w_dim + (c + kc)];
                            let wv = w[oc * in_c * k * k + ic * k * k + kr * k + kc];
                            acc += xv as f64 * wv as f64;
                        }
                    }
                }
                // ReLU
                y[oc * oh * ow + r * ow + c] = (acc.max(0.0)) as f32;
            }
        }
    }
}

fn conv2d_cost(bufs: &[DataBuffer], scalars: &[f64]) -> KernelCost {
    let in_c = scalars[0];
    let h = scalars[1];
    let w_dim = scalars[2];
    let out_c = scalars[3];
    let k = scalars[4];
    let oh = h + 1.0 - k;
    let ow = w_dim + 1.0 - k;
    let flops = 2.0 * out_c * oh * ow * in_c * k * k;
    // Input tile + filters are heavily reused through shared memory/L2.
    // The inefficiency models the unoptimized direct convolution the
    // benchmark uses (no Winograd/implicit GEMM), calibrated against
    // the paper's DL serial times.
    cached_f32(
        bufs[0].len() as f64 + bufs[2].len() as f64,
        out_c * k,
        flops,
    )
    .with_inefficiency(8.0)
}

/// `pool2d(x, y, c, h, w)`: 2×2 average pooling, stride 2.
pub static POOL2D: KernelDef = KernelDef {
    name: "pool2d",
    nidl: "const pointer float, pointer float, sint32, sint32, sint32",
    func: pool2d_func,
    cost: pool2d_cost,
    writes: &[false, true],
};

fn pool2d_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let ch = s(scalars[0]);
    let h = s(scalars[1]);
    let w = s(scalars[2]);
    let oh = h / 2;
    let ow = w / 2;
    let x = bufs[0].as_f32();
    let mut y = bufs[1].as_f32_mut();
    for c in 0..ch {
        for r in 0..oh {
            for q in 0..ow {
                let base = c * h * w + 2 * r * w + 2 * q;
                y[c * oh * ow + r * ow + q] =
                    0.25 * (x[base] + x[base + 1] + x[base + w] + x[base + w + 1]);
            }
        }
    }
}

fn pool2d_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    streaming_f32(n, n / 4.0, 4.0)
}

/// `gap(x, y, c, hw)`: global average pooling — one value per channel
/// (the embedding).
pub static GAP: KernelDef = KernelDef {
    name: "gap",
    nidl: "const pointer float, pointer float, sint32, sint32",
    func: gap_func,
    cost: gap_cost,
    writes: &[false, true],
};

fn gap_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let ch = s(scalars[0]);
    let hw = s(scalars[1]);
    let x = bufs[0].as_f32();
    let mut y = bufs[1].as_f32_mut();
    for c in 0..ch {
        let sum: f64 = x[c * hw..(c + 1) * hw].iter().map(|&v| v as f64).sum();
        y[c] = (sum / hw as f64) as f32;
    }
}

fn gap_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    let mut c = streaming_f32(n, 0.0, 1.0);
    c.min_time = 3e-6;
    c
}

/// `concat(a, b, out, n_a, n_b)`: concatenate the two tower embeddings.
pub static CONCAT: KernelDef = KernelDef {
    name: "concat",
    nidl: "const pointer float, const pointer float, pointer float, sint32, sint32",
    func: concat_func,
    cost: concat_cost,
    writes: &[false, false, true],
};

fn concat_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let na = s(scalars[0]);
    let nb = s(scalars[1]);
    let a = bufs[0].as_f32();
    let b = bufs[1].as_f32();
    let mut out = bufs[2].as_f32_mut();
    out[..na].copy_from_slice(&a[..na]);
    out[na..na + nb].copy_from_slice(&b[..nb]);
}

fn concat_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[2].len() as f64;
    streaming_f32(n, n, 0.0)
}

/// `dense(x, w, out, n)`: final dense layer with sigmoid — the `DOT`
/// node of Fig. 6. Produces one similarity score in `out[0]`.
pub static DENSE: KernelDef = KernelDef {
    name: "dense",
    nidl: "const pointer float, const pointer float, pointer float, sint32",
    func: dense_func,
    cost: dense_cost,
    writes: &[false, false, true],
};

fn dense_func(bufs: &[DataBuffer], scalars: &[f64]) {
    let n = s(scalars[0]);
    let x = bufs[0].as_f32();
    let w = bufs[1].as_f32();
    let acc: f64 = x
        .iter()
        .zip(w.iter())
        .take(n)
        .map(|(&a, &b)| a as f64 * b as f64)
        .sum();
    bufs[2].as_f32_mut()[0] = (1.0 / (1.0 + (-acc).exp())) as f32;
}

fn dense_cost(bufs: &[DataBuffer], _scalars: &[f64]) -> KernelCost {
    let n = bufs[0].len() as f64;
    let mut c = streaming_f32(2.0 * n, 0.0, 2.0);
    c.min_time = 3e-6;
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::TypedData;

    fn buf(v: Vec<f32>) -> DataBuffer {
        DataBuffer::new(TypedData::F32(v))
    }

    #[test]
    fn conv_output_geometry() {
        assert_eq!(conv_out(28, 3), 26);
        assert_eq!(conv_out(5, 5), 1);
    }

    #[test]
    fn conv2d_identity_filter_with_relu() {
        // 1×3×3 input, one 1×1 filter of weight 1 → output = relu(input).
        let x = buf(vec![-1.0, 2.0, -3.0, 4.0, -5.0, 6.0, -7.0, 8.0, -9.0]);
        let w = buf(vec![1.0]);
        let y = DataBuffer::f32_zeros(9);
        conv2d_func(&[x, w, y.clone()], &[1.0, 3.0, 3.0, 1.0, 1.0]);
        assert_eq!(
            *y.as_f32(),
            vec![0.0, 2.0, 0.0, 4.0, 0.0, 6.0, 0.0, 8.0, 0.0]
        );
    }

    #[test]
    fn conv2d_box_filter_sums_window() {
        // 1×3×3 ones, 3×3 filter of ones → single output 9.
        let x = buf(vec![1.0; 9]);
        let w = buf(vec![1.0; 9]);
        let y = DataBuffer::f32_zeros(1);
        conv2d_func(&[x, w, y.clone()], &[1.0, 3.0, 3.0, 1.0, 3.0]);
        assert_eq!(y.as_f32()[0], 9.0);
    }

    #[test]
    fn pool_averages_quads() {
        let x = buf(vec![1.0, 3.0, 5.0, 7.0]); // 1 channel, 2×2
        let y = DataBuffer::f32_zeros(1);
        pool2d_func(&[x, y.clone()], &[1.0, 2.0, 2.0]);
        assert_eq!(y.as_f32()[0], 4.0);
    }

    #[test]
    fn gap_reduces_each_channel() {
        let x = buf(vec![1.0, 3.0, 10.0, 20.0]); // 2 channels × 2 pixels
        let y = DataBuffer::f32_zeros(2);
        gap_func(&[x, y.clone()], &[2.0, 2.0]);
        assert_eq!(*y.as_f32(), vec![2.0, 15.0]);
    }

    #[test]
    fn concat_joins_in_order() {
        let a = buf(vec![1.0, 2.0]);
        let b = buf(vec![3.0]);
        let out = DataBuffer::f32_zeros(3);
        concat_func(&[a, b, out.clone()], &[2.0, 1.0]);
        assert_eq!(*out.as_f32(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dense_outputs_a_probability() {
        let x = buf(vec![1.0, -1.0]);
        let w = buf(vec![2.0, 0.5]);
        let out = DataBuffer::f32_zeros(1);
        dense_func(&[x, w, out.clone()], &[2.0]);
        let p = out.as_f32()[0];
        let expect = 1.0 / (1.0 + (-(2.0 - 0.5f64)).exp());
        assert!((p as f64 - expect).abs() < 1e-6);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn conv_cost_counts_macs() {
        let x = DataBuffer::f32_zeros(3 * 64 * 64);
        let w = DataBuffer::f32_zeros(8 * 3 * 3 * 3);
        let y = DataBuffer::f32_zeros(8 * 62 * 62);
        let c = conv2d_cost(&[x, w, y], &[3.0, 64.0, 64.0, 8.0, 3.0]);
        assert_eq!(c.flops32, 2.0 * 8.0 * 62.0 * 62.0 * 3.0 * 9.0);
        assert_eq!(c.inefficiency, 8.0);
        assert!(c.l2_bytes > c.dram_bytes, "convolution is cache-friendly");
    }
}
