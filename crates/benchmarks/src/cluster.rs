//! Cluster-scale workloads: the multi-node suites behind the
//! `bench --bin cluster` sweep.
//!
//! Three batch-submitted suites stress the deterministic DAG
//! partitioner (see `grcuda::partition`) and node-aware placement on a
//! [`Cluster`] of NIC-joined nodes:
//!
//! * **chain** — `2 × nodes + 1` independent dependent chains, one
//!   batch of kernels per step (odd on purpose, so the chain count
//!   never divides the GPU total). The partitioner keeps every chain
//!   on one node,
//!   so [`grcuda::PlacementPolicy::NodeAware`] placement never crosses
//!   a NIC; round-robin across all GPUs ping-pongs each chain between
//!   nodes and pays a GPU→host→NIC→host→GPU route *per step*;
//! * **fanout** — embarrassingly parallel: every step writes fresh host
//!   inputs and batch-launches independent kernels. Any policy scales;
//!   the suite pins down the no-dependency corner of the partitioner;
//! * **mixed** — chains and fanout work interleaved in the same
//!   batches, so whole-component placement and BFS-grow splitting both
//!   run.
//!
//! Every run reports simulated makespan, cross-**node** migration
//! traffic, the partitioner's cut size, and a checksum that must be
//! identical across policies (placement moves work, never results).

use gpu_sim::{DeviceProfile, Grid, TopologyKind};
use grcuda::{Cluster, MultiArg, MultiArray, MultiGpu, NicKind, Options, PlacementPolicy};
use kernels::util::SCALE;
use kernels::KernelDef;

/// The three cluster suites, in sweep order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterSuite {
    /// `2 × nodes + 1` dependent chains.
    Chain,
    /// Independent per-step work on fresh host inputs.
    Fanout,
    /// Chains and fanout interleaved in the same batches.
    Mixed,
}

impl ClusterSuite {
    /// All suites in sweep order.
    pub const ALL: [ClusterSuite; 3] = [
        ClusterSuite::Chain,
        ClusterSuite::Fanout,
        ClusterSuite::Mixed,
    ];

    /// Short name used in tables and metric keys.
    pub fn name(self) -> &'static str {
        match self {
            ClusterSuite::Chain => "chain",
            ClusterSuite::Fanout => "fanout",
            ClusterSuite::Mixed => "mixed",
        }
    }
}

/// What one cluster run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterResult {
    /// Simulated makespan in seconds.
    pub makespan: f64,
    /// Cross-**node** migrations `(count, bytes)` — NIC legs only.
    pub cross_node: (usize, usize),
    /// Total cross-device migrations `(count, bytes)`.
    pub migrations: (usize, usize),
    /// Batches the pre-pass partitioned.
    pub partitioned_batches: usize,
    /// Bytes of values the partitioner left spanning nodes.
    pub cut_bytes: usize,
    /// Checksum over the outputs — identical across policies.
    pub checksum: f64,
    /// Data races observed (must be 0).
    pub races: usize,
}

const G: Grid = Grid {
    blocks: (64, 1, 1),
    threads: (256, 1, 1),
};

/// Run a cluster suite under a placement policy on `nodes` ×
/// `gpus_per_node` Tesla P100s joined by InfiniBand HDR NICs (PCIe
/// inside each node). `n` is the per-array element count; `steps` the
/// number of batch rounds.
pub fn cluster_run(
    suite: ClusterSuite,
    policy: PlacementPolicy,
    nodes: usize,
    gpus_per_node: usize,
    n: usize,
    steps: usize,
) -> ClusterResult {
    let cluster = Cluster::new(
        nodes,
        gpus_per_node,
        TopologyKind::PcieOnly,
        NicKind::InfinibandHdr,
    );
    let mut m = MultiGpu::with_cluster(
        DeviceProfile::tesla_p100(),
        &cluster,
        Options::parallel(),
        policy,
    );

    // An odd chain count never divides an even GPU total, so policies
    // that ignore the partition (e.g. round-robin) provably rotate
    // every chain across node boundaries between steps.
    let chains = match suite {
        ClusterSuite::Fanout => 0,
        _ => 2 * nodes + 1,
    };
    let fans = match suite {
        ClusterSuite::Chain => 0,
        _ => 2 * nodes,
    };

    // Chain state: each chain scales x into y and back, forever on the
    // same pair of arrays — the partitioner sees one component per
    // chain in every batch and must pin it to one node.
    let chain_arrays: Vec<(MultiArray, MultiArray)> = (0..chains)
        .map(|c| {
            let x = m.array_f32(n);
            let y = m.array_f32(n);
            m.write_f32(&x, &vec![1.0 + c as f32; n]);
            (x, y)
        })
        .collect();

    let mut last_fans: Vec<MultiArray> = Vec::new();
    for step in 0..steps {
        let mut calls: Vec<(&KernelDef, Grid, Vec<MultiArg>)> = Vec::new();
        for (x, y) in &chain_arrays {
            let (src, dst) = if step.is_multiple_of(2) {
                (x, y)
            } else {
                (y, x)
            };
            calls.push((
                &SCALE,
                G,
                vec![
                    MultiArg::array(src),
                    MultiArg::array(dst),
                    MultiArg::scalar(1.001),
                    MultiArg::scalar(n as f64),
                ],
            ));
        }
        // Fanout work is fresh every step: host-written inputs, so the
        // H2D leg is cheap anywhere and no node owns the data yet.
        let fan_arrays: Vec<(MultiArray, MultiArray)> = (0..fans)
            .map(|f| {
                let src = m.array_f32(n);
                let dst = m.array_f32(n);
                m.write_f32(&src, &vec![0.5 + f as f32; n]);
                (src, dst)
            })
            .collect();
        for (src, dst) in &fan_arrays {
            calls.push((
                &SCALE,
                G,
                vec![
                    MultiArg::array(src),
                    MultiArg::array(dst),
                    MultiArg::scalar(2.0),
                    MultiArg::scalar(n as f64),
                ],
            ));
        }
        m.launch_batch(&calls).unwrap();
        // Keep the final round's fanout outputs alive so they join the
        // cross-policy checksum.
        if step + 1 == steps {
            last_fans = fan_arrays.into_iter().map(|(_, dst)| dst).collect();
        }
    }
    m.sync();

    let mut checksum = 0.0f64;
    for (x, y) in &chain_arrays {
        let last = if steps.is_multiple_of(2) { x } else { y };
        checksum += m.get_f32(last, 7) as f64;
    }
    for dst in &last_fans {
        checksum += m.get_f32(dst, 7) as f64;
    }

    let stats = m.scheduler_stats();
    ClusterResult {
        makespan: m.makespan(),
        cross_node: m.cross_node_migration_stats(),
        migrations: m.migration_stats(),
        partitioned_batches: stats.cluster.partitioned_batches,
        cut_bytes: stats.cluster.partition_cut_bytes,
        checksum,
        races: m.races(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_runs_are_deterministic_and_race_free() {
        let a = cluster_run(
            ClusterSuite::Chain,
            PlacementPolicy::NodeAware,
            2,
            2,
            4096,
            4,
        );
        let b = cluster_run(
            ClusterSuite::Chain,
            PlacementPolicy::NodeAware,
            2,
            2,
            4096,
            4,
        );
        assert_eq!(a, b);
        assert_eq!(a.races, 0);
        assert!(a.partitioned_batches >= 4);
    }

    #[test]
    fn node_aware_keeps_chains_off_the_nics() {
        let na = cluster_run(
            ClusterSuite::Chain,
            PlacementPolicy::NodeAware,
            2,
            2,
            4096,
            6,
        );
        let rr = cluster_run(
            ClusterSuite::Chain,
            PlacementPolicy::RoundRobin,
            2,
            2,
            4096,
            6,
        );
        assert_eq!(na.cross_node, (0, 0), "chains are node-local components");
        assert!(
            rr.cross_node.1 > 0,
            "round-robin must ping-pong across nodes: {rr:?}"
        );
        assert_eq!(na.checksum, rr.checksum, "placement changed the numbers");
    }

    #[test]
    fn every_suite_is_checksum_identical_across_policies() {
        for suite in ClusterSuite::ALL {
            let mut checksum = None;
            for policy in [
                PlacementPolicy::NodeAware,
                PlacementPolicy::RoundRobin,
                PlacementPolicy::TransferAware,
            ] {
                let r = cluster_run(suite, policy, 2, 2, 2048, 3);
                assert_eq!(r.races, 0, "{} {policy:?} raced", suite.name());
                match checksum {
                    None => checksum = Some(r.checksum),
                    Some(c) => assert_eq!(r.checksum, c, "{} {policy:?}", suite.name()),
                }
            }
        }
    }
}
