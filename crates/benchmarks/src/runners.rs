//! Execution strategies: one benchmark spec, five ways to run it.
//!
//! All runners return a [`RunResult`] with per-iteration GPU execution
//! times (the paper's metric: "the total amount of time spent by GPU
//! execution, from the first kernel scheduling until the end of
//! execution"), the last iteration's timeline, and a bit-exact
//! validation against the sequential CPU reference.

use std::collections::HashMap;
use std::rc::Rc;

use cuda_sim::{Cuda, CudaGraph, KernelExec, StreamId, UnifiedArray};
use gpu_sim::{DataBuffer, DeviceProfile, Timeline, TypedData};
use grcuda::{Arg, GrCuda, MultiArg, MultiArray, MultiGpu, Options, PlacementPolicy, Signature};

use crate::spec::{BenchSpec, PlanArg, PlanOp};

/// Outcome of one benchmark run.
#[derive(Debug)]
pub struct RunResult {
    /// GPU execution time of each iteration, seconds.
    pub iter_times: Vec<f64>,
    /// Timeline of the last iteration.
    pub timeline: Timeline,
    /// Number of data races the simulator detected (must be 0).
    pub races: usize,
    /// Streams that carried GPU work in the last iteration.
    pub streams_used: usize,
    /// Bit-exact comparison against the sequential CPU reference.
    pub valid: Result<(), String>,
}

impl RunResult {
    /// Median per-iteration time (the paper reports medians).
    pub fn median_time(&self) -> f64 {
        let mut t = self.iter_times.clone();
        t.sort_by(|a, b| a.total_cmp(b));
        t[t.len() / 2]
    }

    /// Panic unless the run validated and was race-free (test helper).
    pub fn assert_ok(&self) {
        assert_eq!(self.races, 0, "data races detected");
        if let Err(e) = &self.valid {
            panic!("validation failed: {e}");
        }
    }
}

/// The reference final state after `iters` iterations (streaming inputs
/// are re-written with their initial contents at the top of each
/// iteration, exactly as the runners do).
pub fn reference_after_iters(spec: &BenchSpec, iters: usize) -> Vec<TypedData> {
    let buffers: Vec<DataBuffer> = spec
        .arrays
        .iter()
        .map(|a| DataBuffer::new(a.init.clone()))
        .collect();
    for _ in 0..iters {
        for (i, a) in spec.arrays.iter().enumerate() {
            if a.refresh_each_iter {
                *buffers[i].data_mut() = a.init.clone();
            }
        }
        for op in &spec.ops {
            let (bufs, scalars) = spec.op_inputs(op, &buffers);
            (op.def.func)(&bufs, &scalars);
        }
    }
    buffers.iter().map(|b| b.data().clone()).collect()
}

fn validate(spec: &BenchSpec, buffers: &[DataBuffer], iters: usize) -> Result<(), String> {
    let reference = reference_after_iters(spec, iters);
    for (i, (got, want)) in buffers.iter().zip(&reference).enumerate() {
        if *got.data() != *want {
            return Err(format!(
                "{}: array {} (`{}`) deviates from the sequential reference",
                spec.name, i, spec.arrays[i].name
            ));
        }
    }
    Ok(())
}

/// Per-signature read-only flags for the pointer arguments, in order.
fn ro_flags(op: &PlanOp) -> Vec<bool> {
    let sig = Signature::parse(op.def.nidl).expect("registered kernels parse");
    sig.params
        .iter()
        .filter(|p| p.is_pointer())
        .map(|p| p.is_read_only())
        .collect()
}

/// Build a cuda-sim launch descriptor for one op.
fn make_exec(_spec: &BenchSpec, op: &PlanOp, arrays: &[UnifiedArray]) -> KernelExec {
    let ro = ro_flags(op);
    let mut buffers = Vec::new();
    let mut accesses = Vec::new();
    let mut scalars = Vec::new();
    let mut p = 0usize;
    for a in &op.args {
        match a {
            PlanArg::Arr(k) => {
                buffers.push(arrays[*k].buf.clone());
                accesses.push((arrays[*k].id, ro[p]));
                p += 1;
            }
            PlanArg::Scalar(v) => scalars.push(*v),
        }
    }
    let cost = (op.def.cost)(&buffers, &scalars);
    let func = op.def.func;
    KernelExec::new(
        op.def.name,
        op.grid,
        cost,
        buffers,
        accesses,
        Rc::new(move |bufs: &[DataBuffer]| func(bufs, &scalars)),
    )
}

fn write_initial(arr: &UnifiedArray, data: &TypedData) {
    *arr.buf.data_mut() = data.clone();
}

fn read_outputs_cuda(c: &Cuda, spec: &BenchSpec, arrays: &[UnifiedArray]) {
    let _ = spec;
    for (k, cnt) in &spec.outputs {
        let bytes = cnt * elem_size(&spec.arrays[*k].init);
        c.host_read(&arrays[*k], bytes);
    }
}

fn elem_size(d: &TypedData) -> usize {
    d.elem_size()
}

// ---------------------------------------------------------------------
// GrCUDA runner (serial baseline & the paper's scheduler)
// ---------------------------------------------------------------------

/// Allocate the spec's managed arrays in a GrCUDA context and write
/// their initial contents (shared by the runner, the soak harness and
/// the integration tests).
pub fn grcuda_arrays(g: &GrCuda, spec: &BenchSpec) -> Vec<grcuda::DeviceArray> {
    spec.arrays
        .iter()
        .map(|a| match &a.init {
            TypedData::F32(v) => {
                let d = g.array_f32(v.len());
                d.copy_from_f32(v);
                d
            }
            TypedData::F64(v) => {
                let d = g.array_f64(v.len());
                d.copy_from_f64(v);
                d
            }
            TypedData::I32(v) => {
                let d = g.array_i32(v.len());
                d.copy_from_i32(v);
                d
            }
            TypedData::U8(v) => {
                let d = g.array_u8(v.len());
                d.copy_from_u8(v);
                d
            }
        })
        .collect()
}

/// Re-write streaming inputs (`refresh_each_iter`) with their initial
/// contents, as each iteration of the paper's benchmarks does.
pub fn refresh_grcuda_arrays(spec: &BenchSpec, arrays: &[grcuda::DeviceArray]) {
    for (i, a) in spec.arrays.iter().enumerate() {
        if a.refresh_each_iter {
            match &a.init {
                TypedData::F32(v) => arrays[i].copy_from_f32(v),
                TypedData::F64(v) => arrays[i].copy_from_f64(v),
                TypedData::I32(v) => arrays[i].copy_from_i32(v),
                TypedData::U8(v) => arrays[i].copy_from_u8(v),
            }
        }
    }
}

/// Perform the spec's end-of-iteration host reads (VEC's `res = Z[0]`
/// pattern) — the fine-grained synchronization points of a request.
pub fn read_grcuda_outputs(spec: &BenchSpec, arrays: &[grcuda::DeviceArray]) {
    for (k, cnt) in &spec.outputs {
        for i in 0..*cnt {
            match &spec.arrays[*k].init {
                TypedData::F32(_) => {
                    arrays[*k].get_f32(i);
                }
                TypedData::F64(_) => {
                    arrays[*k].get_f64(i);
                }
                TypedData::I32(_) => {
                    arrays[*k].get_i32(i);
                }
                TypedData::U8(_) => {
                    arrays[*k].get_u8(i);
                }
            }
        }
    }
}

/// Run the spec through the GrCUDA runtime. With
/// [`Options::serial`] this is the paper's baseline; with
/// [`Options::parallel`] it is the paper's contribution. Stream and
/// dependency hints in the plan are ignored — the scheduler infers
/// everything.
pub fn run_grcuda(
    spec: &BenchSpec,
    dev: &DeviceProfile,
    options: Options,
    iters: usize,
) -> RunResult {
    let g = GrCuda::new(dev.clone(), options);
    let arrays = grcuda_arrays(&g, spec);
    let mut kernels: HashMap<&'static str, grcuda::Kernel> = HashMap::new();
    for op in &spec.ops {
        kernels
            .entry(op.def.name)
            .or_insert_with(|| g.build_kernel(op.def).expect("suite signatures parse"));
    }

    let mut iter_times = Vec::with_capacity(iters);
    for _ in 0..iters {
        refresh_grcuda_arrays(spec, &arrays);
        g.clear_timeline();
        for op in &spec.ops {
            let args: Vec<Arg> = op
                .args
                .iter()
                .map(|a| match a {
                    PlanArg::Arr(k) => Arg::array(&arrays[*k]),
                    PlanArg::Scalar(v) => Arg::scalar(*v),
                })
                .collect();
            kernels[op.def.name]
                .launch(op.grid, &args)
                .expect("suite launches validate");
        }
        read_grcuda_outputs(spec, &arrays);
        g.sync();
        iter_times.push(g.timeline().gpu_span());
    }

    let buffers: Vec<DataBuffer> = arrays.iter().map(|a| a.raw_buffer()).collect();
    let timeline = g.timeline();
    RunResult {
        iter_times,
        streams_used: timeline.streams_used(),
        races: g.races().len(),
        valid: validate(spec, &buffers, iters),
        timeline,
    }
}

// ---------------------------------------------------------------------
// Multi-GPU runner (unified scheduler core, policy-driven placement)
// ---------------------------------------------------------------------

/// Outcome of one multi-GPU benchmark run: the usual [`RunResult`] plus
/// placement accounting.
#[derive(Debug)]
pub struct MultiRunResult {
    /// The validated run (timings, races, streams, bit-exact check).
    pub run: RunResult,
    /// Cross-device migrations performed, as `(count, bytes)`.
    pub migrations: (usize, usize),
    /// Devices that carried GPU work in the last iteration.
    pub devices_used: usize,
}

impl MultiRunResult {
    /// Panic unless the run validated and was race-free.
    pub fn assert_ok(&self) {
        self.run.assert_ok();
    }
}

/// Allocate the spec's managed arrays in a multi-GPU front-end and write
/// their initial contents (every element type the specs use, including
/// `sint32`).
pub fn multi_gpu_arrays(m: &mut MultiGpu, spec: &BenchSpec) -> Vec<MultiArray> {
    spec.arrays
        .iter()
        .map(|a| match &a.init {
            TypedData::F32(v) => {
                let d = m.array_f32(v.len());
                m.write_f32(&d, v);
                d
            }
            TypedData::F64(v) => {
                let d = m.array_f64(v.len());
                m.write_f64(&d, v);
                d
            }
            TypedData::I32(v) => {
                let d = m.array_i32(v.len());
                m.write_i32(&d, v);
                d
            }
            TypedData::U8(v) => {
                let d = m.array_u8(v.len());
                m.write_u8(&d, v);
                d
            }
        })
        .collect()
}

/// Re-write streaming inputs with their initial contents, as each
/// iteration of the paper's benchmarks does.
pub fn refresh_multi_gpu_arrays(m: &mut MultiGpu, spec: &BenchSpec, arrays: &[MultiArray]) {
    for (i, a) in spec.arrays.iter().enumerate() {
        if a.refresh_each_iter {
            match &a.init {
                TypedData::F32(v) => m.write_f32(&arrays[i], v),
                TypedData::F64(v) => m.write_f64(&arrays[i], v),
                TypedData::I32(v) => m.write_i32(&arrays[i], v),
                TypedData::U8(v) => m.write_u8(&arrays[i], v),
            }
        }
    }
}

/// The spec's end-of-iteration host reads (fine-grained sync points).
pub fn read_multi_gpu_outputs(m: &MultiGpu, spec: &BenchSpec, arrays: &[MultiArray]) {
    for (k, cnt) in &spec.outputs {
        for i in 0..*cnt {
            match &spec.arrays[*k].init {
                TypedData::F32(_) => {
                    m.get_f32(&arrays[*k], i);
                }
                TypedData::F64(_) => {
                    m.get_f64(&arrays[*k], i);
                }
                TypedData::I32(_) => {
                    m.get_i32(&arrays[*k], i);
                }
                TypedData::U8(_) => {
                    m.get_u8(&arrays[*k], i);
                }
            }
        }
    }
}

/// Run the spec through the unified multi-GPU scheduler: `n_devices`
/// simulated devices behind one DAG/stream-manager core, with placement
/// decided per-kernel by `policy`. Results are validated against the
/// same sequential CPU reference as every other runner, so any two
/// policies (or device counts) that validate are bit-identical to each
/// other — the parity the policy sweep asserts.
pub fn run_multi_gpu(
    spec: &BenchSpec,
    dev: &DeviceProfile,
    options: Options,
    n_devices: usize,
    policy: PlacementPolicy,
    iters: usize,
) -> MultiRunResult {
    run_multi_gpu_topo(
        spec,
        dev,
        options,
        n_devices,
        policy,
        grcuda::TopologyKind::PcieOnly,
        iters,
    )
}

/// [`run_multi_gpu`] on an explicit interconnect preset — the same DAG
/// scheduled on a different machine. Validation is topology-independent:
/// links change transfer routes and timing, never results.
#[allow(clippy::too_many_arguments)]
pub fn run_multi_gpu_topo(
    spec: &BenchSpec,
    dev: &DeviceProfile,
    options: Options,
    n_devices: usize,
    policy: PlacementPolicy,
    topology: grcuda::TopologyKind,
    iters: usize,
) -> MultiRunResult {
    let mut m = MultiGpu::with_topology(dev.clone(), n_devices, options, policy, topology);
    let arrays = multi_gpu_arrays(&mut m, spec);

    let mut iter_times = Vec::with_capacity(iters);
    for _ in 0..iters {
        refresh_multi_gpu_arrays(&mut m, spec, &arrays);
        m.clear_timeline();
        for op in &spec.ops {
            let args: Vec<MultiArg> = op
                .args
                .iter()
                .map(|a| match a {
                    PlanArg::Arr(k) => MultiArg::array(&arrays[*k]),
                    PlanArg::Scalar(v) => MultiArg::scalar(*v),
                })
                .collect();
            m.launch(op.def, op.grid, &args)
                .expect("suite launches validate");
        }
        read_multi_gpu_outputs(&m, spec, &arrays);
        m.sync();
        iter_times.push(m.runtime().timeline().gpu_span());
    }

    let buffers: Vec<DataBuffer> = arrays.iter().map(|a| a.raw_buffer()).collect();
    let timeline = m.runtime().timeline();
    MultiRunResult {
        migrations: m.migration_stats(),
        devices_used: timeline.devices_used().len(),
        run: RunResult {
            iter_times,
            streams_used: timeline.streams_used(),
            races: m.races(),
            valid: validate(spec, &buffers, iters),
            timeline,
        },
    }
}

// ---------------------------------------------------------------------
// Hand-tuned CUDA events baseline
// ---------------------------------------------------------------------

/// The "hand-optimized implementation purely based on CUDA events" of
/// §V-D: explicit streams per the plan's Fig. 6 coloring, explicit
/// events for every cross-stream edge, and (optionally) manual
/// prefetching — the strongest baseline, which the paper's scheduler
/// matches.
pub fn run_handtuned(
    spec: &BenchSpec,
    dev: &DeviceProfile,
    prefetch: bool,
    iters: usize,
) -> RunResult {
    let c = Cuda::new(dev.clone());
    let arrays = alloc_cuda_arrays(&c, spec);
    let execs: Vec<KernelExec> = spec
        .ops
        .iter()
        .map(|op| make_exec(spec, op, &arrays))
        .collect();
    let nstreams = spec.ops.iter().map(|o| o.stream).max().unwrap_or(0) + 1;
    let streams: Vec<StreamId> = (0..nstreams).map(|_| c.stream_create()).collect();

    // First-use stream of each array (where a skilled programmer would
    // prefetch it).
    let mut first_use: HashMap<usize, usize> = HashMap::new();
    for op in &spec.ops {
        for a in &op.args {
            if let PlanArg::Arr(k) = a {
                first_use.entry(*k).or_insert(op.stream);
            }
        }
    }

    let mut iter_times = Vec::with_capacity(iters);
    for _ in 0..iters {
        refresh_cuda(&c, spec, &arrays);
        c.clear_timeline();
        if prefetch {
            for (k, s) in &first_use {
                c.prefetch_async(streams[*s], &arrays[*k]);
            }
        }
        let mut events: Vec<Option<cuda_sim::EventId>> = vec![None; spec.ops.len()];
        for (i, op) in spec.ops.iter().enumerate() {
            for d in &op.deps {
                if spec.ops[*d].stream != op.stream {
                    let ev = events[*d].expect("event recorded for cross-stream parent");
                    c.stream_wait_event(streams[op.stream], ev);
                }
            }
            c.launch(streams[op.stream], &execs[i]);
            // Record an event if any later op on another stream waits.
            let needed = spec.ops[i + 1..]
                .iter()
                .any(|o| o.deps.contains(&i) && o.stream != op.stream);
            if needed {
                events[i] = Some(c.event_record(streams[op.stream]));
            }
        }
        c.device_sync();
        read_outputs_cuda(&c, spec, &arrays);
        iter_times.push(c.timeline().gpu_span());
    }
    finish_cuda(c, spec, arrays, iter_times, iters)
}

// ---------------------------------------------------------------------
// CUDA Graphs baselines
// ---------------------------------------------------------------------

/// CUDA Graphs with manually specified dependencies (§V-D): the graph is
/// built once from the plan's explicit edges and replayed every
/// iteration. Unified-memory prefetch cannot be expressed in the graph,
/// so replays pay the fault path on Pascal+ — the paper's Fig. 8 gap.
pub fn run_graph_manual(spec: &BenchSpec, dev: &DeviceProfile, iters: usize) -> RunResult {
    let c = Cuda::new(dev.clone());
    let arrays = alloc_cuda_arrays(&c, spec);
    let mut graph = CudaGraph::new();
    let mut nodes = Vec::with_capacity(spec.ops.len());
    for op in &spec.ops {
        let deps: Vec<cuda_sim::GraphNodeId> = op.deps.iter().map(|d| nodes[*d]).collect();
        nodes.push(graph.add_kernel(make_exec(spec, op, &arrays), &deps));
    }
    run_graph(c, spec, arrays, graph, iters)
}

/// CUDA Graphs via stream capture (§V-D): the hand-tuned multi-stream
/// issue is captured once (prefetches are silently not capturable) and
/// the recorded graph is replayed every iteration.
pub fn run_graph_capture(spec: &BenchSpec, dev: &DeviceProfile, iters: usize) -> RunResult {
    let c = Cuda::new(dev.clone());
    let arrays = alloc_cuda_arrays(&c, spec);
    let execs: Vec<KernelExec> = spec
        .ops
        .iter()
        .map(|op| make_exec(spec, op, &arrays))
        .collect();
    let nstreams = spec.ops.iter().map(|o| o.stream).max().unwrap_or(0) + 1;
    let streams: Vec<StreamId> = (0..nstreams).map(|_| c.stream_create()).collect();

    c.begin_capture();
    let mut events: Vec<Option<cuda_sim::EventId>> = vec![None; spec.ops.len()];
    for (i, op) in spec.ops.iter().enumerate() {
        for d in &op.deps {
            if spec.ops[*d].stream != op.stream {
                let ev = events[*d].expect("event recorded for cross-stream parent");
                c.stream_wait_event(streams[op.stream], ev);
            }
        }
        c.launch(streams[op.stream], &execs[i]);
        let needed = spec.ops[i + 1..]
            .iter()
            .any(|o| o.deps.contains(&i) && o.stream != op.stream);
        if needed {
            events[i] = Some(c.event_record(streams[op.stream]));
        }
    }
    let graph = c.end_capture();
    run_graph(c, spec, arrays, graph, iters)
}

fn run_graph(
    c: Cuda,
    spec: &BenchSpec,
    arrays: Vec<UnifiedArray>,
    graph: CudaGraph,
    iters: usize,
) -> RunResult {
    let mut iter_times = Vec::with_capacity(iters);
    for _ in 0..iters {
        refresh_cuda(&c, spec, &arrays);
        c.clear_timeline();
        let done = graph.launch(&c);
        c.task_sync(done);
        read_outputs_cuda(&c, spec, &arrays);
        iter_times.push(c.timeline().gpu_span());
    }
    finish_cuda(c, spec, arrays, iter_times, iters)
}

// ---------------------------------------------------------------------
// shared plumbing
// ---------------------------------------------------------------------

fn alloc_cuda_arrays(c: &Cuda, spec: &BenchSpec) -> Vec<UnifiedArray> {
    spec.arrays
        .iter()
        .map(|a| {
            let arr = match &a.init {
                TypedData::F32(v) => c.alloc_f32(v.len()),
                TypedData::F64(v) => c.alloc_f64(v.len()),
                TypedData::I32(v) => c.alloc_i32(v.len()),
                TypedData::U8(v) => c.alloc_u8(v.len()),
            };
            write_initial(&arr, &a.init);
            arr
        })
        .collect()
}

fn refresh_cuda(c: &Cuda, spec: &BenchSpec, arrays: &[UnifiedArray]) {
    for (i, a) in spec.arrays.iter().enumerate() {
        if a.refresh_each_iter {
            write_initial(&arrays[i], &a.init);
            c.host_written(&arrays[i]);
        }
    }
}

fn finish_cuda(
    c: Cuda,
    spec: &BenchSpec,
    arrays: Vec<UnifiedArray>,
    iter_times: Vec<f64>,
    iters: usize,
) -> RunResult {
    let buffers: Vec<DataBuffer> = arrays.iter().map(|a| a.buf.clone()).collect();
    let timeline = c.timeline();
    RunResult {
        iter_times,
        streams_used: timeline.streams_used(),
        races: c.races().len(),
        valid: validate(spec, &buffers, iters),
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scales, Bench};

    fn dev() -> DeviceProfile {
        DeviceProfile::gtx1660_super()
    }

    #[test]
    fn every_benchmark_validates_under_every_runner() {
        for b in Bench::ALL {
            let spec = b.build(scales::tiny(b));
            run_grcuda(&spec, &dev(), Options::serial(), 1).assert_ok();
            run_grcuda(&spec, &dev(), Options::parallel(), 1).assert_ok();
            run_handtuned(&spec, &dev(), true, 1).assert_ok();
            run_graph_manual(&spec, &dev(), 1).assert_ok();
            run_graph_capture(&spec, &dev(), 1).assert_ok();
        }
    }

    #[test]
    fn u8_spec_validates_under_every_runner() {
        use crate::spec::{ArraySpec, PlanOp};
        use gpu_sim::Grid;
        use kernels::util::THRESHOLD_U8;
        let n = 2048usize;
        let spec = BenchSpec {
            name: "U8",
            arrays: vec![
                ArraySpec {
                    name: "img",
                    init: TypedData::U8((0..n).map(|i| (i % 251) as u8).collect()),
                    refresh_each_iter: true,
                },
                ArraySpec {
                    name: "mask",
                    init: TypedData::U8(vec![0; n]),
                    refresh_each_iter: false,
                },
            ],
            ops: vec![PlanOp {
                def: &THRESHOLD_U8,
                grid: Grid::d1(8, 256),
                args: vec![
                    PlanArg::Arr(0),
                    PlanArg::Arr(1),
                    PlanArg::Scalar(100.0),
                    PlanArg::Scalar(n as f64),
                ],
                stream: 0,
                deps: vec![],
            }],
            outputs: vec![(1, 2)],
            scale: n,
        };
        spec.check_well_formed().unwrap();
        run_grcuda(&spec, &dev(), Options::serial(), 2).assert_ok();
        run_grcuda(&spec, &dev(), Options::parallel(), 2).assert_ok();
        run_handtuned(&spec, &dev(), true, 2).assert_ok();
        run_graph_manual(&spec, &dev(), 2).assert_ok();
        run_graph_capture(&spec, &dev(), 2).assert_ok();
    }

    #[test]
    fn multi_gpu_runner_validates_and_reports_migrations() {
        // One representative in-crate check of the runner plumbing (all
        // typed array arms, refresh, output reads, migration stats);
        // the full suite x device x policy parity matrix lives in
        // `tests/policies.rs` and the CI `multi_gpu --smoke` sweep.
        let spec = Bench::Hits.build(scales::tiny(Bench::Hits));
        let r = run_multi_gpu(
            &spec,
            &dev(),
            Options::parallel(),
            2,
            PlacementPolicy::RoundRobin,
            2,
        );
        r.assert_ok();
        assert_eq!(r.devices_used, 2, "round-robin must reach both devices");
        assert!(r.migrations.0 >= 1, "HITS chains must migrate under RR");
    }

    #[test]
    fn multi_iteration_runs_validate() {
        let spec = Bench::Vec.build(2048);
        run_grcuda(&spec, &dev(), Options::parallel(), 3).assert_ok();
        run_handtuned(&spec, &dev(), true, 3).assert_ok();
        run_graph_manual(&spec, &dev(), 3).assert_ok();
    }

    #[test]
    fn parallel_uses_more_streams_than_serial() {
        // Large enough that each kernel outlives the host issue loop --
        // at tiny scales the FIFO policy correctly reuses drained
        // streams instead of fanning out.
        let spec = Bench::Bs.build(100_000);
        let ser = run_grcuda(&spec, &dev(), Options::serial(), 1);
        let par = run_grcuda(&spec, &dev(), Options::parallel(), 1);
        assert_eq!(ser.streams_used, 1);
        assert!(
            par.streams_used >= 8,
            "B&S must fan out: {}",
            par.streams_used
        );
        ser.assert_ok();
        par.assert_ok();
    }

    #[test]
    fn parallel_is_faster_than_serial_on_vec() {
        let spec = Bench::Vec.build(200_000);
        let ser = run_grcuda(&spec, &dev(), Options::serial(), 2);
        let par = run_grcuda(&spec, &dev(), Options::parallel(), 2);
        assert!(
            par.median_time() < ser.median_time(),
            "parallel {} vs serial {}",
            par.median_time(),
            ser.median_time()
        );
    }

    #[test]
    fn hits_cross_stream_sync_is_race_free_everywhere() {
        let spec = Bench::Hits.build(512);
        for d in DeviceProfile::paper_devices() {
            run_grcuda(&spec, &d, Options::parallel(), 2).assert_ok();
            run_handtuned(&spec, &d, true, 2).assert_ok();
        }
    }

    #[test]
    fn median_of_odd_iterations() {
        let r = RunResult {
            iter_times: vec![3.0, 1.0, 2.0],
            timeline: Timeline::new(),
            races: 0,
            streams_used: 0,
            valid: Ok(()),
        };
        assert_eq!(r.median_time(), 2.0);
    }
}
