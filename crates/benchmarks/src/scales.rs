//! Input scales for the experiments.
//!
//! The paper sweeps each benchmark from <10% to ~90% of each GPU's
//! memory (Table I). The simulator reproduces timing from byte counts,
//! but the *functional* kernel implementations run on the host CPU, so
//! absolute sizes are scaled down by a constant factor per benchmark
//! (documented in EXPERIMENTS.md); the five sweep points keep the
//! paper's x-axis ratios `1 : 4 : 6 : 25 : 35`.

use crate::Bench;

/// The paper's five x-axis points, as fractions of the top scale.
pub const SWEEP_RATIOS: [f64; 5] = [1.0 / 35.0, 4.0 / 35.0, 6.0 / 35.0, 25.0 / 35.0, 1.0];

/// Top (largest) scale per benchmark, chosen so a full sweep stays
/// CPU-feasible while spanning >10x in footprint.
pub fn top(b: Bench) -> usize {
    match b {
        Bench::Vec => 14_000_000, // elements/vector (paper: 7e8)
        Bench::Bs => 1_400_000,   // options/stock   (paper: 7e7)
        Bench::Img => 1200,       // pixels/side     (paper: 16e3)
        Bench::Ml => 35_000,      // rows            (paper: 6e6)
        Bench::Hits => 175_000,   // vertices        (paper: ~2e7)
        Bench::Dl => 170,         // pixels/side     (paper: 16e3)
    }
}

/// The five sweep scales for a benchmark.
pub fn sweep(b: Bench) -> Vec<usize> {
    SWEEP_RATIOS
        .iter()
        .map(|r| ((top(b) as f64) * r).round().max(2.0) as usize)
        .collect()
}

/// A single representative (middle) scale used by Figs. 1, 11 and 12.
pub fn default_scale(b: Bench) -> usize {
    sweep(b)[2]
}

/// A fast scale for unit and integration tests.
pub fn tiny(b: Bench) -> usize {
    match b {
        Bench::Vec => 4096,
        Bench::Bs => 1024,
        Bench::Img => 48,
        Bench::Ml => 256,
        Bench::Hits => 256,
        Bench::Dl => 22,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_have_five_increasing_points() {
        for b in Bench::ALL {
            let s = sweep(b);
            assert_eq!(s.len(), 5);
            for w in s.windows(2) {
                assert!(w[0] < w[1], "{:?}: {s:?}", b);
            }
        }
    }

    #[test]
    fn sweep_span_exceeds_10x_in_scale() {
        for b in Bench::ALL {
            let s = sweep(b);
            assert!(s[4] as f64 / s[0] as f64 > 10.0, "{:?}", b);
        }
    }

    #[test]
    fn default_is_the_middle_point() {
        for b in Bench::ALL {
            assert_eq!(default_scale(b), sweep(b)[2]);
        }
    }
}
