//! The *oversubscription* suite: a working set ~2× one device's memory,
//! streamed through a kernel chain that mixes clean (read-only weight)
//! and dirty (written state) arrays — the workload that separates
//! capacity-aware scheduling from capacity-blind scheduling.
//!
//! Structure, per iteration and per state `j` (8 states on 2 devices):
//!
//! 1. `pin(anchor, state_j)` — a small shared read-only anchor array is
//!    folded into the state. The anchor is the *glue*: once it lands on
//!    a device, transfer-time estimates make that device look free for
//!    every subsequent launch;
//! 2. `join_sample(weight_{j mod 4}, state_j, out_j)` — a large
//!    read-only weight and the freshly-written state are sampled into a
//!    tiny output.
//!
//! States are always dirty (the `pin` write invalidates their host
//! copy); weights stay clean after their first H2D (read-only). The
//! full working set (8 states + 4 weights + anchor) is roughly twice
//! the per-device capacity, so *someone* must be evicted on every pass.
//!
//! The contrast the suite is built for:
//!
//! * [`grcuda::PlacementPolicy::TransferAware`] chases the anchor onto
//!   one device — its cost estimate says "everything important is
//!   already here" — and thrashes that device's memory, while LRU
//!   eviction keeps picking the oldest *dirty* state: every eviction
//!   pays a device→host spill copy and every reuse a re-fetch.
//! * [`grcuda::PlacementPolicy::MemoryAware`] skips devices whose free
//!   memory cannot hold the launch (spreading states across both
//!   devices), and cost-aware eviction
//!   ([`gpu_sim::EvictionPolicy::CostAware`]) prefers dropping clean
//!   weights — zero spill traffic, one cheap re-fetch leg — so spilled
//!   bytes collapse and the makespan with them.

use gpu_sim::memgr::{EvictionPolicy, MemoryConfig};
use gpu_sim::{DeviceProfile, Grid};
use grcuda::{MultiArg, MultiArray, MultiGpu, Options, PlacementPolicy, TopologyKind};
use kernels::util::{JOIN, PIN};

/// Devices the workload is shaped for.
pub const OVERSUB_DEVICES: usize = 2;

/// Number of mutable state arrays (the streamed working set).
const N_STATES: usize = 8;
/// Number of read-only weight arrays shared by the joins.
const N_WEIGHTS: usize = 4;

/// The per-device capacity the suite runs under for state arrays of
/// `n` f32 elements: 5½ state-sized arrays plus the anchor — about half
/// the full working set (8 states + 4 weights ≈ 12 state-sizes).
pub fn oversub_capacity(n: usize) -> usize {
    let state_bytes = 4 * n;
    5 * state_bytes + state_bytes / 2 + anchor_bytes(n)
}

fn anchor_bytes(n: usize) -> usize {
    n // n/4 f32 elements
}

/// What one oversubscription run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct OversubResult {
    /// Simulated makespan in seconds.
    pub makespan: f64,
    /// Device copies evicted (clean drops included).
    pub evictions: usize,
    /// Bytes moved device→host by eviction spill copies.
    pub spilled_bytes: usize,
    /// Peak resident bytes per device.
    pub peak_resident: Vec<usize>,
    /// Prefetches issued / hits / skipped-for-headroom.
    pub prefetch: (usize, usize, usize),
    /// Hits over issued prefetches.
    pub prefetch_hit_rate: f64,
    /// Bytes moved over the host (PCIe) links, spills included.
    pub host_link_bytes: f64,
    /// Checksum over states and outputs — identical across every
    /// placement policy, eviction policy and capacity (scheduling moves
    /// work and data, never changes results).
    pub checksum: f64,
    /// Data races observed (must be 0).
    pub races: usize,
}

/// Run the oversubscription suite under a placement policy and an
/// eviction policy, with per-device capacity `capacity` (use
/// [`oversub_capacity`] for the standard ~2× oversubscription, or
/// `None` for the unlimited baseline). `n` is the state-array element
/// count; `iters` the number of full passes over the working set.
pub fn oversubscribe(
    policy: PlacementPolicy,
    eviction: EvictionPolicy,
    capacity: Option<usize>,
    n: usize,
    iters: usize,
) -> OversubResult {
    oversubscribe_opts(policy, eviction, capacity, n, iters, Options::parallel())
}

/// [`oversubscribe`] with explicit scheduler options — what calibrated
/// (adaptive) runs use; the plain entry point keeps the default options
/// so committed metrics stay bit-identical.
pub fn oversubscribe_opts(
    policy: PlacementPolicy,
    eviction: EvictionPolicy,
    capacity: Option<usize>,
    n: usize,
    iters: usize,
    options: Options,
) -> OversubResult {
    let grid = Grid::d1(64, 256);
    let memory = MemoryConfig { capacity, eviction };
    let mut m = MultiGpu::with_memory(
        DeviceProfile::tesla_p100(),
        OVERSUB_DEVICES,
        options,
        policy,
        TopologyKind::PcieOnly,
        memory,
    );
    let an = anchor_bytes(n) / 4; // anchor element count
    let jn = 256.min(n);

    let anchor = m.array_f32(an);
    m.write_f32(&anchor, &vec![2.0; an]);
    let weights: Vec<MultiArray> = (0..N_WEIGHTS)
        .map(|i| {
            let w = m.array_f32(n);
            m.write_f32(&w, &vec![1.0 + i as f32; n]);
            w
        })
        .collect();
    let states: Vec<MultiArray> = (0..N_STATES)
        .map(|i| {
            let s = m.array_f32(n);
            m.write_f32(&s, &vec![0.5 + 0.125 * i as f32; n]);
            s
        })
        .collect();
    let outs: Vec<MultiArray> = (0..N_STATES).map(|_| m.array_f32(jn)).collect();

    for _iter in 0..iters {
        for j in 0..N_STATES {
            m.launch(
                &PIN,
                grid,
                &[
                    MultiArg::array(&anchor),
                    MultiArg::array(&states[j]),
                    MultiArg::scalar(an as f64),
                    MultiArg::scalar(n as f64),
                ],
            )
            .unwrap();
            m.launch(
                &JOIN,
                grid,
                &[
                    MultiArg::array(&weights[j % N_WEIGHTS]),
                    MultiArg::array(&states[j]),
                    MultiArg::array(&outs[j]),
                    MultiArg::scalar(n as f64),
                    MultiArg::scalar(n as f64),
                    MultiArg::scalar(jn as f64),
                ],
            )
            .unwrap();
        }
    }
    m.sync();

    let checksum = states
        .iter()
        .chain(outs.iter())
        .flat_map(|a| m.read_f32(a))
        .map(|x| x as f64)
        .sum::<f64>();
    let st = m.memory_stats();
    OversubResult {
        makespan: m.makespan(),
        evictions: st.evictions,
        spilled_bytes: st.spilled_bytes,
        peak_resident: st.peak_resident.clone(),
        prefetch: (st.prefetch_issued, st.prefetch_hits, st.prefetch_skipped),
        prefetch_hit_rate: st.prefetch_hit_rate(),
        host_link_bytes: m.host_link_bytes(),
        checksum,
        races: m.races(),
    }
}

/// The suite's two headline configurations, for sweeps and CI:
/// capacity-aware (MemoryAware placement + cost-aware eviction) vs
/// capacity-blind (TransferAware placement + LRU eviction).
pub fn oversub_configs() -> [(&'static str, PlacementPolicy, EvictionPolicy); 2] {
    [
        (
            "memory-aware+cost",
            PlacementPolicy::MemoryAware,
            EvictionPolicy::CostAware,
        ),
        (
            "transfer-aware+lru",
            PlacementPolicy::TransferAware,
            EvictionPolicy::Lru,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 1 << 14;

    #[test]
    fn oversubscribe_is_deterministic_and_race_free() {
        let run = || {
            oversubscribe(
                PlacementPolicy::MemoryAware,
                EvictionPolicy::CostAware,
                Some(oversub_capacity(N)),
                N,
                2,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.races, 0);
        assert!(a.checksum.is_finite());
        for &p in &a.peak_resident {
            assert!(p <= oversub_capacity(N), "capacity held: {a:?}");
        }
    }

    #[test]
    fn results_are_identical_across_policies_and_capacities() {
        // The unlimited run is the ground truth; every finite-capacity
        // policy combination must reproduce its numbers bit-exactly —
        // eviction and placement move data, never change it.
        let reference = oversubscribe(PlacementPolicy::SingleGpu, EvictionPolicy::Lru, None, N, 2);
        assert_eq!(reference.evictions, 0, "unlimited capacity never evicts");
        assert_eq!(reference.spilled_bytes, 0);
        for policy in [
            PlacementPolicy::MemoryAware,
            PlacementPolicy::TransferAware,
            PlacementPolicy::RoundRobin,
            PlacementPolicy::StreamAware,
        ] {
            for eviction in EvictionPolicy::ALL {
                let r = oversubscribe(policy, eviction, Some(oversub_capacity(N)), N, 2);
                assert_eq!(r.races, 0, "{policy:?}/{eviction:?} raced");
                assert_eq!(
                    r.checksum, reference.checksum,
                    "{policy:?}/{eviction:?} changed the numbers"
                );
            }
        }
    }

    #[test]
    fn the_working_set_actually_oversubscribes() {
        let r = oversubscribe(
            PlacementPolicy::TransferAware,
            EvictionPolicy::Lru,
            Some(oversub_capacity(N)),
            N,
            2,
        );
        assert!(r.evictions > 0, "the suite must create memory pressure");
        assert!(r.spilled_bytes > 0, "LRU must spill dirty states");
    }
}
