//! IMG — image processing pipeline (paper Fig. 6, 4 streams).
//!
//! "Combines a sharpened picture with copies blurred at low and medium
//! frequencies, to sharpen the edges, soften everything else, and
//! enhance the subject. The benchmark has complex dependencies on 4
//! streams."
//!
//! ```text
//! s0: blur3(img)→blur_small ── sobel ──────────────┐
//! s1: blur5(img)→blur_large ── sobel ── extend ────┤
//! s3:                            └─ max ─┐         │
//! s0:                            └─ min ─┴→(extend)│
//! s2: blur3(img)→blur_unsharpen ── unsharpen ──────┤
//! s0:                       combine ── combine → result
//! ```

use gpu_sim::{Grid, TypedData};
use kernels::image::{
    gaussian_kernel, COMBINE, EXTEND, GAUSSIAN_BLUR, MAXIMUM, MINIMUM, SOBEL, UNSHARPEN,
};

use crate::spec::{ArraySpec, BenchSpec, DataGen, PlanArg, PlanOp};

/// 2-D block edge (paper: "we keep 2D blocks with size 8x8").
pub const BLOCK_EDGE: u32 = 8;

/// Build IMG at `scale` = image side in pixels (the paper's x-axis is
/// pixels per side).
pub fn build(scale: usize) -> BenchSpec {
    let side = scale;
    let n = side * side;
    let nf = n as f64;
    let sf = side as f64;
    let mut gen = DataGen::new(77);
    // Grid-stride 2-D launch with a bounded block count: a single
    // stencil kernel deliberately leaves SMs free ("kernels that leave a
    // large amount of shared memory unused if executed serially explains
    // the speedup in IMG", §V-F).
    let blocks = ((side as u32).div_ceil(BLOCK_EDGE)).clamp(1, 12);
    let grid2 = Grid::d2(blocks, blocks, BLOCK_EDGE, BLOCK_EDGE);
    let grid1 = Grid::d1(64, 256);

    let arrays = vec![
        /* 0 */
        // The input image is loaded once; iterations re-run the kernels
        // on resident data (the paper's IMG is not a streaming benchmark
        // — its speedup comes from kernel-kernel overlap, Fig. 11).
        ArraySpec {
            name: "img",
            init: TypedData::F32(gen.f32_vec(n, 0.0, 1.0)),
            refresh_each_iter: false,
        },
        /* 1 */
        ArraySpec {
            name: "kern3",
            init: TypedData::F32(gaussian_kernel(3, 1.0)),
            refresh_each_iter: false,
        },
        /* 2 */
        ArraySpec {
            name: "kern5",
            init: TypedData::F32(gaussian_kernel(5, 2.0)),
            refresh_each_iter: false,
        },
        /* 3 */
        ArraySpec {
            name: "kern3u",
            init: TypedData::F32(gaussian_kernel(3, 0.8)),
            refresh_each_iter: false,
        },
        /* 4 */
        ArraySpec {
            name: "blur_small",
            init: TypedData::F32(vec![0.0; n]),
            refresh_each_iter: false,
        },
        /* 5 */
        ArraySpec {
            name: "blur_large",
            init: TypedData::F32(vec![0.0; n]),
            refresh_each_iter: false,
        },
        /* 6 */
        ArraySpec {
            name: "blur_unsharpen",
            init: TypedData::F32(vec![0.0; n]),
            refresh_each_iter: false,
        },
        /* 7 */
        ArraySpec {
            name: "sobel_small",
            init: TypedData::F32(vec![0.0; n]),
            refresh_each_iter: false,
        },
        /* 8 */
        ArraySpec {
            name: "sobel_large",
            init: TypedData::F32(vec![0.0; n]),
            refresh_each_iter: false,
        },
        /* 9 */
        ArraySpec {
            name: "minv",
            init: TypedData::F32(vec![0.0]),
            refresh_each_iter: false,
        },
        /* 10 */
        ArraySpec {
            name: "maxv",
            init: TypedData::F32(vec![0.0]),
            refresh_each_iter: false,
        },
        /* 11 */
        ArraySpec {
            name: "unsharp",
            init: TypedData::F32(vec![0.0; n]),
            refresh_each_iter: false,
        },
        /* 12 */
        ArraySpec {
            name: "combine1",
            init: TypedData::F32(vec![0.0; n]),
            refresh_each_iter: false,
        },
        /* 13 */
        ArraySpec {
            name: "result",
            init: TypedData::F32(vec![0.0; n]),
            refresh_each_iter: false,
        },
    ];

    let blur =
        |src: usize, dst: usize, kern: usize, d: f64, stream: usize, deps: Vec<usize>| PlanOp {
            def: &GAUSSIAN_BLUR,
            grid: grid2,
            args: vec![
                PlanArg::Arr(src),
                PlanArg::Arr(dst),
                PlanArg::Scalar(sf),
                PlanArg::Scalar(sf),
                PlanArg::Arr(kern),
                PlanArg::Scalar(d),
            ],
            stream,
            deps,
        };

    let ops = vec![
        /* 0 */ blur(0, 4, 1, 3.0, 0, vec![]),
        /* 1 */ blur(0, 5, 2, 5.0, 1, vec![]),
        /* 2 */ blur(0, 6, 3, 3.0, 2, vec![]),
        /* 3 */
        PlanOp {
            def: &SOBEL,
            grid: grid2,
            args: vec![
                PlanArg::Arr(4),
                PlanArg::Arr(7),
                PlanArg::Scalar(sf),
                PlanArg::Scalar(sf),
            ],
            stream: 0,
            deps: vec![0],
        },
        /* 4 */
        PlanOp {
            def: &SOBEL,
            grid: grid2,
            args: vec![
                PlanArg::Arr(5),
                PlanArg::Arr(8),
                PlanArg::Scalar(sf),
                PlanArg::Scalar(sf),
            ],
            stream: 1,
            deps: vec![1],
        },
        /* 5 */
        PlanOp {
            def: &MAXIMUM,
            grid: grid1,
            args: vec![PlanArg::Arr(8), PlanArg::Arr(10), PlanArg::Scalar(nf)],
            stream: 3,
            deps: vec![4],
        },
        /* 6 */
        PlanOp {
            def: &MINIMUM,
            grid: grid1,
            args: vec![PlanArg::Arr(8), PlanArg::Arr(9), PlanArg::Scalar(nf)],
            stream: 0,
            deps: vec![4],
        },
        /* 7 — extend writes sobel_large in place: WAR on both reducers */
        PlanOp {
            def: &EXTEND,
            grid: grid1,
            args: vec![
                PlanArg::Arr(8),
                PlanArg::Arr(9),
                PlanArg::Arr(10),
                PlanArg::Scalar(nf),
            ],
            stream: 1,
            deps: vec![5, 6],
        },
        /* 8 */
        PlanOp {
            def: &UNSHARPEN,
            grid: grid1,
            args: vec![
                PlanArg::Arr(0),
                PlanArg::Arr(6),
                PlanArg::Arr(11),
                PlanArg::Scalar(0.5),
                PlanArg::Scalar(nf),
            ],
            stream: 2,
            deps: vec![2],
        },
        /* 9 — combine(unsharp, blur_small, mask = sobel_small) */
        PlanOp {
            def: &COMBINE,
            grid: grid1,
            args: vec![
                PlanArg::Arr(11),
                PlanArg::Arr(4),
                PlanArg::Arr(7),
                PlanArg::Arr(12),
                PlanArg::Scalar(nf),
            ],
            stream: 0,
            deps: vec![8, 3],
        },
        /* 10 — result = combine(combine1, blur_large, mask = extended sobel_large) */
        PlanOp {
            def: &COMBINE,
            grid: grid1,
            args: vec![
                PlanArg::Arr(12),
                PlanArg::Arr(5),
                PlanArg::Arr(8),
                PlanArg::Arr(13),
                PlanArg::Scalar(nf),
            ],
            stream: 0,
            deps: vec![9, 7],
        },
    ];

    BenchSpec {
        name: "IMG",
        arrays,
        ops,
        outputs: vec![(13, 1)],
        scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_uses_four_streams_and_eleven_kernels() {
        let s = build(64);
        assert_eq!(s.ops.len(), 11);
        assert_eq!(s.planned_streams(), 4);
        s.check_well_formed().unwrap();
    }

    #[test]
    fn result_pixels_are_valid_intensities() {
        let s = build(32);
        let fin = s.reference_final_state();
        match &fin[13] {
            TypedData::F32(r) => {
                assert!(r.iter().all(|&v| (0.0..=1.0).contains(&v) && v.is_finite()));
                assert!(r.iter().any(|&v| v > 0.0), "result must not be all-black");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn extend_normalizes_the_mask_range() {
        let s = build(32);
        let fin = s.reference_final_state();
        match &fin[8] {
            TypedData::F32(m) => {
                let max = m.iter().copied().fold(f32::MIN, f32::max);
                let min = m.iter().copied().fold(f32::MAX, f32::min);
                assert!((max - 1.0).abs() < 1e-6);
                assert!(min.abs() < 1e-6);
            }
            _ => unreachable!(),
        }
    }
}
