//! VEC — Vector Squares (paper Fig. 4).
//!
//! ```text
//! stream 1:  [H2D X]  square(X) ─┐
//! stream 2:  [H2D Y]  square(Y) ─┴→ reduce_sum_diff(X, Y, Z);  res = Z[0]
//! ```
//!
//! Inputs are refreshed every iteration: a streaming computation whose
//! speedup comes *entirely* from transfer–computation overlap (the
//! paper's Fig. 11 shows zero CC for VEC).

use gpu_sim::{Grid, TypedData};
use kernels::vec_ops::{REDUCE_SUM_DIFF, SQUARE};

use crate::spec::{ArraySpec, BenchSpec, DataGen, PlanArg, PlanOp};

/// Default number of blocks (the paper tunes block counts for best
/// serial performance; grid-stride kernels keep it fixed).
pub const NUM_BLOCKS: u32 = 64;
/// Default threads per block.
pub const BLOCK_SIZE: u32 = 256;

/// Build VEC at `scale` = elements per vector.
pub fn build(scale: usize) -> BenchSpec {
    let mut gen = DataGen::new(42);
    let grid = Grid::d1(NUM_BLOCKS, BLOCK_SIZE);
    let n = scale as f64;
    BenchSpec {
        name: "VEC",
        arrays: vec![
            ArraySpec {
                name: "X",
                init: TypedData::F32(gen.f32_vec(scale, 0.0, 1.0)),
                refresh_each_iter: true,
            },
            ArraySpec {
                name: "Y",
                init: TypedData::F32(gen.f32_vec(scale, 0.0, 1.0)),
                refresh_each_iter: true,
            },
            ArraySpec {
                name: "Z",
                init: TypedData::F32(vec![0.0]),
                refresh_each_iter: false,
            },
        ],
        ops: vec![
            PlanOp {
                def: &SQUARE,
                grid,
                args: vec![PlanArg::Arr(0), PlanArg::Scalar(n)],
                stream: 0,
                deps: vec![],
            },
            PlanOp {
                def: &SQUARE,
                grid,
                args: vec![PlanArg::Arr(1), PlanArg::Scalar(n)],
                stream: 1,
                deps: vec![],
            },
            PlanOp {
                def: &REDUCE_SUM_DIFF,
                grid,
                args: vec![
                    PlanArg::Arr(0),
                    PlanArg::Arr(1),
                    PlanArg::Arr(2),
                    PlanArg::Scalar(n),
                ],
                stream: 0,
                deps: vec![0, 1],
            },
        ],
        outputs: vec![(2, 1)],
        scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_shape_matches_fig4() {
        let s = build(1000);
        assert_eq!(s.ops.len(), 3);
        assert_eq!(s.planned_streams(), 2);
        assert_eq!(s.ops[2].deps, vec![0, 1]);
        s.check_well_formed().unwrap();
    }

    #[test]
    fn reference_result_is_sum_of_square_differences() {
        let s = build(256);
        let final_state = s.reference_final_state();
        let (x0, y0) = match (&s.arrays[0].init, &s.arrays[1].init) {
            (TypedData::F32(x), TypedData::F32(y)) => (x.clone(), y.clone()),
            _ => unreachable!(),
        };
        let expect: f64 = x0
            .iter()
            .zip(&y0)
            .map(|(&a, &b)| (a * a - b * b) as f64)
            .sum();
        match &final_state[2] {
            TypedData::F32(z) => assert!((z[0] as f64 - expect).abs() < 1e-2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn inputs_are_streaming() {
        let s = build(64);
        assert!(s.arrays[0].refresh_each_iter && s.arrays[1].refresh_each_iter);
        assert!(!s.arrays[2].refresh_each_iter);
    }
}
