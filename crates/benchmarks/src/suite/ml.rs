//! ML — ensemble of Ridge Regression and Categorical Naïve Bayes
//! (paper Figs. 2, 6 and 10).
//!
//! ```text
//! s0 (RR): normalize → matmul → add_intercept → softmax ─┐
//! s1 (NB): matmul → row_max → lse → exp ─────────────────┴→ argmax
//! ```
//!
//! Both branches read the input matrix `X` **read-only** — the paper's
//! flagship use of `const` annotations: without them the second branch
//! would serialize behind the first.

use gpu_sim::{Grid, TypedData};
use kernels::ml::{
    ARGMAX_COMBINE, NB_EXP, NB_LSE, NB_MATMUL, NB_ROW_MAX, RR_ADD_INTERCEPT, RR_MATMUL,
    RR_NORMALIZE, SOFTMAX,
};

use crate::spec::{ArraySpec, BenchSpec, DataGen, PlanArg, PlanOp};

/// Feature count (fixed by the paper: "The input matrix has 200
/// features").
pub const FEATURES: usize = 200;
/// Number of classes.
pub const CLASSES: usize = 10;
/// Default number of blocks.
pub const NUM_BLOCKS: u32 = 64;
/// Default threads per block.
pub const BLOCK_SIZE: u32 = 256;

/// Build ML at `scale` = number of input rows.
pub fn build(scale: usize) -> BenchSpec {
    let rows = scale;
    let mut gen = DataGen::new(2024);
    let grid = Grid::d1(NUM_BLOCKS, BLOCK_SIZE);
    let rf = rows as f64;
    let ff = FEATURES as f64;
    let cf = CLASSES as f64;

    // Naïve Bayes wants non-negative features (categorical counts); the
    // normalization in the RR branch recenters its own copy.
    let x: Vec<f32> = gen.f32_vec(rows * FEATURES, 0.0, 4.0);
    let w: Vec<f32> = gen.f32_vec(CLASSES * FEATURES, -1.0, 1.0);
    let b: Vec<f32> = gen.f32_vec(CLASSES, -0.5, 0.5);
    // Log-probabilities: negative values.
    let logp: Vec<f32> = gen.f32_vec(CLASSES * FEATURES, -3.0, -0.01);

    let arrays = vec![
        /* 0 */
        ArraySpec {
            name: "X",
            init: TypedData::F32(x),
            refresh_each_iter: true,
        },
        /* 1 */
        ArraySpec {
            name: "Z",
            init: TypedData::F32(vec![0.0; rows * FEATURES]),
            refresh_each_iter: false,
        },
        /* 2 */
        ArraySpec {
            name: "W",
            init: TypedData::F32(w),
            refresh_each_iter: false,
        },
        /* 3 */
        ArraySpec {
            name: "B",
            init: TypedData::F32(b),
            refresh_each_iter: false,
        },
        /* 4 */
        ArraySpec {
            name: "R2",
            init: TypedData::F32(vec![0.0; rows * CLASSES]),
            refresh_each_iter: false,
        },
        /* 5 */
        ArraySpec {
            name: "LOGP",
            init: TypedData::F32(logp),
            refresh_each_iter: false,
        },
        /* 6 */
        ArraySpec {
            name: "R1",
            init: TypedData::F32(vec![0.0; rows * CLASSES]),
            refresh_each_iter: false,
        },
        /* 7 */
        ArraySpec {
            name: "AMAX",
            init: TypedData::F32(vec![0.0; rows]),
            refresh_each_iter: false,
        },
        /* 8 */
        ArraySpec {
            name: "LSE",
            init: TypedData::F32(vec![0.0; rows]),
            refresh_each_iter: false,
        },
        /* 9 */
        ArraySpec {
            name: "OUT",
            init: TypedData::I32(vec![0; rows]),
            refresh_each_iter: false,
        },
    ];

    let ops = vec![
        /* 0: NORM */
        PlanOp {
            def: &RR_NORMALIZE,
            grid,
            args: vec![
                PlanArg::Arr(0),
                PlanArg::Arr(1),
                PlanArg::Scalar(rf),
                PlanArg::Scalar(ff),
            ],
            stream: 0,
            deps: vec![],
        },
        /* 1: NB MMUL */
        PlanOp {
            def: &NB_MATMUL,
            grid,
            args: vec![
                PlanArg::Arr(0),
                PlanArg::Arr(5),
                PlanArg::Arr(6),
                PlanArg::Scalar(rf),
                PlanArg::Scalar(ff),
                PlanArg::Scalar(cf),
            ],
            stream: 1,
            deps: vec![],
        },
        /* 2: RR MMUL */
        PlanOp {
            def: &RR_MATMUL,
            grid,
            args: vec![
                PlanArg::Arr(1),
                PlanArg::Arr(2),
                PlanArg::Arr(4),
                PlanArg::Scalar(rf),
                PlanArg::Scalar(ff),
                PlanArg::Scalar(cf),
            ],
            stream: 0,
            deps: vec![0],
        },
        /* 3: MAX */
        PlanOp {
            def: &NB_ROW_MAX,
            grid,
            args: vec![
                PlanArg::Arr(6),
                PlanArg::Arr(7),
                PlanArg::Scalar(rf),
                PlanArg::Scalar(cf),
            ],
            stream: 1,
            deps: vec![1],
        },
        /* 4: ADDV */
        PlanOp {
            def: &RR_ADD_INTERCEPT,
            grid,
            args: vec![
                PlanArg::Arr(4),
                PlanArg::Arr(3),
                PlanArg::Scalar(rf),
                PlanArg::Scalar(cf),
            ],
            stream: 0,
            deps: vec![2],
        },
        /* 5: LSE */
        PlanOp {
            def: &NB_LSE,
            grid,
            args: vec![
                PlanArg::Arr(6),
                PlanArg::Arr(7),
                PlanArg::Arr(8),
                PlanArg::Scalar(rf),
                PlanArg::Scalar(cf),
            ],
            stream: 1,
            deps: vec![3],
        },
        /* 6: SOFTMAX (RR) */
        PlanOp {
            def: &SOFTMAX,
            grid,
            args: vec![PlanArg::Arr(4), PlanArg::Scalar(rf), PlanArg::Scalar(cf)],
            stream: 0,
            deps: vec![4],
        },
        /* 7: EXP (NB posterior) */
        PlanOp {
            def: &NB_EXP,
            grid,
            args: vec![
                PlanArg::Arr(6),
                PlanArg::Arr(7),
                PlanArg::Arr(8),
                PlanArg::Scalar(rf),
                PlanArg::Scalar(cf),
            ],
            stream: 1,
            deps: vec![5],
        },
        /* 8: ARGMAX ensemble */
        PlanOp {
            def: &ARGMAX_COMBINE,
            grid,
            args: vec![
                PlanArg::Arr(6),
                PlanArg::Arr(4),
                PlanArg::Arr(9),
                PlanArg::Scalar(rf),
                PlanArg::Scalar(cf),
            ],
            stream: 0,
            deps: vec![6, 7],
        },
    ];

    BenchSpec {
        name: "ML",
        arrays,
        ops,
        outputs: vec![(9, 4.min(rows))],
        scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_branches_on_two_streams() {
        let s = build(128);
        assert_eq!(s.ops.len(), 9);
        assert_eq!(s.planned_streams(), 2);
        s.check_well_formed().unwrap();
        // The two matmuls are independent roots.
        assert!(s.ops[0].deps.is_empty() && s.ops[1].deps.is_empty());
    }

    #[test]
    fn predictions_are_valid_class_indices() {
        let s = build(64);
        let fin = s.reference_final_state();
        match &fin[9] {
            TypedData::I32(out) => {
                assert!(out.iter().all(|&c| (0..CLASSES as i32).contains(&c)));
                // Multiple classes should actually appear.
                let mut seen = out.to_vec();
                seen.sort_unstable();
                seen.dedup();
                assert!(seen.len() > 1, "degenerate classifier output");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn both_classifier_outputs_are_probability_rows() {
        let s = build(32);
        let fin = s.reference_final_state();
        for idx in [4usize, 6] {
            match &fin[idx] {
                TypedData::F32(m) => {
                    for i in 0..32 {
                        let sum: f32 = m[i * CLASSES..(i + 1) * CLASSES].iter().sum();
                        assert!((sum - 1.0).abs() < 1e-4, "array {idx} row {i} sums {sum}");
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}
