//! B&S — Black & Scholes option pricing on 10 independent stocks
//! (paper Fig. 6: ten parallel streams, no dependencies at all).
//!
//! Heavy double-precision streaming work: on the fp64-starved consumer
//! GPUs the computation dominates and overlaps poorly with its own
//! transfers, while on the P100 the transfers dominate and overlap well
//! — the crossover the paper discusses in §V-F.

use gpu_sim::{Grid, TypedData};
use kernels::black_scholes::BLACK_SCHOLES;

use crate::spec::{ArraySpec, BenchSpec, DataGen, PlanArg, PlanOp};

/// Number of independent stocks (fixed by the paper).
pub const STOCKS: usize = 10;
/// Default number of blocks.
pub const NUM_BLOCKS: u32 = 64;
/// Default threads per block.
pub const BLOCK_SIZE: u32 = 256;

/// Build B&S at `scale` = prices per stock.
pub fn build(scale: usize) -> BenchSpec {
    let mut gen = DataGen::new(1234);
    let grid = Grid::d1(NUM_BLOCKS, BLOCK_SIZE);
    let mut arrays = Vec::with_capacity(2 * STOCKS);
    let mut ops = Vec::with_capacity(STOCKS);
    let mut outputs = Vec::with_capacity(STOCKS);
    for name in STOCK_NAMES {
        arrays.push(ArraySpec {
            name,
            init: TypedData::F64(gen.f64_vec(scale, 50.0, 150.0)),
            refresh_each_iter: true,
        });
    }
    for (s, name) in RESULT_NAMES.into_iter().enumerate() {
        arrays.push(ArraySpec {
            name,
            init: TypedData::F64(vec![0.0; scale]),
            refresh_each_iter: false,
        });
        ops.push(PlanOp {
            def: &BLACK_SCHOLES,
            grid,
            args: vec![
                PlanArg::Arr(s),
                PlanArg::Arr(STOCKS + s),
                PlanArg::Scalar(scale as f64),
                // strike, rate, vol, expiry — the CUDA sample's values.
                PlanArg::Scalar(100.0),
                PlanArg::Scalar(0.02),
                PlanArg::Scalar(0.30),
                PlanArg::Scalar(1.0),
            ],
            stream: s,
            deps: vec![],
        });
        outputs.push((STOCKS + s, 1));
    }
    BenchSpec {
        name: "B&S",
        arrays,
        ops,
        outputs,
        scale,
    }
}

const STOCK_NAMES: [&str; 10] = ["x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9"];
const RESULT_NAMES: [&str; 10] = ["y0", "y1", "y2", "y3", "y4", "y5", "y6", "y7", "y8", "y9"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_fully_independent_kernels() {
        let s = build(512);
        assert_eq!(s.ops.len(), 10);
        assert_eq!(s.planned_streams(), 10);
        assert!(s.ops.iter().all(|o| o.deps.is_empty()));
        s.check_well_formed().unwrap();
    }

    #[test]
    fn reference_prices_are_positive() {
        let s = build(64);
        let final_state = s.reference_final_state();
        for k in 0..STOCKS {
            match &final_state[STOCKS + k] {
                TypedData::F64(y) => {
                    assert!(y.iter().all(|&p| p > 0.0 && p < 150.0), "stock {k}");
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn footprint_is_double_precision() {
        let s = build(1000);
        assert_eq!(s.footprint_bytes(), 2 * STOCKS * 1000 * 8);
    }
}
