//! Generators for the six benchmark plans (§V-B, Fig. 6).

pub mod bs;
pub mod dl;
pub mod hits;
pub mod img;
pub mod ml;
pub mod vec;
