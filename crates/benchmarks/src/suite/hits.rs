//! HITS — hubs & authorities by repeated SpMV (paper Fig. 6).
//!
//! Each of the unrolled iterations runs the authority chain on one
//! stream and the hub chain on another; the normalization `divide`s
//! create write-after-read **cross-stream** dependencies into the
//! *other* chain, which is exactly the "complex cross-synchronizations"
//! the paper highlights.

use gpu_sim::{Grid, TypedData};
use kernels::hits::{random_graph_csr, DIVIDE, SPMV, SUM_REDUCE};

use crate::spec::{ArraySpec, BenchSpec, PlanArg, PlanOp};

/// Average out-degree of the synthetic graph (nnz = `DEGREE * n`).
pub const DEGREE: usize = 8;
/// HITS iterations unrolled into the plan.
pub const ITERATIONS: usize = 3;
/// Default number of blocks.
pub const NUM_BLOCKS: u32 = 64;
/// Default threads per block.
pub const BLOCK_SIZE: u32 = 256;

/// Build HITS at `scale` = number of graph vertices.
pub fn build(scale: usize) -> BenchSpec {
    let n = scale.max(2);
    let nf = n as f64;
    let grid = Grid::d1(NUM_BLOCKS, BLOCK_SIZE);
    let (a_mat, at_mat) = random_graph_csr(n, DEGREE, 0xC0FFEE);

    let uniform = vec![1.0f32 / n as f32; n];
    let arrays = vec![
        /* 0 */
        ArraySpec {
            name: "rowptr_a",
            init: TypedData::I32(a_mat.rowptr),
            refresh_each_iter: false,
        },
        /* 1 */
        ArraySpec {
            name: "colidx_a",
            init: TypedData::I32(a_mat.colidx),
            refresh_each_iter: false,
        },
        /* 2 */
        ArraySpec {
            name: "vals_a",
            init: TypedData::F32(a_mat.vals),
            refresh_each_iter: false,
        },
        /* 3 */
        ArraySpec {
            name: "rowptr_t",
            init: TypedData::I32(at_mat.rowptr),
            refresh_each_iter: false,
        },
        /* 4 */
        ArraySpec {
            name: "colidx_t",
            init: TypedData::I32(at_mat.colidx),
            refresh_each_iter: false,
        },
        /* 5 */
        ArraySpec {
            name: "vals_t",
            init: TypedData::F32(at_mat.vals),
            refresh_each_iter: false,
        },
        /* 6 */
        ArraySpec {
            name: "h",
            init: TypedData::F32(uniform.clone()),
            refresh_each_iter: false,
        },
        /* 7 */
        ArraySpec {
            name: "a",
            init: TypedData::F32(uniform),
            refresh_each_iter: false,
        },
        /* 8 */
        ArraySpec {
            name: "tmp_a",
            init: TypedData::F32(vec![0.0; n]),
            refresh_each_iter: false,
        },
        /* 9 */
        ArraySpec {
            name: "tmp_h",
            init: TypedData::F32(vec![0.0; n]),
            refresh_each_iter: false,
        },
        /* 10 */
        ArraySpec {
            name: "sum_a",
            init: TypedData::F32(vec![0.0]),
            refresh_each_iter: false,
        },
        /* 11 */
        ArraySpec {
            name: "sum_h",
            init: TypedData::F32(vec![0.0]),
            refresh_each_iter: false,
        },
    ];

    let mut ops: Vec<PlanOp> = Vec::with_capacity(ITERATIONS * 6);
    for it in 0..ITERATIONS {
        let base = it * 6;
        let prev = |k: usize| base - 6 + k; // op k of the previous iteration
                                            // 0: tmp_a = Aᵀ · h         (authority update, stream 0)
        ops.push(PlanOp {
            def: &SPMV,
            grid,
            args: vec![
                PlanArg::Arr(3),
                PlanArg::Arr(4),
                PlanArg::Arr(5),
                PlanArg::Arr(6),
                PlanArg::Arr(8),
                PlanArg::Scalar(nf),
            ],
            stream: 0,
            // reads h (writer: prev divide_h), rewrites tmp_a (reader:
            // prev divide_a).
            deps: if it == 0 {
                vec![]
            } else {
                vec![prev(5), prev(4)]
            },
        });
        // 1: sum_a = Σ tmp_a
        ops.push(PlanOp {
            def: &SUM_REDUCE,
            grid,
            args: vec![PlanArg::Arr(8), PlanArg::Arr(10), PlanArg::Scalar(nf)],
            stream: 0,
            deps: vec![base],
        });
        // 2: tmp_h = A · a          (hub update, stream 1)
        ops.push(PlanOp {
            def: &SPMV,
            grid,
            args: vec![
                PlanArg::Arr(0),
                PlanArg::Arr(1),
                PlanArg::Arr(2),
                PlanArg::Arr(7),
                PlanArg::Arr(9),
                PlanArg::Scalar(nf),
            ],
            stream: 1,
            deps: if it == 0 {
                vec![]
            } else {
                vec![prev(4), prev(5)]
            },
        });
        // 3: sum_h = Σ tmp_h
        ops.push(PlanOp {
            def: &SUM_REDUCE,
            grid,
            args: vec![PlanArg::Arr(9), PlanArg::Arr(11), PlanArg::Scalar(nf)],
            stream: 1,
            deps: vec![base + 2],
        });
        // 4: a = tmp_a / sum_a — writes `a`, which spmv_h of THIS
        // iteration reads: the cross-stream WAR edge.
        ops.push(PlanOp {
            def: &DIVIDE,
            grid,
            args: vec![
                PlanArg::Arr(8),
                PlanArg::Arr(10),
                PlanArg::Arr(7),
                PlanArg::Scalar(nf),
            ],
            stream: 0,
            deps: vec![base + 1, base + 2],
        });
        // 5: h = tmp_h / sum_h — symmetric cross edge into spmv_a.
        ops.push(PlanOp {
            def: &DIVIDE,
            grid,
            args: vec![
                PlanArg::Arr(9),
                PlanArg::Arr(11),
                PlanArg::Arr(6),
                PlanArg::Scalar(nf),
            ],
            stream: 1,
            deps: vec![base + 3, base],
        });
    }

    BenchSpec {
        name: "HITS",
        arrays,
        ops,
        outputs: vec![(7, 1), (6, 1)],
        scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_unrolls_three_iterations_on_two_streams() {
        let s = build(128);
        assert_eq!(s.ops.len(), 18);
        assert_eq!(s.planned_streams(), 2);
        s.check_well_formed().unwrap();
    }

    #[test]
    fn cross_stream_war_edges_exist() {
        let s = build(128);
        // divide_a (op 4) on stream 0 depends on spmv_h (op 2) on stream 1.
        assert!(s.ops[4].deps.contains(&2));
        assert_ne!(s.ops[4].stream, s.ops[2].stream);
        // and symmetric.
        assert!(s.ops[5].deps.contains(&0));
    }

    #[test]
    fn scores_stay_normalized() {
        let s = build(64);
        let fin = s.reference_final_state();
        for idx in [6usize, 7] {
            match &fin[idx] {
                TypedData::F32(v) => {
                    let sum: f32 = v.iter().sum();
                    assert!((sum - 1.0).abs() < 1e-3, "array {idx} sums to {sum}");
                    assert!(v.iter().all(|&x| x >= 0.0));
                }
                _ => unreachable!(),
            }
        }
    }
}
