//! DL — two-tower convolutional embedding network (paper Fig. 6).
//!
//! Two input images go through independent CONV→POOL→CONV→POOL→GAP
//! towers (one stream each); the towers share **read-only** convolution
//! weights, their embeddings are concatenated, and a dense layer emits a
//! similarity score.

use gpu_sim::{Grid, TypedData};
use kernels::dl::{conv_out, CONCAT, CONV2D, DENSE, GAP, POOL2D};

use crate::spec::{ArraySpec, BenchSpec, DataGen, PlanArg, PlanOp};

/// Input channels.
pub const C_IN: usize = 3;
/// Channels after the first convolution.
pub const C1: usize = 8;
/// Channels after the second convolution (= embedding length).
pub const C2: usize = 16;
/// Convolution kernel edge.
pub const K: usize = 3;

/// Round a requested side up so both poolings divide evenly
/// (`side ≡ 2 (mod 4)`).
pub fn legal_side(side: usize) -> usize {
    let mut s = side.max(10);
    while s % 4 != 2 {
        s += 1;
    }
    s
}

/// Build DL at `scale` = input image side (adjusted by [`legal_side`]).
pub fn build(scale: usize) -> BenchSpec {
    let side = legal_side(scale);
    let o1 = conv_out(side, K); // after conv1
    let p1 = o1 / 2; // after pool1
    let o2 = conv_out(p1, K); // after conv2
    let p2 = o2 / 2; // after pool2
    assert!(p2 >= 1, "image too small");
    let mut gen = DataGen::new(31337);
    // 3-D blocks of 4×4×4 (paper §V-C); 2-D/3-D grids keep fixed shape.
    let grid3 = Grid::d3((16, 16, 1), (4, 4, 4));
    let grid1 = Grid::d1(64, 256);

    let tower_arrays = |g: &mut DataGen, tag: usize| -> Vec<ArraySpec> {
        vec![
            ArraySpec {
                name: if tag == 0 { "img1" } else { "img2" },
                init: TypedData::F32(g.f32_vec(C_IN * side * side, 0.0, 1.0)),
                refresh_each_iter: true,
            },
            ArraySpec {
                name: if tag == 0 { "t1_conv1" } else { "t2_conv1" },
                init: TypedData::F32(vec![0.0; C1 * o1 * o1]),
                refresh_each_iter: false,
            },
            ArraySpec {
                name: if tag == 0 { "t1_pool1" } else { "t2_pool1" },
                init: TypedData::F32(vec![0.0; C1 * p1 * p1]),
                refresh_each_iter: false,
            },
            ArraySpec {
                name: if tag == 0 { "t1_conv2" } else { "t2_conv2" },
                init: TypedData::F32(vec![0.0; C2 * o2 * o2]),
                refresh_each_iter: false,
            },
            ArraySpec {
                name: if tag == 0 { "t1_pool2" } else { "t2_pool2" },
                init: TypedData::F32(vec![0.0; C2 * p2 * p2]),
                refresh_each_iter: false,
            },
            ArraySpec {
                name: if tag == 0 { "emb1" } else { "emb2" },
                init: TypedData::F32(vec![0.0; C2]),
                refresh_each_iter: false,
            },
        ]
    };

    let mut arrays = Vec::new();
    arrays.extend(tower_arrays(&mut gen, 0)); // 0..6
    arrays.extend(tower_arrays(&mut gen, 1)); // 6..12
    let wc1 = 12;
    let wc2 = 13;
    let cat = 14;
    let wd = 15;
    let out = 16;
    arrays.push(ArraySpec {
        name: "wc1",
        init: TypedData::F32(gen.f32_vec(C1 * C_IN * K * K, -0.3, 0.3)),
        refresh_each_iter: false,
    });
    arrays.push(ArraySpec {
        name: "wc2",
        init: TypedData::F32(gen.f32_vec(C2 * C1 * K * K, -0.2, 0.2)),
        refresh_each_iter: false,
    });
    arrays.push(ArraySpec {
        name: "cat",
        init: TypedData::F32(vec![0.0; 2 * C2]),
        refresh_each_iter: false,
    });
    arrays.push(ArraySpec {
        name: "wd",
        init: TypedData::F32(gen.f32_vec(2 * C2, -0.5, 0.5)),
        refresh_each_iter: false,
    });
    arrays.push(ArraySpec {
        name: "out",
        init: TypedData::F32(vec![0.0]),
        refresh_each_iter: false,
    });

    // Build the two towers: ops 0..5 are tower 1, 5..10 tower 2.
    let mut ops = Vec::new();
    for t in 0..2usize {
        let a0 = t * 6; // base array index of this tower
        let stream = t;
        let base = ops.len();
        let dep = |k: usize| vec![k];
        ops.push(PlanOp {
            def: &CONV2D,
            grid: grid3,
            args: vec![
                PlanArg::Arr(a0),
                PlanArg::Arr(wc1),
                PlanArg::Arr(a0 + 1),
                PlanArg::Scalar(C_IN as f64),
                PlanArg::Scalar(side as f64),
                PlanArg::Scalar(side as f64),
                PlanArg::Scalar(C1 as f64),
                PlanArg::Scalar(K as f64),
            ],
            stream,
            deps: vec![],
        });
        ops.push(PlanOp {
            def: &POOL2D,
            grid: grid3,
            args: vec![
                PlanArg::Arr(a0 + 1),
                PlanArg::Arr(a0 + 2),
                PlanArg::Scalar(C1 as f64),
                PlanArg::Scalar(o1 as f64),
                PlanArg::Scalar(o1 as f64),
            ],
            stream,
            deps: dep(base),
        });
        ops.push(PlanOp {
            def: &CONV2D,
            grid: grid3,
            args: vec![
                PlanArg::Arr(a0 + 2),
                PlanArg::Arr(wc2),
                PlanArg::Arr(a0 + 3),
                PlanArg::Scalar(C1 as f64),
                PlanArg::Scalar(p1 as f64),
                PlanArg::Scalar(p1 as f64),
                PlanArg::Scalar(C2 as f64),
                PlanArg::Scalar(K as f64),
            ],
            stream,
            deps: dep(base + 1),
        });
        ops.push(PlanOp {
            def: &POOL2D,
            grid: grid3,
            args: vec![
                PlanArg::Arr(a0 + 3),
                PlanArg::Arr(a0 + 4),
                PlanArg::Scalar(C2 as f64),
                PlanArg::Scalar(o2 as f64),
                PlanArg::Scalar(o2 as f64),
            ],
            stream,
            deps: dep(base + 2),
        });
        ops.push(PlanOp {
            def: &GAP,
            grid: grid1,
            args: vec![
                PlanArg::Arr(a0 + 4),
                PlanArg::Arr(a0 + 5),
                PlanArg::Scalar(C2 as f64),
                PlanArg::Scalar((p2 * p2) as f64),
            ],
            stream,
            deps: dep(base + 3),
        });
    }
    // Join: concat + dense on stream 0.
    ops.push(PlanOp {
        def: &CONCAT,
        grid: grid1,
        args: vec![
            PlanArg::Arr(5),
            PlanArg::Arr(11),
            PlanArg::Arr(cat),
            PlanArg::Scalar(C2 as f64),
            PlanArg::Scalar(C2 as f64),
        ],
        stream: 0,
        deps: vec![4, 9],
    });
    ops.push(PlanOp {
        def: &DENSE,
        grid: grid1,
        args: vec![
            PlanArg::Arr(cat),
            PlanArg::Arr(wd),
            PlanArg::Arr(out),
            PlanArg::Scalar((2 * C2) as f64),
        ],
        stream: 0,
        deps: vec![10],
    });

    BenchSpec {
        name: "DL",
        arrays,
        ops,
        outputs: vec![(out, 1)],
        scale: side,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_side_rounds_up() {
        assert_eq!(legal_side(30), 30);
        assert_eq!(legal_side(31), 34);
        assert_eq!(legal_side(5), 10);
    }

    #[test]
    fn two_towers_then_join() {
        let s = build(30);
        assert_eq!(s.ops.len(), 12);
        assert_eq!(s.planned_streams(), 2);
        s.check_well_formed().unwrap();
        // The towers are independent roots sharing read-only weights.
        assert!(s.ops[0].deps.is_empty() && s.ops[5].deps.is_empty());
        assert_eq!(s.ops[10].deps, vec![4, 9]);
    }

    #[test]
    fn similarity_score_is_a_probability() {
        let s = build(18);
        let fin = s.reference_final_state();
        match &fin[16] {
            TypedData::F32(o) => {
                assert!(o[0] > 0.0 && o[0] < 1.0, "sigmoid output: {}", o[0]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn embeddings_are_not_degenerate() {
        let s = build(18);
        let fin = s.reference_final_state();
        for idx in [5usize, 11] {
            match &fin[idx] {
                TypedData::F32(e) => {
                    assert!(e.iter().any(|&v| v != 0.0), "embedding {idx} is zero");
                    assert!(e.iter().all(|&v| v.is_finite()));
                }
                _ => unreachable!(),
            }
        }
    }
}
