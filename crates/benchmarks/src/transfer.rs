//! The *transfer chain*: the dependent-chain workload that separates
//! byte-count locality from transfer-cost awareness on a real
//! interconnect.
//!
//! Per iteration, on 4 devices:
//!
//! 1. a fresh host input `A` is written (streaming request data);
//! 2. `warm` (SCALE) folds `A` into a scratch array `T` — every policy
//!    anchors this to device 0, and the H2D of `A` leaves a valid host
//!    copy behind (`A` is read-only);
//! 3. `state` (PIN) advances the chain state `S` against a large weight
//!    array `W2` anchored to device 2 — the other island of an
//!    NVLink-pair machine;
//! 4. `join` (JOIN) samples `A` and `S` into a small output `J`.
//!
//! The join is the interesting decision. `A` is slightly bigger than
//! `S`, so byte-count [`grcuda::PlacementPolicy::LocalityAware`] places
//! the join next to `A` on device 0 — dragging `S` across the island
//! boundary through the host (two PCIe legs) *every iteration*, and
//! paying them again when `state` pulls `S` back. Transfer-cost-aware
//! placement sees that `A` still has a valid host copy (one H2D leg
//! anywhere) while moving `S` costs a host-mediated round trip, and runs
//! the join next to `S` on device 2 instead.
//! [`grcuda::PlacementPolicy::RoundRobin`] ignores data entirely and
//! additionally drags the big anchor weights around.

use gpu_sim::{DeviceProfile, Grid};
use grcuda::{MultiArg, MultiArray, MultiGpu, Options, PlacementPolicy, TopologyKind};
use kernels::util::{JOIN, PIN, SCALE};
use kernels::vec_ops::SQUARE;

/// Devices the workload is shaped for (two NVLink islands on the
/// `nvlink-pair` preset).
pub const TRANSFER_CHAIN_DEVICES: usize = 4;

/// What one transfer-chain run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferChainResult {
    /// Simulated makespan in seconds.
    pub makespan: f64,
    /// Total cross-device migrations `(count, bytes)`.
    pub migrations: (usize, usize),
    /// Migrations that went over peer links `(count, bytes)`.
    pub p2p_migrations: (usize, usize),
    /// Bytes moved over the host (PCIe) links, staging included.
    pub host_link_bytes: f64,
    /// Per-link `(bytes, transfers)`, indexed like the topology's links.
    pub link_traffic: Vec<(f64, usize)>,
    /// Checksum over the outputs — identical across policies and
    /// topologies (placement moves work, never changes results).
    pub checksum: f64,
    /// Data races observed (must be 0).
    pub races: usize,
}

/// Run the transfer chain under a placement policy on an interconnect
/// preset. `n` is the element count of the input array `A` (the other
/// arrays scale from it); `iters` the number of chain iterations.
pub fn transfer_chain(
    policy: PlacementPolicy,
    topology: TopologyKind,
    n: usize,
    iters: usize,
) -> TransferChainResult {
    transfer_chain_opts(policy, topology, n, iters, Options::parallel())
}

/// [`transfer_chain`] with explicit scheduler options — what calibrated
/// (adaptive) runs use; the plain entry point keeps the default options
/// so committed metrics stay bit-identical.
pub fn transfer_chain_opts(
    policy: PlacementPolicy,
    topology: TopologyKind,
    n: usize,
    iters: usize,
    options: Options,
) -> TransferChainResult {
    let grid = Grid::d1(64, 256);
    let mut m = MultiGpu::with_topology(
        DeviceProfile::tesla_p100(),
        TRANSFER_CHAIN_DEVICES,
        options,
        policy,
        topology,
    );
    let sn = n * 3 / 4; // state is slightly smaller than the input
    let wn = n * 3 / 2; // anchor weights dominate any argument set
    let jn = 1024.min(n);

    // Anchor weights: all-host data is placement-neutral, so the load
    // tie-break lands W0..W3 on devices 0..3 for every policy (and
    // round-robin cycles onto the same devices). After this, W2 pins the
    // chain state's island.
    let ws: Vec<MultiArray> = (0..TRANSFER_CHAIN_DEVICES)
        .map(|i| {
            let w = m.array_f32(wn);
            m.write_f32(&w, &vec![0.5 + 0.25 * i as f32; wn]);
            m.launch(
                &SQUARE,
                grid,
                &[MultiArg::array(&w), MultiArg::scalar(wn as f64)],
            )
            .unwrap();
            w
        })
        .collect();
    m.sync();

    let a = m.array_f32(n);
    let t = m.array_f32(n);
    let s = m.array_f32(sn);
    let j = m.array_f32(jn);
    m.write_f32(&s, &vec![1.0; sn]);

    for iter in 0..iters {
        // Fresh streaming input each iteration.
        m.write_f32(&a, &vec![1.0 + 0.001 * iter as f32; n]);
        m.launch(
            &SCALE,
            grid,
            &[
                MultiArg::array(&a),
                MultiArg::array(&t),
                MultiArg::scalar(1.0001),
                MultiArg::scalar(n as f64),
            ],
        )
        .unwrap();
        m.launch(
            &PIN,
            grid,
            &[
                MultiArg::array(&ws[2]),
                MultiArg::array(&s),
                MultiArg::scalar(wn as f64),
                MultiArg::scalar(sn as f64),
            ],
        )
        .unwrap();
        m.launch(
            &JOIN,
            grid,
            &[
                MultiArg::array(&a),
                MultiArg::array(&s),
                MultiArg::array(&j),
                MultiArg::scalar(n as f64),
                MultiArg::scalar(sn as f64),
                MultiArg::scalar(jn as f64),
            ],
        )
        .unwrap();
    }
    m.sync();

    let checksum = m
        .read_f32(&j)
        .iter()
        .chain(m.read_f32(&s).iter())
        .map(|&x| x as f64)
        .sum::<f64>()
        + m.read_f32(&t)[..16.min(n)]
            .iter()
            .map(|&x| x as f64)
            .sum::<f64>();

    TransferChainResult {
        makespan: m.makespan(),
        migrations: m.migration_stats(),
        p2p_migrations: m.p2p_migration_stats(),
        host_link_bytes: m.host_link_bytes(),
        link_traffic: m.link_traffic(),
        checksum,
        races: m.races(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_chain_is_deterministic_and_race_free() {
        let a = transfer_chain(
            PlacementPolicy::TransferAware,
            TopologyKind::NvlinkPair,
            4096,
            3,
        );
        let b = transfer_chain(
            PlacementPolicy::TransferAware,
            TopologyKind::NvlinkPair,
            4096,
            3,
        );
        assert_eq!(a, b);
        assert_eq!(a.races, 0);
        assert!(a.checksum.is_finite());
    }

    #[test]
    fn results_are_identical_across_policies_and_topologies() {
        let reference = transfer_chain(PlacementPolicy::SingleGpu, TopologyKind::PcieOnly, 4096, 3);
        for topo in TopologyKind::ALL {
            for policy in PlacementPolicy::ALL {
                let r = transfer_chain(policy, topo, 4096, 3);
                assert_eq!(r.races, 0, "{policy:?} on {topo:?} raced");
                assert_eq!(
                    r.checksum, reference.checksum,
                    "{policy:?} on {topo:?} changed the numbers"
                );
            }
        }
    }
}
