#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # benchmarks — the paper's 6 task-parallel benchmarks
//!
//! Each benchmark (§V-B, Fig. 6) is described once as a device-agnostic
//! [`BenchSpec`]: managed arrays with deterministic initial contents, a
//! list of kernel launches with the paper's Fig. 6 stream coloring and
//! explicit dependency edges, and the host reads that end an iteration.
//! One spec then runs under every execution strategy of the evaluation:
//!
//! | runner | paper role |
//! |---|---|
//! | [`runners::run_grcuda`] + [`grcuda::Options::serial`] | serial GrCUDA baseline (Fig. 7 denominator) |
//! | [`runners::run_grcuda`] + [`grcuda::Options::parallel`] | **the paper's scheduler** |
//! | [`runners::run_handtuned`] | hand-optimized CUDA events (+ manual prefetch) |
//! | [`runners::run_graph_manual`] | CUDA Graphs with manual dependencies |
//! | [`runners::run_graph_capture`] | CUDA Graphs via stream capture |
//!
//! The GrCUDA runner deliberately ignores the stream/dependency hints:
//! the scheduler must rediscover them. Every run is validated against a
//! sequential CPU reference execution of the same plan, and the
//! simulator's race detector must stay silent.

pub mod bound;
pub mod cluster;
pub mod mixed;
pub mod oversub;
pub mod runners;
pub mod scales;
pub mod spec;
pub mod suite;
pub mod transfer;

pub use bound::{contention_free_time, contention_free_time_warm};
pub use cluster::{cluster_run, ClusterResult, ClusterSuite};
pub use mixed::{
    fanout_mix, fanout_mix_opts, mixed_makespans, mixed_options, FanoutMixResult, MixedScale,
    FANOUT_DEVICES, MIXED_SUITES,
};
pub use oversub::{
    oversub_capacity, oversub_configs, oversubscribe, oversubscribe_opts, OversubResult,
    OVERSUB_DEVICES,
};
pub use runners::{
    grcuda_arrays, multi_gpu_arrays, read_grcuda_outputs, read_multi_gpu_outputs,
    refresh_grcuda_arrays, refresh_multi_gpu_arrays, run_graph_capture, run_graph_manual,
    run_grcuda, run_handtuned, run_multi_gpu, run_multi_gpu_topo, MultiRunResult, RunResult,
};
pub use spec::{ArraySpec, BenchSpec, PlanArg, PlanOp};
pub use transfer::{
    transfer_chain, transfer_chain_opts, TransferChainResult, TRANSFER_CHAIN_DEVICES,
};

/// The six benchmarks, in the paper's figure order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bench {
    /// Vector Squares.
    Vec,
    /// Black & Scholes.
    Bs,
    /// Image Processing.
    Img,
    /// ML Ensemble.
    Ml,
    /// HITS.
    Hits,
    /// Deep Learning.
    Dl,
}

impl Bench {
    /// All benchmarks in figure order.
    pub const ALL: [Bench; 6] = [
        Bench::Vec,
        Bench::Bs,
        Bench::Img,
        Bench::Ml,
        Bench::Hits,
        Bench::Dl,
    ];

    /// Short name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Bench::Vec => "VEC",
            Bench::Bs => "B&S",
            Bench::Img => "IMG",
            Bench::Ml => "ML",
            Bench::Hits => "HITS",
            Bench::Dl => "DL",
        }
    }

    /// Build the benchmark's plan at a given scale (the meaning of
    /// "scale" is per-benchmark, matching the paper's x-axes: elements,
    /// options, pixels per side, rows, edges, image side).
    pub fn build(self, scale: usize) -> BenchSpec {
        match self {
            Bench::Vec => suite::vec::build(scale),
            Bench::Bs => suite::bs::build(scale),
            Bench::Img => suite::img::build(scale),
            Bench::Ml => suite::ml::build(scale),
            Bench::Hits => suite::hits::build(scale),
            Bench::Dl => suite::dl::build(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper() {
        let names: Vec<&str> = Bench::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["VEC", "B&S", "IMG", "ML", "HITS", "DL"]);
    }

    #[test]
    fn all_benchmarks_build_at_small_scale() {
        for b in Bench::ALL {
            let spec = b.build(scales::tiny(b));
            assert!(!spec.ops.is_empty(), "{}", b.name());
            assert!(!spec.arrays.is_empty(), "{}", b.name());
            assert!(spec.footprint_bytes() > 0);
            spec.check_well_formed().unwrap();
        }
    }
}
