//! Device-agnostic benchmark plans.

use gpu_sim::{DataBuffer, Grid, TypedData};
use kernels::KernelDef;

/// One managed array of a benchmark.
#[derive(Debug, Clone)]
pub struct ArraySpec {
    /// Display name (`X`, `blur_small`, ...).
    pub name: &'static str,
    /// Deterministic initial contents.
    pub init: TypedData,
    /// True for streaming inputs re-written by the host every iteration
    /// ("each iteration has new input data", VEC/B&S).
    pub refresh_each_iter: bool,
}

impl ArraySpec {
    /// Size in bytes.
    pub fn byte_len(&self) -> usize {
        self.init.byte_len()
    }
}

/// A launch argument inside a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanArg {
    /// Index into [`BenchSpec::arrays`].
    Arr(usize),
    /// A scalar by copy.
    Scalar(f64),
}

/// One kernel launch of the plan.
#[derive(Debug, Clone)]
pub struct PlanOp {
    /// The kernel to launch.
    pub def: &'static KernelDef,
    /// Launch configuration. Built with the benchmark's default block
    /// size; [`BenchSpec::with_block_size`] rebuilds the plan for the
    /// block-size sweeps of Fig. 7.
    pub grid: Grid,
    /// Arguments in signature order.
    pub args: Vec<PlanArg>,
    /// The paper's Fig. 6 stream assignment (used by the hand-tuned and
    /// capture baselines; ignored by the GrCUDA scheduler).
    pub stream: usize,
    /// Explicit dependencies on earlier ops (used by the hand-tuned
    /// events and manual-graph baselines; the GrCUDA scheduler must
    /// *infer* these).
    pub deps: Vec<usize>,
}

/// A host read that ends an iteration: `(array index, number of
/// elements read)` — e.g. VEC's `res = Z[0]`.
pub type OutputRead = (usize, usize);

/// A complete benchmark description.
#[derive(Debug, Clone)]
pub struct BenchSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// Managed arrays.
    pub arrays: Vec<ArraySpec>,
    /// Kernel launches in program order.
    pub ops: Vec<PlanOp>,
    /// Host reads performed at the end of each iteration.
    pub outputs: Vec<OutputRead>,
    /// Scale the spec was built at.
    pub scale: usize,
}

impl BenchSpec {
    /// Total unified-memory footprint (the Table I quantity).
    pub fn footprint_bytes(&self) -> usize {
        self.arrays.iter().map(|a| a.byte_len()).sum()
    }

    /// Rebuild the plan with a different 1-D block size where the op
    /// uses a 1-D grid (the Fig. 7 block-size sweep; 2-D/3-D launches
    /// keep the paper's fixed 8×8 / 4×4×4 blocks).
    pub fn with_block_size(mut self, threads: u32) -> Self {
        for op in &mut self.ops {
            let g = op.grid;
            if g.threads.1 == 1 && g.threads.2 == 1 && g.blocks.1 == 1 && g.blocks.2 == 1 {
                op.grid = Grid::d1(g.blocks.0, threads);
            }
        }
        self
    }

    /// Sanity-check structural invariants: argument indices in range,
    /// dependencies acyclic (point backwards), argument counts match the
    /// kernels' NIDL arity.
    pub fn check_well_formed(&self) -> Result<(), String> {
        for (i, op) in self.ops.iter().enumerate() {
            for a in &op.args {
                if let PlanArg::Arr(k) = a {
                    if *k >= self.arrays.len() {
                        return Err(format!("{}: op {i} references array {k}", self.name));
                    }
                }
            }
            for d in &op.deps {
                if *d >= i {
                    return Err(format!("{}: op {i} depends forward on {d}", self.name));
                }
            }
            let arrays = op
                .args
                .iter()
                .filter(|a| matches!(a, PlanArg::Arr(_)))
                .count();
            let nidl_ptrs =
                op.def.nidl.matches("pointer").count() + op.def.nidl.matches("ptr,").count();
            if arrays != nidl_ptrs && !op.def.nidl.contains("ptr") {
                return Err(format!(
                    "{}: op {i} ({}) passes {arrays} arrays, signature wants {nidl_ptrs}",
                    self.name, op.def.name
                ));
            }
        }
        for (k, n) in &self.outputs {
            if *k >= self.arrays.len() {
                return Err(format!("{}: output array {k} out of range", self.name));
            }
            if *n == 0 {
                return Err(format!("{}: zero-length output read", self.name));
            }
        }
        Ok(())
    }

    /// Execute the whole plan functionally on the CPU, in program order,
    /// and return the final contents of every array — the reference any
    /// scheduler's result must match bit-for-bit.
    pub fn reference_final_state(&self) -> Vec<TypedData> {
        let buffers: Vec<DataBuffer> = self
            .arrays
            .iter()
            .map(|a| DataBuffer::new(a.init.clone()))
            .collect();
        for op in &self.ops {
            let (bufs, scalars) = self.op_inputs(op, &buffers);
            (op.def.func)(&bufs, &scalars);
        }
        buffers.iter().map(|b| b.data().clone()).collect()
    }

    /// Split an op's arguments into buffers and scalars against a
    /// concrete buffer set.
    pub fn op_inputs(&self, op: &PlanOp, buffers: &[DataBuffer]) -> (Vec<DataBuffer>, Vec<f64>) {
        let mut bufs = Vec::new();
        let mut scalars = Vec::new();
        for a in &op.args {
            match a {
                PlanArg::Arr(k) => bufs.push(buffers[*k].clone()),
                PlanArg::Scalar(v) => scalars.push(*v),
            }
        }
        (bufs, scalars)
    }

    /// Number of distinct streams the plan's hand coloring uses.
    pub fn planned_streams(&self) -> usize {
        let mut s: Vec<usize> = self.ops.iter().map(|o| o.stream).collect();
        s.sort_unstable();
        s.dedup();
        s.len()
    }
}

/// Deterministic xorshift data generator for benchmark inputs.
pub struct DataGen {
    state: u64,
}

impl DataGen {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        DataGen {
            state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
        }
    }

    fn next(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * ((self.next() >> 11) as f64 / (1u64 << 53) as f64)
    }

    /// Uniform f32 in `[lo, hi)`.
    pub fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        self.f64(lo as f64, hi as f64) as f32
    }

    /// A vector of uniform f32.
    pub fn f32_vec(&mut self, n: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..n).map(|_| self.f32(lo, hi)).collect()
    }

    /// A vector of uniform f64.
    pub fn f64_vec(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.f64(lo, hi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::util::SCALE;

    fn tiny_spec() -> BenchSpec {
        BenchSpec {
            name: "T",
            arrays: vec![
                ArraySpec {
                    name: "x",
                    init: TypedData::F32(vec![1.0, 2.0]),
                    refresh_each_iter: false,
                },
                ArraySpec {
                    name: "y",
                    init: TypedData::F32(vec![0.0, 0.0]),
                    refresh_each_iter: false,
                },
            ],
            ops: vec![PlanOp {
                def: &SCALE,
                grid: Grid::d1(1, 32),
                args: vec![
                    PlanArg::Arr(0),
                    PlanArg::Arr(1),
                    PlanArg::Scalar(2.0),
                    PlanArg::Scalar(2.0),
                ],
                stream: 0,
                deps: vec![],
            }],
            outputs: vec![(1, 1)],
            scale: 2,
        }
    }

    #[test]
    fn footprint_sums_arrays() {
        assert_eq!(tiny_spec().footprint_bytes(), 16);
    }

    #[test]
    fn reference_executes_plan() {
        let s = tiny_spec();
        let final_state = s.reference_final_state();
        assert_eq!(final_state[1], TypedData::F32(vec![2.0, 4.0]));
        // Initial specs untouched.
        assert_eq!(s.arrays[1].init, TypedData::F32(vec![0.0, 0.0]));
    }

    #[test]
    fn well_formed_catches_bad_indices() {
        let mut s = tiny_spec();
        s.check_well_formed().unwrap();
        s.outputs = vec![(9, 1)];
        assert!(s.check_well_formed().is_err());
    }

    #[test]
    fn well_formed_catches_forward_deps() {
        let mut s = tiny_spec();
        s.ops[0].deps = vec![0];
        assert!(s.check_well_formed().is_err());
    }

    #[test]
    fn block_size_rebuild_touches_1d_only() {
        let s = tiny_spec().with_block_size(1024);
        assert_eq!(s.ops[0].grid.threads.0, 1024);
    }

    #[test]
    fn datagen_is_deterministic_and_in_range() {
        let mut a = DataGen::new(7);
        let mut b = DataGen::new(7);
        for _ in 0..100 {
            let x = a.f64(-1.0, 3.0);
            assert_eq!(x, b.f64(-1.0, 3.0));
            assert!((-1.0..3.0).contains(&x));
        }
    }
}
