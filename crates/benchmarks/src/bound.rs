//! Contention-free execution-time bound (Fig. 9).
//!
//! Builds a [`metrics::critical_path()`] instance from a benchmark plan:
//! every input array contributes a full-bandwidth transfer node, every
//! kernel a node with its *solo* duration on the target device, linked by
//! the plan's dependency edges. The result is the finish time on a
//! hypothetical machine where nothing ever contends — the denominator of
//! the paper's Fig. 9 ("how far each benchmark is from its theoretical
//! contention-free peak performance").

use std::collections::HashMap;

use gpu_sim::DeviceProfile;
use metrics::critical_path::{critical_path, PathNode};

use crate::spec::{BenchSpec, PlanArg};

/// Contention-free completion time of one cold-start iteration (every
/// array transferred) — see [`contention_free_time_warm`] for the
/// steady-state variant used by Fig. 9.
pub fn contention_free_time(spec: &BenchSpec, dev: &DeviceProfile) -> f64 {
    bound_impl(spec, dev, false)
}

/// Contention-free completion time of a steady-state iteration: only the
/// streaming inputs (re-written by the host each iteration) pay a
/// transfer; everything else is already device-resident.
pub fn contention_free_time_warm(spec: &BenchSpec, dev: &DeviceProfile) -> f64 {
    bound_impl(spec, dev, true)
}

fn bound_impl(spec: &BenchSpec, dev: &DeviceProfile, warm: bool) -> f64 {
    let buffers: Vec<gpu_sim::DataBuffer> = spec
        .arrays
        .iter()
        .map(|a| gpu_sim::DataBuffer::new(a.init.clone()))
        .collect();

    let mut nodes: Vec<PathNode> = Vec::new();
    // One transfer node per array, created lazily at first use.
    let mut transfer_node: HashMap<usize, usize> = HashMap::new();
    // Map op index -> node index.
    let mut op_node: Vec<usize> = Vec::with_capacity(spec.ops.len());

    for op in &spec.ops {
        let mut deps: Vec<usize> = Vec::new();
        for a in &op.args {
            if let PlanArg::Arr(k) = a {
                if warm && !spec.arrays[*k].refresh_each_iter {
                    continue; // already resident in steady state
                }
                let t = *transfer_node.entry(*k).or_insert_with(|| {
                    nodes.push(PathNode {
                        duration: spec.arrays[*k].byte_len() as f64 / dev.pcie_bw
                            + dev.launch_overhead,
                        deps: vec![],
                    });
                    nodes.len() - 1
                });
                deps.push(t);
            }
        }
        for d in &op.deps {
            deps.push(op_node[*d]);
        }
        let (bufs, scalars) = spec.op_inputs(op, &buffers);
        let cost = (op.def.cost)(&bufs, &scalars);
        let (solo, _) = cost.solo_profile(op.grid, dev);
        nodes.push(PathNode {
            duration: solo + dev.launch_overhead,
            deps,
        });
        op_node.push(nodes.len() - 1);
    }
    critical_path(&nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scales, Bench};

    #[test]
    fn bound_is_positive_and_scales() {
        let dev = DeviceProfile::gtx1660_super();
        for b in Bench::ALL {
            let small = contention_free_time(&b.build(scales::tiny(b)), &dev);
            assert!(small > 0.0, "{:?}", b);
        }
        let s1 = contention_free_time(&Bench::Vec.build(100_000), &dev);
        let s2 = contention_free_time(&Bench::Vec.build(1_000_000), &dev);
        assert!(s2 > 2.0 * s1);
    }

    #[test]
    fn faster_device_has_lower_bound() {
        let spec = Bench::Ml.build(2_000);
        let t960 = contention_free_time(&spec, &DeviceProfile::gtx960());
        let tp100 = contention_free_time(&spec, &DeviceProfile::tesla_p100());
        assert!(tp100 < t960, "{tp100} vs {t960}");
    }

    #[test]
    fn bound_is_below_any_serial_sum() {
        // The critical path can never exceed the sum of all node solo
        // durations + all transfers.
        let dev = DeviceProfile::tesla_p100();
        let spec = Bench::Img.build(64);
        let bound = contention_free_time(&spec, &dev);
        let buffers: Vec<gpu_sim::DataBuffer> = spec
            .arrays
            .iter()
            .map(|a| gpu_sim::DataBuffer::new(a.init.clone()))
            .collect();
        let serial_sum: f64 = spec
            .ops
            .iter()
            .map(|op| {
                let (bufs, scalars) = spec.op_inputs(op, &buffers);
                let cost = (op.def.cost)(&bufs, &scalars);
                cost.solo_profile(op.grid, &dev).0 + dev.launch_overhead
            })
            .sum::<f64>()
            + spec.footprint_bytes() as f64 / dev.pcie_bw
            + spec.arrays.len() as f64 * dev.launch_overhead;
        assert!(bound <= serial_sum + 1e-9, "{bound} vs {serial_sum}");
    }
}
