//! The *fanout mix*: the independent mixed-duration fan-out that
//! separates history-driven placement from every count-based heuristic —
//! and the cross-suite sweep ("mixed workload") that shows no single
//! static policy wins everywhere.
//!
//! Per round, on 2 devices: one *heavy* kernel (Black–Scholes fp64
//! pricing over `n` options — compute-bound on the fp64-starved
//! GTX 1660 Super the suite runs on) and three *short* kernels
//! (Gaussian blur over a small image, whose stencil compute dwarfs its
//! tiny transfer), all mutually independent and all on **fresh
//! host-resident arrays** — so residency and transfer estimates tie
//! across devices and placement is decided purely by each policy's load
//! model. The heavy kernel's duration is ~3–4× a short's. The round
//! ends with a sync (the next round's decisions start from an idle
//! machine).
//!
//! Count-based tie-breaks (round-robin, stream-aware, and the
//! transfer/memory-aware policies' in-flight tie-break) all see "one
//! task here, one task there" and give the heavy kernel's device a
//! short kernel too: makespan ≈ heavy + short. A policy that knows the
//! *durations* — [`grcuda::PlacementPolicy::Adaptive`] with online
//! calibration ([`grcuda::Options::calibrate`]) — charges the heavy
//! kernel's predicted seconds to its device and routes all three shorts
//! to the other one: makespan ≈ max(heavy, 3·short), strictly better
//! whenever heavy ≥ 3·short. The first round is an unmeasured warmup
//! that primes the calibration priors; measurement starts at its sync.

use gpu_sim::DeviceProfile;
use gpu_sim::{EvictionPolicy, Grid, TopologyKind};
use grcuda::{MultiArg, MultiArray, MultiGpu, Options, PlacementPolicy};
use kernels::black_scholes::BLACK_SCHOLES;
use kernels::image::GAUSSIAN_BLUR;

use crate::oversub::{oversub_capacity, oversubscribe_opts};
use crate::transfer::transfer_chain_opts;

/// Devices the fan-out is shaped for.
pub const FANOUT_DEVICES: usize = 2;
/// Short kernels per round.
pub const FANOUT_SHORTS: usize = 3;
/// Blur stencil diameter for the short kernels (compute ∝ diameter²,
/// so the shorts' durations are compute- not transfer-dominated).
const BLUR_DIAMETER: usize = 31;

/// What one fanout-mix run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct FanoutMixResult {
    /// Simulated makespan of the measured rounds (warmup excluded),
    /// in seconds.
    pub makespan: f64,
    /// Checksum over sampled outputs — identical across policies
    /// (placement moves work, never changes results).
    pub checksum: f64,
    /// Kernel-duration observations the calibration layer accumulated
    /// (0 unless the options enabled it).
    pub calib_kernel_samples: u64,
    /// Data races observed (must be 0).
    pub races: usize,
}

/// The options a policy naturally runs the mixed workload under:
/// defaults for the static policies, defaults + online calibration for
/// [`PlacementPolicy::Adaptive`] (which is history-blind without it).
pub fn mixed_options(policy: PlacementPolicy) -> Options {
    Options::parallel().with_calibration(policy == PlacementPolicy::Adaptive)
}

/// Run the fanout mix under a policy with its natural options
/// ([`mixed_options`]). `n` is the short kernels' element count;
/// `rounds` the number of measured rounds (one warmup round is added).
pub fn fanout_mix(policy: PlacementPolicy, n: usize, rounds: usize) -> FanoutMixResult {
    fanout_mix_opts(policy, n, rounds, mixed_options(policy))
}

/// [`fanout_mix`] with explicit scheduler options.
pub fn fanout_mix_opts(
    policy: PlacementPolicy,
    n: usize,
    rounds: usize,
    options: Options,
) -> FanoutMixResult {
    let grid = Grid::d1(256, 256);
    let mut m = MultiGpu::new(
        DeviceProfile::gtx1660_super(),
        FANOUT_DEVICES,
        options,
        policy,
    );
    // Short kernels blur a side×side image whose pixel count is n/4;
    // the heavy kernel prices 2n fp64 options (~300 fp64 ops each on a
    // 1/32-rate part), so one heavy ≈ 3–4 shorts in duration.
    let heavy_n = 2 * n;
    let side = ((n / 4) as f64).sqrt() as usize;
    let d = BLUR_DIAMETER;
    let mut checksum = 0.0;
    let mut t0 = 0.0;
    for round in 0..=rounds {
        // Fresh arrays every round: all-host data costs every device the
        // same single H2D leg, so the placement decision is exactly the
        // policy's load model — nothing is pinned by prior residency.
        let hx = m.array_f64(heavy_n);
        let hy = m.array_f64(heavy_n);
        m.write_f64(&hx, &vec![90.0 + round as f64; heavy_n]);
        m.launch(
            &BLACK_SCHOLES,
            grid,
            &[
                MultiArg::array(&hx),
                MultiArg::array(&hy),
                MultiArg::scalar(heavy_n as f64),
                MultiArg::scalar(100.0),
                MultiArg::scalar(0.02),
                MultiArg::scalar(0.30),
                MultiArg::scalar(1.0),
            ],
        )
        .unwrap();
        let shorts: Vec<MultiArray> = (0..FANOUT_SHORTS)
            .map(|k| {
                let img = m.array_f32(side * side);
                let out = m.array_f32(side * side);
                let kern = m.array_f32(d * d);
                m.write_f32(&img, &vec![0.5 + 0.25 * k as f32; side * side]);
                m.write_f32(&kern, &vec![1.0 / (d * d) as f32; d * d]);
                m.launch(
                    &GAUSSIAN_BLUR,
                    grid,
                    &[
                        MultiArg::array(&img),
                        MultiArg::array(&out),
                        MultiArg::scalar(side as f64),
                        MultiArg::scalar(side as f64),
                        MultiArg::array(&kern),
                        MultiArg::scalar(d as f64),
                    ],
                )
                .unwrap();
                out
            })
            .collect();
        m.sync();
        if round == 0 {
            // Warmup done: priors are primed, the machine is idle.
            // Measure from here.
            t0 = m.runtime().now();
        } else if round == rounds {
            // Verify outputs once, on the final round — host read-back
            // is policy-neutral noise, so keep it out of the middle of
            // the measurement.
            checksum += m.get_f64(&hy, 1);
            for out in &shorts {
                checksum += m.get_f32(out, 1) as f64;
            }
        }
    }
    FanoutMixResult {
        makespan: m.runtime().now() - t0,
        checksum,
        calib_kernel_samples: m.runtime().calibration_stats().kernel_samples,
        races: m.races(),
    }
}

/// The mixed workload's suites, in sweep order.
pub const MIXED_SUITES: [&str; 3] = ["chain", "oversub", "fanout"];

/// Problem sizes for one mixed-workload sweep.
#[derive(Debug, Clone, Copy)]
pub struct MixedScale {
    /// Transfer-chain input elements.
    pub chain_n: usize,
    /// Transfer-chain iterations.
    pub chain_iters: usize,
    /// Oversubscription state-array elements.
    pub oversub_n: usize,
    /// Oversubscription passes.
    pub oversub_iters: usize,
    /// Fanout-mix short-kernel elements.
    pub fanout_n: usize,
    /// Fanout-mix measured rounds.
    pub fanout_rounds: usize,
}

impl MixedScale {
    /// The scale the `adaptive` benchmark binary runs.
    pub fn smoke() -> Self {
        MixedScale {
            chain_n: 1 << 17,
            chain_iters: 6,
            oversub_n: 1 << 16,
            oversub_iters: 4,
            fanout_n: 1 << 16,
            fanout_rounds: 4,
        }
    }

    /// A smaller scale for unit/integration tests.
    pub fn quick() -> Self {
        MixedScale {
            chain_n: 1 << 15,
            chain_iters: 4,
            oversub_n: 1 << 15,
            oversub_iters: 2,
            fanout_n: 1 << 15,
            fanout_rounds: 3,
        }
    }
}

/// Makespans of one policy across every suite of the mixed workload
/// (suite names from [`MIXED_SUITES`]), each run under the policy's
/// natural options ([`mixed_options`]) and, for the oversubscription
/// suite, LRU eviction — eviction is held fixed so placement is the
/// only variable under test.
pub fn mixed_makespans(policy: PlacementPolicy, scale: &MixedScale) -> [(&'static str, f64); 3] {
    let opts = mixed_options(policy);
    let chain = transfer_chain_opts(
        policy,
        TopologyKind::NvlinkPair,
        scale.chain_n,
        scale.chain_iters,
        opts,
    )
    .makespan;
    let oversub = oversubscribe_opts(
        policy,
        EvictionPolicy::Lru,
        Some(oversub_capacity(scale.oversub_n)),
        scale.oversub_n,
        scale.oversub_iters,
        opts,
    )
    .makespan;
    let fanout = fanout_mix_opts(policy, scale.fanout_n, scale.fanout_rounds, opts).makespan;
    [("chain", chain), ("oversub", oversub), ("fanout", fanout)]
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 1 << 15;

    #[test]
    fn fanout_mix_is_deterministic_and_race_free() {
        let a = fanout_mix(PlacementPolicy::Adaptive, N, 3);
        let b = fanout_mix(PlacementPolicy::Adaptive, N, 3);
        assert_eq!(a, b);
        assert_eq!(a.races, 0);
        assert!(a.checksum.is_finite());
        assert!(
            a.calib_kernel_samples > 0,
            "adaptive runs calibrated: {a:?}"
        );
    }

    #[test]
    fn results_are_identical_across_policies() {
        let reference = fanout_mix(PlacementPolicy::SingleGpu, N, 3);
        assert_eq!(
            reference.calib_kernel_samples, 0,
            "statics run uncalibrated"
        );
        for policy in PlacementPolicy::ALL {
            let r = fanout_mix(policy, N, 3);
            assert_eq!(r.races, 0, "{policy:?} raced");
            assert_eq!(
                r.checksum, reference.checksum,
                "{policy:?} changed the numbers"
            );
        }
    }

    #[test]
    fn adaptive_strictly_beats_every_count_based_policy_on_the_fanout() {
        let adaptive = fanout_mix(PlacementPolicy::Adaptive, N, 3);
        for policy in PlacementPolicy::STATIC {
            let r = fanout_mix(policy, N, 3);
            assert!(
                adaptive.makespan < r.makespan * 0.95,
                "{policy:?} ({} ms) should lose to adaptive ({} ms) by >5%",
                r.makespan * 1e3,
                adaptive.makespan * 1e3,
            );
        }
    }
}
