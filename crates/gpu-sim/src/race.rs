//! Data-race detection over the simulated execution.
//!
//! The point of the paper's scheduler is that it inserts every dependency
//! the program semantics require. The simulator cross-checks that claim:
//! each task declares the values it reads and writes, and whenever two
//! tasks are *simultaneously active* with a write/read or write/write
//! conflict on the same value, a [`RaceReport`] is recorded. A correct
//! scheduler produces zero reports on every benchmark (integration-tested);
//! a deliberately broken scheduler (dependency inference disabled) must
//! produce at least one (failure-injection tests).
//!
//! Reports carry the device and stream each party ran on, and the engine
//! deduplicates repeated reports of the same `(first, second, value)`
//! pair — a broken scheduler re-racing the same kernels every iteration
//! yields one attributed report per conflicting pair, not an unbounded
//! stream of copies.

use crate::data::ValueId;
use crate::Time;

/// A detected pair of concurrently-active tasks with conflicting access
/// to the same value.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceReport {
    /// Virtual time at which the overlap began.
    pub at: Time,
    /// The value both tasks touch.
    pub value: ValueId,
    /// Label of the earlier-started task.
    pub first: String,
    /// Device the earlier-started task ran on.
    pub first_device: u32,
    /// Stream the earlier-started task ran on.
    pub first_stream: u32,
    /// Label of the later-started task.
    pub second: String,
    /// Device the later-started task ran on.
    pub second_device: u32,
    /// Stream the later-started task ran on.
    pub second_stream: u32,
    /// True if both tasks write (write/write); false for read/write.
    pub write_write: bool,
}

impl RaceReport {
    /// Whether `other` reports the same conflicting pair on the same
    /// value (ignoring when and where the overlap happened) — the
    /// engine's dedup key for repeated races.
    pub fn same_pair(&self, other: &RaceReport) -> bool {
        self.value == other.value && self.first == other.first && self.second == other.second
    }
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "data race at t={:.6}s on value {:?}: `{}` (dev {} stream {}) and `{}` (dev {} stream {}) ({})",
            self.at,
            self.value,
            self.first,
            self.first_device,
            self.first_stream,
            self.second,
            self.second_device,
            self.second_stream,
            if self.write_write {
                "write/write"
            } else {
                "read/write"
            }
        )
    }
}

/// One task's identity and access sets, as race detection sees it.
pub(crate) struct TaskAccess<'a> {
    /// Task label (kernel name).
    pub label: &'a str,
    /// Device the task runs on.
    pub device: u32,
    /// Stream the task runs on.
    pub stream: u32,
    /// Values the task reads.
    pub reads: &'a [ValueId],
    /// Values the task writes.
    pub writes: &'a [ValueId],
}

/// Check a starting task against one already-active task; returns a
/// report if their access sets conflict.
pub(crate) fn check_conflict(
    now: Time,
    active: &TaskAccess<'_>,
    new: &TaskAccess<'_>,
) -> Option<RaceReport> {
    let report = |value: ValueId, write_write: bool| RaceReport {
        at: now,
        value,
        first: active.label.to_string(),
        first_device: active.device,
        first_stream: active.stream,
        second: new.label.to_string(),
        second_device: new.device,
        second_stream: new.stream,
        write_write,
    };
    // write/write first: it is the stronger report.
    for w in new.writes {
        if active.writes.contains(w) {
            return Some(report(*w, true));
        }
    }
    for w in new.writes {
        if active.reads.contains(w) {
            return Some(report(*w, false));
        }
    }
    for r in new.reads {
        if active.writes.contains(r) {
            return Some(report(*r, false));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: ValueId = ValueId(7);
    const W: ValueId = ValueId(8);

    fn task<'a>(label: &'a str, reads: &'a [ValueId], writes: &'a [ValueId]) -> TaskAccess<'a> {
        TaskAccess {
            label,
            device: 0,
            stream: 0,
            reads,
            writes,
        }
    }

    #[test]
    fn read_read_is_fine() {
        assert!(check_conflict(0.0, &task("a", &[V], &[]), &task("b", &[V], &[])).is_none());
    }

    #[test]
    fn write_write_detected() {
        let r = check_conflict(1.0, &task("a", &[], &[V]), &task("b", &[], &[V])).unwrap();
        assert!(r.write_write);
        assert_eq!(r.value, V);
    }

    #[test]
    fn read_then_write_detected() {
        let r = check_conflict(0.0, &task("a", &[V], &[]), &task("b", &[], &[V])).unwrap();
        assert!(!r.write_write);
    }

    #[test]
    fn write_then_read_detected() {
        let r = check_conflict(0.0, &task("a", &[], &[V]), &task("b", &[V], &[])).unwrap();
        assert!(!r.write_write);
    }

    #[test]
    fn disjoint_values_are_fine() {
        assert!(check_conflict(0.0, &task("a", &[V], &[V]), &task("b", &[W], &[W])).is_none());
    }

    #[test]
    fn report_attributes_device_and_stream() {
        let a = TaskAccess {
            label: "k1",
            device: 1,
            stream: 3,
            reads: &[],
            writes: &[V],
        };
        let b = TaskAccess {
            label: "k2",
            device: 0,
            stream: 5,
            reads: &[V],
            writes: &[],
        };
        let r = check_conflict(0.25, &a, &b).unwrap();
        assert_eq!((r.first_device, r.first_stream), (1, 3));
        assert_eq!((r.second_device, r.second_stream), (0, 5));
        let s = r.to_string();
        assert!(s.contains("dev 1 stream 3") && s.contains("dev 0 stream 5"));
    }

    #[test]
    fn same_pair_ignores_time_and_placement() {
        let r1 = check_conflict(0.5, &task("k1", &[], &[V]), &task("k2", &[], &[V])).unwrap();
        let mut r2 = r1.clone();
        r2.at = 9.0;
        r2.first_stream = 4;
        assert!(r1.same_pair(&r2));
        let mut r3 = r1.clone();
        r3.value = W;
        assert!(!r1.same_pair(&r3));
    }

    #[test]
    fn display_is_readable() {
        let r = check_conflict(0.5, &task("k1", &[], &[V]), &task("k2", &[], &[V])).unwrap();
        let s = r.to_string();
        assert!(s.contains("k1") && s.contains("k2") && s.contains("write/write"));
    }
}
