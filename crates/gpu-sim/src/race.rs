//! Data-race detection over the simulated execution.
//!
//! The point of the paper's scheduler is that it inserts every dependency
//! the program semantics require. The simulator cross-checks that claim:
//! each task declares the values it reads and writes, and whenever two
//! tasks are *simultaneously active* with a write/read or write/write
//! conflict on the same value, a [`RaceReport`] is recorded. A correct
//! scheduler produces zero reports on every benchmark (integration-tested);
//! a deliberately broken scheduler (dependency inference disabled) must
//! produce at least one (failure-injection tests).

use crate::data::ValueId;
use crate::Time;

/// A detected pair of concurrently-active tasks with conflicting access
/// to the same value.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceReport {
    /// Virtual time at which the overlap began.
    pub at: Time,
    /// The value both tasks touch.
    pub value: ValueId,
    /// Label of the earlier-started task.
    pub first: String,
    /// Label of the later-started task.
    pub second: String,
    /// True if both tasks write (write/write); false for read/write.
    pub write_write: bool,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "data race at t={:.6}s on value {:?}: `{}` and `{}` ({})",
            self.at,
            self.value,
            self.first,
            self.second,
            if self.write_write {
                "write/write"
            } else {
                "read/write"
            }
        )
    }
}

/// Check a starting task against one already-active task; returns a
/// report if their access sets conflict.
pub(crate) fn check_conflict(
    now: Time,
    active_label: &str,
    active_reads: &[ValueId],
    active_writes: &[ValueId],
    new_label: &str,
    new_reads: &[ValueId],
    new_writes: &[ValueId],
) -> Option<RaceReport> {
    // write/write first: it is the stronger report.
    for w in new_writes {
        if active_writes.contains(w) {
            return Some(RaceReport {
                at: now,
                value: *w,
                first: active_label.to_string(),
                second: new_label.to_string(),
                write_write: true,
            });
        }
    }
    for w in new_writes {
        if active_reads.contains(w) {
            return Some(RaceReport {
                at: now,
                value: *w,
                first: active_label.to_string(),
                second: new_label.to_string(),
                write_write: false,
            });
        }
    }
    for r in new_reads {
        if active_writes.contains(r) {
            return Some(RaceReport {
                at: now,
                value: *r,
                first: active_label.to_string(),
                second: new_label.to_string(),
                write_write: false,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: ValueId = ValueId(7);
    const W: ValueId = ValueId(8);

    #[test]
    fn read_read_is_fine() {
        assert!(check_conflict(0.0, "a", &[V], &[], "b", &[V], &[]).is_none());
    }

    #[test]
    fn write_write_detected() {
        let r = check_conflict(1.0, "a", &[], &[V], "b", &[], &[V]).unwrap();
        assert!(r.write_write);
        assert_eq!(r.value, V);
    }

    #[test]
    fn read_then_write_detected() {
        let r = check_conflict(0.0, "a", &[V], &[], "b", &[], &[V]).unwrap();
        assert!(!r.write_write);
    }

    #[test]
    fn write_then_read_detected() {
        let r = check_conflict(0.0, "a", &[], &[V], "b", &[V], &[]).unwrap();
        assert!(!r.write_write);
    }

    #[test]
    fn disjoint_values_are_fine() {
        assert!(check_conflict(0.0, "a", &[V], &[V], "b", &[W], &[W]).is_none());
    }

    #[test]
    fn display_is_readable() {
        let r = check_conflict(0.5, "k1", &[], &[V], "k2", &[], &[V]).unwrap();
        let s = r.to_string();
        assert!(s.contains("k1") && s.contains("k2") && s.contains("write/write"));
    }
}
