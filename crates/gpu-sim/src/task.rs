//! Task descriptions submitted to the [`crate::engine::Engine`].

use crate::data::ValueId;
use crate::profile::DeviceProfile;
use crate::Time;

/// What kind of operation a task models. Drives timeline classification
/// (the overlap metrics of the paper's Fig. 10/11 distinguish kernel
/// computation from the two transfer directions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// A GPU kernel execution.
    Kernel,
    /// Bulk host→device copy (explicit copy or unified-memory prefetch).
    CopyH2D,
    /// Bulk device→host copy.
    CopyD2H,
    /// Direct device→device copy over a peer-to-peer interconnect link.
    CopyP2P,
    /// On-demand unified-memory migration to the device (page-fault path).
    FaultH2D,
    /// On-demand unified-memory migration back to the host.
    FaultD2H,
    /// Host-side computation occupying only the CPU.
    Host,
    /// Zero-duration synchronization marker (CUDA event analogue).
    Marker,
}

impl TaskKind {
    /// True for the bulk-copy, peer-to-peer and fault-migration kinds.
    pub fn is_transfer(self) -> bool {
        matches!(
            self,
            TaskKind::CopyH2D
                | TaskKind::CopyD2H
                | TaskKind::CopyP2P
                | TaskKind::FaultH2D
                | TaskKind::FaultD2H
        )
    }

    /// True if the transfer moves data toward the device.
    pub fn is_h2d(self) -> bool {
        matches!(self, TaskKind::CopyH2D | TaskKind::FaultH2D)
    }

    /// True for a direct device→device transfer.
    pub fn is_p2p(self) -> bool {
        matches!(self, TaskKind::CopyP2P)
    }
}

/// Full-rate demand a task places on each shared device resource.
///
/// Units: `sm_frac` and `fault_frac` are fractions of a unit-capacity
/// resource; the rest are bytes/s or FLOP/s. A task running at fluid rate
/// `x ∈ (0, 1]` consumes `x * demand` of each resource.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceDemand {
    /// Fraction of SM resident-thread capacity.
    pub sm_frac: f64,
    /// Device-memory bandwidth demand, bytes/s.
    pub dram_bps: f64,
    /// L2 bandwidth demand, bytes/s.
    pub l2_bps: f64,
    /// Double-precision throughput demand, FLOP/s.
    pub fp64_flops: f64,
    /// PCIe host→device bandwidth demand, bytes/s.
    pub h2d_bps: f64,
    /// PCIe device→host bandwidth demand, bytes/s.
    pub d2h_bps: f64,
    /// Fraction of the unified-memory fault controller.
    pub fault_frac: f64,
    /// Interconnect-link bandwidth demand, bytes/s, charged to the link
    /// named by [`TaskSpec::link`]. Links are machine-wide resources (a
    /// peer link is shared by both of its devices), so this component is
    /// solved globally rather than per device, outside the fixed
    /// per-device resource vector.
    pub link_bps: f64,
}

/// The shared-resource index space used by the fluid solver.
/// Order matters only internally.
pub(crate) const NUM_RESOURCES: usize = 7;

impl ResourceDemand {
    /// Demand as a fixed-size vector aligned with [`capacities`].
    pub(crate) fn as_vec(&self) -> [f64; NUM_RESOURCES] {
        [
            self.sm_frac,
            self.dram_bps,
            self.l2_bps,
            self.fp64_flops,
            self.h2d_bps,
            self.d2h_bps,
            self.fault_frac,
        ]
    }
}

/// Resource capacities of a device, aligned with [`ResourceDemand::as_vec`].
pub(crate) fn capacities(dev: &DeviceProfile) -> [f64; NUM_RESOURCES] {
    [
        1.0,
        dev.dram_bw,
        dev.l2_bw,
        dev.fp64_flops,
        dev.pcie_bw,
        dev.pcie_bw,
        1.0,
    ]
}

/// Extra bookkeeping carried by a task for the metrics crate: the raw
/// quantities behind the hardware-utilization figures (Fig. 12).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TaskMeta {
    /// Bytes moved (transfers) or exchanged with DRAM (kernels).
    pub bytes: f64,
    /// Single-precision FLOPs executed.
    pub flops32: f64,
    /// Double-precision FLOPs executed.
    pub flops64: f64,
    /// L2 bytes exchanged.
    pub l2_bytes: f64,
    /// Instructions executed.
    pub instructions: f64,
}

/// A unit of simulated work. Construct with the builder-style helpers and
/// submit via [`crate::engine::Engine::submit`].
pub struct TaskSpec {
    /// Operation class.
    pub kind: TaskKind,
    /// Display label (kernel name, "H2D x", ...).
    pub label: String,
    /// Stream attribution for the timeline (purely presentational; actual
    /// ordering comes from the dependency edges the caller supplies).
    pub stream: u32,
    /// Device the task occupies. Tasks on different devices never contend
    /// for device resources: the fluid solver allocates rates per device.
    pub device: u32,
    /// Interconnect link the task occupies, if any (peer-to-peer
    /// copies). Link capacity is shared machine-wide: tasks on the same
    /// link contend even when they run on different devices.
    pub link: Option<crate::topology::LinkId>,
    /// Contention-independent setup latency (launch overhead etc.).
    pub fixed_latency: Time,
    /// Solo duration of the contention-scaled phase.
    pub fluid_work: Time,
    /// Full-rate resource demand during the fluid phase.
    pub demand: ResourceDemand,
    /// Values read (race detector).
    pub reads: Vec<ValueId>,
    /// Values written (race detector).
    pub writes: Vec<ValueId>,
    /// Functional payload executed at completion time (runs the kernel's
    /// CPU implementation, flips memory residency, ...).
    pub on_complete: Option<Box<dyn FnOnce()>>,
    /// Raw counters for hardware metrics.
    pub meta: TaskMeta,
}

impl std::fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSpec")
            .field("kind", &self.kind)
            .field("label", &self.label)
            .field("stream", &self.stream)
            .field("device", &self.device)
            .field("link", &self.link)
            .field("fixed_latency", &self.fixed_latency)
            .field("fluid_work", &self.fluid_work)
            .field("demand", &self.demand)
            .field("has_payload", &self.on_complete.is_some())
            .finish()
    }
}

impl TaskSpec {
    /// A blank task of the given kind on a presentation stream.
    pub fn new(kind: TaskKind, label: impl Into<String>, stream: u32) -> Self {
        TaskSpec {
            kind,
            label: label.into(),
            stream,
            device: 0,
            link: None,
            fixed_latency: 0.0,
            fluid_work: 0.0,
            demand: ResourceDemand::default(),
            reads: Vec::new(),
            writes: Vec::new(),
            on_complete: None,
            meta: TaskMeta::default(),
        }
    }

    /// Shorthand for a kernel task.
    pub fn kernel(label: impl Into<String>, stream: u32) -> Self {
        Self::new(TaskKind::Kernel, label, stream)
    }

    /// Shorthand for a zero-duration marker (event analogue).
    pub fn marker(label: impl Into<String>, stream: u32) -> Self {
        Self::new(TaskKind::Marker, label, stream)
    }

    /// Shorthand for a host-side computation of duration `d`.
    pub fn host(label: impl Into<String>, d: Time) -> Self {
        let mut t = Self::new(TaskKind::Host, label, u32::MAX);
        t.fixed_latency = d;
        t
    }

    /// A bulk PCIe transfer of `bytes` in the given direction at full
    /// link rate, plus the launch overhead of the copy call.
    pub fn bulk_copy(
        kind: TaskKind,
        label: impl Into<String>,
        stream: u32,
        bytes: f64,
        dev: &DeviceProfile,
    ) -> Self {
        assert!(kind.is_transfer(), "bulk_copy needs a transfer kind");
        let mut t = Self::new(kind, label, stream);
        t.fixed_latency = dev.launch_overhead;
        t.fluid_work = bytes / dev.pcie_bw;
        if kind.is_h2d() {
            t.demand.h2d_bps = dev.pcie_bw;
        } else {
            t.demand.d2h_bps = dev.pcie_bw;
        }
        t.meta.bytes = bytes;
        t
    }

    /// A direct device→device copy of `bytes` over an interconnect link
    /// at the link's full rate. Concurrent copies on the same link share
    /// its aggregate bandwidth in the fluid solver; copies on different
    /// links are independent.
    pub fn p2p_copy(
        label: impl Into<String>,
        stream: u32,
        bytes: f64,
        link_id: crate::topology::LinkId,
        link: &crate::topology::Link,
    ) -> Self {
        let mut t = Self::new(TaskKind::CopyP2P, label, stream);
        t.link = Some(link_id);
        t.fixed_latency = link.latency;
        t.fluid_work = bytes / link.bandwidth;
        t.demand.link_bps = link.bandwidth;
        t.meta.bytes = bytes;
        t
    }

    /// An on-demand unified-memory migration of `bytes`: slower than a
    /// bulk copy and serialized through the fault controller, which is
    /// the bottleneck the paper observes when prefetching is disabled.
    pub fn fault_migration(
        kind: TaskKind,
        label: impl Into<String>,
        stream: u32,
        bytes: f64,
        dev: &DeviceProfile,
    ) -> Self {
        assert!(kind.is_transfer(), "fault_migration needs a transfer kind");
        let mut t = Self::new(kind, label, stream);
        t.fixed_latency = dev.fault_latency;
        t.fluid_work = bytes / dev.fault_bw;
        t.demand.fault_frac = 1.0; // exclusive use of the fault controller
        if kind.is_h2d() {
            t.demand.h2d_bps = dev.fault_bw;
        } else {
            t.demand.d2h_bps = dev.fault_bw;
        }
        t.meta.bytes = bytes;
        t
    }

    // ----- builder-style setters used heavily in tests and examples -----

    /// Place the task on a device (default 0). Only tasks on the same
    /// device share that device's resources.
    pub fn on_device(mut self, device: u32) -> Self {
        self.device = device;
        self
    }

    /// Set the fluid-phase solo duration.
    pub fn fluid(mut self, seconds: Time) -> Self {
        self.fluid_work = seconds;
        self
    }

    /// Set the fixed setup latency.
    pub fn latency(mut self, seconds: Time) -> Self {
        self.fixed_latency = seconds;
        self
    }

    /// Set the SM-fraction demand.
    pub fn sm_frac(mut self, f: f64) -> Self {
        self.demand.sm_frac = f;
        self
    }

    /// Set the DRAM-bandwidth demand (bytes/s at full rate).
    pub fn dram(mut self, bps: f64) -> Self {
        self.demand.dram_bps = bps;
        self
    }

    /// Declare values read by this task.
    pub fn reading(mut self, vs: &[ValueId]) -> Self {
        self.reads.extend_from_slice(vs);
        self
    }

    /// Declare values written by this task.
    pub fn writing(mut self, vs: &[ValueId]) -> Self {
        self.writes.extend_from_slice(vs);
        self
    }

    /// Attach a functional payload to run at completion.
    pub fn payload(mut self, f: impl FnOnce() + 'static) -> Self {
        self.on_complete = Some(Box::new(f));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_copy_duration_is_bytes_over_link() {
        let dev = DeviceProfile::tesla_p100();
        let t = TaskSpec::bulk_copy(TaskKind::CopyH2D, "x", 0, 12e9, &dev);
        assert!((t.fluid_work - 1.0).abs() < 1e-9);
        assert_eq!(t.demand.h2d_bps, dev.pcie_bw);
        assert_eq!(t.demand.d2h_bps, 0.0);
    }

    #[test]
    fn fault_migration_is_slower_and_exclusive() {
        let dev = DeviceProfile::tesla_p100();
        let bulk = TaskSpec::bulk_copy(TaskKind::CopyH2D, "x", 0, 1e9, &dev);
        let fault = TaskSpec::fault_migration(TaskKind::FaultH2D, "x", 0, 1e9, &dev);
        assert!(fault.fluid_work > bulk.fluid_work);
        assert_eq!(fault.demand.fault_frac, 1.0);
    }

    #[test]
    #[should_panic(expected = "transfer kind")]
    fn bulk_copy_rejects_kernel_kind() {
        let dev = DeviceProfile::gtx960();
        let _ = TaskSpec::bulk_copy(TaskKind::Kernel, "x", 0, 1.0, &dev);
    }

    #[test]
    fn kind_predicates() {
        assert!(TaskKind::FaultH2D.is_transfer());
        assert!(TaskKind::FaultH2D.is_h2d());
        assert!(!TaskKind::CopyD2H.is_h2d());
        assert!(!TaskKind::Kernel.is_transfer());
        assert!(TaskKind::CopyP2P.is_transfer());
        assert!(TaskKind::CopyP2P.is_p2p());
        assert!(!TaskKind::CopyP2P.is_h2d());
        assert!(!TaskKind::CopyH2D.is_p2p());
    }

    #[test]
    fn p2p_copy_charges_the_link() {
        use crate::topology::{Topology, TopologyKind};
        let dev = DeviceProfile::tesla_p100();
        let topo = Topology::preset(TopologyKind::FullyConnected, 2, &dev);
        let lid = topo.d2d_link(0, 1).unwrap();
        let link = topo.link(lid);
        let t = TaskSpec::p2p_copy("x", 0, link.bandwidth, lid, link);
        assert_eq!(t.kind, TaskKind::CopyP2P);
        assert_eq!(t.link, Some(lid));
        assert!((t.fluid_work - 1.0).abs() < 1e-9);
        assert_eq!(t.demand.link_bps, link.bandwidth);
        assert_eq!(t.demand.h2d_bps, 0.0, "peer copies bypass the host links");
        assert_eq!(t.demand.d2h_bps, 0.0);
        // Much faster than the host-mediated pair of PCIe legs.
        let host = TaskSpec::bulk_copy(TaskKind::CopyD2H, "x", 0, link.bandwidth, &dev);
        assert!(t.fluid_work < host.fluid_work);
    }
}
