//! The discrete-event fluid-rate execution engine.
//!
//! Tasks are submitted with explicit dependency edges (the `cuda-sim`
//! layer builds streams and events out of these edges). A task's life:
//!
//! ```text
//! submitted --deps done--> ready --fixed latency--> active --work done--> complete
//! ```
//!
//! While *active*, a task progresses at the max–min fair rate computed by
//! [`crate::fluid`] over the currently active set; rates are recomputed
//! whenever the active set changes. The engine advances virtual time only
//! when asked: [`Engine::advance_host`] models the host doing `dt` worth
//! of its own work while the GPU runs in the background, and
//! [`Engine::sync_task`]/[`Engine::sync_all`] block the virtual host until
//! work completes — exactly the two ways a real CUDA host program
//! experiences time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::calibrate::Calibration;
use crate::fluid::{max_min_rates, max_min_rates_vec};
use crate::profile::DeviceProfile;
use crate::race::{check_conflict, RaceReport};
use crate::task::{capacities, ResourceDemand, TaskKind, TaskMeta, TaskSpec, NUM_RESOURCES};
use crate::timeline::{Interval, Timeline};
use crate::topology::{LinkId, Topology};
use crate::Time;

/// Handle to a submitted task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

/// Totally-ordered wrapper for event times (f64 has no `Ord`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct TimeKey(Time);

impl Eq for TimeKey {}
impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Waiting on `n` incomplete dependencies.
    Waiting(usize),
    /// Dependencies satisfied; fixed-latency phase until the stored time.
    Latent,
    /// In the fluid phase with this much solo-time work remaining.
    Active(f64),
    /// Finished.
    Done,
}

struct TaskState {
    kind: TaskKind,
    label: String,
    stream: u32,
    device: u32,
    link: Option<LinkId>,
    fixed_latency: Time,
    fluid_work: Time,
    demand: ResourceDemand,
    reads: Vec<crate::data::ValueId>,
    writes: Vec<crate::data::ValueId>,
    on_complete: Option<Box<dyn FnOnce()>>,
    meta: TaskMeta,
    phase: Phase,
    dependents: Vec<TaskId>,
    /// When the task became ready (start of its timeline interval).
    started: Time,
    /// Rate from the last solve that covered this task's component.
    /// Valid while the task is active and its component is clean: the
    /// incremental refresh reuses it instead of re-solving.
    rate: f64,
}

/// Aggregate counters exposed for quick sanity checks and stats tables.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Tasks submitted so far.
    pub submitted: usize,
    /// Tasks completed so far.
    pub completed: usize,
    /// Sum of kernel interval durations (includes overlap).
    pub kernel_time: Time,
    /// Sum of transfer interval durations (includes overlap).
    pub transfer_time: Time,
    /// Number of data races detected.
    pub races: usize,
    /// Task states currently held in memory. A fully-drained engine
    /// reclaims the completed prefix, so on a long-running service this
    /// tracks the in-flight window, not the lifetime submission count.
    pub retained_tasks: usize,
    /// Rate refreshes that found the active set dirty and re-solved at
    /// least one component.
    pub rate_refreshes: usize,
    /// Active-task rates recomputed by the incremental solver (members
    /// of a dirty component at refresh time).
    pub rate_tasks_solved: usize,
    /// Active-task rates reused from a clean component's cache instead
    /// of being re-solved. `reused / (solved + reused)` is the
    /// incremental solver's hit rate.
    pub rate_tasks_reused: usize,
}

/// The simulator engine. See the [crate docs](crate) for the model.
pub struct Engine {
    dev: DeviceProfile,
    /// Number of identical devices this engine simulates. Tasks carry a
    /// device id; only tasks on the same device share its resources.
    n_devices: u32,
    /// The interconnect: host links plus any peer links. Link capacities
    /// join the per-device resources in the rate solve whenever a task
    /// in the active set occupies a link.
    topo: Topology,
    /// Bytes moved over each link so far (host links by transfer
    /// direction/device, peer links by task attribution). Indexed like
    /// [`Topology::links`]; survives [`Engine::clear_timeline`].
    link_bytes: Vec<f64>,
    /// Transfers completed per link, aligned with `link_bytes`.
    link_transfers: Vec<usize>,
    now: Time,
    /// States of tasks `base..base + tasks.len()`. Ids below `base`
    /// belong to completed tasks whose state was reclaimed by
    /// [`Engine::compact_completed`]; ids are never reused.
    tasks: Vec<TaskState>,
    /// First task id still stored.
    base: u32,
    /// Task indices currently in the fluid phase.
    active: Vec<u32>,
    /// Cached rates aligned with `active`; rebuilt when `rates_dirty`.
    rates: Vec<f64>,
    rates_dirty: bool,
    /// Devices whose active-set membership changed since the last rate
    /// refresh. Seeds the incremental solve: only connected components
    /// touching a dirty device (or link) are re-solved.
    dirty_dev: Vec<bool>,
    /// Links whose active-set membership changed, aligned with
    /// [`Topology::links`].
    dirty_link: Vec<bool>,
    /// Pending activation events: (time, task) min-heap.
    latent: BinaryHeap<Reverse<(TimeKey, u32)>>,
    /// Submitted-but-unfinished task count per device, maintained at
    /// submit/complete so [`Engine::device_load`] is O(1) — placement
    /// policies consult it on every launch.
    inflight: Vec<usize>,
    timeline: Timeline,
    races: Vec<RaceReport>,
    stats: EngineStats,
    /// Online calibration: decaying per-kernel-signature duration
    /// priors and per-link contention scales harvested from completed
    /// tasks. Off by default — observation is skipped entirely while
    /// disabled (see [`crate::calibrate`]).
    calib: Calibration,
}

impl Engine {
    /// A fresh engine for the given device, at virtual time zero.
    pub fn new(dev: DeviceProfile) -> Self {
        Self::new_multi(dev, 1)
    }

    /// An engine simulating `n` identical devices over host (PCIe) links
    /// only. Tasks are placed with [`TaskSpec::on_device`]; each device
    /// has its own resource pool, so tasks on different devices progress
    /// independently.
    pub fn new_multi(dev: DeviceProfile, n: usize) -> Self {
        let topo = Topology::pcie_only(n, &dev);
        Self::with_topology(dev, topo)
    }

    /// An engine spanning the devices of an explicit interconnect
    /// [`Topology`]. Peer links become machine-wide resources in the
    /// fluid solver: concurrent [`TaskSpec::p2p_copy`] tasks on the same
    /// link share its aggregate bandwidth, whichever devices they run on.
    pub fn with_topology(dev: DeviceProfile, topo: Topology) -> Self {
        let n = topo.device_count();
        let n_links = topo.links().len();
        // Host-side copies are timed against the device profile's PCIe
        // bandwidth (bulk-copy specs and the per-device h2d/d2h
        // capacities both come from `dev.pcie_bw`), so a topology whose
        // host links claim a different rate would be silently ignored —
        // fail loudly instead. The presets always satisfy this.
        for d in 0..n as u32 {
            let host_bw = topo.link(topo.host_link(d)).bandwidth;
            assert!(
                (host_bw - dev.pcie_bw).abs() < 1e-6 * dev.pcie_bw,
                "host link of device {d} declares {host_bw} B/s but the device \
                 profile's PCIe bandwidth is {} B/s — host transfers are timed \
                 against the profile, so the two must match",
                dev.pcie_bw
            );
        }
        Engine {
            dev,
            n_devices: n as u32,
            topo,
            link_bytes: vec![0.0; n_links],
            link_transfers: vec![0; n_links],
            now: 0.0,
            tasks: Vec::new(),
            base: 0,
            active: Vec::new(),
            rates: Vec::new(),
            rates_dirty: false,
            dirty_dev: vec![false; n],
            dirty_link: vec![false; n_links],
            latent: BinaryHeap::new(),
            inflight: vec![0; n],
            timeline: Timeline::new(),
            races: Vec::new(),
            stats: EngineStats::default(),
            calib: Calibration::new(),
        }
    }

    /// The online calibration state (off by default; see
    /// [`crate::calibrate`]).
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// Mutable access to the calibration state — how the layers above
    /// enable it ([`Calibration::set_enabled`]).
    pub fn calibration_mut(&mut self) -> &mut Calibration {
        &mut self.calib
    }

    /// The device this engine simulates.
    pub fn device(&self) -> &DeviceProfile {
        &self.dev
    }

    /// Number of identical devices this engine simulates.
    pub fn device_count(&self) -> usize {
        self.n_devices as usize
    }

    /// The interconnect topology this engine simulates.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Lifetime `(bytes, transfers)` moved over each link, indexed like
    /// [`Topology::links`] (host links first, then peer links). Unlike
    /// the timeline this is never cleared.
    pub fn link_traffic(&self) -> Vec<(f64, usize)> {
        self.link_bytes
            .iter()
            .zip(&self.link_transfers)
            .map(|(&b, &t)| (b, t))
            .collect()
    }

    /// Submitted-but-unfinished tasks currently placed on a device — the
    /// in-flight load gauge the stream-aware placement policy consults
    /// on every launch (O(1): maintained at submit/complete).
    pub fn device_load(&self, device: u32) -> usize {
        self.inflight.get(device as usize).copied().unwrap_or(0)
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Storage slot of a still-stored task id.
    fn slot(&self, id: u32) -> usize {
        debug_assert!(id >= self.base, "task {id} was reclaimed");
        (id - self.base) as usize
    }

    /// Submit a task that may start once every task in `deps` has
    /// completed. Already-completed dependencies are allowed. Returns the
    /// task's handle.
    pub fn submit(&mut self, spec: TaskSpec, deps: &[TaskId]) -> TaskId {
        // Fail loudly rather than wrap: ids must stay ascending for the
        // `slot()` offset arithmetic to hold.
        let id = TaskId(
            self.base
                .checked_add(self.tasks.len() as u32)
                .expect("task id space exhausted (2^32 tasks)"),
        );
        let open_deps = deps.iter().filter(|d| !self.is_complete(**d)).count();
        assert!(
            spec.device < self.n_devices,
            "task placed on unknown device {}",
            spec.device
        );
        if let Some(l) = spec.link {
            assert!(
                (l.0 as usize) < self.topo.links().len(),
                "task placed on unknown link {l:?}"
            );
        }
        let device = spec.device;
        self.tasks.push(TaskState {
            kind: spec.kind,
            label: spec.label,
            stream: spec.stream,
            device: spec.device,
            link: spec.link,
            fixed_latency: spec.fixed_latency,
            fluid_work: spec.fluid_work,
            demand: spec.demand,
            reads: spec.reads,
            writes: spec.writes,
            on_complete: spec.on_complete,
            meta: spec.meta,
            phase: Phase::Waiting(open_deps),
            dependents: Vec::new(),
            started: 0.0,
            rate: 1.0,
        });
        for d in deps {
            if self.is_complete(*d) {
                continue;
            }
            let slot = self.slot(d.0);
            let dt = &mut self.tasks[slot];
            // A task may legitimately depend on the same parent via
            // several arguments; count it once.
            if !dt.dependents.contains(&id) {
                dt.dependents.push(id);
            } else {
                let slot = self.slot(id.0);
                if let Phase::Waiting(n) = &mut self.tasks[slot].phase {
                    *n -= 1;
                }
            }
        }
        self.stats.submitted += 1;
        self.inflight[device as usize] += 1;
        if matches!(self.tasks[self.slot(id.0)].phase, Phase::Waiting(0)) {
            self.make_ready(id);
        }
        id
    }

    /// True once the task has completed in virtual time. Tasks whose
    /// state was reclaimed are complete by construction.
    pub fn is_complete(&self, t: TaskId) -> bool {
        t.0 < self.base || matches!(self.tasks[self.slot(t.0)].phase, Phase::Done)
    }

    /// Reclaim the storage of the contiguous completed prefix of tasks
    /// (their handles keep answering [`Engine::is_complete`] with
    /// `true`). Called automatically when the device drains; harmless to
    /// call at any time. Returns the number of task states reclaimed.
    pub fn compact_completed(&mut self) -> usize {
        let done = self
            .tasks
            .iter()
            .take_while(|t| matches!(t.phase, Phase::Done))
            .count();
        if done > 0 {
            self.tasks.drain(..done);
            self.base += done as u32;
        }
        done
    }

    /// Number of submitted-but-unfinished tasks.
    pub fn pending(&self) -> usize {
        self.stats.submitted - self.stats.completed
    }

    /// The recorded execution timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Reset the timeline (e.g. after a warm-up iteration) without
    /// touching task state. Virtual time keeps running.
    pub fn clear_timeline(&mut self) {
        self.timeline.clear();
    }

    /// All data races detected so far.
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    /// Aggregate counters.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.retained_tasks = self.tasks.len();
        s
    }

    /// Let the virtual host spend `dt` seconds of its own time (API call
    /// overhead, host computation). GPU-side work progresses in the
    /// background during the same window.
    pub fn advance_host(&mut self, dt: Time) {
        let target = self.now + dt;
        self.run(Some(target), None);
        self.now = target;
        self.compact_completed();
    }

    /// Block the virtual host until `t` completes.
    ///
    /// # Panics
    /// Panics on deadlock — i.e. if no further event can complete `t`.
    pub fn sync_task(&mut self, t: TaskId) {
        self.run(None, Some(t));
        // Amortized O(1): each task state is drained exactly once, and
        // the scan stops at the first unfinished task — so fine-grained
        // services (which never call `sync_all`) stay O(in-flight) too.
        self.compact_completed();
    }

    /// Block the virtual host until every submitted task has completed,
    /// then reclaim their task states.
    pub fn sync_all(&mut self) {
        while self.stats.completed < self.stats.submitted {
            // Drive on the lowest-id unfinished task for determinism.
            let next = self
                .tasks
                .iter()
                .position(|t| !matches!(t.phase, Phase::Done))
                .expect("pending count disagrees with phases");
            self.sync_task(TaskId(self.base + next as u32));
        }
        self.compact_completed();
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Mark a task ready: record its start, run race detection against
    /// every currently-running task, and schedule its activation event.
    fn make_ready(&mut self, id: TaskId) {
        let i = self.slot(id.0);
        self.tasks[i].started = self.now;
        self.detect_races(id.0);
        let i = self.slot(id.0);
        let at = self.now + self.tasks[i].fixed_latency;
        self.tasks[i].phase = Phase::Latent;
        self.latent.push(Reverse((TimeKey(at), id.0)));
    }

    fn detect_races(&mut self, new_id: u32) {
        let new_idx = self.slot(new_id);
        if self.tasks[new_idx].reads.is_empty() && self.tasks[new_idx].writes.is_empty() {
            return;
        }
        // Only Latent and Active tasks can race with the newcomer, and
        // those are exactly the `latent` heap and `active` list — scan
        // them instead of the whole lifetime task vector, so long-running
        // services pay O(in-flight), not O(launches-ever).
        let mut found: Vec<RaceReport> = Vec::new();
        let running: Vec<u32> = self
            .active
            .iter()
            .copied()
            .chain(self.latent.iter().map(|Reverse((_, i))| *i))
            .collect();
        for j in running {
            if j == new_id {
                continue;
            }
            let other = &self.tasks[self.slot(j)];
            debug_assert!(matches!(other.phase, Phase::Latent | Phase::Active(_)));
            let new = &self.tasks[new_idx];
            if let Some(r) = check_conflict(
                self.now,
                &crate::race::TaskAccess {
                    label: &other.label,
                    device: other.device,
                    stream: other.stream,
                    reads: &other.reads,
                    writes: &other.writes,
                },
                &crate::race::TaskAccess {
                    label: &new.label,
                    device: new.device,
                    stream: new.stream,
                    reads: &new.reads,
                    writes: &new.writes,
                },
            ) {
                found.push(r);
            }
        }
        // Dedup repeated reports of the same conflicting pair: a broken
        // scheduler re-racing the same kernels every iteration yields one
        // report per (first, second, value), keeping `races` — and the
        // `stats.races` counter, which always equals `races().len()` —
        // bounded by the number of distinct conflicts.
        for r in found {
            if !self.races.iter().any(|seen| seen.same_pair(&r)) {
                self.stats.races += 1;
                self.races.push(r);
            }
        }
    }

    /// Record that a task entered or left the active set: its device —
    /// and link, if any — seed the dirty set for the next incremental
    /// rate refresh. Because every active task couples exactly its
    /// device and (optionally) one link, any component whose membership
    /// changed necessarily contains one of the transitioning task's two
    /// endpoints, so marking them finds every component that needs a
    /// re-solve.
    fn mark_transition(&mut self, slot: usize) {
        let t = &self.tasks[slot];
        self.dirty_dev[t.device as usize] = true;
        if let Some(l) = t.link {
            self.dirty_link[l.0 as usize] = true;
        }
    }

    /// Recompute `rates` for the current active set, re-solving only the
    /// connected components (devices coupled by shared links) whose
    /// membership changed since the last refresh; tasks in clean
    /// components keep their cached rate.
    ///
    /// This is bit-identical to the full solve ([`Engine::solve_rates_full`],
    /// cross-checked in debug builds) because progressive filling
    /// decomposes exactly along components: a task's demand is zero
    /// outside its own device/link block, adding those zeros to load
    /// sums is exact in IEEE arithmetic, a binding resource only ever
    /// freezes tasks of its own component, and freezing them subtracts
    /// exact zeros from every other component's residuals — so each
    /// component's freeze sequence is independent of the others.
    fn refresh_rates(&mut self) {
        if !self.rates_dirty {
            return;
        }
        let n_dev = self.n_devices as usize;
        let n_links = self.topo.links().len();
        let n_nodes = n_dev + n_links;
        let base = self.base;

        // Union-find over device and link nodes (path-halving find):
        // each active link occupant couples its device to its link, so
        // chains of shared links merge devices into one component.
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                let g = parent[parent[x as usize] as usize];
                parent[x as usize] = g;
                x = g;
            }
            x
        }
        let mut parent: Vec<u32> = (0..n_nodes as u32).collect();
        for &i in &self.active {
            let t = &self.tasks[(i - base) as usize];
            if let Some(l) = t.link {
                let a = find(&mut parent, t.device);
                let b = find(&mut parent, n_dev as u32 + l.0);
                if a != b {
                    parent[a as usize] = b;
                }
            }
        }

        // A component needs re-solving iff it contains a dirty node.
        let mut comp_dirty = vec![false; n_nodes];
        for d in 0..n_dev {
            if self.dirty_dev[d] {
                comp_dirty[find(&mut parent, d as u32) as usize] = true;
            }
        }
        for l in 0..n_links {
            if self.dirty_link[l] {
                comp_dirty[find(&mut parent, (n_dev + l) as u32) as usize] = true;
            }
        }

        // Scatter cached rates for clean components; bucket dirty
        // components' active positions for re-solving.
        self.rates.clear();
        self.rates.resize(self.active.len(), 1.0);
        let mut comp_has_link = vec![false; n_nodes];
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
        let (mut solved, mut reused) = (0usize, 0usize);
        for (k, &i) in self.active.iter().enumerate() {
            let t = &self.tasks[(i - base) as usize];
            let root = find(&mut parent, t.device) as usize;
            if t.link.is_some() {
                comp_has_link[root] = true;
            }
            if comp_dirty[root] {
                members[root].push(k);
                solved += 1;
            } else {
                self.rates[k] = t.rate;
                reused += 1;
            }
        }
        self.stats.rate_refreshes += 1;
        self.stats.rate_tasks_solved += solved;
        self.stats.rate_tasks_reused += reused;

        for root in 0..n_nodes {
            let idxs = &members[root];
            if idxs.is_empty() {
                continue;
            }
            let rs = if comp_has_link[root] {
                // Link-coupled component: solve over the global resource
                // space (per-device blocks plus one slot per link) so
                // resource indexing — and hence tie-breaking — matches
                // the full solve exactly. Other components' slots carry
                // zero demand and never bind.
                let dev_caps = capacities(&self.dev);
                let mut caps = Vec::with_capacity(n_dev * NUM_RESOURCES + n_links);
                for _ in 0..n_dev {
                    caps.extend_from_slice(&dev_caps);
                }
                caps.extend(self.topo.links().iter().map(|l| l.bandwidth));
                let demands: Vec<Vec<f64>> = idxs
                    .iter()
                    .map(|&k| {
                        let t = &self.tasks[(self.active[k] - base) as usize];
                        let mut d = vec![0.0; caps.len()];
                        let dbase = t.device as usize * NUM_RESOURCES;
                        d[dbase..dbase + NUM_RESOURCES].copy_from_slice(&t.demand.as_vec());
                        if let Some(l) = t.link {
                            d[n_dev * NUM_RESOURCES + l.0 as usize] = t.demand.link_bps;
                        }
                        d
                    })
                    .collect();
                max_min_rates_vec(&demands, &caps)
            } else {
                // Single-device component: the fixed-width solve.
                let demands: Vec<ResourceDemand> = idxs
                    .iter()
                    .map(|&k| self.tasks[(self.active[k] - base) as usize].demand)
                    .collect();
                max_min_rates(&demands, &self.dev)
            };
            for (&k, r) in idxs.iter().zip(rs) {
                self.rates[k] = r;
                self.tasks[(self.active[k] - base) as usize].rate = r;
            }
        }

        self.dirty_dev.iter_mut().for_each(|d| *d = false);
        self.dirty_link.iter_mut().for_each(|d| *d = false);
        self.rates_dirty = false;

        #[cfg(debug_assertions)]
        {
            let full = self.solve_rates_full();
            assert_eq!(
                self.rates, full,
                "incremental component solve diverged from the full solve"
            );
        }
    }

    /// The pre-incremental full solve over the whole active set — the
    /// reference the incremental refresh must match bit for bit. Kept as
    /// the debug-mode cross-check and the differential-test oracle.
    #[cfg(any(test, debug_assertions))]
    fn solve_rates_full(&self) -> Vec<f64> {
        let any_link = self
            .active
            .iter()
            .any(|&i| self.tasks[self.slot(i)].link.is_some());
        if any_link {
            // Link occupants couple devices together: solve globally over
            // one resource space of per-device blocks plus one slot per
            // link. Demand vectors are small (devices × 7 + links) and the
            // active set is the in-flight window, so this stays cheap.
            let n_dev = self.n_devices as usize;
            let dev_caps = capacities(&self.dev);
            let mut caps = Vec::with_capacity(n_dev * NUM_RESOURCES + self.topo.links().len());
            for _ in 0..n_dev {
                caps.extend_from_slice(&dev_caps);
            }
            caps.extend(self.topo.links().iter().map(|l| l.bandwidth));
            let demands: Vec<Vec<f64>> = self
                .active
                .iter()
                .map(|&i| {
                    let t = &self.tasks[self.slot(i)];
                    let mut d = vec![0.0; caps.len()];
                    let base = t.device as usize * NUM_RESOURCES;
                    d[base..base + NUM_RESOURCES].copy_from_slice(&t.demand.as_vec());
                    if let Some(l) = t.link {
                        d[n_dev * NUM_RESOURCES + l.0 as usize] = t.demand.link_bps;
                    }
                    d
                })
                .collect();
            max_min_rates_vec(&demands, &caps)
        } else if self.n_devices == 1 {
            let demands: Vec<ResourceDemand> = self
                .active
                .iter()
                .map(|&i| self.tasks[self.slot(i)].demand)
                .collect();
            max_min_rates(&demands, &self.dev)
        } else {
            // Each device has its own resource pool: solve max–min
            // fairness per device over that device's active tasks.
            let mut rates = vec![1.0; self.active.len()];
            let mut devices: Vec<u32> = self
                .active
                .iter()
                .map(|&i| self.tasks[self.slot(i)].device)
                .collect();
            let positions = devices.clone();
            devices.sort_unstable();
            devices.dedup();
            for d in devices {
                let idxs: Vec<usize> = (0..self.active.len())
                    .filter(|&k| positions[k] == d)
                    .collect();
                let demands: Vec<ResourceDemand> = idxs
                    .iter()
                    .map(|&k| self.tasks[self.slot(self.active[k])].demand)
                    .collect();
                let rs = max_min_rates(&demands, &self.dev);
                for (k, r) in idxs.into_iter().zip(rs) {
                    rates[k] = r;
                }
            }
            rates
        }
    }

    /// Earliest fluid completion under current rates, if any task is
    /// active. Ties resolved toward the lowest task id by scan order.
    fn next_completion(&self) -> Option<(Time, u32)> {
        let mut best: Option<(Time, u32)> = None;
        for (k, &i) in self.active.iter().enumerate() {
            let remaining = match self.tasks[self.slot(i)].phase {
                Phase::Active(r) => r,
                _ => unreachable!("active list holds non-active task"),
            };
            let t = self.now + remaining / self.rates[k];
            if best.is_none_or(|(bt, bi)| t < bt || (t == bt && i < bi)) {
                best = Some((t, i));
            }
        }
        best
    }

    /// Integrate fluid progress forward to absolute time `t`.
    fn integrate_to(&mut self, t: Time) {
        let dt = t - self.now;
        if dt <= 0.0 {
            self.now = t.max(self.now);
            return;
        }
        let base = self.base;
        for (k, &i) in self.active.iter().enumerate() {
            if let Phase::Active(r) = &mut self.tasks[(i - base) as usize].phase {
                *r = (*r - self.rates[k] * dt).max(0.0);
            }
        }
        self.now = t;
    }

    fn complete(&mut self, idx: u32) {
        let i = self.slot(idx);
        self.tasks[i].phase = Phase::Done;
        self.stats.completed += 1;
        self.inflight[self.tasks[i].device as usize] -= 1;
        // Transfers are attributed to the link they moved over: peer
        // copies carry their link explicitly; host-side copies and fault
        // migrations use their device's host link.
        let link = match self.tasks[i].kind {
            k if k.is_transfer() => self.tasks[i]
                .link
                .or_else(|| Some(self.topo.host_link(self.tasks[i].device))),
            _ => self.tasks[i].link,
        };
        let iv = Interval {
            task: idx,
            kind: self.tasks[i].kind,
            stream: self.tasks[i].stream,
            device: self.tasks[i].device,
            link: link.map(|l| l.0),
            label: self.tasks[i].label.clone(),
            start: self.tasks[i].started,
            end: self.now,
            meta: self.tasks[i].meta,
        };
        match iv.kind {
            TaskKind::Kernel => self.stats.kernel_time += iv.duration(),
            k if k.is_transfer() => self.stats.transfer_time += iv.duration(),
            _ => {}
        }
        if iv.kind.is_transfer() {
            if let Some(l) = link {
                self.link_bytes[l.0 as usize] += iv.meta.bytes;
                self.link_transfers[l.0 as usize] += 1;
            }
        }
        if self.calib.enabled() {
            // Every completion is a calibration observation: kernels
            // feed the per-signature duration prior, transfers feed
            // their link's contention scale (observed wall duration
            // over the solo time the specs were submitted with).
            match iv.kind {
                TaskKind::Kernel => self.calib.observe_kernel(&iv.label, iv.duration()),
                k if k.is_transfer() => {
                    if let Some(l) = link {
                        let solo = self.tasks[i].fixed_latency + self.tasks[i].fluid_work;
                        self.calib
                            .observe_transfer(l.0 as usize, iv.duration(), solo);
                    }
                }
                _ => {}
            }
        }
        self.timeline.push(iv);
        if let Some(f) = self.tasks[i].on_complete.take() {
            f();
        }
        let dependents = std::mem::take(&mut self.tasks[i].dependents);
        for d in dependents {
            let slot = self.slot(d.0);
            let ready = {
                match &mut self.tasks[slot].phase {
                    Phase::Waiting(n) => {
                        *n -= 1;
                        *n == 0
                    }
                    _ => unreachable!("dependent not in waiting phase"),
                }
            };
            if ready {
                self.make_ready(d);
            }
        }
    }

    /// Test oracle: refresh (incrementally) and assert the resulting
    /// rates are bit-identical to the full whole-active-set solve.
    #[cfg(test)]
    pub(crate) fn assert_rates_match_full_solve(&mut self) {
        self.refresh_rates();
        assert_eq!(
            self.rates,
            self.solve_rates_full(),
            "incremental component solve diverged from the full solve"
        );
    }

    /// Move a latent task whose fixed-latency timer just expired into the
    /// fluid phase (or complete it immediately if it carries no fluid
    /// work).
    fn activate(&mut self, idx: u32) {
        let i = self.slot(idx);
        debug_assert!(matches!(self.tasks[i].phase, Phase::Latent));
        if self.tasks[i].fluid_work > 0.0 {
            self.tasks[i].phase = Phase::Active(self.tasks[i].fluid_work);
            self.active.push(idx);
            self.rates_dirty = true;
            self.mark_transition(i);
        } else {
            self.complete(idx);
        }
    }

    /// Run the event loop until `target` time (if given) or until `stop`
    /// completes (if given). At least one must be provided.
    fn run(&mut self, target: Option<Time>, stop: Option<TaskId>) {
        assert!(target.is_some() || stop.is_some());
        loop {
            if let Some(s) = stop {
                if self.is_complete(s) {
                    return;
                }
            }
            self.refresh_rates();
            let completion = self.next_completion();
            let activation = self.latent.peek().map(|Reverse((t, i))| (t.0, *i));

            // Pick the earliest event; activations win ties so that a
            // zero-length task activates before anything completes "past"
            // it at the same instant.
            let event = match (activation, completion) {
                (None, None) => None,
                (Some(a), None) => Some((a, true)),
                (None, Some(c)) => Some((c, false)),
                (Some(a), Some(c)) => {
                    if a.0 <= c.0 {
                        Some((a, true))
                    } else {
                        Some((c, false))
                    }
                }
            };

            match event {
                None => {
                    // Nothing in flight.
                    if let Some(t) = target {
                        self.now = self.now.max(t);
                        return;
                    }
                    let s = stop.unwrap();
                    panic!(
                        "simulation deadlock: task {:?} (`{}`) can never complete \
                         (no runnable events; a dependency was never satisfied)",
                        s,
                        self.tasks[self.slot(s.0)].label
                    );
                }
                Some(((et, idx), is_activation)) => {
                    if let Some(t) = target {
                        if et > t {
                            // Target falls before the next event:
                            // integrate partially and stop.
                            self.integrate_to(t);
                            return;
                        }
                    }
                    self.integrate_to(et);
                    if is_activation {
                        self.latent.pop();
                        self.activate(idx);
                        // Coalesce same-instant activations: rates are
                        // never consulted between them (activations win
                        // ties over completions, and a completion cannot
                        // precede `now`), so the rate solve runs once for
                        // the whole batch instead of once per task.
                        // Bails out when `stop` completes, exactly as the
                        // outer loop would.
                        loop {
                            if stop.is_some_and(|s| self.is_complete(s)) {
                                return;
                            }
                            match self.latent.peek() {
                                Some(&Reverse((TimeKey(t2), idx2))) if t2 <= et => {
                                    self.latent.pop();
                                    self.activate(idx2);
                                }
                                _ => break,
                            }
                        }
                    } else {
                        // A fluid completion: the chosen task's remaining
                        // work reached zero (up to float error).
                        self.active.retain(|&i| i != idx);
                        self.rates_dirty = true;
                        self.mark_transition(self.slot(idx));
                        self.complete(idx);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;

    fn dev() -> DeviceProfile {
        DeviceProfile::gtx1660_super()
    }

    #[test]
    fn drained_engine_reclaims_task_states() {
        let mut e = Engine::new(dev());
        let mut last = None;
        for round in 0..50 {
            for i in 0..4 {
                let label = format!("k{round}.{i}");
                let t = e.submit(TaskSpec::kernel(label, i).fluid(1e-4).sm_frac(0.2), &[]);
                last = Some(t);
            }
            e.sync_all();
            assert_eq!(e.stats().retained_tasks, 0, "drain reclaims everything");
        }
        assert_eq!(e.stats().submitted, 200);
        assert_eq!(e.stats().completed, 200);
        // Reclaimed handles still answer queries, and depending on them
        // is still legal.
        assert!(e.is_complete(last.unwrap()));
        let t = e.submit(
            TaskSpec::kernel("after", 0).fluid(1e-4).sm_frac(0.2),
            &[last.unwrap()],
        );
        e.sync_task(t);
        assert!(e.is_complete(t));
    }

    #[test]
    fn compact_completed_stops_at_first_unfinished_task() {
        let mut e = Engine::new(dev());
        let a = e.submit(TaskSpec::kernel("a", 0).fluid(1e-4).sm_frac(1.0), &[]);
        let b = e.submit(TaskSpec::kernel("b", 1).fluid(1e-2).sm_frac(0.1), &[]);
        let c = e.submit(TaskSpec::kernel("c", 2).fluid(1e-4).sm_frac(0.1), &[]);
        // sync_task(a) reclaims `a` (the completed prefix); `c` finishes
        // later but stays fenced behind the still-running `b`.
        e.sync_task(a);
        assert_eq!(e.stats().retained_tasks, 2);
        e.sync_task(c);
        assert!(!e.is_complete(b));
        assert_eq!(e.compact_completed(), 0, "prefix blocked by running b");
        assert_eq!(e.stats().retained_tasks, 2);
        e.sync_all();
        assert_eq!(e.stats().retained_tasks, 0);
        assert!(e.is_complete(a) && e.is_complete(b));
    }

    #[test]
    fn races_are_detected_after_reclamation() {
        // The race scan walks the in-flight sets; make sure reclaiming
        // old tasks doesn't confuse the id bookkeeping.
        let mut e = Engine::new(dev());
        let v = crate::data::ValueId(7);
        let t = e.submit(
            TaskSpec::kernel("w0", 0)
                .fluid(1e-4)
                .sm_frac(0.2)
                .writing(&[v]),
            &[],
        );
        e.sync_task(t);
        e.compact_completed();
        e.submit(
            TaskSpec::kernel("w1", 1)
                .fluid(1e-3)
                .sm_frac(0.2)
                .writing(&[v]),
            &[],
        );
        e.submit(
            TaskSpec::kernel("w2", 2)
                .fluid(1e-3)
                .sm_frac(0.2)
                .writing(&[v]),
            &[],
        );
        e.sync_all();
        assert_eq!(e.stats().races, 1, "concurrent writers race exactly once");
    }

    #[test]
    fn devices_do_not_contend_with_each_other() {
        // Two full-machine kernels: on one device they halve each other's
        // rate (2 ms); on two devices they run at full speed (1 ms).
        let mut e = Engine::new_multi(dev(), 2);
        e.submit(TaskSpec::kernel("a", 0).fluid(1e-3).sm_frac(1.0), &[]);
        e.submit(
            TaskSpec::kernel("b", 1)
                .on_device(1)
                .fluid(1e-3)
                .sm_frac(1.0),
            &[],
        );
        e.sync_all();
        assert!((e.now() - 1e-3).abs() < 1e-9, "now = {}", e.now());
        assert_eq!(e.timeline().devices_used(), vec![0, 1]);
        assert!((e.timeline().device_span(0) - 1e-3).abs() < 1e-9);
        assert_eq!(e.timeline().device_span(2), 0.0);
    }

    #[test]
    fn same_device_tasks_still_contend_in_multi_engines() {
        let mut e = Engine::new_multi(dev(), 4);
        e.submit(
            TaskSpec::kernel("a", 0)
                .on_device(3)
                .fluid(1e-3)
                .sm_frac(1.0),
            &[],
        );
        e.submit(
            TaskSpec::kernel("b", 1)
                .on_device(3)
                .fluid(1e-3)
                .sm_frac(1.0),
            &[],
        );
        e.sync_all();
        assert!((e.now() - 2e-3).abs() < 1e-9, "now = {}", e.now());
    }

    #[test]
    fn p2p_copies_contend_on_their_link_across_devices() {
        use crate::topology::{Topology, TopologyKind};
        let d = dev();
        let topo = Topology::preset(TopologyKind::FullyConnected, 4, &d);
        let l01 = topo.d2d_link(0, 1).unwrap();
        let l23 = topo.d2d_link(2, 3).unwrap();
        let bw = topo.link(l01).bandwidth;
        let lat = topo.link(l01).latency;
        let mut e = Engine::with_topology(d, topo.clone());
        // Two copies share link 0-1 even though they sit on different
        // devices; a third copy on link 2-3 is unaffected.
        let a = e.submit(
            TaskSpec::p2p_copy("a", 0, bw * 1e-3, l01, topo.link(l01)).on_device(0),
            &[],
        );
        let b = e.submit(
            TaskSpec::p2p_copy("b", 1, bw * 1e-3, l01, topo.link(l01)).on_device(1),
            &[],
        );
        let c = e.submit(
            TaskSpec::p2p_copy("c", 2, bw * 1e-3, l23, topo.link(l23)).on_device(2),
            &[],
        );
        e.sync_task(c);
        assert!(
            (e.now() - (lat + 1e-3)).abs() < 1e-9,
            "solo link: c at {}",
            e.now()
        );
        e.sync_task(a);
        e.sync_task(b);
        assert!(
            (e.now() - (lat + 2e-3)).abs() < 1e-9,
            "shared link halves both: {}",
            e.now()
        );
        // Link traffic is attributed per link; host links stay idle.
        let traffic = e.link_traffic();
        assert_eq!(traffic[l01.0 as usize], (2.0 * bw * 1e-3, 2));
        assert_eq!(traffic[l23.0 as usize], (bw * 1e-3, 1));
        for (h, t) in traffic.iter().take(4).enumerate() {
            assert_eq!(*t, (0.0, 0), "host link {h} must be idle");
        }
        // Timeline intervals carry the link attribution.
        assert_eq!(e.timeline().of_link(l01.0).count(), 2);
        assert!(e
            .timeline()
            .transfers()
            .all(|iv| iv.kind == TaskKind::CopyP2P));
    }

    #[test]
    fn host_transfers_are_charged_to_their_device_host_link() {
        let d = dev();
        let mut e = Engine::new_multi(d.clone(), 2);
        let c0 = e.submit(TaskSpec::bulk_copy(TaskKind::CopyH2D, "x", 0, 1e6, &d), &[]);
        let c1 = e.submit(
            TaskSpec::bulk_copy(TaskKind::CopyD2H, "y", 1, 2e6, &d).on_device(1),
            &[],
        );
        e.sync_task(c0);
        e.sync_task(c1);
        let traffic = e.link_traffic();
        assert_eq!(traffic[0], (1e6, 1));
        assert_eq!(traffic[1], (2e6, 1));
        assert_eq!(e.timeline().of_link(0).count(), 1);
        assert_eq!(e.timeline().of_link(1).count(), 1);
    }

    #[test]
    fn device_load_tracks_in_flight_tasks() {
        let mut e = Engine::new_multi(dev(), 2);
        let a = e.submit(TaskSpec::kernel("a", 0).fluid(1e-3).sm_frac(0.2), &[]);
        e.submit(
            TaskSpec::kernel("b", 1)
                .on_device(1)
                .fluid(2e-3)
                .sm_frac(0.2),
            &[],
        );
        assert_eq!(e.device_load(0), 1);
        assert_eq!(e.device_load(1), 1);
        e.sync_task(a);
        assert_eq!(e.device_load(0), 0);
        assert_eq!(e.device_load(1), 1);
        e.sync_all();
        assert_eq!(e.device_load(1), 0);
    }

    #[test]
    fn single_task_takes_latency_plus_work() {
        let mut e = Engine::new(dev());
        let t = e.submit(
            TaskSpec::kernel("k", 0)
                .latency(1e-6)
                .fluid(1e-3)
                .sm_frac(0.5),
            &[],
        );
        e.sync_task(t);
        assert!((e.now() - 1.001e-3).abs() < 1e-12);
        assert_eq!(e.timeline().intervals().len(), 1);
        let iv = &e.timeline().intervals()[0];
        assert_eq!(iv.start, 0.0);
        assert!((iv.end - 1.001e-3).abs() < 1e-12);
    }

    #[test]
    fn dependent_tasks_serialize() {
        let mut e = Engine::new(dev());
        let a = e.submit(TaskSpec::kernel("a", 0).fluid(1e-3).sm_frac(1.0), &[]);
        let b = e.submit(TaskSpec::kernel("b", 0).fluid(1e-3).sm_frac(1.0), &[a]);
        e.sync_task(b);
        assert!((e.now() - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn independent_small_kernels_space_share() {
        let mut e = Engine::new(dev());
        let a = e.submit(TaskSpec::kernel("a", 0).fluid(1e-3).sm_frac(0.4), &[]);
        let b = e.submit(TaskSpec::kernel("b", 1).fluid(1e-3).sm_frac(0.4), &[]);
        e.sync_task(a);
        e.sync_task(b);
        assert!((e.now() - 1e-3).abs() < 1e-9, "now = {}", e.now());
    }

    #[test]
    fn full_kernels_contend_and_take_double() {
        let mut e = Engine::new(dev());
        let a = e.submit(TaskSpec::kernel("a", 0).fluid(1e-3).sm_frac(1.0), &[]);
        let b = e.submit(TaskSpec::kernel("b", 1).fluid(1e-3).sm_frac(1.0), &[]);
        e.sync_task(b);
        // Both run at rate 0.5 → both finish at 2 ms.
        assert!((e.now() - 2e-3).abs() < 1e-9, "now = {}", e.now());
        let _ = a;
    }

    #[test]
    fn staggered_contention_integrates_correctly() {
        // a: 2 ms of work; b arrives via dependency-free submit after we
        // advance 1 ms. a runs solo for 1 ms (half done), then shares for
        // the rest: remaining 1 ms at rate 0.5 → 2 ms more. Total 3 ms.
        let mut e = Engine::new(dev());
        let a = e.submit(TaskSpec::kernel("a", 0).fluid(2e-3).sm_frac(1.0), &[]);
        e.advance_host(1e-3);
        let b = e.submit(TaskSpec::kernel("b", 1).fluid(1e-3).sm_frac(1.0), &[]);
        e.sync_task(a);
        assert!((e.now() - 3e-3).abs() < 1e-9, "a done at {}", e.now());
        e.sync_task(b);
        // b: rate 0.5 from 1ms to 3ms (1 ms progress), then solo for 0 ms
        // remaining... b has 1 ms work: 0.5*(3-1)=1 ms done at t=3 ms too.
        assert!((e.now() - 3e-3).abs() < 1e-9, "b done at {}", e.now());
    }

    #[test]
    fn transfer_and_kernel_overlap() {
        let d = dev();
        let mut e = Engine::new(d.clone());
        let c = e.submit(
            TaskSpec::bulk_copy(TaskKind::CopyH2D, "x", 1, d.pcie_bw * 1e-3, &d),
            &[],
        );
        let k = e.submit(TaskSpec::kernel("k", 0).fluid(1e-3).sm_frac(1.0), &[]);
        e.sync_task(c);
        e.sync_task(k);
        // Full overlap: elapsed ≈ 1 ms + copy launch overhead.
        assert!(e.now() < 1.2e-3, "now = {}", e.now());
    }

    #[test]
    fn marker_tasks_complete_instantly_and_chain() {
        let mut e = Engine::new(dev());
        let a = e.submit(TaskSpec::kernel("a", 0).fluid(1e-3).sm_frac(0.1), &[]);
        let m = e.submit(TaskSpec::marker("ev", 0), &[a]);
        let b = e.submit(TaskSpec::kernel("b", 1).fluid(1e-3).sm_frac(0.1), &[m]);
        e.sync_task(b);
        assert!((e.now() - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn dep_on_completed_task_is_satisfied() {
        let mut e = Engine::new(dev());
        let a = e.submit(TaskSpec::kernel("a", 0).fluid(1e-4).sm_frac(0.1), &[]);
        e.sync_task(a);
        let b = e.submit(TaskSpec::kernel("b", 0).fluid(1e-4).sm_frac(0.1), &[a]);
        e.sync_task(b);
        assert!(e.is_complete(b));
    }

    #[test]
    fn duplicate_deps_counted_once() {
        let mut e = Engine::new(dev());
        let a = e.submit(TaskSpec::kernel("a", 0).fluid(1e-4).sm_frac(0.1), &[]);
        let b = e.submit(
            TaskSpec::kernel("b", 0).fluid(1e-4).sm_frac(0.1),
            &[a, a, a],
        );
        e.sync_task(b);
        assert!(e.is_complete(b));
    }

    #[test]
    fn advance_host_runs_background_work() {
        let mut e = Engine::new(dev());
        let a = e.submit(TaskSpec::kernel("a", 0).fluid(1e-3).sm_frac(0.5), &[]);
        assert!(!e.is_complete(a));
        e.advance_host(2e-3);
        assert!(e.is_complete(a));
        assert_eq!(e.now(), 2e-3);
    }

    #[test]
    fn on_complete_payload_runs_once() {
        use std::cell::Cell;
        use std::rc::Rc;
        let hits = Rc::new(Cell::new(0));
        let h = hits.clone();
        let mut e = Engine::new(dev());
        let a = e.submit(
            TaskSpec::kernel("a", 0)
                .fluid(1e-4)
                .sm_frac(0.1)
                .payload(move || h.set(h.get() + 1)),
            &[],
        );
        e.sync_task(a);
        e.sync_all();
        assert_eq!(hits.get(), 1);
    }

    #[test]
    fn race_detection_fires_for_unsynchronized_conflict() {
        use crate::data::ValueId;
        let mut e = Engine::new(dev());
        let v = ValueId(1);
        let _ = e.submit(
            TaskSpec::kernel("w1", 0)
                .fluid(1e-3)
                .sm_frac(0.1)
                .writing(&[v]),
            &[],
        );
        let _ = e.submit(
            TaskSpec::kernel("w2", 1)
                .fluid(1e-3)
                .sm_frac(0.1)
                .writing(&[v]),
            &[],
        );
        e.sync_all();
        assert_eq!(e.races().len(), 1);
        assert!(e.races()[0].write_write);
    }

    #[test]
    fn repeated_racing_pairs_are_deduplicated() {
        use crate::data::ValueId;
        let mut e = Engine::new(dev());
        let v = ValueId(1);
        let w = ValueId(2);
        // The same conflicting pair over and over: one report, not ten.
        for _ in 0..10 {
            for (label, stream) in [("w1", 0), ("w2", 1)] {
                let _ = e.submit(
                    TaskSpec::kernel(label, stream)
                        .fluid(1e-3)
                        .sm_frac(0.1)
                        .writing(&[v]),
                    &[],
                );
            }
            e.sync_all();
        }
        assert_eq!(e.races().len(), 1, "repeated pair reported once");
        assert_eq!(e.stats().races, e.races().len(), "counter stays in step");
        // A distinct value makes a distinct pair again.
        for (label, stream) in [("w1", 0), ("w2", 1)] {
            let _ = e.submit(
                TaskSpec::kernel(label, stream)
                    .fluid(1e-3)
                    .sm_frac(0.1)
                    .writing(&[w]),
                &[],
            );
        }
        e.sync_all();
        assert_eq!(e.races().len(), 2);
        assert!(e.races().iter().any(|r| r.value == w));
    }

    #[test]
    fn race_detection_silent_when_dependency_exists() {
        use crate::data::ValueId;
        let mut e = Engine::new(dev());
        let v = ValueId(1);
        let a = e.submit(
            TaskSpec::kernel("w1", 0)
                .fluid(1e-3)
                .sm_frac(0.1)
                .writing(&[v]),
            &[],
        );
        let _ = e.submit(
            TaskSpec::kernel("w2", 1)
                .fluid(1e-3)
                .sm_frac(0.1)
                .writing(&[v]),
            &[a],
        );
        e.sync_all();
        assert!(e.races().is_empty());
    }

    // Note on deadlocks: `submit` only accepts dependencies on tasks that
    // already exist, so a dependency cycle cannot be constructed through
    // the public API and the `run` deadlock panic is a defensive internal
    // invariant rather than a reachable user-facing state.

    #[test]
    fn stats_accumulate() {
        let d = dev();
        let mut e = Engine::new(d.clone());
        let c = e.submit(
            TaskSpec::bulk_copy(TaskKind::CopyH2D, "x", 0, d.pcie_bw * 1e-3, &d),
            &[],
        );
        let k = e.submit(TaskSpec::kernel("k", 0).fluid(2e-3).sm_frac(0.5), &[c]);
        e.sync_task(k);
        let s = e.stats();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.completed, 2);
        assert!(s.kernel_time > 0.0 && s.transfer_time > 0.0);
    }

    #[test]
    fn timeline_clear_preserves_task_state() {
        let mut e = Engine::new(dev());
        let a = e.submit(TaskSpec::kernel("a", 0).fluid(1e-4).sm_frac(0.1), &[]);
        e.sync_task(a);
        e.clear_timeline();
        assert!(e.timeline().intervals().is_empty());
        assert!(e.is_complete(a));
    }
}

#[cfg(test)]
mod prop {
    use super::*;
    use crate::task::TaskSpec;
    use crate::topology::{Topology, TopologyKind};
    use proptest::prelude::*;

    proptest! {
        /// Differential test for the incremental rate solver: drive
        /// randomized mixes of kernels, host copies and p2p copies over
        /// randomized device counts and dependency chains, and after
        /// every submission / host advance assert the incrementally
        /// maintained rates are bit-identical to the full
        /// whole-active-set solve.
        #[test]
        fn incremental_solver_matches_full_solve(
            n_dev in 1usize..5,
            ops in proptest::collection::vec(
                (0u8..3, 0u32..4, 0u32..4, 1u32..20, proptest::bool::ANY), 1..24),
        ) {
            let d = DeviceProfile::gtx1660_super();
            let topo = Topology::preset(TopologyKind::FullyConnected, n_dev, &d);
            let mut e = Engine::with_topology(d.clone(), topo.clone());
            let mut prev: Option<TaskId> = None;
            for (i, &(kind, da, db, work, chain)) in ops.iter().enumerate() {
                let dev_a = da % n_dev as u32;
                let dev_b = db % n_dev as u32;
                let w = work as f64 * 1e-4;
                let stream = i as u32;
                let spec = match (kind, topo.d2d_link(dev_a, dev_b)) {
                    (2, Some(l)) => TaskSpec::p2p_copy(
                        format!("p{i}"),
                        stream,
                        topo.link(l).bandwidth * w,
                        l,
                        topo.link(l),
                    )
                    .on_device(dev_a),
                    (1, _) => TaskSpec::bulk_copy(
                        TaskKind::CopyH2D,
                        format!("c{i}"),
                        stream,
                        d.pcie_bw * w,
                        &d,
                    )
                    .on_device(dev_a),
                    _ => TaskSpec::kernel(format!("k{i}"), stream)
                        .on_device(dev_a)
                        .fluid(w)
                        .sm_frac(0.8),
                };
                let deps: Vec<TaskId> = if chain { prev.into_iter().collect() } else { Vec::new() };
                prev = Some(e.submit(spec, &deps));
                e.assert_rates_match_full_solve();
                if i % 5 == 4 {
                    e.advance_host(2e-4);
                    e.assert_rates_match_full_solve();
                }
            }
            e.sync_all();
            e.assert_rates_match_full_solve();
        }
    }
}
