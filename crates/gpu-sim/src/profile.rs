//! Device profiles: the static description of a simulated GPU.
//!
//! The three built-in profiles correspond to the GPUs of the paper's
//! evaluation (§V-A): a GTX 960 (Maxwell, 2 GB), a GTX 1660 Super (Turing,
//! 6 GB) and a Tesla P100 (Pascal, 12 GB, PCIe variant). Throughput numbers
//! are public spec-sheet values; the calibration constants at the bottom
//! (launch overheads, fault service characteristics, occupancy saturation
//! knees) are documented in `EXPERIMENTS.md` and shared by every profile.

use serde::{Deserialize, Serialize};

/// GPU micro-architecture generation.
///
/// The scheduler in the paper is *architecture-aware*: on devices older
/// than Pascal there is no unified-memory page-fault mechanism, so data
/// must be moved eagerly and the CPU may not touch managed arrays while
/// any kernel is running (GrCUDA restricts array *visibility* per stream
/// to work around this, §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// Pre-Pascal: no page faults, no on-demand migration, no prefetch.
    Maxwell,
    /// First architecture with unified-memory page faults and prefetch.
    Pascal,
    /// Post-Pascal consumer architecture (page faults, prefetch, but only
    /// 1024 resident threads per SM instead of 2048).
    Turing,
}

impl Architecture {
    /// Whether unified memory can be migrated on demand by page faults
    /// (and therefore whether `cudaMemPrefetchAsync`-style bulk prefetch
    /// is meaningful).
    pub fn supports_page_faults(self) -> bool {
        !matches!(self, Architecture::Maxwell)
    }
}

/// Static description of a simulated device plus the calibration constants
/// of the cost model.
///
/// All bandwidths are bytes/second, all rates are per-second, all times are
/// seconds. "Peak" values are theoretical; the cost model applies occupancy
/// derating (see [`crate::cost`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name as used in the paper's figures.
    pub name: String,
    /// Micro-architecture generation.
    pub arch: Architecture,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Peak single-precision throughput, FLOP/s.
    pub fp32_flops: f64,
    /// Peak double-precision throughput, FLOP/s.
    pub fp64_flops: f64,
    /// Peak executed-instruction rate, instructions/s (used for the IPC
    /// figure; roughly `sms * clock * issue_width`).
    pub instr_rate: f64,
    /// Device-memory (DRAM) bandwidth, bytes/s.
    pub dram_bw: f64,
    /// L2 cache bandwidth, bytes/s.
    pub l2_bw: f64,
    /// L2 cache size in bytes (informational; used by a couple of cost
    /// models to decide how much traffic is filtered by L2).
    pub l2_size: u64,
    /// Effective PCIe bandwidth per direction, bytes/s. The paper's hosts
    /// use PCIe 3.0 x16 (~12 GB/s effective).
    pub pcie_bw: f64,
    /// Effective bandwidth of *on-demand* unified-memory page-fault
    /// migration. Much lower than bulk copies: the fault path is
    /// serviced page-by-page through a single fault controller.
    pub fault_bw: f64,
    /// Fixed service latency of a fault migration batch.
    pub fault_latency: f64,
    /// Kernel launch overhead (host API + device dispatch).
    pub launch_overhead: f64,
    /// Overhead of recording or waiting on an event.
    pub event_overhead: f64,
    /// Host-side cost of one runtime API call (this is what the host
    /// "spends" issuing work; it is also the window in which previously
    /// issued work progresses in the background).
    pub host_api_overhead: f64,
    /// Extra host-side bookkeeping per computation performed by the
    /// DAG scheduler (dependency inference + stream selection). The
    /// paper reports this as negligible; it is non-zero here so that the
    /// overhead *could* show up if a workload were pathological.
    pub sched_overhead: f64,
    /// Occupancy (fraction of resident-thread capacity) above which
    /// compute throughput saturates. Below the knee, throughput scales
    /// linearly with occupancy.
    pub compute_occ_knee: f64,
    /// Occupancy above which DRAM bandwidth saturates. Memory latency is
    /// easier to hide, so this knee is lower than the compute knee.
    pub mem_occ_knee: f64,
}

impl DeviceProfile {
    /// NVIDIA GTX 960 (Maxwell, 2015): the paper's smallest device.
    /// 8 SMs @ ~1.18 GHz, 2 GB GDDR5, 112 GB/s, fp64 at 1/32 rate.
    pub fn gtx960() -> Self {
        DeviceProfile {
            name: "GTX 960".into(),
            arch: Architecture::Maxwell,
            sms: 8,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            mem_bytes: 2 * GB,
            fp32_flops: 2.31e12,
            fp64_flops: 7.2e10,
            instr_rate: 8.0 * 1.18e9 * 128.0,
            dram_bw: 112.0 * GBF,
            l2_bw: 300.0 * GBF,
            l2_size: MB,
            pcie_bw: 12.0 * GBF,
            fault_bw: 3.0 * GBF,
            fault_latency: 20e-6,
            ..Self::common()
        }
    }

    /// NVIDIA GTX 1660 Super (Turing, 2019): the paper's consumer device
    /// and the one used for the hardware-metric analysis (Fig. 12).
    /// 22 SMs @ ~1.78 GHz, 6 GB GDDR6, 336 GB/s, fp64 at 1/32 rate.
    pub fn gtx1660_super() -> Self {
        DeviceProfile {
            name: "GTX 1660 Super".into(),
            arch: Architecture::Turing,
            sms: 22,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 16,
            mem_bytes: 6 * GB,
            fp32_flops: 5.03e12,
            fp64_flops: 1.57e11,
            instr_rate: 22.0 * 1.78e9 * 128.0,
            dram_bw: 336.0 * GBF,
            l2_bw: 750.0 * GBF,
            l2_size: MB + MB / 2,
            pcie_bw: 12.0 * GBF,
            fault_bw: 6.5 * GBF,
            fault_latency: 15e-6,
            ..Self::common()
        }
    }

    /// NVIDIA Tesla P100 PCIe 12 GB (Pascal, 2016): the paper's
    /// data-center device. 56 SMs @ ~1.3 GHz, HBM2 at 549 GB/s, full-rate
    /// fp64 (1/2 of fp32) — 20× the double-precision throughput of the
    /// GTX 1660 Super, which is why B&S behaves so differently on it.
    pub fn tesla_p100() -> Self {
        DeviceProfile {
            name: "Tesla P100".into(),
            arch: Architecture::Pascal,
            sms: 56,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            mem_bytes: 12 * GB,
            fp32_flops: 9.3e12,
            fp64_flops: 4.7e12,
            instr_rate: 56.0 * 1.3e9 * 128.0,
            dram_bw: 549.0 * GBF,
            l2_bw: 1200.0 * GBF,
            l2_size: 4 * MB,
            pcie_bw: 12.0 * GBF,
            fault_bw: 7.5 * GBF,
            fault_latency: 15e-6,
            ..Self::common()
        }
    }

    /// The three devices of the paper's evaluation, in the order the
    /// figures list them.
    pub fn paper_devices() -> Vec<DeviceProfile> {
        vec![Self::gtx960(), Self::gtx1660_super(), Self::tesla_p100()]
    }

    /// Calibration constants shared by every profile. Placed here so a
    /// sensitivity sweep can tweak one place; values are justified in
    /// EXPERIMENTS.md.
    fn common() -> Self {
        DeviceProfile {
            name: String::new(),
            arch: Architecture::Pascal,
            sms: 1,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            mem_bytes: GB,
            fp32_flops: 1e12,
            fp64_flops: 1e10,
            instr_rate: 1e12,
            dram_bw: 100.0 * GBF,
            l2_bw: 300.0 * GBF,
            l2_size: MB,
            pcie_bw: 12.0 * GBF,
            fault_bw: 4.0 * GBF,
            fault_latency: 15e-6,
            launch_overhead: 4e-6,
            event_overhead: 1.5e-6,
            host_api_overhead: 2e-6,
            sched_overhead: 1.5e-6,
            compute_occ_knee: 0.50,
            mem_occ_knee: 0.20,
        }
    }

    /// Total resident-thread capacity of the device.
    pub fn thread_capacity(&self) -> f64 {
        (self.sms * self.max_threads_per_sm) as f64
    }

    /// Total resident-block capacity of the device.
    pub fn block_capacity(&self) -> f64 {
        (self.sms * self.max_blocks_per_sm) as f64
    }

    /// Whether this device services unified memory by page faults
    /// (Pascal and newer).
    pub fn supports_page_faults(&self) -> bool {
        self.arch.supports_page_faults()
    }

    /// Core clock in Hz, recovered from the instruction-issue rate
    /// (`instr_rate = sms × clock × 128` thread-instructions per cycle).
    pub fn clock_hz(&self) -> f64 {
        self.instr_rate / (self.sms as f64 * 128.0)
    }
}

/// One gibibyte (capacity contexts).
pub const GB: u64 = 1024 * 1024 * 1024;
/// One mebibyte.
pub const MB: u64 = 1024 * 1024;
/// One gigabyte as a bandwidth factor (bytes/s contexts use decimal GB).
pub const GBF: f64 = 1e9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_devices_match_spec_sheet_basics() {
        let d960 = DeviceProfile::gtx960();
        let d1660 = DeviceProfile::gtx1660_super();
        let p100 = DeviceProfile::tesla_p100();
        assert_eq!(d960.mem_bytes, 2 * GB);
        assert_eq!(d1660.mem_bytes, 6 * GB);
        assert_eq!(p100.mem_bytes, 12 * GB);
        // The paper's fp64 story: P100 has ~20-30x the fp64 of the 1660.
        assert!(p100.fp64_flops / d1660.fp64_flops > 20.0);
        // Maxwell has no page faults; the others do.
        assert!(!d960.supports_page_faults());
        assert!(d1660.supports_page_faults());
        assert!(p100.supports_page_faults());
    }

    #[test]
    fn turing_has_half_the_resident_threads_per_sm() {
        assert_eq!(DeviceProfile::gtx1660_super().max_threads_per_sm, 1024);
        assert_eq!(DeviceProfile::tesla_p100().max_threads_per_sm, 2048);
    }

    #[test]
    fn capacities_are_products() {
        let d = DeviceProfile::gtx1660_super();
        assert_eq!(d.thread_capacity(), (22 * 1024) as f64);
        assert_eq!(d.block_capacity(), (22 * 16) as f64);
    }

    #[test]
    fn fault_path_is_slower_than_bulk_copies() {
        for d in DeviceProfile::paper_devices() {
            assert!(d.fault_bw < d.pcie_bw, "{}", d.name);
        }
    }
}
