#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # gpu-sim — a deterministic fluid-rate GPU simulator
//!
//! This crate is the hardware substrate for the grcuda-rs reproduction of
//! *"DAG-based Scheduling with Resource Sharing for Multi-task Applications
//! in a Polyglot GPU Runtime"* (Parravicini et al., IPDPS 2021).
//!
//! The paper evaluates its scheduler on three real NVIDIA GPUs. No GPU is
//! available in this environment, so we model the device at the level the
//! paper's experiments actually exercise: **scheduling and resource
//! contention**, not instruction semantics. The simulator is a discrete-event
//! engine over a *fluid-rate* ("processor sharing") resource model:
//!
//! * Every GPU-side operation (kernel, host→device copy, device→host copy,
//!   unified-memory fault migration) is a [`TaskSpec`] with a
//!   contention-independent *fixed latency* (launch/setup overhead) followed
//!   by a *fluid phase* whose solo duration comes from an analytic cost
//!   model ([`KernelCost`]).
//! * Concurrent tasks share device resources — SM thread capacity, DRAM
//!   bandwidth, L2 bandwidth, fp64 throughput, the PCIe link (per
//!   direction), and the unified-memory page-fault controller — under
//!   **max–min fair** allocation computed by progressive filling
//!   ([`fluid`]). Two kernels that together fit in the SMs run at full
//!   speed (space-sharing); two bandwidth-bound kernels slow each other
//!   down (the contention the paper measures in its Fig. 9).
//! * Dependencies between tasks form a DAG inside the engine; CUDA streams
//!   and events in the [`cuda-sim`] crate are realized as dependency chains
//!   over this engine.
//! * Each task may carry an `on_complete` closure that runs the kernel's
//!   *functional* CPU implementation when the task finishes in virtual
//!   time, so simulated programs also produce real, checkable numbers. A
//!   [`race`] detector flags temporally-overlapping tasks with conflicting
//!   read/write sets — i.e. schedules where a scheduler forgot a
//!   dependency.
//!
//! The engine is fully deterministic: virtual time is `f64` seconds,
//! event ties are broken by submission order, and no wall-clock or OS
//! scheduling influences results.
//!
//! [`cuda-sim`]: ../cuda_sim/index.html
//!
//! ## Quick example
//!
//! ```
//! use gpu_sim::{Engine, DeviceProfile, TaskSpec, TaskKind};
//!
//! let mut eng = Engine::new(DeviceProfile::gtx1660_super());
//! // Two independent 1 ms "kernels" that each demand 30% of the SMs:
//! let a = eng.submit(
//!     TaskSpec::kernel("a", 0).fluid(1e-3).sm_frac(0.3), &[]);
//! let b = eng.submit(
//!     TaskSpec::kernel("b", 1).fluid(1e-3).sm_frac(0.3), &[]);
//! eng.sync_all();
//! // They space-share: total elapsed ≈ 1 ms + overheads, not 2 ms.
//! assert!(eng.now() < 1.5e-3);
//! let _ = (a, b);
//! ```

pub mod calibrate;
pub mod cost;
pub mod data;
pub mod engine;
pub mod fluid;
pub mod memory_manager;
pub mod profile;
#[cfg(test)]
mod prop_tests;
pub mod race;
pub mod task;
pub mod timeline;
pub mod topology;

/// Shorthand for the capacity-aware memory-manager module (the name the
/// layers above import it by).
pub use memory_manager as memgr;

pub use calibrate::{Calibration, CalibrationStats};
pub use cost::{Grid, KernelCost};
pub use data::{DataBuffer, TypedData, ValueId};
pub use engine::{Engine, EngineStats, TaskId};
pub use memory_manager::{EvictionPolicy, MemoryConfig, MemoryManager, MemoryStats};
pub use profile::{Architecture, DeviceProfile};
pub use race::RaceReport;
pub use task::{ResourceDemand, TaskKind, TaskMeta, TaskSpec};
pub use timeline::{Interval, Timeline};
pub use topology::{Cluster, Endpoint, Link, LinkId, NicKind, Topology, TopologyKind};

/// Virtual time, in seconds.
pub type Time = f64;

/// Convert seconds to milliseconds (presentation helper used everywhere in
/// the experiment binaries).
#[inline]
pub fn ms(t: Time) -> f64 {
    t * 1e3
}

/// Convert seconds to microseconds.
#[inline]
pub fn us(t: Time) -> f64 {
    t * 1e6
}
