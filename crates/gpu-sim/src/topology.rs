//! Interconnect-topology model: the links data moves over.
//!
//! The engine's per-device resource pools model what happens *inside* a
//! device; a [`Topology`] models what happens *between* them. Every
//! device always has a host link (PCIe); presets additionally wire
//! device↔device links (NVLink-style) that migrations can use for
//! direct peer-to-peer DMA instead of staging through the host.
//!
//! Links are first-class resources in the fluid rate solver: every
//! transfer is charged to the link it moves over, and concurrent
//! transfers on the same link share its bandwidth max–min fairly. A
//! device-to-device link is modeled with a single aggregate capacity for
//! both directions (the common way NVLink bandwidth is quoted).

use crate::memory_manager::MemoryConfig;
use crate::profile::DeviceProfile;
use crate::Time;

/// Default bandwidth of a device↔device (NVLink-style) link, bytes/s.
/// Roughly the aggregate NVLink 1.0 bandwidth of the paper's era —
/// a bit over 3× the PCIe 3.0 x16 link the presets pair it with.
pub const NVLINK_BW: f64 = 40.0e9;

/// Default one-way latency charged per peer-to-peer transfer.
pub const NVLINK_LATENCY: Time = 5e-6;

/// Default latency of a host link transfer setup (matched by the bulk
/// copy launch overhead the host links already charge).
pub const HOST_LINK_LATENCY: Time = 4e-6;

/// 25 Gbit/s Ethernet NIC bandwidth, bytes/s.
pub const ETHERNET_25G_BW: f64 = 3.125e9;

/// One-way latency charged per transfer on a 25 GbE NIC link.
pub const ETHERNET_25G_LATENCY: Time = 20e-6;

/// HDR InfiniBand (200 Gbit/s) NIC bandwidth, bytes/s.
pub const INFINIBAND_HDR_BW: f64 = 25.0e9;

/// One-way latency charged per transfer on an HDR InfiniBand link.
pub const INFINIBAND_HDR_LATENCY: Time = 2e-6;

/// NVSwitch-island inter-node fabric bandwidth, bytes/s — an
/// NVLink-class fabric stretched across node boundaries.
pub const NVSWITCH_ISLAND_BW: f64 = 40.0e9;

/// One-way latency charged per transfer on an NVSwitch-island link.
pub const NVSWITCH_ISLAND_LATENCY: Time = 1e-6;

/// Handle to a link in a [`Topology`] (index into [`Topology::links`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// One endpoint of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The host (CPU + system memory).
    Host,
    /// A GPU device.
    Device(u32),
    /// A whole cluster node (its host/NIC attachment point): NIC links
    /// join node pairs, not individual devices.
    Node(u32),
}

/// A bidirectional interconnect link with an aggregate capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// One endpoint (the host for host links, the lower device id for
    /// device↔device links).
    pub a: Endpoint,
    /// The other endpoint.
    pub b: Endpoint,
    /// Aggregate bandwidth in bytes/s shared by all transfers in flight
    /// on this link.
    pub bandwidth: f64,
    /// Fixed per-transfer setup latency.
    pub latency: Time,
}

impl Link {
    /// Human-readable label (`host-d0`, `d0-d1`, `n0-n1`, ...), used by
    /// metrics tables and DOT renders.
    pub fn label(&self) -> String {
        let end = |e: Endpoint| match e {
            Endpoint::Host => "host".to_string(),
            Endpoint::Device(d) => format!("d{d}"),
            Endpoint::Node(n) => format!("n{n}"),
        };
        format!("{}-{}", end(self.a), end(self.b))
    }

    /// True for a device↔device (peer-to-peer capable) link.
    pub fn is_d2d(&self) -> bool {
        matches!((self.a, self.b), (Endpoint::Device(_), Endpoint::Device(_)))
    }

    /// True for a node↔node network (NIC) link.
    pub fn is_nic(&self) -> bool {
        matches!((self.a, self.b), (Endpoint::Node(_), Endpoint::Node(_)))
    }
}

/// The built-in interconnect presets, selectable at context
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Host links only: every cross-device move stages through the host
    /// (the pre-P2P baseline, and the default).
    PcieOnly,
    /// NVLink between device pairs `(0,1)`, `(2,3)`, ...: fast islands
    /// of two, host-mediated across islands.
    NvlinkPair,
    /// NVLink between every device pair (an NVSwitch-style machine).
    FullyConnected,
    /// NVLink ring: device `i` connects to `(i+1) % n`.
    Ring,
}

impl TopologyKind {
    /// All presets, in sweep order.
    pub const ALL: [TopologyKind; 4] = [
        TopologyKind::PcieOnly,
        TopologyKind::NvlinkPair,
        TopologyKind::FullyConnected,
        TopologyKind::Ring,
    ];

    /// Short display name for tables and sweeps.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::PcieOnly => "pcie-only",
            TopologyKind::NvlinkPair => "nvlink-pair",
            TopologyKind::FullyConnected => "fully-connected",
            TopologyKind::Ring => "ring",
        }
    }

    /// Parse a sweep/CLI name produced by [`TopologyKind::name`].
    pub fn parse(s: &str) -> Option<TopologyKind> {
        TopologyKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// The interconnect of a simulated machine: `n` devices, one host link
/// per device, plus the preset's device↔device links — and, on a
/// multi-node [`Cluster`], the node↔node NIC links after those.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    kind: TopologyKind,
    n_devices: u32,
    /// Links `0..n_devices` are the host links (link `d` serves device
    /// `d`); then the device↔device links; then (multi-node machines
    /// only) the node↔node NIC links.
    links: Vec<Link>,
    /// Device-memory capacities and eviction policy (the machine
    /// description owns its memories as well as its links). Default
    /// unlimited.
    memory: MemoryConfig,
    /// The cluster node each device belongs to (all zeros on a
    /// single-box machine). Devices of one node are contiguous.
    node_of: Vec<u32>,
    /// Number of cluster nodes (1 for a single-box machine).
    n_nodes: u32,
}

impl Topology {
    /// Build a preset topology for `n` devices, with host links at the
    /// device's PCIe bandwidth and NVLink-class device↔device links.
    pub fn preset(kind: TopologyKind, n: usize, dev: &DeviceProfile) -> Self {
        Self::with_bandwidths(kind, n, dev.pcie_bw, NVLINK_BW)
    }

    /// Host-links-only topology (what [`TopologyKind::PcieOnly`] builds).
    pub fn pcie_only(n: usize, dev: &DeviceProfile) -> Self {
        Self::preset(TopologyKind::PcieOnly, n, dev)
    }

    /// Build a preset with explicit host-link and peer-link bandwidths.
    ///
    /// `host_bw` must match the PCIe bandwidth of the device profile the
    /// engine runs with (host transfers are timed against the profile;
    /// `Engine::with_topology` asserts the two agree). The presets pass
    /// `dev.pcie_bw`, which always satisfies this.
    pub fn with_bandwidths(kind: TopologyKind, n: usize, host_bw: f64, d2d_bw: f64) -> Self {
        assert!(n >= 1, "need at least one device");
        assert!(host_bw > 0.0 && d2d_bw > 0.0, "bandwidths must be positive");
        let mut links: Vec<Link> = (0..n as u32)
            .map(|d| Link {
                a: Endpoint::Host,
                b: Endpoint::Device(d),
                bandwidth: host_bw,
                latency: HOST_LINK_LATENCY,
            })
            .collect();
        push_d2d_links(&mut links, kind, 0, n, d2d_bw);
        Topology {
            kind,
            n_devices: n as u32,
            links,
            memory: MemoryConfig::default(),
            node_of: vec![0; n],
            n_nodes: 1,
        }
    }

    /// Give every device a finite memory (builder-style): capacity and
    /// eviction policy for the capacity-aware memory manager
    /// ([`crate::memgr`]). The default is unlimited, which reproduces
    /// the infinite-memory behavior bit-identically.
    pub fn with_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// The device-memory configuration of this machine.
    pub fn memory_config(&self) -> &MemoryConfig {
        &self.memory
    }

    /// Which preset built this topology.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of devices spanned.
    pub fn device_count(&self) -> usize {
        self.n_devices as usize
    }

    /// Every link, host links first (link `d` is device `d`'s host
    /// link), then the device↔device links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// A link by handle.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// The host link of a device.
    pub fn host_link(&self, device: u32) -> LinkId {
        assert!(device < self.n_devices, "unknown device {device}");
        LinkId(device)
    }

    /// The direct device↔device link between two devices, if the
    /// topology has one (peer-to-peer DMA is possible exactly when it
    /// does).
    pub fn d2d_link(&self, a: u32, b: u32) -> Option<LinkId> {
        if a == b {
            return None;
        }
        let (lo, hi) = (Endpoint::Device(a.min(b)), Endpoint::Device(a.max(b)));
        self.links
            .iter()
            .position(|l| l.a == lo && l.b == hi)
            .map(|i| LinkId(i as u32))
    }

    /// Number of cluster nodes this machine spans (1 for a single box).
    pub fn node_count(&self) -> usize {
        self.n_nodes as usize
    }

    /// The cluster node a device belongs to (always 0 on a single box).
    pub fn node_of(&self, device: u32) -> u32 {
        self.node_of[device as usize]
    }

    /// The NIC link joining two cluster nodes, if the machine has one
    /// (`None` for the same node or on single-box machines).
    pub fn nic_link(&self, a: u32, b: u32) -> Option<LinkId> {
        if a == b {
            return None;
        }
        let (lo, hi) = (Endpoint::Node(a.min(b)), Endpoint::Node(a.max(b)));
        self.links
            .iter()
            .position(|l| l.a == lo && l.b == hi)
            .map(|i| LinkId(i as u32))
    }
}

/// Append the device↔device links of a preset wired over devices
/// `base..base + n` (one node's worth of peer wiring).
fn push_d2d_links(links: &mut Vec<Link>, kind: TopologyKind, base: u32, n: usize, d2d_bw: f64) {
    let mut pair = |a: u32, b: u32| {
        links.push(Link {
            a: Endpoint::Device(base + a.min(b)),
            b: Endpoint::Device(base + a.max(b)),
            bandwidth: d2d_bw,
            latency: NVLINK_LATENCY,
        });
    };
    match kind {
        TopologyKind::PcieOnly => {}
        TopologyKind::NvlinkPair => {
            let mut d = 0;
            while d + 1 < n as u32 {
                pair(d, d + 1);
                d += 2;
            }
        }
        TopologyKind::FullyConnected => {
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    pair(a, b);
                }
            }
        }
        TopologyKind::Ring => {
            // A ring over n >= 3 devices; for n == 2 the ring
            // degenerates to the single pair link (not two parallel
            // links), and a 1-device ring has no peers at all.
            if n == 2 {
                pair(0, 1);
            } else if n >= 3 {
                for d in 0..n as u32 {
                    pair(d, (d + 1) % n as u32);
                }
            }
        }
    }
}

/// The built-in network-interconnect presets joining cluster nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NicKind {
    /// 25 Gbit/s Ethernet: commodity scale-out, high latency.
    Ethernet25g,
    /// HDR InfiniBand (200 Gbit/s): HPC-fabric class.
    InfinibandHdr,
    /// An NVSwitch island: NVLink-class bandwidth stretched across
    /// node boundaries (the fastest preset).
    NvswitchIsland,
}

impl NicKind {
    /// All NIC presets, in sweep order.
    pub const ALL: [NicKind; 3] = [
        NicKind::Ethernet25g,
        NicKind::InfinibandHdr,
        NicKind::NvswitchIsland,
    ];

    /// Aggregate NIC bandwidth in bytes/s.
    pub fn bandwidth(self) -> f64 {
        match self {
            NicKind::Ethernet25g => ETHERNET_25G_BW,
            NicKind::InfinibandHdr => INFINIBAND_HDR_BW,
            NicKind::NvswitchIsland => NVSWITCH_ISLAND_BW,
        }
    }

    /// One-way latency charged per transfer.
    pub fn latency(self) -> Time {
        match self {
            NicKind::Ethernet25g => ETHERNET_25G_LATENCY,
            NicKind::InfinibandHdr => INFINIBAND_HDR_LATENCY,
            NicKind::NvswitchIsland => NVSWITCH_ISLAND_LATENCY,
        }
    }

    /// Short display name for tables and sweeps.
    pub fn name(self) -> &'static str {
        match self {
            NicKind::Ethernet25g => "ethernet-25g",
            NicKind::InfinibandHdr => "infiniband-hdr",
            NicKind::NvswitchIsland => "nvswitch-island",
        }
    }

    /// Parse a sweep/CLI name produced by [`NicKind::name`].
    pub fn parse(s: &str) -> Option<NicKind> {
        NicKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// A two-tier machine description: `nodes` identical nodes, each an
/// existing single-box [`Topology`] of `gpus_per_node` devices, joined
/// by a full mesh of node↔node NIC links. [`Cluster::build`] flattens it
/// into one [`Topology`] whose NIC links join the same global max–min
/// rate solve as every other link, so cross-node copies contend
/// machine-wide.
///
/// A 1-node cluster builds a topology bit-identical to
/// [`Topology::preset`] — the single-box path is the degenerate case,
/// not a separate code path.
///
/// # Examples
///
/// ```
/// use gpu_sim::{Cluster, DeviceProfile, NicKind, TopologyKind};
///
/// let dev = DeviceProfile::tesla_p100();
/// let topo = Cluster::new(2, 4, TopologyKind::NvlinkPair, NicKind::InfinibandHdr).build(&dev);
/// assert_eq!(topo.device_count(), 8);
/// assert_eq!(topo.node_count(), 2);
/// assert_eq!(topo.node_of(3), 0);
/// assert_eq!(topo.node_of(4), 1);
/// // In-node peer wiring never crosses the node boundary...
/// assert!(topo.d2d_link(2, 3).is_some());
/// assert!(topo.d2d_link(3, 4).is_none());
/// // ...cross-node traffic goes over the NIC link instead.
/// let nic = topo.nic_link(0, 1).unwrap();
/// assert!(topo.link(nic).is_nic());
/// assert_eq!(topo.link(nic).label(), "n0-n1");
///
/// // One node degenerates to the single-box preset, bit-identically.
/// let single = Cluster::new(1, 4, TopologyKind::NvlinkPair, NicKind::InfinibandHdr).build(&dev);
/// assert_eq!(single, gpu_sim::Topology::preset(TopologyKind::NvlinkPair, 4, &dev));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    nodes: usize,
    gpus_per_node: usize,
    node_kind: TopologyKind,
    nic: NicKind,
    memory: MemoryConfig,
}

impl Cluster {
    /// Describe a cluster of `nodes` nodes, each wiring `gpus_per_node`
    /// devices with the `node_kind` in-node preset, joined by `nic`
    /// links.
    pub fn new(nodes: usize, gpus_per_node: usize, node_kind: TopologyKind, nic: NicKind) -> Self {
        assert!(nodes >= 1, "need at least one node");
        assert!(gpus_per_node >= 1, "need at least one GPU per node");
        Cluster {
            nodes,
            gpus_per_node,
            node_kind,
            nic,
            memory: MemoryConfig::default(),
        }
    }

    /// Give every device a finite memory (builder-style), exactly like
    /// [`Topology::with_memory`].
    pub fn with_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Devices per node.
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// The NIC preset joining the nodes.
    pub fn nic(&self) -> NicKind {
        self.nic
    }

    /// Flatten into one machine-wide [`Topology`]: host links for every
    /// device first, then each node's device↔device wiring (device ids
    /// are contiguous per node), then the NIC full mesh over node pairs.
    pub fn build(&self, dev: &DeviceProfile) -> Topology {
        let n = self.nodes * self.gpus_per_node;
        let mut links: Vec<Link> = (0..n as u32)
            .map(|d| Link {
                a: Endpoint::Host,
                b: Endpoint::Device(d),
                bandwidth: dev.pcie_bw,
                latency: HOST_LINK_LATENCY,
            })
            .collect();
        for node in 0..self.nodes {
            push_d2d_links(
                &mut links,
                self.node_kind,
                (node * self.gpus_per_node) as u32,
                self.gpus_per_node,
                NVLINK_BW,
            );
        }
        for a in 0..self.nodes as u32 {
            for b in (a + 1)..self.nodes as u32 {
                links.push(Link {
                    a: Endpoint::Node(a),
                    b: Endpoint::Node(b),
                    bandwidth: self.nic.bandwidth(),
                    latency: self.nic.latency(),
                });
            }
        }
        let node_of = (0..n).map(|d| (d / self.gpus_per_node) as u32).collect();
        Topology {
            kind: self.node_kind,
            n_devices: n as u32,
            links,
            memory: self.memory.clone(),
            node_of,
            n_nodes: self.nodes as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(kind: TopologyKind, n: usize) -> Topology {
        Topology::preset(kind, n, &DeviceProfile::tesla_p100())
    }

    /// The expected device↔device pairs of each preset — the round-trip
    /// check that construction yields exactly the advertised link set.
    fn d2d_pairs(t: &Topology) -> Vec<(u32, u32)> {
        t.links()
            .iter()
            .filter_map(|l| match (l.a, l.b) {
                (Endpoint::Device(a), Endpoint::Device(b)) => Some((a, b)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn every_preset_has_one_host_link_per_device() {
        for kind in TopologyKind::ALL {
            for n in [1usize, 2, 3, 4, 8] {
                let t = topo(kind, n);
                assert_eq!(t.device_count(), n);
                for d in 0..n as u32 {
                    let l = t.link(t.host_link(d));
                    assert_eq!(l.a, Endpoint::Host);
                    assert_eq!(l.b, Endpoint::Device(d));
                    assert!(!l.is_d2d());
                }
            }
        }
    }

    #[test]
    fn pcie_only_has_no_peer_links() {
        let t = topo(TopologyKind::PcieOnly, 4);
        assert!(d2d_pairs(&t).is_empty());
        assert_eq!(t.d2d_link(0, 1), None);
        assert_eq!(t.links().len(), 4);
    }

    #[test]
    fn nvlink_pair_wires_even_odd_islands() {
        let t = topo(TopologyKind::NvlinkPair, 4);
        assert_eq!(d2d_pairs(&t), vec![(0, 1), (2, 3)]);
        assert!(t.d2d_link(0, 1).is_some());
        assert!(t.d2d_link(1, 0).is_some(), "links are bidirectional");
        assert_eq!(t.d2d_link(1, 2), None, "cross-island is host-mediated");
        assert_eq!(t.d2d_link(0, 3), None);
        // Odd device counts leave the last device with its host link only.
        let t3 = topo(TopologyKind::NvlinkPair, 3);
        assert_eq!(d2d_pairs(&t3), vec![(0, 1)]);
    }

    #[test]
    fn fully_connected_wires_every_pair() {
        let t = topo(TopologyKind::FullyConnected, 4);
        assert_eq!(
            d2d_pairs(&t),
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        );
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(t.d2d_link(a, b).is_some(), a != b);
            }
        }
    }

    #[test]
    fn ring_wires_neighbors_only() {
        let t = topo(TopologyKind::Ring, 4);
        assert_eq!(d2d_pairs(&t), vec![(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert!(t.d2d_link(3, 0).is_some(), "the ring closes");
        assert_eq!(t.d2d_link(0, 2), None, "no chord links");
        // Two-device ring degenerates to one pair link, not two.
        assert_eq!(d2d_pairs(&topo(TopologyKind::Ring, 2)), vec![(0, 1)]);
        // One device: no peers.
        assert!(d2d_pairs(&topo(TopologyKind::Ring, 1)).is_empty());
    }

    #[test]
    fn peer_links_are_faster_than_host_links() {
        let t = topo(TopologyKind::FullyConnected, 2);
        let host = t.link(t.host_link(0));
        let peer = t.link(t.d2d_link(0, 1).unwrap());
        assert!(peer.bandwidth > 2.0 * host.bandwidth);
        assert_eq!(peer.label(), "d0-d1");
        assert_eq!(host.label(), "host-d0");
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in TopologyKind::ALL {
            assert_eq!(TopologyKind::parse(kind.name()), Some(kind));
            assert_eq!(topo(kind, 4).kind(), kind);
        }
        assert_eq!(TopologyKind::parse("nope"), None);
    }

    #[test]
    fn nic_names_round_trip_and_presets_order_by_speed() {
        for nic in NicKind::ALL {
            assert_eq!(NicKind::parse(nic.name()), Some(nic));
            assert!(nic.bandwidth() > 0.0 && nic.latency() > 0.0);
        }
        assert_eq!(NicKind::parse("token-ring"), None);
        assert!(NicKind::Ethernet25g.bandwidth() < NicKind::InfinibandHdr.bandwidth());
        assert!(NicKind::InfinibandHdr.bandwidth() < NicKind::NvswitchIsland.bandwidth());
        assert!(NicKind::Ethernet25g.latency() > NicKind::NvswitchIsland.latency());
    }

    #[test]
    fn single_box_presets_are_single_node() {
        for kind in TopologyKind::ALL {
            let t = topo(kind, 4);
            assert_eq!(t.node_count(), 1);
            for d in 0..4 {
                assert_eq!(t.node_of(d), 0);
            }
            assert_eq!(t.nic_link(0, 1), None);
            assert!(t.links().iter().all(|l| !l.is_nic()));
        }
    }

    #[test]
    fn cluster_builds_host_then_d2d_then_nic_links() {
        let dev = DeviceProfile::tesla_p100();
        let t = Cluster::new(2, 4, TopologyKind::NvlinkPair, NicKind::InfinibandHdr).build(&dev);
        assert_eq!(t.device_count(), 8);
        assert_eq!(t.node_count(), 2);
        // Host links first (one per device)...
        for d in 0..8 {
            assert_eq!(t.host_link(d), LinkId(d));
            assert!(!t.link(LinkId(d)).is_d2d() && !t.link(LinkId(d)).is_nic());
        }
        // ...then per-node NVLink pairs, offset by the node base...
        assert_eq!(d2d_pairs(&t), vec![(0, 1), (2, 3), (4, 5), (6, 7)]);
        assert_eq!(t.d2d_link(3, 4), None, "no peer link across nodes");
        // ...then the NIC mesh, last.
        let nic = t.nic_link(0, 1).unwrap();
        assert_eq!(nic.0 as usize, t.links().len() - 1);
        let l = t.link(nic);
        assert!(l.is_nic());
        assert_eq!(l.bandwidth, INFINIBAND_HDR_BW);
        assert_eq!(l.latency, INFINIBAND_HDR_LATENCY);
        assert_eq!(t.nic_link(1, 0), Some(nic), "NIC links are bidirectional");
        assert_eq!(t.nic_link(0, 0), None);
        // Node membership is contiguous.
        assert_eq!(
            (0..8).map(|d| t.node_of(d)).collect::<Vec<_>>(),
            [0, 0, 0, 0, 1, 1, 1, 1]
        );
    }

    #[test]
    fn cluster_nic_mesh_is_full_over_node_pairs() {
        let dev = DeviceProfile::tesla_p100();
        let t = Cluster::new(4, 2, TopologyKind::PcieOnly, NicKind::Ethernet25g).build(&dev);
        let nic_links = t.links().iter().filter(|l| l.is_nic()).count();
        assert_eq!(nic_links, 6, "4 choose 2 node pairs");
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(t.nic_link(a, b).is_some(), a != b);
            }
        }
        assert_eq!(t.link(t.nic_link(2, 3).unwrap()).label(), "n2-n3");
    }

    #[test]
    fn one_node_cluster_is_bit_identical_to_the_single_box_preset() {
        let dev = DeviceProfile::tesla_p100();
        for kind in TopologyKind::ALL {
            for g in [1usize, 2, 4] {
                let c = Cluster::new(1, g, kind, NicKind::InfinibandHdr).build(&dev);
                assert_eq!(c, Topology::preset(kind, g, &dev));
            }
        }
    }
}
