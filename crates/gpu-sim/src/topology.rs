//! Interconnect-topology model: the links data moves over.
//!
//! The engine's per-device resource pools model what happens *inside* a
//! device; a [`Topology`] models what happens *between* them. Every
//! device always has a host link (PCIe); presets additionally wire
//! device↔device links (NVLink-style) that migrations can use for
//! direct peer-to-peer DMA instead of staging through the host.
//!
//! Links are first-class resources in the fluid rate solver: every
//! transfer is charged to the link it moves over, and concurrent
//! transfers on the same link share its bandwidth max–min fairly. A
//! device-to-device link is modeled with a single aggregate capacity for
//! both directions (the common way NVLink bandwidth is quoted).

use crate::memory_manager::MemoryConfig;
use crate::profile::DeviceProfile;
use crate::Time;

/// Default bandwidth of a device↔device (NVLink-style) link, bytes/s.
/// Roughly the aggregate NVLink 1.0 bandwidth of the paper's era —
/// a bit over 3× the PCIe 3.0 x16 link the presets pair it with.
pub const NVLINK_BW: f64 = 40.0e9;

/// Default one-way latency charged per peer-to-peer transfer.
pub const NVLINK_LATENCY: Time = 5e-6;

/// Default latency of a host link transfer setup (matched by the bulk
/// copy launch overhead the host links already charge).
pub const HOST_LINK_LATENCY: Time = 4e-6;

/// Handle to a link in a [`Topology`] (index into [`Topology::links`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// One endpoint of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The host (CPU + system memory).
    Host,
    /// A GPU device.
    Device(u32),
}

/// A bidirectional interconnect link with an aggregate capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// One endpoint (the host for host links, the lower device id for
    /// device↔device links).
    pub a: Endpoint,
    /// The other endpoint.
    pub b: Endpoint,
    /// Aggregate bandwidth in bytes/s shared by all transfers in flight
    /// on this link.
    pub bandwidth: f64,
    /// Fixed per-transfer setup latency.
    pub latency: Time,
}

impl Link {
    /// Human-readable label (`host-d0`, `d0-d1`, ...), used by metrics
    /// tables and DOT renders.
    pub fn label(&self) -> String {
        let end = |e: Endpoint| match e {
            Endpoint::Host => "host".to_string(),
            Endpoint::Device(d) => format!("d{d}"),
        };
        format!("{}-{}", end(self.a), end(self.b))
    }

    /// True for a device↔device (peer-to-peer capable) link.
    pub fn is_d2d(&self) -> bool {
        matches!((self.a, self.b), (Endpoint::Device(_), Endpoint::Device(_)))
    }
}

/// The built-in interconnect presets, selectable at context
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Host links only: every cross-device move stages through the host
    /// (the pre-P2P baseline, and the default).
    PcieOnly,
    /// NVLink between device pairs `(0,1)`, `(2,3)`, ...: fast islands
    /// of two, host-mediated across islands.
    NvlinkPair,
    /// NVLink between every device pair (an NVSwitch-style machine).
    FullyConnected,
    /// NVLink ring: device `i` connects to `(i+1) % n`.
    Ring,
}

impl TopologyKind {
    /// All presets, in sweep order.
    pub const ALL: [TopologyKind; 4] = [
        TopologyKind::PcieOnly,
        TopologyKind::NvlinkPair,
        TopologyKind::FullyConnected,
        TopologyKind::Ring,
    ];

    /// Short display name for tables and sweeps.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::PcieOnly => "pcie-only",
            TopologyKind::NvlinkPair => "nvlink-pair",
            TopologyKind::FullyConnected => "fully-connected",
            TopologyKind::Ring => "ring",
        }
    }

    /// Parse a sweep/CLI name produced by [`TopologyKind::name`].
    pub fn parse(s: &str) -> Option<TopologyKind> {
        TopologyKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// The interconnect of a simulated machine: `n` devices, one host link
/// per device, plus the preset's device↔device links.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    kind: TopologyKind,
    n_devices: u32,
    /// Links `0..n_devices` are the host links (link `d` serves device
    /// `d`); the rest are device↔device links.
    links: Vec<Link>,
    /// Device-memory capacities and eviction policy (the machine
    /// description owns its memories as well as its links). Default
    /// unlimited.
    memory: MemoryConfig,
}

impl Topology {
    /// Build a preset topology for `n` devices, with host links at the
    /// device's PCIe bandwidth and NVLink-class device↔device links.
    pub fn preset(kind: TopologyKind, n: usize, dev: &DeviceProfile) -> Self {
        Self::with_bandwidths(kind, n, dev.pcie_bw, NVLINK_BW)
    }

    /// Host-links-only topology (what [`TopologyKind::PcieOnly`] builds).
    pub fn pcie_only(n: usize, dev: &DeviceProfile) -> Self {
        Self::preset(TopologyKind::PcieOnly, n, dev)
    }

    /// Build a preset with explicit host-link and peer-link bandwidths.
    ///
    /// `host_bw` must match the PCIe bandwidth of the device profile the
    /// engine runs with (host transfers are timed against the profile;
    /// `Engine::with_topology` asserts the two agree). The presets pass
    /// `dev.pcie_bw`, which always satisfies this.
    pub fn with_bandwidths(kind: TopologyKind, n: usize, host_bw: f64, d2d_bw: f64) -> Self {
        assert!(n >= 1, "need at least one device");
        assert!(host_bw > 0.0 && d2d_bw > 0.0, "bandwidths must be positive");
        let mut links: Vec<Link> = (0..n as u32)
            .map(|d| Link {
                a: Endpoint::Host,
                b: Endpoint::Device(d),
                bandwidth: host_bw,
                latency: HOST_LINK_LATENCY,
            })
            .collect();
        let mut pair = |a: u32, b: u32| {
            links.push(Link {
                a: Endpoint::Device(a.min(b)),
                b: Endpoint::Device(a.max(b)),
                bandwidth: d2d_bw,
                latency: NVLINK_LATENCY,
            });
        };
        match kind {
            TopologyKind::PcieOnly => {}
            TopologyKind::NvlinkPair => {
                let mut d = 0;
                while d + 1 < n as u32 {
                    pair(d, d + 1);
                    d += 2;
                }
            }
            TopologyKind::FullyConnected => {
                for a in 0..n as u32 {
                    for b in (a + 1)..n as u32 {
                        pair(a, b);
                    }
                }
            }
            TopologyKind::Ring => {
                // A ring over n >= 3 devices; for n == 2 the ring
                // degenerates to the single pair link (not two parallel
                // links), and a 1-device ring has no peers at all.
                if n == 2 {
                    pair(0, 1);
                } else if n >= 3 {
                    for d in 0..n as u32 {
                        pair(d, (d + 1) % n as u32);
                    }
                }
            }
        }
        Topology {
            kind,
            n_devices: n as u32,
            links,
            memory: MemoryConfig::default(),
        }
    }

    /// Give every device a finite memory (builder-style): capacity and
    /// eviction policy for the capacity-aware memory manager
    /// ([`crate::memgr`]). The default is unlimited, which reproduces
    /// the infinite-memory behavior bit-identically.
    pub fn with_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// The device-memory configuration of this machine.
    pub fn memory_config(&self) -> &MemoryConfig {
        &self.memory
    }

    /// Which preset built this topology.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of devices spanned.
    pub fn device_count(&self) -> usize {
        self.n_devices as usize
    }

    /// Every link, host links first (link `d` is device `d`'s host
    /// link), then the device↔device links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// A link by handle.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// The host link of a device.
    pub fn host_link(&self, device: u32) -> LinkId {
        assert!(device < self.n_devices, "unknown device {device}");
        LinkId(device)
    }

    /// The direct device↔device link between two devices, if the
    /// topology has one (peer-to-peer DMA is possible exactly when it
    /// does).
    pub fn d2d_link(&self, a: u32, b: u32) -> Option<LinkId> {
        if a == b {
            return None;
        }
        let (lo, hi) = (Endpoint::Device(a.min(b)), Endpoint::Device(a.max(b)));
        self.links
            .iter()
            .position(|l| l.a == lo && l.b == hi)
            .map(|i| LinkId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(kind: TopologyKind, n: usize) -> Topology {
        Topology::preset(kind, n, &DeviceProfile::tesla_p100())
    }

    /// The expected device↔device pairs of each preset — the round-trip
    /// check that construction yields exactly the advertised link set.
    fn d2d_pairs(t: &Topology) -> Vec<(u32, u32)> {
        t.links()
            .iter()
            .filter_map(|l| match (l.a, l.b) {
                (Endpoint::Device(a), Endpoint::Device(b)) => Some((a, b)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn every_preset_has_one_host_link_per_device() {
        for kind in TopologyKind::ALL {
            for n in [1usize, 2, 3, 4, 8] {
                let t = topo(kind, n);
                assert_eq!(t.device_count(), n);
                for d in 0..n as u32 {
                    let l = t.link(t.host_link(d));
                    assert_eq!(l.a, Endpoint::Host);
                    assert_eq!(l.b, Endpoint::Device(d));
                    assert!(!l.is_d2d());
                }
            }
        }
    }

    #[test]
    fn pcie_only_has_no_peer_links() {
        let t = topo(TopologyKind::PcieOnly, 4);
        assert!(d2d_pairs(&t).is_empty());
        assert_eq!(t.d2d_link(0, 1), None);
        assert_eq!(t.links().len(), 4);
    }

    #[test]
    fn nvlink_pair_wires_even_odd_islands() {
        let t = topo(TopologyKind::NvlinkPair, 4);
        assert_eq!(d2d_pairs(&t), vec![(0, 1), (2, 3)]);
        assert!(t.d2d_link(0, 1).is_some());
        assert!(t.d2d_link(1, 0).is_some(), "links are bidirectional");
        assert_eq!(t.d2d_link(1, 2), None, "cross-island is host-mediated");
        assert_eq!(t.d2d_link(0, 3), None);
        // Odd device counts leave the last device with its host link only.
        let t3 = topo(TopologyKind::NvlinkPair, 3);
        assert_eq!(d2d_pairs(&t3), vec![(0, 1)]);
    }

    #[test]
    fn fully_connected_wires_every_pair() {
        let t = topo(TopologyKind::FullyConnected, 4);
        assert_eq!(
            d2d_pairs(&t),
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        );
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(t.d2d_link(a, b).is_some(), a != b);
            }
        }
    }

    #[test]
    fn ring_wires_neighbors_only() {
        let t = topo(TopologyKind::Ring, 4);
        assert_eq!(d2d_pairs(&t), vec![(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert!(t.d2d_link(3, 0).is_some(), "the ring closes");
        assert_eq!(t.d2d_link(0, 2), None, "no chord links");
        // Two-device ring degenerates to one pair link, not two.
        assert_eq!(d2d_pairs(&topo(TopologyKind::Ring, 2)), vec![(0, 1)]);
        // One device: no peers.
        assert!(d2d_pairs(&topo(TopologyKind::Ring, 1)).is_empty());
    }

    #[test]
    fn peer_links_are_faster_than_host_links() {
        let t = topo(TopologyKind::FullyConnected, 2);
        let host = t.link(t.host_link(0));
        let peer = t.link(t.d2d_link(0, 1).unwrap());
        assert!(peer.bandwidth > 2.0 * host.bandwidth);
        assert_eq!(peer.label(), "d0-d1");
        assert_eq!(host.label(), "host-d0");
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in TopologyKind::ALL {
            assert_eq!(TopologyKind::parse(kind.name()), Some(kind));
            assert_eq!(topo(kind, 4).kind(), kind);
        }
        assert_eq!(TopologyKind::parse("nope"), None);
    }
}
