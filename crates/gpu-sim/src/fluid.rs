//! Max–min fair rate allocation by progressive filling.
//!
//! At any instant the engine has a set of *active* tasks, each with a
//! [`ResourceDemand`] describing the share of every device resource it
//! would consume when running at full (solo) speed, i.e. rate `x = 1`.
//! The allocator assigns each task a rate `x_i ∈ (0, 1]` such that for
//! every resource `r`: `Σ_i x_i · d_i[r] ≤ cap[r]`, using the classic
//! progressive-filling algorithm: grow all rates uniformly; when a
//! resource saturates, freeze every task using it at the current level;
//! repeat with the remaining capacity.
//!
//! This is the "fluid" in the fluid-rate simulator: it is what makes
//! space-sharing (two half-machine kernels at full speed) and contention
//! (two bandwidth-bound kernels at half speed) fall out of one mechanism,
//! matching the phenomena measured in the paper's §V-E.

use crate::profile::DeviceProfile;
use crate::task::{capacities, ResourceDemand, NUM_RESOURCES};

/// Compute max–min fair rates for `demands` on device `dev`.
///
/// Returns one rate in `(0, 1]` per task. A task with an all-zero demand
/// vector (e.g. a host task) gets rate 1.
pub fn max_min_rates(demands: &[ResourceDemand], dev: &DeviceProfile) -> Vec<f64> {
    let caps = capacities(dev);
    let dvecs: Vec<[f64; NUM_RESOURCES]> = demands.iter().map(|d| d.as_vec()).collect();
    max_min_rates_raw(&dvecs, &caps)
}

/// Progressive filling over raw demand vectors — separated out for unit
/// and property testing against arbitrary capacity vectors.
pub fn max_min_rates_raw(
    demands: &[[f64; NUM_RESOURCES]],
    caps: &[f64; NUM_RESOURCES],
) -> Vec<f64> {
    progressive_fill(demands, caps)
}

/// Progressive filling over variable-length demand vectors: the global
/// form used when interconnect links join the per-device resources in
/// one solve (a peer link is shared by tasks on *different* devices, so
/// link contention cannot be solved per device). All demand vectors must
/// have the same length as `caps`.
pub fn max_min_rates_vec(demands: &[Vec<f64>], caps: &[f64]) -> Vec<f64> {
    progressive_fill(demands, caps)
}

/// The shared progressive-filling core, generic over the demand-vector
/// storage so the fixed-width per-device path stays allocation-free (it
/// runs on every rate refresh of the engine's hottest loop) while the
/// global link-aware path can use dynamically-sized vectors.
fn progressive_fill<D: AsRef<[f64]>>(demands: &[D], caps: &[f64]) -> Vec<f64> {
    let n = demands.len();
    let nr = caps.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 {
        return rates;
    }
    // Validate shapes up front: a short demand vector would otherwise
    // panic deep inside the solve with an index error that names neither
    // the task nor the expected width (release builds skipped the old
    // debug_assert entirely).
    for (i, d) in demands.iter().enumerate() {
        let got = d.as_ref().len();
        assert_eq!(
            got, nr,
            "demand vector of task {i} has {got} entries but the solve spans {nr} resources"
        );
    }
    let mut frozen = vec![false; n];
    // Residual capacity after subtracting frozen tasks' consumption.
    let mut residual = caps.to_vec();

    loop {
        // Uniform growth level `t` for all unfrozen tasks, bounded by the
        // most congested resource and by the solo ceiling of 1.0.
        let mut t = 1.0f64;
        let mut binding: Option<usize> = None;
        for (r, res) in residual.iter().enumerate().take(nr) {
            let load: f64 = (0..n)
                .filter(|&i| !frozen[i])
                .map(|i| demands[i].as_ref()[r])
                .sum();
            if load <= 0.0 {
                continue;
            }
            let limit = (res / load).max(0.0);
            if limit < t {
                t = limit;
                binding = Some(r);
            }
        }

        match binding {
            None => {
                // No resource binds before the solo ceiling: everyone
                // unfrozen runs at full speed.
                for i in 0..n {
                    if !frozen[i] {
                        rates[i] = 1.0;
                    }
                }
                break;
            }
            Some(r) => {
                // Freeze every unfrozen task that uses the binding
                // resource at level `t`; charge its usage to residual.
                let mut any = false;
                for i in 0..n {
                    if !frozen[i] && demands[i].as_ref()[r] > 0.0 {
                        frozen[i] = true;
                        rates[i] = t;
                        any = true;
                        for (res, d) in residual.iter_mut().zip(demands[i].as_ref().iter()) {
                            *res -= t * d;
                        }
                    }
                }
                // Float-drift guard: the `res -= t * d` subtractions can
                // round a saturated resource's residual slightly below
                // zero; clamp it back so later rounds see "exhausted",
                // never "negative". (A negative residual and a zero one
                // both yield limit 0, so this is behavior-preserving —
                // the clamp exists so the invariant `residual ≥ 0` holds
                // for callers and future arithmetic on it.)
                for res in residual.iter_mut() {
                    if *res < 0.0 {
                        *res = 0.0;
                    }
                }
                // Loop-progress guard: a binding resource must freeze at
                // least one task, or this loop would spin forever. Float
                // noise (NaN/∞ demands) could in principle report
                // `load > 0` with no freezable user; rather than hang
                // the simulator, release the remaining tasks at solo
                // speed and bail out.
                if !any {
                    for i in 0..n {
                        if !frozen[i] {
                            rates[i] = 1.0;
                        }
                    }
                    break;
                }
                if frozen.iter().all(|&f| f) {
                    break;
                }
            }
        }
    }
    // Numerical guard: tasks must always make progress, and never exceed
    // solo speed.
    for x in &mut rates {
        *x = x.clamp(1e-9, 1.0);
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ResourceDemand;

    fn dev() -> DeviceProfile {
        DeviceProfile::gtx1660_super()
    }

    fn sm(frac: f64) -> ResourceDemand {
        ResourceDemand {
            sm_frac: frac,
            ..Default::default()
        }
    }

    fn dram(bps: f64) -> ResourceDemand {
        ResourceDemand {
            dram_bps: bps,
            ..Default::default()
        }
    }

    #[test]
    fn empty_input() {
        assert!(max_min_rates(&[], &dev()).is_empty());
    }

    #[test]
    fn single_task_runs_solo() {
        let r = max_min_rates(&[sm(1.0)], &dev());
        assert_eq!(r, vec![1.0]);
    }

    #[test]
    fn space_sharing_two_small_kernels() {
        // Two kernels that each fill 30% of the SMs co-run at full speed.
        let r = max_min_rates(&[sm(0.3), sm(0.3)], &dev());
        assert_eq!(r, vec![1.0, 1.0]);
    }

    #[test]
    fn contention_two_full_kernels() {
        // Two full-machine kernels each get half the machine.
        let r = max_min_rates(&[sm(1.0), sm(1.0)], &dev());
        assert!((r[0] - 0.5).abs() < 1e-12);
        assert!((r[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_contention_is_proportional_on_one_resource() {
        // 0.8 + 0.8 SM demand: level t = 1 / 1.6 = 0.625 for both.
        let r = max_min_rates(&[sm(0.8), sm(0.8)], &dev());
        assert!((r[0] - 0.625).abs() < 1e-12);
    }

    #[test]
    fn max_min_protects_light_users() {
        // Task 0 saturates DRAM; task 1 barely uses it and mostly needs
        // SMs. Max-min: they first grow together until DRAM binds; both
        // use DRAM so both freeze — but task 1's demand is tiny so the
        // level is nearly 1.
        let d = dev();
        let heavy = dram(d.dram_bw);
        let light = ResourceDemand {
            sm_frac: 0.2,
            dram_bps: d.dram_bw * 0.01,
            ..Default::default()
        };
        let r = max_min_rates(&[heavy, light], &d);
        // level t = cap / (1.01 * cap) ≈ 0.990
        assert!(r[0] > 0.98 && r[0] < 1.0);
        assert!(r[1] > 0.98);
    }

    #[test]
    fn non_users_of_the_binding_resource_keep_growing() {
        let d = dev();
        // Two DRAM-saturating tasks and one pure-compute task: the
        // compute task must still run at full speed.
        let r = max_min_rates(&[dram(d.dram_bw), dram(d.dram_bw), sm(0.4)], &d);
        assert!((r[0] - 0.5).abs() < 1e-12);
        assert!((r[1] - 0.5).abs() < 1e-12);
        assert_eq!(r[2], 1.0);
    }

    #[test]
    fn transfer_and_kernel_do_not_contend() {
        let d = dev();
        let copy = ResourceDemand {
            h2d_bps: d.pcie_bw,
            ..Default::default()
        };
        let kern = ResourceDemand {
            sm_frac: 1.0,
            dram_bps: d.dram_bw * 0.5,
            ..Default::default()
        };
        let r = max_min_rates(&[copy, kern], &d);
        assert_eq!(r, vec![1.0, 1.0]);
    }

    #[test]
    fn fault_controller_serializes_migrations() {
        let d = dev();
        let fault = ResourceDemand {
            fault_frac: 1.0,
            h2d_bps: d.fault_bw,
            ..Default::default()
        };
        let r = max_min_rates(&[fault, fault], &d);
        assert!((r[0] - 0.5).abs() < 1e-12);
        assert!((r[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_demand_tasks_run_free() {
        let r = max_min_rates(&[ResourceDemand::default(), sm(1.0), sm(1.0)], &dev());
        assert_eq!(r[0], 1.0);
        assert!((r[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ten_way_pcie_contention_matches_bs_benchmark_shape() {
        // B&S issues 10 independent H2D transfers; each should get a
        // tenth of the link.
        let d = dev();
        let copy = ResourceDemand {
            h2d_bps: d.pcie_bw,
            ..Default::default()
        };
        let r = max_min_rates(&vec![copy; 10], &d);
        for x in r {
            assert!((x - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn global_solve_shares_a_link_across_devices() {
        // Resource space: [dev0 sm, dev1 sm, link]. Two kernels on
        // different devices run free; two copies on the shared link
        // halve each other; a copy on another link would be unaffected.
        let caps = vec![1.0, 1.0, 1.0];
        let demands = vec![
            vec![1.0, 0.0, 0.0], // kernel on dev0
            vec![0.0, 1.0, 0.0], // kernel on dev1
            vec![0.0, 0.0, 1.0], // p2p copy on the link
            vec![0.0, 0.0, 1.0], // opposite-direction copy, same link
        ];
        let r = max_min_rates_vec(&demands, &caps);
        assert_eq!(r[0], 1.0);
        assert_eq!(r[1], 1.0);
        assert!((r[2] - 0.5).abs() < 1e-12);
        assert!((r[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "demand vector of task 1 has 2 entries")]
    fn mismatched_demand_length_names_the_task() {
        let caps = vec![1.0, 1.0, 1.0];
        let demands = vec![vec![0.5, 0.5, 0.5], vec![0.5, 0.5]];
        max_min_rates_vec(&demands, &caps);
    }

    #[test]
    fn pathological_inputs_terminate() {
        // NaN demands make `load <= 0` false and `limit = NaN.max(0) = 0`
        // bind with no freezable user — the loop-progress guard must bail
        // out instead of spinning. Infinite and negative demands must
        // also terminate with every rate inside the clamped range.
        let caps = [1.0; NUM_RESOURCES];
        let cases: Vec<Vec<[f64; NUM_RESOURCES]>> = vec![
            vec![
                [f64::NAN, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                [1.0; NUM_RESOURCES],
            ],
            vec![
                [f64::INFINITY, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                [0.5; NUM_RESOURCES],
            ],
            vec![
                [-2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            ],
            vec![[f64::NAN; NUM_RESOURCES]; 3],
        ];
        for demands in cases {
            let rates = max_min_rates_raw(&demands, &caps);
            assert_eq!(rates.len(), demands.len());
            for x in rates {
                assert!((1e-9..=1.0).contains(&x), "rate {x} out of range");
            }
        }
    }

    #[test]
    fn global_solve_matches_fixed_width_solver() {
        let d = dev();
        let demands = [sm(1.0), sm(0.3), dram(d.dram_bw)];
        let fixed = max_min_rates(&demands, &d);
        let caps = crate::task::capacities(&d).to_vec();
        let dvecs: Vec<Vec<f64>> = demands.iter().map(|x| x.as_vec().to_vec()).collect();
        assert_eq!(fixed, max_min_rates_vec(&dvecs, &caps));
    }
}

#[cfg(test)]
mod prop {
    use super::*;
    use proptest::prelude::*;

    fn demand_strategy() -> impl Strategy<Value = [f64; NUM_RESOURCES]> {
        proptest::array::uniform7(0.0f64..1.0)
    }

    /// Exact rational `p/q` with `q > 0`, reduced — the reference
    /// arithmetic for the float-drift regression test. Demands are small
    /// integers over a small scale and round counts are bounded by the
    /// task count, so i128 never overflows here.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    struct Ratio {
        num: i128,
        den: i128,
    }

    impl Ratio {
        fn new(num: i128, den: i128) -> Ratio {
            assert!(den != 0);
            let (num, den) = if den < 0 { (-num, -den) } else { (num, den) };
            let g = gcd(num.abs(), den);
            Ratio {
                num: num / g.max(1),
                den: den / g.max(1),
            }
        }
        fn int(v: i128) -> Ratio {
            Ratio { num: v, den: 1 }
        }
        fn sub(self, o: Ratio) -> Ratio {
            Ratio::new(self.num * o.den - o.num * self.den, self.den * o.den)
        }
        fn mul(self, o: Ratio) -> Ratio {
            Ratio::new(self.num * o.num, self.den * o.den)
        }
        fn div(self, o: Ratio) -> Ratio {
            Ratio::new(self.num * o.den, self.den * o.num)
        }
        fn lt(self, o: Ratio) -> bool {
            self.num * o.den < o.num * self.den
        }
        fn to_f64(self) -> f64 {
            self.num as f64 / self.den as f64
        }
    }

    fn gcd(a: i128, b: i128) -> i128 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }

    /// Progressive filling in exact rational arithmetic: demands are
    /// `demands[i][r] / scale`, every capacity is 1. Mirrors
    /// `progressive_fill` step for step, with no rounding anywhere.
    fn exact_progressive_fill(demands: &[[i128; NUM_RESOURCES]], scale: i128) -> Vec<Ratio> {
        let n = demands.len();
        let mut rates = vec![Ratio::int(0); n];
        let mut frozen = vec![false; n];
        let mut residual = vec![Ratio::int(1); NUM_RESOURCES];
        loop {
            let mut t = Ratio::int(1);
            let mut binding: Option<usize> = None;
            for (r, res) in residual.iter().enumerate() {
                let load: i128 = (0..n).filter(|&i| !frozen[i]).map(|i| demands[i][r]).sum();
                if load <= 0 {
                    continue;
                }
                let limit = res.div(Ratio::new(load, scale));
                if limit.lt(t) {
                    t = limit;
                    binding = Some(r);
                }
            }
            match binding {
                None => {
                    for i in 0..n {
                        if !frozen[i] {
                            rates[i] = Ratio::int(1);
                        }
                    }
                    break;
                }
                Some(r) => {
                    for i in 0..n {
                        if !frozen[i] && demands[i][r] > 0 {
                            frozen[i] = true;
                            rates[i] = t;
                            for (res, d) in residual.iter_mut().zip(demands[i].iter()) {
                                *res = res.sub(t.mul(Ratio::new(*d, scale)));
                            }
                        }
                    }
                    if frozen.iter().all(|&f| f) {
                        break;
                    }
                }
            }
        }
        rates
    }

    proptest! {
        /// Allocated rates never violate any capacity constraint and are
        /// always within (0, 1].
        #[test]
        fn rates_are_feasible(demands in proptest::collection::vec(demand_strategy(), 0..12)) {
            // Capacities fixed at 1.0 per resource; demands in [0,1) so a
            // single task is always feasible solo.
            let caps = [1.0; NUM_RESOURCES];
            let rates = max_min_rates_raw(&demands, &caps);
            prop_assert_eq!(rates.len(), demands.len());
            for r in 0..NUM_RESOURCES {
                let used: f64 = demands.iter().zip(&rates).map(|(d, x)| d[r] * x).sum();
                prop_assert!(used <= 1.0 + 1e-6, "resource {} over capacity: {}", r, used);
            }
            for (x, d) in rates.iter().zip(&demands) {
                prop_assert!(*x > 0.0 && *x <= 1.0);
                // A task contending on nothing must run at full speed.
                if d.iter().all(|&v| v == 0.0) {
                    prop_assert_eq!(*x, 1.0);
                }
            }
        }

        /// Float-drift regression (the residual-clamp bugfix): every
        /// returned rate is at least the fair share computed by the same
        /// algorithm in exact rational arithmetic, minus epsilon. Before
        /// the clamp, drift below zero could freeze late tasks at the
        /// 1e-9 floor even though their exact fair share was large.
        #[test]
        fn rates_match_exact_rational_fair_share(
            raw_demands in proptest::collection::vec(
                proptest::array::uniform7(0u8..9), 1..6),
        ) {
            const SCALE: i128 = 8;
            let int_demands: Vec<[i128; NUM_RESOURCES]> = raw_demands
                .iter()
                .map(|d| d.map(i128::from))
                .collect();
            let caps = [1.0; NUM_RESOURCES];
            let demands: Vec<[f64; NUM_RESOURCES]> = int_demands
                .iter()
                .map(|d| {
                    let mut out = [0.0; NUM_RESOURCES];
                    for (o, v) in out.iter_mut().zip(d.iter()) {
                        *o = *v as f64 / SCALE as f64;
                    }
                    out
                })
                .collect();
            let float_rates = max_min_rates_raw(&demands, &caps);
            let exact_rates = exact_progressive_fill(&int_demands, SCALE);
            for (i, (fx, ex)) in float_rates.iter().zip(&exact_rates).enumerate() {
                let exact = ex.to_f64().clamp(1e-9, 1.0);
                prop_assert!(
                    *fx >= exact - 1e-9,
                    "task {} collapsed: float rate {} below exact fair share {}",
                    i, fx, exact
                );
                prop_assert!(
                    *fx <= exact + 1e-9,
                    "task {} inflated: float rate {} above exact fair share {}",
                    i, fx, exact
                );
            }
        }

        /// Adding a task never increases anyone's rate (monotonicity of
        /// progressive filling).
        #[test]
        fn adding_load_never_speeds_others_up(
            base in proptest::collection::vec(demand_strategy(), 1..8),
            extra in demand_strategy(),
        ) {
            let caps = [1.0; NUM_RESOURCES];
            let before = max_min_rates_raw(&base, &caps);
            let mut bigger = base.clone();
            bigger.push(extra);
            let after = max_min_rates_raw(&bigger, &caps);
            for i in 0..base.len() {
                prop_assert!(after[i] <= before[i] + 1e-9);
            }
        }
    }
}
