//! Property tests of the discrete-event engine: conservation laws and
//! determinism that must hold for any workload.

use proptest::prelude::*;

use crate::engine::{Engine, TaskId};
use crate::profile::DeviceProfile;
use crate::task::TaskSpec;

/// A randomly-shaped workload: per task, (fluid work µs, SM fraction %,
/// dependency back-offsets).
#[derive(Debug, Clone)]
struct RandomTask {
    work_us: u32,
    sm_pct: u32,
    dep_offsets: Vec<usize>,
}

fn tasks_strategy() -> impl Strategy<Value = Vec<RandomTask>> {
    proptest::collection::vec(
        (
            1u32..500,
            1u32..100,
            proptest::collection::vec(1usize..4, 0..3),
        ),
        1..24,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(work_us, sm_pct, dep_offsets)| RandomTask {
                work_us,
                sm_pct,
                dep_offsets,
            })
            .collect()
    })
}

/// Submit the workload and return (makespan, per-task (start, end)
/// indexed by submission order).
fn run(tasks: &[RandomTask], dev: DeviceProfile) -> (f64, Vec<(f64, f64)>) {
    let mut e = Engine::new(dev);
    let mut ids: Vec<TaskId> = Vec::new();
    for (i, t) in tasks.iter().enumerate() {
        let deps: Vec<TaskId> = t
            .dep_offsets
            .iter()
            .filter_map(|&off| i.checked_sub(off).map(|j| ids[j]))
            .collect();
        let spec = TaskSpec::kernel(format!("k{i}"), i as u32)
            .fluid(t.work_us as f64 * 1e-6)
            .sm_frac(t.sm_pct as f64 / 100.0);
        ids.push(e.submit(spec, &deps));
    }
    e.sync_all();
    let mut spans = vec![(0.0, 0.0); tasks.len()];
    for iv in e.timeline().intervals() {
        spans[iv.task as usize] = (iv.start, iv.end);
    }
    (e.now(), spans)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Makespan is bounded below by the longest task and above by the
    /// serial sum (work conservation: sharing never creates or destroys
    /// work).
    #[test]
    fn makespan_is_bounded(tasks in tasks_strategy()) {
        let (makespan, spans) = run(&tasks, DeviceProfile::gtx1660_super());
        let longest = tasks.iter().map(|t| t.work_us as f64 * 1e-6).fold(0.0, f64::max);
        let total: f64 = tasks.iter().map(|t| t.work_us as f64 * 1e-6).sum();
        prop_assert!(makespan >= longest - 1e-12, "{makespan} < longest {longest}");
        prop_assert!(makespan <= total + 1e-9, "{makespan} > serial sum {total}");
        prop_assert_eq!(spans.len(), tasks.len());
    }

    /// Every task runs at least as long as its solo duration (contention
    /// only slows things down), and intervals are well-formed.
    #[test]
    fn contention_never_speeds_a_task_up(tasks in tasks_strategy()) {
        let (_, spans) = run(&tasks, DeviceProfile::tesla_p100());
        for (i, ((s, e), t)) in spans.iter().zip(&tasks).enumerate() {
            let dur = e - s;
            let solo = t.work_us as f64 * 1e-6;
            prop_assert!(dur >= solo - 1e-12, "task {i} beat its solo time: {dur} < {solo}");
            prop_assert!(e >= s);
        }
    }

    /// The engine is deterministic: same workload, same timeline.
    #[test]
    fn engine_is_deterministic(tasks in tasks_strategy()) {
        let a = run(&tasks, DeviceProfile::gtx960());
        let b = run(&tasks, DeviceProfile::gtx960());
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }

    /// Dependencies are respected: a task never starts before each of
    /// its dependencies ends.
    #[test]
    fn dependencies_order_execution(tasks in tasks_strategy()) {
        let mut e = Engine::new(DeviceProfile::gtx1660_super());
        let mut ids = Vec::new();
        for (i, t) in tasks.iter().enumerate() {
            let deps: Vec<TaskId> = t
                .dep_offsets
                .iter()
                .filter_map(|&off| i.checked_sub(off).map(|j| ids[j]))
                .collect();
            let spec = TaskSpec::kernel(format!("k{i}"), i as u32)
                .fluid(t.work_us as f64 * 1e-6)
                .sm_frac(t.sm_pct as f64 / 100.0);
            ids.push(e.submit(spec, &deps));
        }
        e.sync_all();
        let mut span_of = vec![(0.0f64, 0.0f64); tasks.len()];
        for iv in e.timeline().intervals() {
            span_of[iv.task as usize] = (iv.start, iv.end);
        }
        for (i, t) in tasks.iter().enumerate() {
            for &off in &t.dep_offsets {
                if let Some(j) = i.checked_sub(off) {
                    prop_assert!(
                        span_of[i].0 >= span_of[j].1 - 1e-12,
                        "task {i} started at {} before dep {j} ended at {}",
                        span_of[i].0,
                        span_of[j].1
                    );
                }
            }
        }
    }
}
