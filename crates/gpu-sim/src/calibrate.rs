//! Online calibration: decaying means of *observed* task behavior that
//! feed back into the estimates the layers above plan with.
//!
//! The engine's cost model predicts solo durations analytically; the
//! scheduler's transfer-time estimates assume uncontended links. Both
//! are good priors and both drift under load — concurrent transfers
//! share link bandwidth, co-running kernels slow each other down. This
//! module closes the measurement→decision loop: every completed task is
//! an observation, folded into
//!
//! * a **per-kernel-signature duration prior** (decaying mean of the
//!   measured wall duration per task label), consumed by
//!   history-driven placement policies, and
//! * a **per-link contention scale** (decaying mean of
//!   `observed / solo` duration per link), consumed by the
//!   transfer-time estimators above the engine.
//!
//! Calibration is **off by default** and observation is skipped
//! entirely while disabled, so a default-configured engine behaves —
//! and benchmarks measure — bit-identically to one built before this
//! module existed. [`Calibration::link_scale`] returns exactly `1.0`
//! whenever it has nothing to say (disabled, or no samples for the
//! link), and multiplying an estimate by `1.0` is bit-exact.

use std::collections::HashMap;

use crate::Time;

/// Weight of the newest observation in the decaying mean. High enough
/// to adapt within a handful of samples, low enough that one outlier
/// (e.g. a cold-start transfer) does not dominate the prior.
pub const DEFAULT_DECAY: f64 = 0.25;

/// Contention scales are clamped to this range: a link estimate may be
/// inflated or deflated by calibration, but never to the point where a
/// single pathological window inverts every placement margin.
pub const LINK_SCALE_CLAMP: (f64, f64) = (0.25, 4.0);

/// One decaying-mean accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Ewma {
    mean: f64,
    samples: u64,
}

impl Ewma {
    fn observe(&mut self, x: f64, decay: f64) {
        if self.samples == 0 {
            self.mean = x;
        } else {
            self.mean = (1.0 - decay) * self.mean + decay * x;
        }
        self.samples += 1;
    }
}

/// Aggregate sample counters, exposed for reporting and smoke gates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CalibrationStats {
    /// Kernel completions observed into duration priors.
    pub kernel_samples: u64,
    /// Transfer completions observed into link contention scales.
    pub transfer_samples: u64,
    /// Distinct kernel signatures (labels) with at least one sample.
    pub kernel_signatures: usize,
}

/// The online calibration state owned by an [`crate::Engine`]. See the
/// [module docs](self).
#[derive(Debug, Default)]
pub struct Calibration {
    enabled: bool,
    kernels: HashMap<String, Ewma>,
    /// Indexed like the engine topology's links.
    links: Vec<Ewma>,
    stats: CalibrationStats,
}

impl Calibration {
    /// A disabled calibration with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn observation (and estimate scaling) on or off. Accumulated
    /// observations survive a disable/enable cycle; they simply stop
    /// being collected and consulted while off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// True when observations are being collected and consulted.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Fold a completed kernel's measured duration into the decaying
    /// prior for its signature. No-op while disabled.
    pub fn observe_kernel(&mut self, label: &str, duration: Time) {
        if !self.enabled || !duration.is_finite() || duration < 0.0 {
            return;
        }
        match self.kernels.get_mut(label) {
            Some(e) => e.observe(duration, DEFAULT_DECAY),
            None => {
                let mut e = Ewma::default();
                e.observe(duration, DEFAULT_DECAY);
                self.kernels.insert(label.to_string(), e);
                self.stats.kernel_signatures += 1;
            }
        }
        self.stats.kernel_samples += 1;
    }

    /// Fold a completed transfer's `observed / solo` duration ratio into
    /// the decaying contention scale for its link. No-op while disabled.
    pub fn observe_transfer(&mut self, link: usize, observed: Time, solo: Time) {
        if !self.enabled || !solo.is_finite() || solo <= 0.0 || !observed.is_finite() {
            return;
        }
        if self.links.len() <= link {
            self.links.resize(link + 1, Ewma::default());
        }
        self.links[link].observe(observed / solo, DEFAULT_DECAY);
        self.stats.transfer_samples += 1;
    }

    /// Decaying mean duration observed for a kernel signature, or `None`
    /// while disabled or with no samples — the *task-duration prior*
    /// history-driven placement weighs in-flight work by.
    pub fn kernel_prior(&self, label: &str) -> Option<Time> {
        if !self.enabled {
            return None;
        }
        self.kernels
            .get(label)
            .filter(|e| e.samples > 0)
            .map(|e| e.mean)
    }

    /// Multiplier for a link's estimated transfer legs: the clamped
    /// decaying mean of observed contention on that link. Exactly `1.0`
    /// while disabled or with no samples, so scaling an estimate by it
    /// is bit-exact in the default configuration.
    pub fn link_scale(&self, link: usize) -> f64 {
        if !self.enabled {
            return 1.0;
        }
        match self.links.get(link) {
            Some(e) if e.samples > 0 => e.mean.clamp(LINK_SCALE_CLAMP.0, LINK_SCALE_CLAMP.1),
            _ => 1.0,
        }
    }

    /// Aggregate sample counters.
    pub fn stats(&self) -> CalibrationStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_calibration_observes_nothing_and_scales_by_one() {
        let mut c = Calibration::new();
        c.observe_kernel("k", 1e-3);
        c.observe_transfer(0, 2e-3, 1e-3);
        assert_eq!(c.stats(), CalibrationStats::default());
        assert_eq!(c.kernel_prior("k"), None);
        assert_eq!(c.link_scale(0), 1.0);
        assert_eq!(c.link_scale(99), 1.0);
    }

    #[test]
    fn kernel_prior_is_a_decaying_mean() {
        let mut c = Calibration::new();
        c.set_enabled(true);
        c.observe_kernel("k", 1e-3);
        assert_eq!(c.kernel_prior("k"), Some(1e-3), "first sample seeds");
        c.observe_kernel("k", 2e-3);
        let p = c.kernel_prior("k").unwrap();
        assert!(p > 1e-3 && p < 2e-3, "mean moves toward the new sample");
        let expect = (1.0 - DEFAULT_DECAY) * 1e-3 + DEFAULT_DECAY * 2e-3;
        assert!((p - expect).abs() < 1e-15);
        assert_eq!(c.kernel_prior("other"), None);
        assert_eq!(c.stats().kernel_samples, 2);
        assert_eq!(c.stats().kernel_signatures, 1);
    }

    #[test]
    fn link_scale_tracks_contention_and_clamps() {
        let mut c = Calibration::new();
        c.set_enabled(true);
        c.observe_transfer(1, 3e-3, 1e-3); // 3x slower than solo
        assert!((c.link_scale(1) - 3.0).abs() < 1e-12);
        assert_eq!(c.link_scale(0), 1.0, "unobserved link is neutral");
        for _ in 0..64 {
            c.observe_transfer(1, 1.0, 1e-9); // pathological ratio
        }
        assert_eq!(c.link_scale(1), LINK_SCALE_CLAMP.1, "clamped");
        assert_eq!(c.stats().transfer_samples, 65);
    }

    #[test]
    fn re_enabling_keeps_accumulated_observations() {
        let mut c = Calibration::new();
        c.set_enabled(true);
        c.observe_kernel("k", 5e-4);
        c.set_enabled(false);
        assert_eq!(c.kernel_prior("k"), None, "silent while off");
        c.observe_kernel("k", 9e9); // dropped
        c.set_enabled(true);
        assert_eq!(c.kernel_prior("k"), Some(5e-4));
        assert_eq!(c.stats().kernel_samples, 1);
    }

    #[test]
    fn garbage_observations_are_rejected() {
        let mut c = Calibration::new();
        c.set_enabled(true);
        c.observe_kernel("k", f64::NAN);
        c.observe_kernel("k", -1.0);
        c.observe_transfer(0, 1e-3, 0.0);
        c.observe_transfer(0, 1e-3, -2.0);
        assert_eq!(c.stats().kernel_samples, 0);
        assert_eq!(c.stats().transfer_samples, 0);
    }
}
