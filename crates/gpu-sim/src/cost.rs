//! Analytic kernel cost model.
//!
//! A kernel's cost is described by *what it does* (flops, bytes moved,
//! instructions) independently of the device; [`KernelCost::solo_profile`]
//! turns that into a device-specific solo execution time plus a
//! [`ResourceDemand`] vector used by the fluid contention solver.
//!
//! The model is a roofline with an occupancy derating:
//!
//! * occupancy = resident threads of this launch / device thread capacity
//!   (also limited by resident-block slots);
//! * compute throughput scales linearly with occupancy up to a knee
//!   (`compute_occ_knee`), DRAM bandwidth up to a lower knee
//!   (`mem_occ_knee`) — memory latency is easier to hide;
//! * solo time = max over the compute, fp64, DRAM, L2, instruction-issue
//!   and latency-floor components.
//!
//! The occupancy derating is what makes the paper's block-size
//! observation come out (§V-C): with `block_size = 32` and a fixed block
//! count, a single kernel badly under-fills the machine, so *serial*
//! execution is slow — but several such kernels space-share perfectly,
//! so *parallel* execution hardly loses anything and the measured speedup
//! is larger.

use crate::profile::DeviceProfile;
use crate::task::ResourceDemand;
use serde::{Deserialize, Serialize};

/// A CUDA-style launch configuration: grid dimensions × block dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid {
    /// Number of blocks in each grid dimension.
    pub blocks: (u32, u32, u32),
    /// Number of threads in each block dimension (32..=1024 total).
    pub threads: (u32, u32, u32),
}

impl Grid {
    /// 1-dimensional launch: `blocks` blocks of `threads` threads.
    pub fn d1(blocks: u32, threads: u32) -> Self {
        Grid {
            blocks: (blocks, 1, 1),
            threads: (threads, 1, 1),
        }
    }

    /// 2-dimensional launch (used by the image and DL benchmarks).
    pub fn d2(bx: u32, by: u32, tx: u32, ty: u32) -> Self {
        Grid {
            blocks: (bx, by, 1),
            threads: (tx, ty, 1),
        }
    }

    /// 3-dimensional launch (used by the DL convolutions).
    pub fn d3(b: (u32, u32, u32), t: (u32, u32, u32)) -> Self {
        Grid {
            blocks: b,
            threads: t,
        }
    }

    /// Total number of blocks in the grid.
    pub fn total_blocks(&self) -> u64 {
        self.blocks.0 as u64 * self.blocks.1 as u64 * self.blocks.2 as u64
    }

    /// Total number of threads per block.
    pub fn threads_per_block(&self) -> u64 {
        self.threads.0 as u64 * self.threads.1 as u64 * self.threads.2 as u64
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.total_blocks() * self.threads_per_block()
    }
}

/// Device-independent description of the work one kernel launch performs.
///
/// Produced by per-kernel cost functions in the `kernels` crate from the
/// actual argument sizes, so cost always tracks the data the functional
/// implementation touches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Single-precision floating-point operations.
    pub flops32: f64,
    /// Double-precision floating-point operations.
    pub flops64: f64,
    /// Bytes exchanged with device memory (DRAM), after L2 filtering.
    pub dram_bytes: f64,
    /// Bytes exchanged with the L2 cache.
    pub l2_bytes: f64,
    /// Total executed instructions (for the IPC hardware metric).
    pub instructions: f64,
    /// A latency floor in seconds for kernels with long dependent chains
    /// (e.g. tree reductions): even with infinite resources the kernel
    /// cannot finish faster than this.
    pub min_time: f64,
    /// Latency-boundedness factor (≥ 1): how much slower than the
    /// roofline the kernel's *compute* phases run. Unoptimized kernels
    /// — tall-matrix GEMMs, direct convolutions, halo-heavy stencils —
    /// achieve a few percent of peak (the paper's ML benchmark measures
    /// an IPC of 0.04). The factor dilates time without inflating the
    /// reported counters or the resource demand: a latency-bound kernel
    /// is slow but does not saturate shared units, so it still
    /// space-shares well — which is exactly why the paper's scheduler
    /// helps these workloads. Zero is treated as 1.
    pub inefficiency: f64,
}

impl KernelCost {
    /// Element-wise sum of two costs (useful when fusing conceptual
    /// phases of a kernel into one launch).
    pub fn add(&self, o: &KernelCost) -> KernelCost {
        KernelCost {
            flops32: self.flops32 + o.flops32,
            flops64: self.flops64 + o.flops64,
            dram_bytes: self.dram_bytes + o.dram_bytes,
            l2_bytes: self.l2_bytes + o.l2_bytes,
            instructions: self.instructions + o.instructions,
            min_time: self.min_time.max(o.min_time),
            inefficiency: self.ineff().max(o.ineff()),
        }
    }

    /// Builder-style: set the latency-boundedness factor.
    pub fn with_inefficiency(mut self, k: f64) -> KernelCost {
        self.inefficiency = k;
        self
    }

    /// The inefficiency factor with the zero-default normalized to 1.
    pub fn ineff(&self) -> f64 {
        if self.inefficiency < 1.0 {
            1.0
        } else {
            self.inefficiency
        }
    }

    /// Scale every extensive quantity by `k` (latency floor unchanged).
    pub fn scale(&self, k: f64) -> KernelCost {
        KernelCost {
            flops32: self.flops32 * k,
            flops64: self.flops64 * k,
            dram_bytes: self.dram_bytes * k,
            l2_bytes: self.l2_bytes * k,
            instructions: self.instructions * k,
            min_time: self.min_time,
            inefficiency: self.inefficiency,
        }
    }

    /// Occupancy of a launch on a device: the fraction of resident-thread
    /// capacity this launch can fill, also limited by resident-block
    /// slots. Always in `(0, 1]`.
    pub fn occupancy(grid: Grid, dev: &DeviceProfile) -> f64 {
        let resident_blocks = (grid.total_blocks() as f64).min(dev.block_capacity());
        let resident_threads =
            (resident_blocks * grid.threads_per_block() as f64).min(dev.thread_capacity());
        (resident_threads / dev.thread_capacity()).clamp(1e-4, 1.0)
    }

    /// Compute the solo execution time (seconds) and the full-rate
    /// resource demand of this launch on `dev`.
    ///
    /// The demand vector is normalized so that running solo at rate 1.0
    /// consumes exactly the modeled share of each resource; the fluid
    /// solver then scales rates down under contention.
    pub fn solo_profile(&self, grid: Grid, dev: &DeviceProfile) -> (f64, ResourceDemand) {
        let occ = Self::occupancy(grid, dev);
        // Linear-to-knee derating.
        let ceff = (occ / dev.compute_occ_knee).min(1.0);
        let meff = (occ / dev.mem_occ_knee).min(1.0);

        let ineff = self.ineff();
        let t32 = self.flops32 * ineff / (dev.fp32_flops * ceff);
        let t64 = self.flops64 * ineff / (dev.fp64_flops * ceff);
        let tmem = self.dram_bytes / (dev.dram_bw * meff);
        let tl2 = self.l2_bytes / (dev.l2_bw * meff);
        let tinstr = self.instructions * ineff / (dev.instr_rate * ceff);
        let solo = (t32 + t64)
            .max(tmem)
            .max(tl2)
            .max(tinstr)
            .max(self.min_time)
            .max(1e-7); // nothing completes faster than 100 ns

        let demand = ResourceDemand {
            sm_frac: occ,
            dram_bps: self.dram_bytes / solo,
            l2_bps: self.l2_bytes / solo,
            fp64_flops: self.flops64 / solo,
            h2d_bps: 0.0,
            d2h_bps: 0.0,
            fault_frac: 0.0,
            link_bps: 0.0,
        };
        (solo, demand)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceProfile {
        DeviceProfile::gtx1660_super()
    }

    #[test]
    fn grid_products() {
        let g = Grid::d2(8, 8, 16, 16);
        assert_eq!(g.total_blocks(), 64);
        assert_eq!(g.threads_per_block(), 256);
        assert_eq!(g.total_threads(), 64 * 256);
    }

    #[test]
    fn occupancy_clamps_to_one_for_huge_grids() {
        let g = Grid::d1(1_000_000, 256);
        assert_eq!(KernelCost::occupancy(g, &dev()), 1.0);
    }

    #[test]
    fn small_blocks_underfill_the_machine() {
        // 64 blocks of 32 threads on a 22-SM Turing part: 2048 threads of
        // a 22528-thread capacity — under 10% occupancy.
        let g = Grid::d1(64, 32);
        let occ = KernelCost::occupancy(g, &dev());
        assert!(occ < 0.10, "occ = {occ}");
    }

    #[test]
    fn block_slot_limit_binds_for_tiny_blocks() {
        // 10_000 blocks of 32 threads: thread count alone would say
        // 320_000 threads (full), but only 22 * 16 = 352 blocks can be
        // resident, i.e. 11264 threads of 22528 capacity.
        let g = Grid::d1(10_000, 32);
        let occ = KernelCost::occupancy(g, &dev());
        assert!((occ - 0.5).abs() < 1e-9, "occ = {occ}");
    }

    #[test]
    fn memory_bound_kernel_time_tracks_dram_bandwidth() {
        let n = 100_000_000.0; // bytes
        let c = KernelCost {
            dram_bytes: n,
            ..Default::default()
        };
        let (solo, d) = c.solo_profile(Grid::d1(4096, 256), &dev());
        let expected = n / dev().dram_bw;
        assert!((solo - expected).abs() / expected < 1e-9);
        assert!((d.dram_bps - dev().dram_bw).abs() / dev().dram_bw < 1e-9);
    }

    #[test]
    fn low_occupancy_slows_a_solo_kernel() {
        let c = KernelCost {
            flops32: 1e9,
            dram_bytes: 1e6,
            ..Default::default()
        };
        let (fast, _) = c.solo_profile(Grid::d1(4096, 256), &dev());
        let (slow, _) = c.solo_profile(Grid::d1(64, 32), &dev());
        assert!(slow > 3.0 * fast, "slow={slow} fast={fast}");
    }

    #[test]
    fn fp64_dominates_on_consumer_parts_but_not_p100() {
        let c = KernelCost {
            flops64: 1e9,
            ..Default::default()
        };
        let g = Grid::d1(4096, 256);
        let (t1660, _) = c.solo_profile(g, &DeviceProfile::gtx1660_super());
        let (tp100, _) = c.solo_profile(g, &DeviceProfile::tesla_p100());
        assert!(t1660 / tp100 > 20.0);
    }

    #[test]
    fn min_time_floor_applies() {
        let c = KernelCost {
            flops32: 1.0,
            min_time: 5e-4,
            ..Default::default()
        };
        let (solo, _) = c.solo_profile(Grid::d1(64, 256), &dev());
        assert_eq!(solo, 5e-4);
    }

    #[test]
    fn demand_never_exceeds_capacity() {
        let c = KernelCost {
            flops32: 1e10,
            flops64: 1e8,
            dram_bytes: 1e9,
            l2_bytes: 2e9,
            instructions: 1e10,
            min_time: 0.0,
            inefficiency: 0.0,
        };
        for d in DeviceProfile::paper_devices() {
            for &(b, t) in &[(64u32, 32u32), (4096, 256), (128, 1024)] {
                let (_, dem) = c.solo_profile(Grid::d1(b, t), &d);
                assert!(dem.sm_frac <= 1.0 + 1e-9);
                assert!(dem.dram_bps <= d.dram_bw * (1.0 + 1e-9));
                assert!(dem.l2_bps <= d.l2_bw * (1.0 + 1e-9));
                assert!(dem.fp64_flops <= d.fp64_flops * (1.0 + 1e-9));
            }
        }
    }
}
