//! Host-visible data storage shared between the simulator, the CUDA-shaped
//! API layer, and the functional kernel implementations.
//!
//! The simulation is single-threaded and deterministic, so buffers are
//! `Rc<RefCell<...>>` handles. Kernel payload closures capture clones of
//! these handles and mutate them when their task completes in virtual
//! time; tests then read the same handles to validate results.

use std::cell::{Ref, RefCell, RefMut};
use std::rc::Rc;

/// Identity of a logical value (an allocation) for dependency tracking and
/// race detection. Assigned by the memory manager in `cuda-sim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u64);

/// The element type + payload of a buffer. GrCUDA's NIDL types map onto
/// these variants (`float` → F32, `double` → F64, `sint32` → I32,
/// `char`/`uint8` → U8).
#[derive(Debug, Clone, PartialEq)]
pub enum TypedData {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 32-bit signed integers.
    I32(Vec<i32>),
    /// Raw bytes / 8-bit image channels.
    U8(Vec<u8>),
}

impl TypedData {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            TypedData::F32(v) => v.len(),
            TypedData::F64(v) => v.len(),
            TypedData::I32(v) => v.len(),
            TypedData::U8(v) => v.len(),
        }
    }

    /// True if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of one element in bytes.
    pub fn elem_size(&self) -> usize {
        match self {
            TypedData::F32(_) | TypedData::I32(_) => 4,
            TypedData::F64(_) => 8,
            TypedData::U8(_) => 1,
        }
    }

    /// Total size in bytes.
    pub fn byte_len(&self) -> usize {
        self.len() * self.elem_size()
    }

    /// Short type name matching the NIDL spelling.
    pub fn type_name(&self) -> &'static str {
        match self {
            TypedData::F32(_) => "float",
            TypedData::F64(_) => "double",
            TypedData::I32(_) => "sint32",
            TypedData::U8(_) => "char",
        }
    }
}

/// A shared, mutable, type-tagged buffer. Cheap to clone (reference
/// counted); all clones observe the same contents.
#[derive(Debug, Clone)]
pub struct DataBuffer {
    inner: Rc<RefCell<TypedData>>,
}

macro_rules! typed_accessors {
    ($as_ref:ident, $as_mut:ident, $variant:ident, $ty:ty) => {
        /// Borrow the payload as a typed slice; panics if the buffer holds
        /// a different element type (a kernel signature mismatch).
        pub fn $as_ref(&self) -> Ref<'_, Vec<$ty>> {
            Ref::map(self.inner.borrow(), |d| match d {
                TypedData::$variant(v) => v,
                other => panic!(
                    concat!("expected ", stringify!($variant), " buffer, found {}"),
                    other.type_name()
                ),
            })
        }

        /// Mutably borrow the payload as a typed vector; panics on a type
        /// mismatch.
        pub fn $as_mut(&self) -> RefMut<'_, Vec<$ty>> {
            RefMut::map(self.inner.borrow_mut(), |d| match d {
                TypedData::$variant(v) => v,
                other => panic!(
                    concat!("expected ", stringify!($variant), " buffer, found {}"),
                    other.type_name()
                ),
            })
        }
    };
}

impl DataBuffer {
    /// Wrap typed data in a shared buffer.
    pub fn new(data: TypedData) -> Self {
        DataBuffer {
            inner: Rc::new(RefCell::new(data)),
        }
    }

    /// A zero-initialized f32 buffer of `n` elements.
    pub fn f32_zeros(n: usize) -> Self {
        Self::new(TypedData::F32(vec![0.0; n]))
    }

    /// A zero-initialized f64 buffer of `n` elements.
    pub fn f64_zeros(n: usize) -> Self {
        Self::new(TypedData::F64(vec![0.0; n]))
    }

    /// A zero-initialized i32 buffer of `n` elements.
    pub fn i32_zeros(n: usize) -> Self {
        Self::new(TypedData::I32(vec![0; n]))
    }

    /// A zero-initialized u8 buffer of `n` elements.
    pub fn u8_zeros(n: usize) -> Self {
        Self::new(TypedData::U8(vec![0; n]))
    }

    typed_accessors!(as_f32, as_f32_mut, F32, f32);
    typed_accessors!(as_f64, as_f64_mut, F64, f64);
    typed_accessors!(as_i32, as_i32_mut, I32, i32);
    typed_accessors!(as_u8, as_u8_mut, U8, u8);

    /// Borrow the raw typed payload.
    pub fn data(&self) -> Ref<'_, TypedData> {
        self.inner.borrow()
    }

    /// Mutably borrow the raw typed payload.
    pub fn data_mut(&self) -> RefMut<'_, TypedData> {
        self.inner.borrow_mut()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes.
    pub fn byte_len(&self) -> usize {
        self.inner.borrow().byte_len()
    }

    /// NIDL type name of the element type.
    pub fn type_name(&self) -> &'static str {
        self.inner.borrow().type_name()
    }

    /// Whether two handles alias the same storage.
    pub fn same_buffer(&self, other: &DataBuffer) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = DataBuffer::f32_zeros(4);
        let b = a.clone();
        a.as_f32_mut()[2] = 7.5;
        assert_eq!(b.as_f32()[2], 7.5);
        assert!(a.same_buffer(&b));
    }

    #[test]
    fn distinct_buffers_do_not_alias() {
        let a = DataBuffer::f32_zeros(4);
        let b = DataBuffer::f32_zeros(4);
        assert!(!a.same_buffer(&b));
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(DataBuffer::f32_zeros(10).byte_len(), 40);
        assert_eq!(DataBuffer::f64_zeros(10).byte_len(), 80);
        assert_eq!(DataBuffer::i32_zeros(10).byte_len(), 40);
        assert_eq!(DataBuffer::u8_zeros(10).byte_len(), 10);
    }

    #[test]
    #[should_panic(expected = "expected F32 buffer")]
    fn type_mismatch_panics() {
        let a = DataBuffer::f64_zeros(1);
        let _ = a.as_f32();
    }

    #[test]
    fn type_names_follow_nidl() {
        assert_eq!(DataBuffer::f32_zeros(1).type_name(), "float");
        assert_eq!(DataBuffer::f64_zeros(1).type_name(), "double");
        assert_eq!(DataBuffer::i32_zeros(1).type_name(), "sint32");
        assert_eq!(DataBuffer::u8_zeros(1).type_name(), "char");
    }
}
