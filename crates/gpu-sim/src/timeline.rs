//! Execution-timeline recording.
//!
//! Every completed task leaves an [`Interval`] behind. The `metrics`
//! crate post-processes these intervals into the overlap fractions
//! (CT/TC/CC/TOT) of the paper's Fig. 10–11 and into the per-benchmark
//! hardware-utilization numbers of Fig. 12; the `bench` crate renders them
//! as the ASCII execution timeline of Fig. 10.

use crate::task::{TaskKind, TaskMeta};
use crate::Time;

/// One completed task on the simulated timeline.
#[derive(Debug, Clone)]
pub struct Interval {
    /// Engine-assigned task id.
    pub task: u32,
    /// Operation class.
    pub kind: TaskKind,
    /// Presentation stream the operation ran on.
    pub stream: u32,
    /// Device the operation ran on (0 for single-device engines).
    pub device: u32,
    /// Interconnect link a transfer moved over (index into the engine's
    /// [`crate::topology::Topology::links`]): the peer link for P2P
    /// copies, the device's host link for bulk copies and fault
    /// migrations, `None` for non-transfers.
    pub link: Option<u32>,
    /// Display label.
    pub label: String,
    /// When the task became ready and started its fixed-latency phase.
    pub start: Time,
    /// When the task completed.
    pub end: Time,
    /// Raw hardware counters.
    pub meta: TaskMeta,
}

impl Interval {
    /// Interval duration in seconds.
    pub fn duration(&self) -> Time {
        self.end - self.start
    }
}

/// An append-only record of completed tasks, ordered by completion time.
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    intervals: Vec<Interval>,
}

impl Timeline {
    /// Create an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed task.
    pub(crate) fn push(&mut self, iv: Interval) {
        self.intervals.push(iv);
    }

    /// Append a synthetic interval — for building timelines by hand in
    /// tests and analysis tools (the engine uses the internal path).
    pub fn push_for_test(&mut self, iv: Interval) {
        self.intervals.push(iv);
    }

    /// All recorded intervals, in completion order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Intervals of a given kind.
    pub fn of_kind(&self, kind: TaskKind) -> impl Iterator<Item = &Interval> {
        self.intervals.iter().filter(move |iv| iv.kind == kind)
    }

    /// Kernel intervals.
    pub fn kernels(&self) -> impl Iterator<Item = &Interval> {
        self.intervals
            .iter()
            .filter(|iv| iv.kind == TaskKind::Kernel)
    }

    /// Transfer intervals (bulk copies and fault migrations, both
    /// directions).
    pub fn transfers(&self) -> impl Iterator<Item = &Interval> {
        self.intervals.iter().filter(|iv| iv.kind.is_transfer())
    }

    /// Earliest start over all GPU-side intervals (kernels + transfers),
    /// i.e. the paper's "first kernel scheduling" instant.
    pub fn gpu_start(&self) -> Option<Time> {
        self.intervals
            .iter()
            .filter(|iv| iv.kind == TaskKind::Kernel || iv.kind.is_transfer())
            .map(|iv| iv.start)
            .fold(None, |m, t| Some(m.map_or(t, |m: f64| m.min(t))))
    }

    /// Latest end over all GPU-side intervals.
    pub fn gpu_end(&self) -> Option<Time> {
        self.intervals
            .iter()
            .filter(|iv| iv.kind == TaskKind::Kernel || iv.kind.is_transfer())
            .map(|iv| iv.end)
            .fold(None, |m, t| Some(m.map_or(t, |m: f64| m.max(t))))
    }

    /// GPU execution time as the paper defines it (§V-A): from the first
    /// kernel/transfer start to the last completion. Zero when no GPU
    /// work was recorded.
    pub fn gpu_span(&self) -> Time {
        match (self.gpu_start(), self.gpu_end()) {
            (Some(s), Some(e)) => e - s,
            _ => 0.0,
        }
    }

    /// Number of distinct presentation streams that carried GPU work.
    /// Host-driven operations (stream `u32::MAX`, e.g. CPU-access page
    /// migrations) are not counted.
    pub fn streams_used(&self) -> usize {
        let mut ids: Vec<u32> = self
            .intervals
            .iter()
            .filter(|iv| {
                (iv.kind == TaskKind::Kernel || iv.kind.is_transfer()) && iv.stream != u32::MAX
            })
            .map(|iv| iv.stream)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Intervals that ran on a given device.
    pub fn of_device(&self, device: u32) -> impl Iterator<Item = &Interval> {
        self.intervals.iter().filter(move |iv| iv.device == device)
    }

    /// Transfer intervals that moved over a given interconnect link.
    pub fn of_link(&self, link: u32) -> impl Iterator<Item = &Interval> {
        self.intervals
            .iter()
            .filter(move |iv| iv.link == Some(link))
    }

    /// Devices that carried GPU work (kernels or transfers), ascending.
    pub fn devices_used(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .intervals
            .iter()
            .filter(|iv| iv.kind == TaskKind::Kernel || iv.kind.is_transfer())
            .map(|iv| iv.device)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// GPU execution span restricted to one device: from that device's
    /// first kernel/transfer start to its last completion. Zero when the
    /// device carried no GPU work.
    pub fn device_span(&self, device: u32) -> Time {
        let mut bounds: Option<(Time, Time)> = None;
        for iv in &self.intervals {
            if iv.device != device || !(iv.kind == TaskKind::Kernel || iv.kind.is_transfer()) {
                continue;
            }
            bounds = Some(match bounds {
                None => (iv.start, iv.end),
                Some((s, e)) => (s.min(iv.start), e.max(iv.end)),
            });
        }
        bounds.map_or(0.0, |(s, e)| e - s)
    }

    /// Sum of kernel interval durations on one device (a per-device
    /// busy-time gauge; overlapping kernels are counted per interval).
    pub fn device_kernel_time(&self, device: u32) -> Time {
        self.of_device(device)
            .filter(|iv| iv.kind == TaskKind::Kernel)
            .map(|iv| iv.duration())
            .sum()
    }

    /// Drop all recorded intervals (used between benchmark iterations).
    pub fn clear(&mut self) {
        self.intervals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(kind: TaskKind, stream: u32, start: Time, end: Time) -> Interval {
        Interval {
            task: 0,
            kind,
            stream,
            device: 0,
            link: None,
            label: String::new(),
            start,
            end,
            meta: TaskMeta::default(),
        }
    }

    #[test]
    fn span_covers_kernels_and_transfers_only() {
        let mut t = Timeline::new();
        t.push(iv(TaskKind::Host, 9, 0.0, 10.0)); // host work ignored
        t.push(iv(TaskKind::CopyH2D, 0, 1.0, 2.0));
        t.push(iv(TaskKind::Kernel, 0, 2.0, 5.0));
        assert_eq!(t.gpu_start(), Some(1.0));
        assert_eq!(t.gpu_end(), Some(5.0));
        assert_eq!(t.gpu_span(), 4.0);
    }

    #[test]
    fn empty_timeline_has_zero_span() {
        let t = Timeline::new();
        assert_eq!(t.gpu_span(), 0.0);
        assert_eq!(t.gpu_start(), None);
    }

    #[test]
    fn stream_count_dedupes() {
        let mut t = Timeline::new();
        t.push(iv(TaskKind::Kernel, 0, 0.0, 1.0));
        t.push(iv(TaskKind::Kernel, 1, 0.0, 1.0));
        t.push(iv(TaskKind::Kernel, 0, 1.0, 2.0));
        assert_eq!(t.streams_used(), 2);
    }

    #[test]
    fn kind_filters() {
        let mut t = Timeline::new();
        t.push(iv(TaskKind::Kernel, 0, 0.0, 1.0));
        t.push(iv(TaskKind::FaultH2D, 0, 0.0, 1.0));
        t.push(iv(TaskKind::CopyD2H, 0, 0.0, 1.0));
        assert_eq!(t.kernels().count(), 1);
        assert_eq!(t.transfers().count(), 2);
    }
}
