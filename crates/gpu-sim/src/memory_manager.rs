//! Finite device memory: the capacity-aware memory manager.
//!
//! The simulator's unified-memory model originally treated device memory
//! as infinite — residency tracked *where* data was, never *whether it
//! fit*. Real GPUs oversubscribe: when the working set exceeds device
//! memory, the unified-memory driver evicts pages back to the host and
//! re-fetches them on the next touch, and those migrations contend on
//! the same PCIe/NVLink links everything else uses.
//!
//! This module is the bookkeeping half of that story, shared by every
//! layer above:
//!
//! * [`MemoryConfig`] — per-device capacity (default **unlimited**, for
//!   exact backward compatibility) and the [`EvictionPolicy`] used when
//!   an allocation or migration would exceed it. Carried by
//!   [`crate::Topology`] (see [`crate::Topology::with_memory`]) so the
//!   machine description owns both its links *and* its memories.
//! * [`MemoryManager`] — tracks the resident set of every device
//!   (bytes, last use, peaks), answers headroom queries, and selects
//!   eviction victims under the configured policy. It never moves data
//!   itself: the `cuda-sim` context turns the selected [`Victim`]s into
//!   real `TaskSpec` copy tasks that contend on the interconnect in the
//!   max–min rate solve.
//! * [`Prefetcher`] — admission control and hit accounting for
//!   ahead-of-launch argument prefetches: copies are scheduled early
//!   only when the target device has headroom, and a *hit* is recorded
//!   when a later kernel finds its argument already resident because a
//!   prefetch brought it in.
//! * [`MemoryStats`] — evictions, spilled bytes, per-device resident and
//!   peak-resident bytes, prefetch hit rate: the `memory` section of the
//!   scheduler's gauges.

use std::collections::HashMap;

use crate::data::ValueId;
use crate::Time;

/// Victim-selection strategy when a device is out of capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used resident allocation first.
    #[default]
    Lru,
    /// Evict the largest resident allocation first (frees the most
    /// bytes per spill task).
    LargestFirst,
    /// Evict the allocation whose *round-trip cost* is cheapest: the
    /// time to spill it (zero when a valid host copy already exists —
    /// the device copy is simply dropped) plus the time to re-fetch it
    /// over the actual link if it is touched again. Clean, small arrays
    /// go first; dirty data that would pay two full link legs stays.
    CostAware,
}

impl EvictionPolicy {
    /// All built-in policies, in sweep order.
    pub const ALL: [EvictionPolicy; 3] = [
        EvictionPolicy::Lru,
        EvictionPolicy::LargestFirst,
        EvictionPolicy::CostAware,
    ];

    /// Short display name for tables and sweeps.
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::LargestFirst => "largest-first",
            EvictionPolicy::CostAware => "cost-aware",
        }
    }

    /// Parse a sweep/CLI name produced by [`EvictionPolicy::name`].
    pub fn parse(s: &str) -> Option<EvictionPolicy> {
        EvictionPolicy::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// Device-memory configuration of a simulated machine.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemoryConfig {
    /// Device-memory capacity in bytes, identical for every device.
    /// `None` (the default) models infinite memory — the pre-existing
    /// behavior, bit-identical for every workload that fits.
    pub capacity: Option<usize>,
    /// Victim selection when an allocation or migration would exceed
    /// the capacity.
    pub eviction: EvictionPolicy,
}

impl MemoryConfig {
    /// The backward-compatible default: unlimited capacity.
    pub fn unlimited() -> Self {
        MemoryConfig::default()
    }

    /// Finite capacity of `bytes` per device, LRU eviction.
    pub fn with_capacity(bytes: usize) -> Self {
        MemoryConfig {
            capacity: Some(bytes),
            eviction: EvictionPolicy::default(),
        }
    }

    /// Builder-style eviction-policy override.
    pub fn with_eviction(mut self, policy: EvictionPolicy) -> Self {
        self.eviction = policy;
        self
    }

    /// True when a capacity limit is configured.
    pub fn is_limited(&self) -> bool {
        self.capacity.is_some()
    }
}

/// An eviction victim chosen by [`MemoryManager::select_victims`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The allocation to evict.
    pub value: ValueId,
    /// Its resident size in bytes (what evicting frees).
    pub bytes: usize,
}

/// Aggregate memory gauges — the `memory` section of the scheduler's
/// stats.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Configured per-device capacity (`None` = unlimited).
    pub capacity: Option<usize>,
    /// Bytes currently resident on each device.
    pub resident_bytes: Vec<usize>,
    /// Peak bytes ever resident on each device.
    pub peak_resident: Vec<usize>,
    /// Device copies evicted to make room (clean drops included).
    pub evictions: usize,
    /// Bytes moved device→host by eviction spill copies (clean drops
    /// move nothing and count zero here).
    pub spilled_bytes: usize,
    /// Ahead-of-launch prefetch copies actually issued.
    pub prefetch_issued: usize,
    /// Kernel arguments found resident thanks to an earlier prefetch.
    pub prefetch_hits: usize,
    /// Prefetches skipped because the target device had no headroom.
    pub prefetch_skipped: usize,
}

impl MemoryStats {
    /// Hits over issued prefetches (0 when none were issued).
    pub fn prefetch_hit_rate(&self) -> f64 {
        if self.prefetch_issued == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.prefetch_issued as f64
        }
    }

    /// Bytes resident across all devices.
    pub fn total_resident(&self) -> usize {
        self.resident_bytes.iter().sum()
    }
}

/// Ahead-of-launch prefetch admission and hit accounting (see the
/// [module docs](self)).
#[derive(Debug, Default)]
pub struct Prefetcher {
    issued: usize,
    hits: usize,
    skipped: usize,
}

impl Prefetcher {
    /// Decide whether a prefetch of `bytes` may be issued given the
    /// target device's free bytes. Prefetches are opportunistic: they
    /// use headroom but never trigger evictions (the launch-time
    /// migration will, if it must). Updates the issued/skipped
    /// counters.
    pub fn admit(&mut self, free_bytes: usize, bytes: usize) -> bool {
        if bytes <= free_bytes {
            self.issued += 1;
            true
        } else {
            self.skipped += 1;
            false
        }
    }

    /// Record that a kernel found its argument resident because a
    /// prefetch brought it in.
    pub fn note_hit(&mut self) {
        self.hits += 1;
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    bytes: usize,
    last_use: u64,
}

/// Per-device resident-set accounting and victim selection (see the
/// [module docs](self)).
pub struct MemoryManager {
    cfg: MemoryConfig,
    resident: Vec<HashMap<ValueId, Entry>>,
    resident_bytes: Vec<usize>,
    peak_resident: Vec<usize>,
    evictions: usize,
    spilled_bytes: usize,
    /// Monotonic use clock driving LRU ordering.
    clock: u64,
    /// Per-device `(time, resident bytes)` step samples, recorded only
    /// under a finite capacity (the timeline the metrics crate renders).
    /// Cleared alongside the engine timeline.
    samples: Vec<Vec<(Time, usize)>>,
    /// Ahead-of-launch prefetch admission and hit accounting.
    pub prefetcher: Prefetcher,
}

impl MemoryManager {
    /// A manager for `n` devices under the given configuration.
    pub fn new(n_devices: usize, cfg: MemoryConfig) -> Self {
        MemoryManager {
            cfg,
            resident: vec![HashMap::new(); n_devices],
            resident_bytes: vec![0; n_devices],
            peak_resident: vec![0; n_devices],
            evictions: 0,
            spilled_bytes: 0,
            clock: 0,
            samples: vec![Vec::new(); n_devices],
            prefetcher: Prefetcher::default(),
        }
    }

    /// The configuration this manager enforces.
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }

    /// Capacity of a device (`None` = unlimited).
    pub fn capacity(&self, _device: u32) -> Option<usize> {
        self.cfg.capacity
    }

    /// True when a capacity limit is configured.
    pub fn is_limited(&self) -> bool {
        self.cfg.is_limited()
    }

    /// Bytes currently resident on a device.
    pub fn resident_bytes(&self, device: u32) -> usize {
        self.resident_bytes[device as usize]
    }

    /// Free bytes on a device (`usize::MAX` when unlimited).
    pub fn free_bytes(&self, device: u32) -> usize {
        match self.cfg.capacity {
            None => usize::MAX,
            Some(cap) => cap.saturating_sub(self.resident_bytes[device as usize]),
        }
    }

    /// True if the allocation currently has a device copy here.
    pub fn contains(&self, device: u32, v: ValueId) -> bool {
        self.resident[device as usize].contains_key(&v)
    }

    /// Bump the LRU clock for a resident allocation (a kernel touched
    /// it).
    pub fn touch(&mut self, device: u32, v: ValueId) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.resident[device as usize].get_mut(&v) {
            e.last_use = clock;
        }
    }

    /// Record a new (or refreshed) device copy of `bytes` at time `now`.
    pub fn insert(&mut self, device: u32, v: ValueId, bytes: usize, now: Time) {
        self.clock += 1;
        let d = device as usize;
        let prev = self.resident[d].insert(
            v,
            Entry {
                bytes,
                last_use: self.clock,
            },
        );
        self.resident_bytes[d] += bytes - prev.map_or(0, |e| e.bytes);
        self.peak_resident[d] = self.peak_resident[d].max(self.resident_bytes[d]);
        if let Some(cap) = self.cfg.capacity {
            debug_assert!(
                self.resident_bytes[d] <= cap,
                "device {device} resident {} B exceeds capacity {cap} B",
                self.resident_bytes[d]
            );
        }
        self.sample(d, now);
    }

    /// Drop the record of a device copy (eviction, migration away, host
    /// write invalidation). Returns the bytes freed, if it was resident.
    pub fn remove(&mut self, device: u32, v: ValueId, now: Time) -> Option<usize> {
        let d = device as usize;
        let bytes = self.resident[d].remove(&v).map(|e| e.bytes);
        if let Some(b) = bytes {
            self.resident_bytes[d] -= b;
            self.sample(d, now);
        }
        bytes
    }

    /// Bytes that must be freed before `bytes` of new data fit on the
    /// device (0 when unlimited or already fitting).
    pub fn shortfall(&self, device: u32, bytes: usize) -> usize {
        match self.cfg.capacity {
            None => 0,
            Some(cap) => (self.resident_bytes[device as usize] + bytes).saturating_sub(cap),
        }
    }

    /// Choose victims freeing at least `need` bytes under the configured
    /// eviction policy. `pinned` allocations (the launching kernel's own
    /// arguments) are never chosen. `refetch_cost(value, bytes)` prices
    /// a candidate for [`EvictionPolicy::CostAware`]: spill time (zero
    /// for clean copies) plus re-fetch time over the actual link.
    ///
    /// The selection is deterministic: candidates are fully ordered by
    /// the policy key with the `ValueId` as the final tie-break. If the
    /// evictable set cannot cover `need`, every evictable victim is
    /// returned and the caller decides how to fail.
    pub fn select_victims(
        &self,
        device: u32,
        need: usize,
        pinned: &[ValueId],
        refetch_cost: impl Fn(ValueId, usize) -> f64,
    ) -> Vec<Victim> {
        let mut candidates: Vec<(ValueId, Entry)> = self.resident[device as usize]
            .iter()
            .filter(|(v, _)| !pinned.contains(v))
            .map(|(v, e)| (*v, *e))
            .collect();
        match self.cfg.eviction {
            EvictionPolicy::Lru => {
                candidates.sort_by_key(|(v, e)| (e.last_use, *v));
            }
            EvictionPolicy::LargestFirst => {
                candidates.sort_by_key(|(v, e)| (std::cmp::Reverse(e.bytes), *v));
            }
            EvictionPolicy::CostAware => {
                candidates.sort_by(|(va, ea), (vb, eb)| {
                    refetch_cost(*va, ea.bytes)
                        .total_cmp(&refetch_cost(*vb, eb.bytes))
                        .then(va.cmp(vb))
                });
            }
        }
        let mut victims = Vec::new();
        let mut freed = 0usize;
        for (v, e) in candidates {
            if freed >= need {
                break;
            }
            victims.push(Victim {
                value: v,
                bytes: e.bytes,
            });
            freed += e.bytes;
        }
        victims
    }

    /// Account one eviction; `spilled` is the bytes a real device→host
    /// spill copy moved (0 for clean drops of still-valid host copies).
    pub fn record_eviction(&mut self, spilled: usize) {
        self.evictions += 1;
        self.spilled_bytes += spilled;
    }

    /// Snapshot of every gauge.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            capacity: self.cfg.capacity,
            resident_bytes: self.resident_bytes.clone(),
            peak_resident: self.peak_resident.clone(),
            evictions: self.evictions,
            spilled_bytes: self.spilled_bytes,
            prefetch_issued: self.prefetcher.issued,
            prefetch_hits: self.prefetcher.hits,
            prefetch_skipped: self.prefetcher.skipped,
        }
    }

    /// Per-device `(time, resident bytes)` step samples (recorded only
    /// under a finite capacity; the metrics crate turns them into
    /// resident-bytes timelines).
    pub fn timeline(&self) -> &[Vec<(Time, usize)>] {
        &self.samples
    }

    /// Drop the recorded samples (called with the engine's
    /// `clear_timeline`, so long services stay bounded). Counters and
    /// the resident sets are untouched.
    pub fn clear_timeline(&mut self) {
        for s in &mut self.samples {
            s.clear();
        }
    }

    fn sample(&mut self, d: usize, now: Time) {
        if !self.cfg.is_limited() {
            return; // unlimited runs keep the zero-overhead fast path
        }
        let bytes = self.resident_bytes[d];
        match self.samples[d].last_mut() {
            Some((t, b)) if *t == now => *b = bytes,
            _ => self.samples[d].push((now, bytes)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: [ValueId; 5] = [ValueId(0), ValueId(1), ValueId(2), ValueId(3), ValueId(4)];

    fn limited(cap: usize, policy: EvictionPolicy) -> MemoryManager {
        MemoryManager::new(2, MemoryConfig::with_capacity(cap).with_eviction(policy))
    }

    #[test]
    fn unlimited_never_needs_victims() {
        let mut m = MemoryManager::new(1, MemoryConfig::unlimited());
        assert!(!m.is_limited());
        assert_eq!(m.free_bytes(0), usize::MAX);
        m.insert(0, V[0], 1 << 40, 0.0);
        assert_eq!(m.shortfall(0, 1 << 40), 0);
        assert_eq!(m.resident_bytes(0), 1 << 40);
        // No samples in the unlimited fast path.
        assert!(m.timeline()[0].is_empty());
    }

    #[test]
    fn insert_remove_track_per_device_bytes_and_peaks() {
        let mut m = limited(1000, EvictionPolicy::Lru);
        m.insert(0, V[0], 400, 0.0);
        m.insert(0, V[1], 500, 1.0);
        m.insert(1, V[2], 100, 1.0);
        assert_eq!(m.resident_bytes(0), 900);
        assert_eq!(m.free_bytes(0), 100);
        assert_eq!(m.resident_bytes(1), 100);
        assert_eq!(m.remove(0, V[0], 2.0), Some(400));
        assert_eq!(m.remove(0, V[0], 2.0), None, "double remove is inert");
        assert_eq!(m.resident_bytes(0), 500);
        let st = m.stats();
        assert_eq!(st.peak_resident, vec![900, 100]);
        assert_eq!(st.total_resident(), 600);
        // Step samples recorded per change, coalesced per instant.
        assert_eq!(m.timeline()[0].len(), 3);
        m.clear_timeline();
        assert!(m.timeline()[0].is_empty());
        assert_eq!(m.resident_bytes(0), 500, "clearing keeps the gauges");
    }

    #[test]
    fn shortfall_measures_the_gap() {
        let mut m = limited(1000, EvictionPolicy::Lru);
        m.insert(0, V[0], 700, 0.0);
        assert_eq!(m.shortfall(0, 200), 0);
        assert_eq!(m.shortfall(0, 400), 100);
        assert_eq!(m.shortfall(1, 1500), 500, "devices are independent");
    }

    #[test]
    fn lru_evicts_least_recently_touched_first() {
        let mut m = limited(1000, EvictionPolicy::Lru);
        m.insert(0, V[0], 300, 0.0);
        m.insert(0, V[1], 300, 0.0);
        m.insert(0, V[2], 300, 0.0);
        m.touch(0, V[0]); // V1 is now the oldest
        let vs = m.select_victims(0, 300, &[], |_, _| 0.0);
        assert_eq!(
            vs,
            vec![Victim {
                value: V[1],
                bytes: 300
            }]
        );
        // Needing more takes the next-oldest too.
        let vs = m.select_victims(0, 400, &[], |_, _| 0.0);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[1].value, V[2]);
    }

    #[test]
    fn largest_first_frees_the_most_per_victim() {
        let mut m = limited(2000, EvictionPolicy::LargestFirst);
        m.insert(0, V[0], 100, 0.0);
        m.insert(0, V[1], 900, 0.0);
        m.insert(0, V[2], 500, 0.0);
        let vs = m.select_victims(0, 600, &[], |_, _| 0.0);
        assert_eq!(
            vs,
            vec![Victim {
                value: V[1],
                bytes: 900
            }]
        );
    }

    #[test]
    fn cost_aware_prefers_the_cheapest_round_trip() {
        let mut m = limited(2000, EvictionPolicy::CostAware);
        m.insert(0, V[0], 500, 0.0);
        m.insert(0, V[1], 500, 0.0);
        // V0 is "dirty" (expensive), V1 "clean" (cheap).
        let cost = |v: ValueId, _b: usize| if v == V[0] { 2.0 } else { 1.0 };
        let vs = m.select_victims(0, 100, &[], cost);
        assert_eq!(vs[0].value, V[1]);
    }

    #[test]
    fn pinned_values_are_never_victims() {
        let mut m = limited(1000, EvictionPolicy::Lru);
        m.insert(0, V[0], 500, 0.0);
        m.insert(0, V[1], 500, 0.0);
        let vs = m.select_victims(0, 400, &[V[0]], |_, _| 0.0);
        assert_eq!(
            vs,
            vec![Victim {
                value: V[1],
                bytes: 500
            }]
        );
        // If everything evictable cannot cover the need, the caller
        // gets what exists and decides how to fail.
        let vs = m.select_victims(0, 900, &[V[0]], |_, _| 0.0);
        assert_eq!(vs.len(), 1);
    }

    #[test]
    fn prefetcher_admits_on_headroom_and_counts() {
        let mut p = Prefetcher::default();
        assert!(p.admit(1000, 400));
        assert!(!p.admit(100, 400));
        p.note_hit();
        let mut m = MemoryManager::new(1, MemoryConfig::unlimited());
        m.prefetcher = p;
        let st = m.stats();
        assert_eq!(
            (st.prefetch_issued, st.prefetch_skipped, st.prefetch_hits),
            (1, 1, 1)
        );
        assert!((st.prefetch_hit_rate() - 1.0).abs() < 1e-12);
        let empty = MemoryStats::default();
        assert_eq!(empty.prefetch_hit_rate(), 0.0);
    }

    #[test]
    fn eviction_accounting_separates_spilled_from_dropped() {
        let mut m = limited(100, EvictionPolicy::Lru);
        m.record_eviction(64); // dirty spill
        m.record_eviction(0); // clean drop
        let st = m.stats();
        assert_eq!(st.evictions, 2);
        assert_eq!(st.spilled_bytes, 64);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in EvictionPolicy::ALL {
            assert_eq!(EvictionPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(EvictionPolicy::parse("nope"), None);
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Lru);
    }

    #[test]
    fn config_builders() {
        let c = MemoryConfig::with_capacity(1 << 20).with_eviction(EvictionPolicy::CostAware);
        assert!(c.is_limited());
        assert_eq!(c.capacity, Some(1 << 20));
        assert_eq!(c.eviction, EvictionPolicy::CostAware);
        assert!(!MemoryConfig::unlimited().is_limited());
    }
}
