//! CUDA Graphs: ahead-of-time DAGs of GPU operations.
//!
//! The paper's Fig. 8 compares the GrCUDA scheduler against two ways of
//! using this API, both reproduced here:
//!
//! * **manual dependencies** — the program builds a [`CudaGraph`] node by
//!   node, passing explicit dependency lists ([`CudaGraph::add_kernel`]);
//! * **stream capture** — the program runs its hand-optimized
//!   multi-stream/event code between [`Cuda::begin_capture`] and
//!   [`Cuda::end_capture`]; the issued operations are recorded into a
//!   graph instead of executing.
//!
//! Both variants amortize instantiation over repeated launches (the
//! paper: "These CUDA Graphs are built only once per execution, and
//! overheads are completely amortized over many iterations"). Neither
//! can express unified-memory prefetches — `cudaMemPrefetchAsync` was
//! not capturable in the CUDA versions the paper used — so kernels in a
//! replayed graph pay the page-fault migration cost on Pascal+ devices.
//! That limitation, faithfully kept here, is the main reason the paper's
//! scheduler wins on the GTX 1660 Super and P100.

use std::cell::Cell;
use std::collections::HashMap;

use gpu_sim::{TaskId, TaskSpec};

use crate::context::{Cuda, StreamId};
use crate::exec::KernelExec;

/// Host-side cost of instantiating one graph node (paid on the first
/// launch only; `cudaGraphInstantiate` analogue).
pub const INSTANTIATE_OVERHEAD_PER_NODE: f64 = 10e-6;

/// Handle to a node inside a [`CudaGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphNodeId(pub u32);

#[derive(Clone)]
pub(crate) enum GraphOp {
    Kernel(KernelExec),
    /// A join/marker node (created by captured events).
    Empty,
}

pub(crate) struct GraphNode {
    pub(crate) op: GraphOp,
    pub(crate) deps: Vec<GraphNodeId>,
    /// Stream the node was captured on (capture graphs only).
    pub(crate) stream_hint: Option<u32>,
}

/// An executable DAG of GPU operations.
pub struct CudaGraph {
    pub(crate) nodes: Vec<GraphNode>,
    instantiated: Cell<bool>,
}

impl Default for CudaGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl CudaGraph {
    /// An empty graph for the manual-dependency API.
    pub fn new() -> Self {
        CudaGraph {
            nodes: Vec::new(),
            instantiated: Cell::new(false),
        }
    }

    /// Add a kernel node whose execution waits for `deps`
    /// (`cudaGraphAddKernelNode` analogue). Dependencies must refer to
    /// already-added nodes, which keeps the graph acyclic by
    /// construction.
    pub fn add_kernel(&mut self, exec: KernelExec, deps: &[GraphNodeId]) -> GraphNodeId {
        for d in deps {
            assert!(
                (d.0 as usize) < self.nodes.len(),
                "graph dependency on a node that does not exist yet"
            );
        }
        self.nodes.push(GraphNode {
            op: GraphOp::Kernel(exec),
            deps: deps.to_vec(),
            stream_hint: None,
        });
        GraphNodeId(self.nodes.len() as u32 - 1)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Launch the graph (`cudaGraphLaunch` analogue). The first launch
    /// pays the instantiation overhead; later launches only pay a single
    /// API call. Returns a marker task that completes when every node
    /// has executed (sync on it with [`Cuda::task_sync`]).
    pub fn launch(&self, cuda: &Cuda) -> TaskId {
        let mut inner = cuda.inner.borrow_mut();
        if !self.instantiated.replace(true) {
            let dt = INSTANTIATE_OVERHEAD_PER_NODE * self.nodes.len() as f64;
            inner.engine.advance_host(dt);
        }
        let api = inner.dev.host_api_overhead;
        inner.engine.advance_host(api);

        // Stream assignment. Capture graphs replay on their recorded
        // streams; manual graphs get the greedy first-child-keeps-the-
        // parent's-stream assignment CUDA's runtime performs internally.
        let n = self.nodes.len();
        let mut stream_of: Vec<StreamId> = Vec::with_capacity(n);
        let mut claimed = vec![false; n];
        for (i, node) in self.nodes.iter().enumerate() {
            let s = match node.stream_hint {
                Some(h) => {
                    let sid = StreamId(h);
                    inner.ensure_stream(sid);
                    sid
                }
                None => {
                    let mut chosen: Option<StreamId> = None;
                    for d in &node.deps {
                        if !claimed[d.0 as usize] {
                            claimed[d.0 as usize] = true;
                            chosen = Some(stream_of[d.0 as usize]);
                            break;
                        }
                    }
                    chosen.unwrap_or_else(|| inner.fresh_stream())
                }
            };
            stream_of.push(s);
            let _ = i;
        }

        // Submit nodes in construction order (a topological order by
        // construction).
        let mut task_of: Vec<TaskId> = Vec::with_capacity(n);
        let mut has_child = vec![false; n];
        for (i, node) in self.nodes.iter().enumerate() {
            for d in &node.deps {
                has_child[d.0 as usize] = true;
            }
            let dep_tasks: Vec<TaskId> = node.deps.iter().map(|d| task_of[d.0 as usize]).collect();
            let t = match &node.op {
                GraphOp::Kernel(exec) => inner.submit_kernel(stream_of[i], exec, &dep_tasks),
                GraphOp::Empty => {
                    let spec = TaskSpec::marker("graph-join", stream_of[i].0);
                    inner.engine.submit(spec, &dep_tasks)
                }
            };
            task_of.push(t);
        }

        // Final join over sink nodes.
        let sinks: Vec<TaskId> = (0..n)
            .filter(|&i| !has_child[i])
            .map(|i| task_of[i])
            .collect();
        let spec = TaskSpec::marker("graph-done", u32::MAX);
        inner.engine.submit(spec, &sinks)
    }
}

/// Stream-capture state: records issued operations as graph nodes.
pub(crate) struct CaptureState {
    nodes: Vec<GraphNode>,
    /// Per captured stream, the current frontier of nodes that the next
    /// operation on that stream must depend on.
    tails: HashMap<u32, Vec<u32>>,
}

impl CaptureState {
    fn new() -> Self {
        CaptureState {
            nodes: Vec::new(),
            tails: HashMap::new(),
        }
    }

    pub(crate) fn record_kernel(&mut self, stream: StreamId, exec: &KernelExec) {
        let deps: Vec<GraphNodeId> = self
            .tails
            .get(&stream.0)
            .map(|v| v.iter().map(|&i| GraphNodeId(i)).collect())
            .unwrap_or_default();
        self.nodes.push(GraphNode {
            op: GraphOp::Kernel(exec.clone()),
            deps,
            stream_hint: Some(stream.0),
        });
        let id = self.nodes.len() as u32 - 1;
        self.tails.insert(stream.0, vec![id]);
    }

    /// The node a newly recorded event on `stream` refers to; creates a
    /// join node if the stream has several pending heads.
    pub(crate) fn tail_of(&mut self, stream: StreamId) -> u32 {
        let tails = self.tails.entry(stream.0).or_default().clone();
        if tails.len() == 1 {
            return tails[0];
        }
        // Zero or many heads: materialize an empty node joining them.
        self.nodes.push(GraphNode {
            op: GraphOp::Empty,
            deps: tails.iter().map(|&i| GraphNodeId(i)).collect(),
            stream_hint: Some(stream.0),
        });
        let id = self.nodes.len() as u32 - 1;
        self.tails.insert(stream.0, vec![id]);
        id
    }

    /// `cudaStreamWaitEvent` during capture: the event's node joins the
    /// stream's dependency frontier.
    pub(crate) fn add_wait(&mut self, stream: StreamId, node: u32) {
        let tails = self.tails.entry(stream.0).or_default();
        if !tails.contains(&node) {
            tails.push(node);
        }
    }
}

impl Cuda {
    /// Begin stream capture: subsequent launches and events are recorded
    /// instead of executed, until [`Cuda::end_capture`].
    ///
    /// # Panics
    /// Panics if a capture is already in progress.
    pub fn begin_capture(&self) {
        let mut inner = self.inner.borrow_mut();
        assert!(inner.capture.is_none(), "capture already in progress");
        inner.capture = Some(CaptureState::new());
    }

    /// Finish stream capture and return the recorded graph.
    ///
    /// # Panics
    /// Panics if no capture is in progress.
    pub fn end_capture(&self) -> CudaGraph {
        let mut inner = self.inner.borrow_mut();
        let cap = inner.capture.take().expect("no capture in progress");
        CudaGraph {
            nodes: cap.nodes,
            instantiated: Cell::new(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceProfile, Grid, KernelCost, TaskKind};
    use std::rc::Rc;

    fn ctx() -> Cuda {
        Cuda::new(DeviceProfile::gtx1660_super())
    }

    fn kern(name: &str, arr: &crate::memory::UnifiedArray, ms: f64, write: bool) -> KernelExec {
        KernelExec::new(
            name,
            Grid::d1(64, 128),
            KernelCost {
                min_time: ms * 1e-3,
                ..Default::default()
            },
            vec![arr.buf.clone()],
            vec![(arr.id, !write)],
            Rc::new(|_| {}),
        )
    }

    #[test]
    fn manual_graph_runs_nodes_respecting_deps() {
        let c = ctx();
        let a = c.alloc_f32(16);
        let b = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        c.prefetch_async(c.default_stream(), &b);
        c.device_sync();
        let mut g = CudaGraph::new();
        let n1 = g.add_kernel(kern("k1", &a, 1.0, true), &[]);
        let n2 = g.add_kernel(kern("k2", &b, 1.0, true), &[]);
        let _n3 = g.add_kernel(kern("k3", &a, 1.0, true), &[n1, n2]);
        let done = g.launch(&c);
        c.task_sync(done);
        let tl = c.timeline();
        let k1 = tl.kernels().find(|iv| iv.label == "k1").unwrap();
        let k2 = tl.kernels().find(|iv| iv.label == "k2").unwrap();
        let k3 = tl.kernels().find(|iv| iv.label == "k3").unwrap();
        assert!(k3.start >= k1.end - 1e-12 && k3.start >= k2.end - 1e-12);
        // k1 and k2 are independent: they overlap.
        assert!(k1.start < k2.end && k2.start < k1.end);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn manual_graph_rejects_forward_deps() {
        let c = ctx();
        let a = c.alloc_f32(4);
        let mut g = CudaGraph::new();
        let _ = g.add_kernel(kern("k", &a, 1.0, true), &[GraphNodeId(5)]);
    }

    #[test]
    fn capture_records_instead_of_executing() {
        let c = ctx();
        let a = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        c.device_sync();
        c.clear_timeline();
        c.begin_capture();
        let s1 = c.stream_create();
        assert!(c.launch(s1, &kern("k1", &a, 1.0, true)).is_none());
        let g = c.end_capture();
        assert_eq!(g.len(), 1);
        assert_eq!(
            c.timeline().kernels().count(),
            0,
            "nothing executed during capture"
        );
        let done = g.launch(&c);
        c.task_sync(done);
        assert_eq!(c.timeline().kernels().count(), 1);
    }

    #[test]
    fn capture_preserves_cross_stream_event_deps() {
        let c = ctx();
        let a = c.alloc_f32(16);
        let b = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        c.prefetch_async(c.default_stream(), &b);
        c.device_sync();
        let s1 = c.stream_create();
        let s2 = c.stream_create();
        c.begin_capture();
        c.launch(s1, &kern("prod", &a, 2.0, true));
        let ev = c.event_record(s1);
        c.stream_wait_event(s2, ev);
        c.launch(s2, &kern("cons", &b, 1.0, true));
        let g = c.end_capture();
        let done = g.launch(&c);
        c.task_sync(done);
        let tl = c.timeline();
        let p = tl.kernels().find(|iv| iv.label == "prod").unwrap();
        let q = tl.kernels().find(|iv| iv.label == "cons").unwrap();
        assert!(q.start >= p.end - 1e-12);
    }

    #[test]
    fn prefetch_is_not_capturable_so_replay_faults() {
        let c = ctx();
        let a = c.alloc_f32(1 << 20);
        c.begin_capture();
        let s1 = c.stream_create();
        assert!(
            c.prefetch_async(s1, &a).is_none(),
            "prefetch cannot be captured"
        );
        c.launch(s1, &kern("k", &a, 1.0, true));
        let g = c.end_capture();
        let done = g.launch(&c);
        c.task_sync(done);
        let tl = c.timeline();
        assert_eq!(
            tl.of_kind(TaskKind::FaultH2D).count(),
            1,
            "replay pays the fault path"
        );
        assert_eq!(tl.of_kind(TaskKind::CopyH2D).count(), 0);
    }

    #[test]
    fn repeated_launches_amortize_instantiation() {
        let c = ctx();
        let a = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        c.device_sync();
        let mut g = CudaGraph::new();
        for _ in 0..8 {
            g.add_kernel(kern("k", &a, 0.01, false), &[]);
        }
        let t0 = c.now();
        let d1 = g.launch(&c);
        c.task_sync(d1);
        let first = c.now() - t0;
        let t1 = c.now();
        let d2 = g.launch(&c);
        c.task_sync(d2);
        let second = c.now() - t1;
        assert!(
            second < first,
            "first launch pays instantiation: {first} vs {second}"
        );
    }

    #[test]
    fn manual_graph_assigns_first_child_to_parent_stream() {
        let c = ctx();
        let a = c.alloc_f32(16);
        let b = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        c.prefetch_async(c.default_stream(), &b);
        c.device_sync();
        c.clear_timeline();
        let mut g = CudaGraph::new();
        let n1 = g.add_kernel(kern("p", &a, 0.1, true), &[]);
        let _c1 = g.add_kernel(kern("c1", &a, 0.1, false), &[n1]);
        let done = g.launch(&c);
        c.task_sync(done);
        let tl = c.timeline();
        let p = tl.kernels().find(|iv| iv.label == "p").unwrap();
        let c1 = tl.kernels().find(|iv| iv.label == "c1").unwrap();
        assert_eq!(
            p.stream, c1.stream,
            "first child reuses the parent's stream"
        );
    }

    #[test]
    #[should_panic(expected = "capture already in progress")]
    fn nested_capture_panics() {
        let c = ctx();
        c.begin_capture();
        c.begin_capture();
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use gpu_sim::DeviceProfile;

    #[test]
    fn empty_graph_launch_completes_immediately() {
        let c = Cuda::new(DeviceProfile::gtx1660_super());
        let g = CudaGraph::new();
        assert!(g.is_empty());
        let done = g.launch(&c);
        c.task_sync(done);
        assert_eq!(c.timeline().kernels().count(), 0);
    }

    #[test]
    fn capture_with_no_operations_yields_empty_graph() {
        let c = Cuda::new(DeviceProfile::tesla_p100());
        c.begin_capture();
        let g = c.end_capture();
        assert_eq!(g.len(), 0);
        let done = g.launch(&c);
        c.task_sync(done);
    }

    #[test]
    fn event_on_empty_captured_stream_is_a_root_join() {
        let c = Cuda::new(DeviceProfile::tesla_p100());
        let a = c.alloc_f32(16);
        let s1 = c.stream_create();
        let s2 = c.stream_create();
        c.begin_capture();
        // Event recorded before anything ran on s1: the wait must not
        // create a bogus dependency.
        let ev = c.event_record(s1);
        c.stream_wait_event(s2, ev);
        let k = KernelExec::new(
            "k",
            gpu_sim::Grid::d1(1, 32),
            gpu_sim::KernelCost {
                min_time: 1e-5,
                ..Default::default()
            },
            vec![a.buf.clone()],
            vec![(a.id, false)],
            std::rc::Rc::new(|_| {}),
        );
        c.launch(s2, &k);
        let g = c.end_capture();
        let done = g.launch(&c);
        c.task_sync(done);
        assert_eq!(c.timeline().kernels().count(), 1);
    }

    #[test]
    fn graph_can_be_launched_from_two_contexts_worth_of_iterations() {
        // Launch the same instantiated graph many times; results and
        // timings stay deterministic.
        let c = Cuda::new(DeviceProfile::gtx960());
        let a = c.alloc_f32(256);
        let mut g = CudaGraph::new();
        let bump = KernelExec::new(
            "bump",
            gpu_sim::Grid::d1(1, 32),
            gpu_sim::KernelCost {
                min_time: 1e-5,
                ..Default::default()
            },
            vec![a.buf.clone()],
            vec![(a.id, false)],
            std::rc::Rc::new(|bufs: &[gpu_sim::DataBuffer]| {
                for v in bufs[0].as_f32_mut().iter_mut() {
                    *v += 1.0;
                }
            }),
        );
        g.add_kernel(bump, &[]);
        for _ in 0..5 {
            let done = g.launch(&c);
            c.task_sync(done);
        }
        assert_eq!(a.buf.as_f32()[0], 5.0);
    }
}
