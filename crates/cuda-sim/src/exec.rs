//! Kernel execution descriptors.

use std::rc::Rc;

use gpu_sim::{DataBuffer, Grid, KernelCost, ValueId};

/// The functional implementation of a launch: runs on the host buffers
/// when the simulated kernel completes.
pub type KernelFunc = Rc<dyn Fn(&[DataBuffer])>;

/// Everything needed to execute one kernel launch: the launch
/// configuration, the analytic cost, the argument buffers (for the
/// functional CPU implementation) and the per-argument access modes (for
/// dependency tracking, residency management and race detection).
///
/// `KernelExec` is cloneable so CUDA Graphs can replay the same launch
/// many times; the functional implementation is shared behind an `Rc`.
#[derive(Clone)]
pub struct KernelExec {
    /// Kernel name (timeline label).
    pub name: String,
    /// Launch configuration.
    pub grid: Grid,
    /// Device-independent work description.
    pub cost: KernelCost,
    /// Argument buffers, passed to `func` in order.
    pub buffers: Vec<DataBuffer>,
    /// Per-argument `(value, read_only)` access modes, index-aligned
    /// with `buffers`.
    pub accesses: Vec<(ValueId, bool)>,
    /// The functional implementation: runs on the host data when the
    /// simulated kernel completes.
    pub func: KernelFunc,
}

impl std::fmt::Debug for KernelExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelExec")
            .field("name", &self.name)
            .field("grid", &self.grid)
            .field("cost", &self.cost)
            .field("args", &self.accesses.len())
            .finish()
    }
}

impl KernelExec {
    /// Build a launch descriptor. `accesses` must be index-aligned with
    /// `buffers`.
    pub fn new(
        name: impl Into<String>,
        grid: Grid,
        cost: KernelCost,
        buffers: Vec<DataBuffer>,
        accesses: Vec<(ValueId, bool)>,
        func: KernelFunc,
    ) -> Self {
        assert_eq!(
            buffers.len(),
            accesses.len(),
            "buffers/accesses must be aligned"
        );
        KernelExec {
            name: name.into(),
            grid,
            cost,
            buffers,
            accesses,
            func,
        }
    }

    /// Values this launch writes.
    pub fn writes(&self) -> Vec<ValueId> {
        self.accesses
            .iter()
            .filter(|(_, ro)| !ro)
            .map(|(v, _)| *v)
            .collect()
    }

    /// Values this launch only reads.
    pub fn reads(&self) -> Vec<ValueId> {
        self.accesses
            .iter()
            .filter(|(_, ro)| *ro)
            .map(|(v, _)| *v)
            .collect()
    }

    /// A closure running the functional implementation once.
    pub fn make_payload(&self) -> Box<dyn FnOnce()> {
        let func = Rc::clone(&self.func);
        let buffers = self.buffers.clone();
        Box::new(move || func(&buffers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_and_writes_split_by_access_mode() {
        let b = DataBuffer::f32_zeros(1);
        let k = KernelExec::new(
            "k",
            Grid::d1(1, 32),
            KernelCost::default(),
            vec![b.clone(), b.clone()],
            vec![(ValueId(0), true), (ValueId(1), false)],
            Rc::new(|_| {}),
        );
        assert_eq!(k.reads(), vec![ValueId(0)]);
        assert_eq!(k.writes(), vec![ValueId(1)]);
    }

    #[test]
    fn payload_executes_functional_impl() {
        let b = DataBuffer::f32_zeros(2);
        let k = KernelExec::new(
            "fill",
            Grid::d1(1, 32),
            KernelCost::default(),
            vec![b.clone()],
            vec![(ValueId(0), false)],
            Rc::new(|bufs: &[DataBuffer]| {
                for x in bufs[0].as_f32_mut().iter_mut() {
                    *x = 9.0;
                }
            }),
        );
        k.make_payload()();
        assert_eq!(*b.as_f32(), vec![9.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_accesses_panic() {
        let b = DataBuffer::f32_zeros(1);
        let _ = KernelExec::new(
            "k",
            Grid::d1(1, 32),
            KernelCost::default(),
            vec![b],
            vec![],
            Rc::new(|_| {}),
        );
    }
}
