//! Property-based tests of the finite-device-memory state machine.
//!
//! Under random launch/read/write sequences against a capacity-limited
//! multi-device context, two invariants must hold for every eviction
//! policy:
//!
//! * **capacity**: per-device resident bytes never exceed the
//!   configured capacity, at any point in the run;
//! * **no stale reads**: every evicted array is re-fetched before its
//!   next kernel read — checked functionally with a shadow model whose
//!   writes mix everything the kernel read, so a kernel that ran
//!   against a dropped/stale device copy would diverge with
//!   overwhelming probability.

use proptest::prelude::*;
use std::rc::Rc;

use gpu_sim::memgr::{EvictionPolicy, MemoryConfig};
use gpu_sim::{DeviceProfile, Grid, KernelCost, Topology, TopologyKind};

use crate::context::Cuda;
use crate::exec::KernelExec;

/// Candidate element counts (f32): 400–1200 bytes per array, so any
/// read+write pair fits the 2400-byte capacity but the 6-array working
/// set (~4.8 KiB) oversubscribes it.
const SIZES: [usize; 6] = [100, 150, 200, 250, 300, 300];
const CAPACITY: usize = 2400;
const N_ARRAYS: usize = 6;
const N_DEVICES: usize = 2;

#[derive(Debug, Clone)]
enum Op {
    /// Launch on `device`: read `src`, write `dst` (dst ≠ src), sync.
    Launch { device: u32, src: usize, dst: usize },
    /// CPU-read an array (syncs its producing chain).
    HostRead(usize),
    /// CPU-write an array (invalidates its device copy).
    HostWrite { idx: usize, value: f32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..N_DEVICES as u32, 0..N_ARRAYS, 0..N_ARRAYS).prop_map(|(device, src, mut dst)| {
            if dst == src {
                dst = (dst + 1) % N_ARRAYS;
            }
            Op::Launch { device, src, dst }
        }),
        (0..N_ARRAYS).prop_map(Op::HostRead),
        (0..N_ARRAYS, 0..100u32).prop_map(|(idx, v)| Op::HostWrite {
            idx,
            value: v as f32,
        }),
    ]
}

/// `dst[0] ← dst[0] + 2·src[0] + k` — every write mixes what was read,
/// so a stale read anywhere changes the final numbers.
fn mix_kernel(
    k: f32,
    src: &crate::memory::UnifiedArray,
    dst: &crate::memory::UnifiedArray,
) -> KernelExec {
    KernelExec::new(
        "mix",
        Grid::d1(4, 64),
        KernelCost {
            min_time: 1e-5,
            ..Default::default()
        },
        vec![src.buf.clone(), dst.buf.clone()],
        vec![(src.id, true), (dst.id, false)],
        Rc::new(move |bufs: &[gpu_sim::DataBuffer]| {
            let s = bufs[0].as_f32()[0];
            let mut d = bufs[1].as_f32_mut();
            d[0] += 2.0 * s + k;
        }),
    )
}

fn run_sequence(policy: EvictionPolicy, ops: &[Op]) {
    let dev = DeviceProfile::tesla_p100();
    let topo = Topology::preset(TopologyKind::PcieOnly, N_DEVICES, &dev)
        .with_memory(MemoryConfig::with_capacity(CAPACITY).with_eviction(policy));
    let c = Cuda::with_topology(dev, topo);
    let arrays: Vec<_> = SIZES.iter().map(|&n| c.alloc_f32(n)).collect();
    let streams: Vec<_> = (0..N_DEVICES as u32)
        .map(|d| {
            if d == 0 {
                c.default_stream()
            } else {
                c.stream_create_on(d)
            }
        })
        .collect();
    // Shadow model of element 0 of every array.
    let mut shadow = [0f32; N_ARRAYS];

    let check_capacity = |c: &Cuda| {
        let st = c.memory_stats();
        for (d, &r) in st.resident_bytes.iter().enumerate() {
            assert!(
                r <= CAPACITY,
                "device {d} resident {r} B exceeds capacity {CAPACITY} B"
            );
        }
    };

    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Launch { device, src, dst } => {
                let k = i as f32;
                let exec = mix_kernel(k, &arrays[*src], &arrays[*dst]);
                let t = c.launch(streams[*device as usize], &exec).unwrap();
                c.task_sync(t);
                shadow[*dst] += 2.0 * shadow[*src] + k;
                // Every argument — including any previously-evicted one
                // — must be resident on the kernel's device after the
                // launch: the re-fetch happened before the read.
                assert_eq!(
                    arrays[*src].resident_device(),
                    Some(*device),
                    "op {i}: read argument not re-fetched onto device {device}"
                );
                assert_eq!(arrays[*dst].resident_device(), Some(*device));
            }
            Op::HostRead(idx) => {
                c.host_read(&arrays[*idx], 4);
                let got = arrays[*idx].buf.as_f32()[0];
                assert_eq!(got, shadow[*idx], "op {i}: stale host read of {idx}");
            }
            Op::HostWrite { idx, value } => {
                arrays[*idx].buf.as_f32_mut()[0] = *value;
                c.host_written(&arrays[*idx]);
                shadow[*idx] = *value;
                assert_eq!(arrays[*idx].resident_device(), None);
            }
        }
        check_capacity(&c);
    }
    c.device_sync();
    check_capacity(&c);
    assert!(c.races().is_empty(), "sequence raced: {:?}", c.races());
    // Final functional check: no kernel ever read a stale copy.
    for (i, a) in arrays.iter().enumerate() {
        c.host_read(a, 4);
        assert_eq!(a.buf.as_f32()[0], shadow[i], "array {i} diverged");
    }
    // The oversubscribed working set must actually have exercised the
    // eviction machinery on busy sequences; on short ones this is
    // trivially satisfied.
    let st = c.memory_stats();
    assert!(st.peak_resident.iter().all(|&p| p <= CAPACITY));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn capacity_is_never_exceeded_and_reads_are_never_stale(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        policy_idx in 0..3usize,
    ) {
        run_sequence(EvictionPolicy::ALL[policy_idx], &ops);
    }
}

#[test]
fn a_dense_sequence_actually_evicts() {
    // Guard against the property passing vacuously: a deterministic
    // dense launch sequence over the oversubscribed working set must
    // trigger evictions under every policy.
    for policy in EvictionPolicy::ALL {
        let ops: Vec<Op> = (0..24)
            .map(|i| Op::Launch {
                device: (i % N_DEVICES) as u32,
                src: i % N_ARRAYS,
                dst: (i + 3) % N_ARRAYS,
            })
            .collect();
        run_sequence(policy, &ops);
        // Re-run to inspect the stats (run_sequence owns its context).
        let dev = DeviceProfile::tesla_p100();
        let topo = Topology::preset(TopologyKind::PcieOnly, N_DEVICES, &dev)
            .with_memory(MemoryConfig::with_capacity(CAPACITY).with_eviction(policy));
        let c = Cuda::with_topology(dev, topo);
        let arrays: Vec<_> = SIZES.iter().map(|&n| c.alloc_f32(n)).collect();
        let s1 = c.stream_create_on(1);
        for i in 0..24usize {
            let stream = if i % 2 == 0 { c.default_stream() } else { s1 };
            let exec = mix_kernel(1.0, &arrays[i % N_ARRAYS], &arrays[(i + 3) % N_ARRAYS]);
            let t = c.launch(stream, &exec).unwrap();
            c.task_sync(t);
        }
        let st = c.memory_stats();
        assert!(
            st.evictions > 0,
            "{policy:?}: oversubscribed sequence must evict"
        );
    }
}
