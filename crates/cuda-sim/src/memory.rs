//! Unified-memory arrays and their residency state machine.

use std::cell::Cell;
use std::rc::Rc;

use gpu_sim::{DataBuffer, TypedData, ValueId};

/// Where the up-to-date copy of a unified-memory allocation lives.
///
/// GrCUDA backs every array with CUDA Unified Memory (§IV-A), so the
/// "transfers" the paper overlaps with computation are page migrations
/// (on-demand or prefetched). The simulator tracks a whole-array
/// residency state — page granularity would refine the numbers but not
/// the scheduling behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Only the host copy is current (freshly allocated or written by
    /// the CPU).
    Host,
    /// Only the device copy is current (a kernel wrote it).
    Device,
    /// Both copies are current (migrated/read but not yet re-written).
    Both,
}

impl Residency {
    /// Is the data available to a kernel without migration?
    pub fn on_device(self) -> bool {
        matches!(self, Residency::Device | Residency::Both)
    }

    /// Is the data available to the CPU without migration?
    pub fn on_host(self) -> bool {
        matches!(self, Residency::Host | Residency::Both)
    }
}

/// A handle to a unified-memory array: host-visible storage plus the
/// identity used for dependency tracking. Cheap to clone; clones share
/// storage (they are the *same* allocation).
#[derive(Debug, Clone)]
pub struct UnifiedArray {
    /// Identity for dependency tracking and race detection.
    pub id: ValueId,
    /// Shared host-visible payload.
    pub buf: DataBuffer,
    /// Device currently holding the device copy, mirrored from the
    /// context's residency state machine on every transition (shared by
    /// clones, like the allocation itself).
    pub(crate) resident: Rc<Cell<Option<u32>>>,
}

impl UnifiedArray {
    pub(crate) fn new(id: ValueId, data: TypedData) -> Self {
        UnifiedArray {
            id,
            buf: DataBuffer::new(data),
            resident: Rc::new(Cell::new(None)),
        }
    }

    /// The device holding the current device copy, if any — `None` for
    /// host-only data (fresh allocations, CPU-written or evicted
    /// arrays). Kept in sync by the owning context on every residency
    /// transition; handy for tests that assert placement without
    /// holding the context.
    pub fn resident_device(&self) -> Option<u32> {
        self.resident.get()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Size in bytes (what a full migration moves).
    pub fn byte_len(&self) -> usize {
        self.buf.byte_len()
    }
}

/// Per-allocation bookkeeping owned by the context.
#[derive(Debug, Clone)]
pub(crate) struct ArrayState {
    pub residency: Residency,
    /// Size in bytes — re-synced from the backing buffer on every
    /// residency transition so capacity accounting can never drift from
    /// the allocation it describes.
    pub bytes: usize,
    /// Which device holds the current device copy (meaningful while
    /// `residency.on_device()`; always 0 on single-device contexts).
    pub device: u32,
    /// The task that produced the current copy (a writing kernel, the
    /// transfer that last moved it, or the eviction spill that pushed it
    /// back to the host). Cross-device migrations chain their
    /// device→host leg on it so causality is preserved without blocking
    /// the host.
    pub last_writer: Option<gpu_sim::TaskId>,
    /// Mirror of the residency device shared with the user-facing
    /// [`UnifiedArray`] handles (see [`UnifiedArray::resident_device`]).
    pub resident_cell: Rc<Cell<Option<u32>>>,
}

/// What the memory manager did to an allocation — drained by the layer
/// above (the grcuda scheduler annotates its computation DAG with these
/// so `to_dot` renders eviction and prefetch traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// The allocation involved.
    pub value: ValueId,
    /// Its size in bytes.
    pub bytes: usize,
    /// The device the event happened on.
    pub device: u32,
    /// What happened.
    pub kind: MemEventKind,
}

/// The kind of a [`MemEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEventKind {
    /// The device copy was evicted to make room. `spilled` is true when
    /// a real device→host copy moved the data (the host copy was
    /// stale); false when the device copy was simply dropped (a valid
    /// host copy already existed).
    Evicted {
        /// True when the eviction paid a device→host spill copy.
        spilled: bool,
    },
    /// The allocation was bulk-prefetched ahead of a launch.
    Prefetched,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residency_predicates() {
        assert!(Residency::Device.on_device());
        assert!(Residency::Both.on_device());
        assert!(!Residency::Host.on_device());
        assert!(Residency::Host.on_host());
        assert!(Residency::Both.on_host());
        assert!(!Residency::Device.on_host());
    }

    #[test]
    fn clones_are_the_same_allocation() {
        let a = UnifiedArray::new(ValueId(3), TypedData::F32(vec![0.0; 8]));
        let b = a.clone();
        b.buf.as_f32_mut()[0] = 4.0;
        assert_eq!(a.buf.as_f32()[0], 4.0);
        assert_eq!(a.id, b.id);
        assert_eq!(a.byte_len(), 32);
    }
}
