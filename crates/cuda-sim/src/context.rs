//! The simulated CUDA context: streams, events, launches, unified-memory
//! management and host synchronization.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use gpu_sim::memgr::{MemoryManager, MemoryStats};
use gpu_sim::{
    DeviceProfile, Engine, EngineStats, RaceReport, TaskId, TaskKind, TaskSpec, Time, Timeline,
    Topology, TopologyKind, TypedData, ValueId,
};

use crate::exec::KernelExec;
use crate::graph::CaptureState;
use crate::memory::{ArrayState, MemEvent, MemEventKind, Residency, UnifiedArray};

/// Handle to an in-order execution stream. Stream 0 is the default
/// stream and always exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

/// Handle to a recorded event (a precise synchronization point on a
/// stream, `cudaEventRecord` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId(pub(crate) u32);

#[derive(Debug, Clone)]
pub(crate) enum EventTarget {
    /// Normal execution: the event is a completed-or-pending engine task.
    Task(TaskId),
    /// Recorded during stream capture: the event names a graph node.
    CaptureNode(u32),
}

#[derive(Debug, Default)]
struct StreamState {
    last: Option<TaskId>,
    /// Device the stream issues onto (0 on single-device contexts).
    device: u32,
}

pub(crate) struct Inner {
    pub(crate) engine: Engine,
    pub(crate) dev: DeviceProfile,
    n_devices: u32,
    arrays: HashMap<ValueId, ArrayState>,
    next_value: u64,
    streams: Vec<StreamState>,
    pub(crate) events: Vec<EventTarget>,
    pub(crate) capture: Option<CaptureState>,
    /// Bulk copies in the same direction serialize through a single DMA
    /// copy engine per device, like real hardware — the reason the
    /// paper's VEC benchmark shows zero computation/computation overlap:
    /// the second vector's data arrives only after the first vector's
    /// copy is done. Indexed by device.
    last_h2d: Vec<Option<TaskId>>,
    /// Per-device D2H DMA engine, used by the device→host leg of
    /// cross-device migrations (host reads block the virtual host, so
    /// their ordering is implicit).
    last_d2h: Vec<Option<TaskId>>,
    /// Per-link, per-direction P2P DMA engine: same-direction peer
    /// copies on one link serialize like bulk copies do on the host
    /// links; opposite directions run concurrently and contend on the
    /// link's aggregate bandwidth in the rate solver. Indexed by link
    /// id; `[0]` is low→high device order, `[1]` the reverse.
    last_p2p: Vec<[Option<TaskId>; 2]>,
    /// Cross-device migrations performed (count, bytes): the run-time
    /// migration-cost accounting the paper's §VI calls for. Counts both
    /// peer-to-peer and host-mediated migrations.
    migrations: usize,
    migrated_bytes: usize,
    /// The subset of `migrations`/`migrated_bytes` that went over a
    /// direct peer link instead of staging through the host.
    p2p_migrations: usize,
    p2p_migrated_bytes: usize,
    /// NIC legs of cross-node migrations (count, bytes): host-mediated
    /// migrations whose source and target devices sit on different
    /// cluster nodes additionally forward the host copy over the NIC
    /// link between the nodes. Zero on single-node machines.
    cross_node_migrations: usize,
    cross_node_bytes: usize,
    /// Capacity accounting, eviction-victim selection and prefetch
    /// bookkeeping (built from the topology's [`gpu_sim::MemoryConfig`];
    /// unlimited by default, in which case every check is a no-op).
    memgr: MemoryManager,
    /// Arrays brought in by a prefetch and not yet consumed by a kernel
    /// on that device — the set prefetch *hits* are counted against.
    /// Indexed by device.
    prefetched: Vec<HashSet<ValueId>>,
    /// Eviction/prefetch events awaiting [`Cuda::take_mem_events`]
    /// (recorded only while enabled, so raw contexts that never drain
    /// them stay bounded).
    mem_events: Vec<MemEvent>,
    record_mem_events: bool,
}

/// A simulated CUDA device context. Cheap to clone; clones share the
/// same device state (like sharing a `CUcontext`).
#[derive(Clone)]
pub struct Cuda {
    pub(crate) inner: Rc<RefCell<Inner>>,
}

impl Cuda {
    /// Create a context for the given device profile.
    pub fn new(dev: DeviceProfile) -> Self {
        Self::new_multi(dev, 1)
    }

    /// Create a context spanning `n` identical devices sharing one
    /// virtual clock, connected by host (PCIe) links only. Streams are
    /// created on a device ([`Cuda::stream_create_on`]) and data moves
    /// between devices through host-mediated migrations charged on both
    /// PCIe links.
    pub fn new_multi(dev: DeviceProfile, n: usize) -> Self {
        Self::new_multi_topo(dev, n, TopologyKind::PcieOnly)
    }

    /// [`Cuda::new_multi`] with an explicit interconnect preset. Where
    /// the topology has a direct device↔device link, cross-device
    /// migrations use peer-to-peer DMA over that link (charged to it and
    /// contending on it); device pairs without a link fall back to
    /// host-mediated staging over both PCIe links.
    pub fn new_multi_topo(dev: DeviceProfile, n: usize, kind: TopologyKind) -> Self {
        Self::with_topology(dev.clone(), Topology::preset(kind, n, &dev))
    }

    /// [`Cuda::new_multi`] over a fully custom [`Topology`]. The
    /// topology's [`gpu_sim::MemoryConfig`] gives every device its
    /// finite memory: allocations and migrations that would exceed it
    /// evict resident arrays back to the host as real copy tasks.
    pub fn with_topology(dev: DeviceProfile, topo: Topology) -> Self {
        let n = topo.device_count();
        let n_links = topo.links().len();
        let memgr = MemoryManager::new(n, topo.memory_config().clone());
        let engine = Engine::with_topology(dev.clone(), topo);
        Cuda {
            inner: Rc::new(RefCell::new(Inner {
                engine,
                dev,
                n_devices: n as u32,
                arrays: HashMap::new(),
                next_value: 0,
                streams: vec![StreamState::default()], // default stream, device 0
                events: Vec::new(),
                capture: None,
                last_h2d: vec![None; n],
                last_d2h: vec![None; n],
                last_p2p: vec![[None; 2]; n_links],
                migrations: 0,
                migrated_bytes: 0,
                p2p_migrations: 0,
                p2p_migrated_bytes: 0,
                cross_node_migrations: 0,
                cross_node_bytes: 0,
                memgr,
                prefetched: vec![HashSet::new(); n],
                mem_events: Vec::new(),
                record_mem_events: false,
            })),
        }
    }

    /// The device profile this context simulates.
    pub fn device(&self) -> DeviceProfile {
        self.inner.borrow().dev.clone()
    }

    /// Number of identical devices in this context.
    pub fn device_count(&self) -> usize {
        self.inner.borrow().n_devices as usize
    }

    /// The device a stream issues onto.
    pub fn stream_device(&self, stream: StreamId) -> u32 {
        self.inner.borrow().streams[stream.0 as usize].device
    }

    /// Submitted-but-unfinished tasks on a device (in-flight load gauge).
    pub fn device_load(&self, device: u32) -> usize {
        self.inner.borrow().engine.device_load(device)
    }

    /// Fill `out` with every device's in-flight load under a single
    /// borrow — the per-launch placement path calls this once instead
    /// of polling [`Cuda::device_load`] per device.
    pub fn device_loads_into(&self, out: &mut Vec<usize>) {
        let inner = self.inner.borrow();
        out.clear();
        out.extend((0..inner.n_devices).map(|d| inner.engine.device_load(d)));
    }

    /// Fill `out` with every device's free memory bytes under a single
    /// borrow (`usize::MAX` per device when unlimited).
    pub fn free_device_bytes_into(&self, out: &mut Vec<usize>) {
        let inner = self.inner.borrow();
        out.clear();
        out.extend((0..inner.n_devices).map(|d| inner.memgr.free_bytes(d)));
    }

    /// One-borrow placement probe for one argument array: adds its
    /// estimated transfer time to `est[d]` for every device `d` (the
    /// exact math of [`Cuda::transfer_time_estimate`], applied in the
    /// same per-device order) and returns the device holding its
    /// current device copy, if any.
    pub fn placement_probe(&self, a: &UnifiedArray, est: &mut [f64]) -> Option<u32> {
        let inner = self.inner.borrow();
        debug_assert_eq!(est.len(), inner.n_devices as usize);
        let st = &inner.arrays[&a.id];
        let bytes = st.bytes as f64;
        let topo = inner.engine.topology();
        let calib = inner.engine.calibration();
        for (d, acc) in est.iter_mut().enumerate() {
            let target = d as u32;
            let host_id = topo.host_link(target);
            let host = topo.link(host_id);
            // Observed contention scales the uncontended leg estimates
            // when calibration is enabled; `link_scale` is exactly 1.0
            // otherwise, keeping the default bit-identical.
            let host_leg =
                (host.latency + bytes / host.bandwidth) * calib.link_scale(host_id.0 as usize);
            *acc += match st.residency {
                Residency::Host => host_leg,
                Residency::Both if st.device == target => 0.0,
                Residency::Both => host_leg,
                Residency::Device if st.device == target => 0.0,
                Residency::Device => match topo.d2d_link(st.device, target) {
                    Some(l) => {
                        let link = topo.link(l);
                        (link.latency + bytes / link.bandwidth) * calib.link_scale(l.0 as usize)
                    }
                    // Host-mediated route: two host-link legs, plus the
                    // NIC leg when the source sits on another node
                    // (`nic_link` is `None` in-node, so single-box
                    // estimates are bit-identical).
                    None => {
                        let mut t = 2.0 * host_leg;
                        if let Some(l) =
                            topo.nic_link(topo.node_of(st.device), topo.node_of(target))
                        {
                            let link = topo.link(l);
                            t += (link.latency + bytes / link.bandwidth)
                                * calib.link_scale(l.0 as usize);
                        }
                        t
                    }
                },
            };
        }
        st.residency.on_device().then_some(st.device)
    }

    /// Cross-device migrations performed so far as `(count, bytes)`,
    /// peer-to-peer and host-mediated combined.
    pub fn migration_stats(&self) -> (usize, usize) {
        let inner = self.inner.borrow();
        (inner.migrations, inner.migrated_bytes)
    }

    /// Cross-device migrations that went over a direct peer link, as
    /// `(count, bytes)`.
    pub fn p2p_migration_stats(&self) -> (usize, usize) {
        let inner = self.inner.borrow();
        (inner.p2p_migrations, inner.p2p_migrated_bytes)
    }

    /// Cross-device migrations that staged through the host, as
    /// `(count, bytes)`.
    pub fn host_migration_stats(&self) -> (usize, usize) {
        let inner = self.inner.borrow();
        (
            inner.migrations - inner.p2p_migrations,
            inner.migrated_bytes - inner.p2p_migrated_bytes,
        )
    }

    /// NIC legs of cross-node migrations, as `(count, bytes)`: the
    /// subset of host-mediated migrations whose source and target
    /// devices sit on different cluster nodes. Always zero on a
    /// single-node machine.
    pub fn cross_node_migration_stats(&self) -> (usize, usize) {
        let inner = self.inner.borrow();
        (inner.cross_node_migrations, inner.cross_node_bytes)
    }

    /// The interconnect topology of this context.
    pub fn topology(&self) -> Topology {
        self.inner.borrow().engine.topology().clone()
    }

    /// Memory gauges of the capacity-aware memory manager: per-device
    /// resident and peak-resident bytes, evictions, spilled bytes,
    /// prefetch hit accounting.
    pub fn memory_stats(&self) -> MemoryStats {
        self.inner.borrow().memgr.stats()
    }

    /// True when the topology configures a finite per-device capacity.
    pub fn memory_limited(&self) -> bool {
        self.inner.borrow().memgr.is_limited()
    }

    /// The configured per-device capacity (`None` = unlimited).
    pub fn device_capacity(&self) -> Option<usize> {
        self.inner.borrow().memgr.capacity(0)
    }

    /// Free device-memory bytes on a device (`usize::MAX` when
    /// unlimited) — the headroom gauge memory-aware placement consults.
    pub fn free_device_bytes(&self, device: u32) -> usize {
        self.inner.borrow().memgr.free_bytes(device)
    }

    /// Per-device `(time, resident bytes)` step samples, recorded while
    /// a finite capacity is configured. Cleared by
    /// [`Cuda::clear_timeline`], like the execution timeline.
    pub fn memory_timeline(&self) -> Vec<Vec<(Time, usize)>> {
        self.inner.borrow().memgr.timeline().to_vec()
    }

    /// Enable (or disable) recording of eviction/prefetch
    /// [`MemEvent`]s. Off by default so contexts that never drain them
    /// stay bounded; the grcuda scheduler enables it and drains after
    /// every launch to annotate its DAG.
    pub fn record_mem_events(&self, on: bool) {
        self.inner.borrow_mut().record_mem_events = on;
    }

    /// Drain the recorded eviction/prefetch events.
    pub fn take_mem_events(&self) -> Vec<MemEvent> {
        std::mem::take(&mut self.inner.borrow_mut().mem_events)
    }

    /// True if the topology has a direct peer link between two devices.
    pub fn has_p2p(&self, a: u32, b: u32) -> bool {
        self.inner
            .borrow()
            .engine
            .topology()
            .d2d_link(a, b)
            .is_some()
    }

    /// Lifetime `(bytes, transfers)` per link, indexed like
    /// [`Topology::links`] — host links first, then peer links. Includes
    /// input staging and host reads, not just migrations.
    pub fn link_traffic(&self) -> Vec<(f64, usize)> {
        self.inner.borrow().engine.link_traffic()
    }

    /// Total bytes moved over the host (PCIe) links so far, in either
    /// direction: staging, host reads, and the legs of host-mediated
    /// migrations. The gauge transfer-aware placement tries to minimize.
    pub fn host_link_bytes(&self) -> f64 {
        let inner = self.inner.borrow();
        let traffic = inner.engine.link_traffic();
        (0..inner.n_devices as usize).map(|d| traffic[d].0).sum()
    }

    /// Estimated time to make an array's data resident on `target`,
    /// given where its current copy lives and the links available:
    /// `0` when already resident, `bytes / host-link bandwidth` when a
    /// valid host copy exists, `bytes / peer-link bandwidth (+ latency)`
    /// over a direct link, and two full host-link legs for host-mediated
    /// migrations. This is the per-candidate cost the transfer-aware
    /// placement policy minimizes — transfer *time*, not raw bytes.
    pub fn transfer_time_estimate(&self, a: &UnifiedArray, target: u32) -> Time {
        let inner = self.inner.borrow();
        let st = &inner.arrays[&a.id];
        let bytes = st.bytes as f64;
        let topo = inner.engine.topology();
        let calib = inner.engine.calibration();
        let host_id = topo.host_link(target);
        let host = topo.link(host_id);
        // Every leg carries its link's fixed latency, so small-array
        // estimates do not spuriously favor a host-mediated route (two
        // legs, two setups) over a low-latency peer link. With
        // calibration enabled, each leg is additionally scaled by its
        // link's observed contention ratio (`link_scale` is exactly 1.0
        // otherwise — the default estimate is bit-identical).
        let host_leg =
            (host.latency + bytes / host.bandwidth) * calib.link_scale(host_id.0 as usize);
        match st.residency {
            Residency::Host => host_leg,
            Residency::Both if st.device == target => 0.0,
            Residency::Both => host_leg,
            Residency::Device if st.device == target => 0.0,
            Residency::Device => match topo.d2d_link(st.device, target) {
                Some(l) => {
                    let link = topo.link(l);
                    (link.latency + bytes / link.bandwidth) * calib.link_scale(l.0 as usize)
                }
                // Host-mediated route; cross-node sources additionally
                // pay the NIC leg between the two nodes (see
                // [`Cuda::placement_probe`] — the two must agree).
                None => {
                    let mut t = 2.0 * host_leg;
                    if let Some(l) = topo.nic_link(topo.node_of(st.device), topo.node_of(target)) {
                        let link = topo.link(l);
                        t += (link.latency + bytes / link.bandwidth)
                            * calib.link_scale(l.0 as usize);
                    }
                    t
                }
            },
        }
    }

    /// Enable (or disable) online calibration: from then on every
    /// completed kernel feeds a decaying per-signature duration prior
    /// ([`Cuda::kernel_duration_prior`]) and every completed transfer
    /// feeds its link's contention scale, which multiplies into
    /// [`Cuda::transfer_time_estimate`] / [`Cuda::placement_probe`].
    /// Off by default: a default context estimates and measures
    /// bit-identically to one built before calibration existed.
    pub fn enable_calibration(&self, on: bool) {
        self.inner
            .borrow_mut()
            .engine
            .calibration_mut()
            .set_enabled(on);
    }

    /// True when online calibration is collecting observations.
    pub fn calibration_enabled(&self) -> bool {
        self.inner.borrow().engine.calibration().enabled()
    }

    /// The decaying mean duration observed for a kernel signature, or
    /// `None` while calibration is disabled or has no samples for it —
    /// the task-duration prior history-driven placement weighs
    /// in-flight work by.
    pub fn kernel_duration_prior(&self, label: &str) -> Option<Time> {
        self.inner.borrow().engine.calibration().kernel_prior(label)
    }

    /// Aggregate calibration sample counters (kernel samples, transfer
    /// samples, distinct signatures).
    pub fn calibration_stats(&self) -> gpu_sim::CalibrationStats {
        self.inner.borrow().engine.calibration().stats()
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> Time {
        self.inner.borrow().engine.now()
    }

    /// The default stream.
    pub fn default_stream(&self) -> StreamId {
        StreamId(0)
    }

    /// Create a new independent stream on device 0.
    pub fn stream_create(&self) -> StreamId {
        self.stream_create_on(0)
    }

    /// Create a new independent stream on a specific device.
    pub fn stream_create_on(&self, device: u32) -> StreamId {
        let mut inner = self.inner.borrow_mut();
        assert!(device < inner.n_devices, "unknown device {device}");
        inner.streams.push(StreamState { last: None, device });
        StreamId(inner.streams.len() as u32 - 1)
    }

    /// Number of streams ever created (including the default stream).
    pub fn stream_count(&self) -> usize {
        self.inner.borrow().streams.len()
    }

    // ------------------------------------------------------------------
    // memory
    // ------------------------------------------------------------------

    /// Allocate a unified-memory array of `n` f32 elements (GrCUDA's
    /// `float[n]`). Fresh allocations are host-resident.
    pub fn alloc_f32(&self, n: usize) -> UnifiedArray {
        self.alloc(TypedData::F32(vec![0.0; n]))
    }

    /// Allocate a unified-memory array of `n` f64 elements.
    pub fn alloc_f64(&self, n: usize) -> UnifiedArray {
        self.alloc(TypedData::F64(vec![0.0; n]))
    }

    /// Allocate a unified-memory array of `n` i32 elements.
    pub fn alloc_i32(&self, n: usize) -> UnifiedArray {
        self.alloc(TypedData::I32(vec![0; n]))
    }

    /// Allocate a unified-memory array of `n` bytes.
    pub fn alloc_u8(&self, n: usize) -> UnifiedArray {
        self.alloc(TypedData::U8(vec![0; n]))
    }

    fn alloc(&self, data: TypedData) -> UnifiedArray {
        let mut inner = self.inner.borrow_mut();
        let id = ValueId(inner.next_value);
        inner.next_value += 1;
        let arr = UnifiedArray::new(id, data);
        inner.arrays.insert(
            id,
            ArrayState {
                residency: Residency::Host,
                bytes: arr.byte_len(),
                device: 0,
                last_writer: None,
                resident_cell: arr.resident.clone(),
            },
        );
        arr
    }

    /// Residency of an allocation.
    pub fn residency(&self, a: &UnifiedArray) -> Residency {
        self.inner.borrow().arrays[&a.id].residency
    }

    /// The device holding the current device copy, if any.
    pub fn device_residency(&self, a: &UnifiedArray) -> Option<u32> {
        let inner = self.inner.borrow();
        let st = &inner.arrays[&a.id];
        st.residency.on_device().then_some(st.device)
    }

    /// Mark the host copy as modified (CPU wrote the array): the device
    /// copy, if any, is invalidated. Benchmarks call this after filling
    /// inputs. The caller is responsible for having synchronized; a
    /// concurrent GPU user will be flagged by the race detector at the
    /// next launch.
    pub fn host_written(&self, a: &UnifiedArray) {
        let mut inner = self.inner.borrow_mut();
        let st = inner.arrays.get_mut(&a.id).expect("unknown array");
        st.bytes = a.byte_len();
        let old = st.residency.on_device().then_some(st.device);
        st.residency = Residency::Host;
        st.last_writer = None;
        if let Some(d) = old {
            let now = inner.engine.now();
            inner.memgr.remove(d, a.id, now);
            inner.prefetched[d as usize].remove(&a.id);
        }
        inner.sync_residency_cell(a.id);
    }

    /// Model the CPU touching `bytes` of the array (e.g. reading a
    /// result). If the current copy is on the device, an on-demand
    /// migration is simulated and the host blocks on it. Returns the
    /// simulated cost in seconds.
    pub fn host_read(&self, a: &UnifiedArray, bytes: usize) -> Time {
        let mut inner = self.inner.borrow_mut();
        let t0 = inner.engine.now();
        inner.arrays.get_mut(&a.id).expect("unknown array").bytes = a.byte_len();
        let st = inner.arrays.get(&a.id).expect("unknown array").clone();
        if st.residency == Residency::Host {
            // Host-only data is immediately readable — unless an
            // eviction spill is still carrying it back, in which case
            // the host blocks on the spill copy (already charged to the
            // host link; no second migration is paid).
            if let Some(w) = st.last_writer {
                inner.engine.sync_task(w);
            }
        } else if !st.residency.on_host() {
            let dev = inner.dev.clone();
            let spec = if dev.supports_page_faults() {
                TaskSpec::fault_migration(
                    TaskKind::FaultD2H,
                    format!("umfault<-{:?}", a.id),
                    u32::MAX,
                    bytes as f64,
                    &dev,
                )
                .on_device(st.device)
                .reading(&[a.id])
            } else {
                TaskSpec::bulk_copy(
                    TaskKind::CopyD2H,
                    format!("d2h<-{:?}", a.id),
                    u32::MAX,
                    bytes as f64,
                    &dev,
                )
                .on_device(st.device)
                .reading(&[a.id])
            };
            let deps: Vec<TaskId> = st.last_writer.into_iter().collect();
            let t = inner.engine.submit(spec, &deps);
            inner.engine.sync_task(t);
            // Whole-array state machine: after touching it the host can
            // see it (pages migrate lazily; we charge only what was
            // touched but flip the flag).
            inner.arrays.get_mut(&a.id).unwrap().residency = Residency::Both;
        }
        inner.engine.now() - t0
    }

    // ------------------------------------------------------------------
    // transfers
    // ------------------------------------------------------------------

    /// `cudaMemPrefetchAsync` analogue: bulk-migrate the array to the
    /// device on `stream` at full PCIe bandwidth. Only meaningful on
    /// fault-capable devices; a no-op if the data is already resident.
    ///
    /// During stream capture this records **nothing**: the CUDA Graphs
    /// API of the paper's era cannot capture prefetches, which is the
    /// root cause of the Fig. 8 performance gap.
    pub fn prefetch_async(&self, stream: StreamId, a: &UnifiedArray) -> Option<TaskId> {
        self.prefetch_inner(stream, a, true)
    }

    /// [`Cuda::prefetch_async`] without the per-call host API charge —
    /// for batched submission paths that pay one amortized charge up
    /// front for the whole batch. Virtual-time effects are otherwise
    /// identical.
    pub fn prefetch_async_uncharged(&self, stream: StreamId, a: &UnifiedArray) -> Option<TaskId> {
        self.prefetch_inner(stream, a, false)
    }

    fn prefetch_inner(&self, stream: StreamId, a: &UnifiedArray, charge: bool) -> Option<TaskId> {
        let mut inner = self.inner.borrow_mut();
        if inner.capture.is_some() {
            return None; // not capturable
        }
        if !inner.dev.supports_page_faults() {
            return None; // no UM migration engine on pre-Pascal
        }
        let target = inner.streams[stream.0 as usize].device;
        inner.arrays.get_mut(&a.id).expect("unknown array").bytes = a.byte_len();
        let st = inner.arrays[&a.id].clone();
        if st.residency.on_device() && st.device == target {
            return None;
        }
        // Capacity admission: prefetches are opportunistic — they use
        // headroom but never evict anything. Without headroom the copy
        // is left to the launch-time migration, which may.
        let free = inner.memgr.free_bytes(target);
        if !inner.memgr.prefetcher.admit(free, st.bytes) {
            return None;
        }
        let dev = inner.dev.clone();
        if charge {
            let overhead = dev.host_api_overhead;
            inner.engine.advance_host(overhead);
        }
        // Current copy only on another device: direct peer-to-peer DMA
        // when the topology has a link, host-mediated migration (the D2H
        // leg on the source device, chained on the producer) otherwise.
        if st.residency == Residency::Device {
            if let Some(t) = inner.p2p_migrate(a.id, target, stream) {
                inner.note_prefetched(target, a.id, st.bytes);
                return Some(t);
            }
            inner.migrate_to_host(a.id);
            let _ = inner.nic_forward(a.id, st.device, target);
        }
        let spec = TaskSpec::bulk_copy(
            TaskKind::CopyH2D,
            format!("prefetch {:?}", a.id),
            stream.0,
            st.bytes as f64,
            &dev,
        )
        .on_device(target)
        .reading(&[a.id]);
        let mut deps = stream_deps(&inner.streams, stream);
        deps.extend(inner.last_h2d[target as usize]);
        // Chain on whatever produced the current host copy (a migration
        // D2H leg, possibly still in flight behind its writer): residency
        // flips at submission time, so the dependency carries the
        // ordering.
        deps.extend(inner.arrays[&a.id].last_writer);
        let t = inner.engine.submit(spec, &deps);
        inner.streams[stream.0 as usize].last = Some(t);
        inner.last_h2d[target as usize] = Some(t);
        let old = {
            let stm = inner.arrays.get_mut(&a.id).unwrap();
            let old = stm.residency.on_device().then_some(stm.device);
            stm.residency = Residency::Both;
            stm.device = target;
            stm.last_writer = Some(t);
            old
        };
        inner.move_resident_record(a.id, old, target, st.bytes);
        inner.note_prefetched(target, a.id, st.bytes);
        Some(t)
    }

    // ------------------------------------------------------------------
    // kernel launch
    // ------------------------------------------------------------------

    /// Launch a kernel on a stream (`<<<grid>>>` analogue). Returns the
    /// engine task, or `None` while capturing (the launch became a graph
    /// node instead).
    ///
    /// Unified-memory behaviour: any argument not resident on the device
    /// is migrated first — eagerly at full bandwidth on pre-Pascal
    /// devices, or through the slow page-fault path on Pascal+ (unless it
    /// was prefetched).
    pub fn launch(&self, stream: StreamId, exec: &KernelExec) -> Option<TaskId> {
        self.launch_with_extra_deps(stream, exec, &[])
    }

    /// [`Cuda::launch`] with additional explicit dependencies (used by
    /// the grcuda scheduler to encode cross-stream DAG edges directly).
    pub fn launch_with_extra_deps(
        &self,
        stream: StreamId,
        exec: &KernelExec,
        extra_deps: &[TaskId],
    ) -> Option<TaskId> {
        self.launch_inner(stream, exec, extra_deps, true)
    }

    /// [`Cuda::launch_with_extra_deps`] without the per-call host API
    /// charge — for batched submission paths that pay one amortized
    /// charge up front for the whole batch.
    pub fn launch_uncharged(
        &self,
        stream: StreamId,
        exec: &KernelExec,
        extra_deps: &[TaskId],
    ) -> Option<TaskId> {
        self.launch_inner(stream, exec, extra_deps, false)
    }

    fn launch_inner(
        &self,
        stream: StreamId,
        exec: &KernelExec,
        extra_deps: &[TaskId],
        charge: bool,
    ) -> Option<TaskId> {
        let mut inner = self.inner.borrow_mut();
        if let Some(cap) = &mut inner.capture {
            cap.record_kernel(stream, exec);
            return None;
        }
        if charge {
            let overhead = inner.dev.host_api_overhead;
            inner.engine.advance_host(overhead);
        }
        Some(inner.submit_kernel(stream, exec, extra_deps))
    }

    // ------------------------------------------------------------------
    // events & synchronization
    // ------------------------------------------------------------------

    /// Record an event on a stream (`cudaEventRecord`). Later,
    /// [`Cuda::stream_wait_event`] makes another stream wait for it
    /// without blocking the host.
    pub fn event_record(&self, stream: StreamId) -> EventId {
        let mut inner = self.inner.borrow_mut();
        if inner.capture.is_some() {
            let node = inner.capture.as_mut().unwrap().tail_of(stream);
            inner.events.push(EventTarget::CaptureNode(node));
            return EventId(inner.events.len() as u32 - 1);
        }
        let overhead = inner.dev.event_overhead;
        inner.engine.advance_host(overhead);
        let deps = stream_deps(&inner.streams, stream);
        let device = inner.streams[stream.0 as usize].device;
        let spec = TaskSpec::marker(format!("event s{}", stream.0), stream.0).on_device(device);
        let t = inner.engine.submit(spec, &deps);
        inner.streams[stream.0 as usize].last = Some(t);
        inner.events.push(EventTarget::Task(t));
        EventId(inner.events.len() as u32 - 1)
    }

    /// Make all future work on `stream` wait for `event`
    /// (`cudaStreamWaitEvent`).
    pub fn stream_wait_event(&self, stream: StreamId, event: EventId) {
        let mut inner = self.inner.borrow_mut();
        if inner.capture.is_some() {
            let target = inner.events[event.0 as usize].clone();
            if let EventTarget::CaptureNode(n) = target {
                inner.capture.as_mut().unwrap().add_wait(stream, n);
            }
            return;
        }
        let overhead = inner.dev.event_overhead;
        inner.engine.advance_host(overhead);
        let ev_task = match inner.events[event.0 as usize] {
            EventTarget::Task(t) => t,
            EventTarget::CaptureNode(_) => {
                panic!("event recorded during capture used outside its graph")
            }
        };
        let mut deps = stream_deps(&inner.streams, stream);
        deps.push(ev_task);
        let device = inner.streams[stream.0 as usize].device;
        let spec = TaskSpec::marker(format!("wait s{}", stream.0), stream.0).on_device(device);
        let t = inner.engine.submit(spec, &deps);
        inner.streams[stream.0 as usize].last = Some(t);
    }

    /// True once every operation enqueued on the stream has completed.
    pub fn stream_query(&self, stream: StreamId) -> bool {
        let inner = self.inner.borrow();
        match inner.streams[stream.0 as usize].last {
            None => true,
            Some(t) => inner.engine.is_complete(t),
        }
    }

    /// Block the host until the stream drains (`cudaStreamSynchronize`).
    pub fn stream_sync(&self, stream: StreamId) {
        let mut inner = self.inner.borrow_mut();
        if let Some(t) = inner.streams[stream.0 as usize].last {
            inner.engine.sync_task(t);
        }
    }

    /// Block the host until a specific event completes
    /// (`cudaEventSynchronize`).
    pub fn event_sync(&self, event: EventId) {
        let mut inner = self.inner.borrow_mut();
        match inner.events[event.0 as usize] {
            EventTarget::Task(t) => inner.engine.sync_task(t),
            EventTarget::CaptureNode(_) => panic!("cannot sync a capture-only event"),
        }
    }

    /// Block the host until a specific task completes.
    pub fn task_sync(&self, t: TaskId) {
        self.inner.borrow_mut().engine.sync_task(t);
    }

    /// True once the task completed in virtual time.
    pub fn task_query(&self, t: TaskId) -> bool {
        self.inner.borrow().engine.is_complete(t)
    }

    /// Block the host until the whole device drains
    /// (`cudaDeviceSynchronize`).
    pub fn device_sync(&self) {
        self.inner.borrow_mut().engine.sync_all();
    }

    /// Let the host spin/compute for `dt` seconds while the device keeps
    /// running in the background.
    pub fn host_spin(&self, dt: Time) {
        self.inner.borrow_mut().engine.advance_host(dt);
    }

    // ------------------------------------------------------------------
    // introspection
    // ------------------------------------------------------------------

    /// Snapshot of the execution timeline.
    pub fn timeline(&self) -> Timeline {
        self.inner.borrow().engine.timeline().clone()
    }

    /// Visit the execution timeline without cloning it (for frequent
    /// bookkeeping passes like the grcuda history harvest).
    pub fn with_timeline<R>(&self, f: impl FnOnce(&Timeline) -> R) -> R {
        f(self.inner.borrow().engine.timeline())
    }

    /// Reset the timeline between measured iterations (the memory
    /// manager's resident-bytes samples are cleared with it).
    pub fn clear_timeline(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.engine.clear_timeline();
        inner.memgr.clear_timeline();
    }

    /// Data races detected so far.
    pub fn races(&self) -> Vec<RaceReport> {
        self.inner.borrow().engine.races().to_vec()
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        self.inner.borrow().engine.stats()
    }
}

impl Inner {
    /// Shared kernel-submission path (used by direct launches and graph
    /// replays): migrate non-resident arguments, then submit the kernel
    /// chained on the stream.
    pub(crate) fn submit_kernel(
        &mut self,
        stream: StreamId,
        exec: &KernelExec,
        extra_deps: &[TaskId],
    ) -> TaskId {
        let dev = self.dev.clone();
        let kdev = self.streams[stream.0 as usize].device;
        // Unified-memory migrations for non-resident arguments. The
        // kernel's own argument set is pinned: making room for one
        // argument must never evict a sibling.
        let mut pinned: Vec<ValueId> = Vec::new();
        for (v, _) in &exec.accesses {
            if !pinned.contains(v) {
                pinned.push(*v);
            }
        }
        for v in &pinned {
            let st = self
                .arrays
                .get(v)
                .expect("kernel argument not allocated here")
                .clone();
            if st.residency.on_device() && st.device == kdev {
                // Already in place: bump the LRU clock, and credit the
                // prefetcher if a prefetch put it there.
                self.memgr.touch(kdev, *v);
                if self.prefetched[kdev as usize].remove(v) {
                    self.memgr.prefetcher.note_hit();
                }
                continue;
            }
            // The argument is about to land on this kernel's device:
            // spill victims first if it would not fit.
            self.ensure_fit(kdev, *v, st.bytes, &pinned);
            // Current copy only on another device: direct peer-to-peer
            // DMA when the topology links the two devices (no host
            // involvement, no H2D leg), else a host-mediated migration
            // (D2H on the source, then the H2D below onto this kernel's
            // device).
            if st.residency == Residency::Device {
                if self.p2p_migrate(*v, kdev, stream).is_some() {
                    continue;
                }
                let src = st.device;
                self.migrate_to_host(*v);
                let _ = self.nic_forward(*v, src, kdev);
            }
            let bytes = st.bytes as f64;
            let spec = if dev.supports_page_faults() {
                TaskSpec::fault_migration(
                    TaskKind::FaultH2D,
                    format!("umfault->{v:?}"),
                    stream.0,
                    bytes,
                    &dev,
                )
                .on_device(kdev)
                .reading(&[*v])
            } else {
                TaskSpec::bulk_copy(
                    TaskKind::CopyH2D,
                    format!("h2d->{v:?}"),
                    stream.0,
                    bytes,
                    &dev,
                )
                .on_device(kdev)
                .reading(&[*v])
            };
            let mut deps = stream_deps(&self.streams, stream);
            if dev.supports_page_faults() {
                // Fault-path migrations interleave page-by-page; they
                // contend through the fault controller instead.
            } else {
                deps.extend(self.last_h2d[kdev as usize]);
            }
            // Chain on whatever produced the current host copy (possibly
            // a migration D2H leg still queued behind its writer):
            // residency flips at submission time, so this dependency
            // carries the cross-device ordering.
            deps.extend(self.arrays[v].last_writer);
            let t = self.engine.submit(spec, &deps);
            self.streams[stream.0 as usize].last = Some(t);
            if !dev.supports_page_faults() {
                self.last_h2d[kdev as usize] = Some(t);
            }
            let old = {
                let stm = self.arrays.get_mut(v).unwrap();
                let old = stm.residency.on_device().then_some(stm.device);
                stm.residency = Residency::Both;
                stm.device = kdev;
                stm.last_writer = Some(t);
                old
            };
            self.move_resident_record(*v, old, kdev, st.bytes);
        }

        let (solo, demand) = exec.cost.solo_profile(exec.grid, &dev);
        let mut spec = TaskSpec::kernel(exec.name.clone(), stream.0);
        spec.device = kdev;
        spec.fixed_latency = dev.launch_overhead;
        spec.fluid_work = solo;
        spec.demand = demand;
        spec.reads = exec.reads();
        spec.writes = exec.writes();
        spec.meta.bytes = exec.cost.dram_bytes;
        spec.meta.flops32 = exec.cost.flops32;
        spec.meta.flops64 = exec.cost.flops64;
        spec.meta.l2_bytes = exec.cost.l2_bytes;
        spec.meta.instructions = exec.cost.instructions;
        spec.on_complete = Some(exec.make_payload());

        let mut deps = stream_deps(&self.streams, stream);
        deps.extend_from_slice(extra_deps);
        let t = self.engine.submit(spec, &deps);
        self.streams[stream.0 as usize].last = Some(t);

        // A kernel that writes an array makes the device copy the only
        // current one.
        for v in exec.writes() {
            let st = self.arrays.get_mut(&v).unwrap();
            st.residency = Residency::Device;
            st.device = kdev;
            st.last_writer = Some(t);
            self.sync_residency_cell(v);
        }
        t
    }

    /// Direct device→device migration over a peer link, if the topology
    /// has one between the source and `dst` (returns `None` otherwise).
    /// The copy is chained on the consuming stream, on the producer of
    /// the current copy, and on the link's same-direction DMA engine; it
    /// contends with opposite-direction traffic on the link's aggregate
    /// bandwidth in the rate solver. Counts toward
    /// [`Cuda::migration_stats`] and [`Cuda::p2p_migration_stats`].
    fn p2p_migrate(&mut self, v: ValueId, dst: u32, stream: StreamId) -> Option<TaskId> {
        let st = self.arrays[&v].clone();
        let src = st.device;
        let lid = self.engine.topology().d2d_link(src, dst)?;
        let link = self.engine.topology().link(lid).clone();
        let dir = (src > dst) as usize;
        let spec = TaskSpec::p2p_copy(
            format!("p2p {v:?} d{src}->d{dst}"),
            stream.0,
            st.bytes as f64,
            lid,
            &link,
        )
        .on_device(dst)
        .reading(&[v]);
        let mut deps = stream_deps(&self.streams, stream);
        deps.extend(self.last_p2p[lid.0 as usize][dir]);
        deps.extend(st.last_writer);
        let t = self.engine.submit(spec, &deps);
        self.streams[stream.0 as usize].last = Some(t);
        self.last_p2p[lid.0 as usize][dir] = Some(t);
        self.migrations += 1;
        self.migrated_bytes += st.bytes;
        self.p2p_migrations += 1;
        self.p2p_migrated_bytes += st.bytes;
        {
            let stm = self.arrays.get_mut(&v).unwrap();
            stm.residency = Residency::Device; // the host copy stays stale
            stm.device = dst;
            stm.last_writer = Some(t);
        }
        self.move_resident_record(v, Some(src), dst, st.bytes);
        Some(t)
    }

    /// NIC leg of a cross-node migration: after [`Inner::migrate_to_host`]
    /// lands the current copy in the *source node's* host memory, this
    /// forwards it host→host over the NIC link joining the two nodes (a
    /// no-op when both devices share a node, or on single-node
    /// machines). The copy is chained on the D2H leg via the array's
    /// `last_writer` and serialized through the link's same-direction
    /// DMA engine; the H2D leg the caller submits next chains on it the
    /// same way, so the full GPU→host→NIC→host→GPU route is ordered
    /// without new bookkeeping. Counts toward
    /// [`Cuda::cross_node_migration_stats`].
    fn nic_forward(&mut self, v: ValueId, src: u32, dst: u32) -> Option<TaskId> {
        let topo = self.engine.topology();
        let (sn, dn) = (topo.node_of(src), topo.node_of(dst));
        let lid = topo.nic_link(sn, dn)?;
        let link = topo.link(lid).clone();
        let st = self.arrays[&v].clone();
        let dir = (sn > dn) as usize;
        let spec = TaskSpec::p2p_copy(
            format!("nic {v:?} n{sn}->n{dn}"),
            u32::MAX,
            st.bytes as f64,
            lid,
            &link,
        )
        .on_device(dst)
        .reading(&[v]);
        let mut deps: Vec<TaskId> = st.last_writer.into_iter().collect();
        deps.extend(self.last_p2p[lid.0 as usize][dir]);
        let t = self.engine.submit(spec, &deps);
        self.last_p2p[lid.0 as usize][dir] = Some(t);
        self.cross_node_migrations += 1;
        self.cross_node_bytes += st.bytes;
        // The host copy stays current (`Residency::Both`), now on the
        // target's node; only the ordering handle moves forward.
        self.arrays.get_mut(&v).unwrap().last_writer = Some(t);
        Some(t)
    }

    /// Device→host leg of a cross-device migration: a bulk D2H on the
    /// source device, chained on the task producing the current copy and
    /// serialized through the source's D2H DMA engine. Counts toward
    /// [`Cuda::migration_stats`]; the caller submits the H2D leg onto the
    /// target and must depend on the returned task.
    fn migrate_to_host(&mut self, v: ValueId) -> TaskId {
        let st = self.arrays[&v].clone();
        let src = st.device;
        let dev = self.dev.clone();
        let spec = TaskSpec::bulk_copy(
            TaskKind::CopyD2H,
            format!("migrate<-{v:?}"),
            u32::MAX,
            st.bytes as f64,
            &dev,
        )
        .on_device(src)
        .reading(&[v]);
        let mut deps: Vec<TaskId> = st.last_writer.into_iter().collect();
        deps.extend(self.last_d2h[src as usize]);
        let t = self.engine.submit(spec, &deps);
        self.last_d2h[src as usize] = Some(t);
        self.migrations += 1;
        self.migrated_bytes += st.bytes;
        let stm = self.arrays.get_mut(&v).unwrap();
        stm.residency = Residency::Both; // the host copy is current again
        stm.last_writer = Some(t);
        t
    }

    // ------------------------------------------------------------------
    // finite device memory
    // ------------------------------------------------------------------

    /// Mirror the residency state machine into the shared cell behind
    /// [`UnifiedArray::resident_device`].
    fn sync_residency_cell(&self, v: ValueId) {
        let st = &self.arrays[&v];
        st.resident_cell
            .set(st.residency.on_device().then_some(st.device));
    }

    /// Update the memory manager after a device copy moved from `old`
    /// (if any) to `new`: the old record (and any pending prefetch
    /// credit there) is dropped, the new one inserted.
    fn move_resident_record(&mut self, v: ValueId, old: Option<u32>, new: u32, bytes: usize) {
        let now = self.engine.now();
        if let Some(od) = old {
            if od != new {
                self.memgr.remove(od, v, now);
                self.prefetched[od as usize].remove(&v);
            }
        }
        self.memgr.insert(new, v, bytes, now);
        self.sync_residency_cell(v);
    }

    /// Mark an array as prefetch-resident on a device (a later kernel
    /// finding it there counts as a prefetch hit) and record the event.
    fn note_prefetched(&mut self, device: u32, v: ValueId, bytes: usize) {
        self.prefetched[device as usize].insert(v);
        if self.record_mem_events {
            self.mem_events.push(MemEvent {
                value: v,
                bytes,
                device,
                kind: MemEventKind::Prefetched,
            });
        }
    }

    /// Make room for `bytes` of new resident data on `device`, spilling
    /// victims chosen by the configured eviction policy. `pinned`
    /// values (the launching kernel's own arguments) are never evicted.
    /// A no-op under unlimited capacity or when the data already fits.
    ///
    /// # Panics
    /// Panics with an out-of-memory report when the device cannot hold
    /// the data even after evicting everything evictable. The grcuda
    /// layer raises a recoverable `LaunchError::OutOfMemory` before
    /// reaching this point whenever no device can fit the launch.
    fn ensure_fit(&mut self, device: u32, incoming: ValueId, bytes: usize, pinned: &[ValueId]) {
        let need = self.memgr.shortfall(device, bytes);
        if need == 0 {
            return;
        }
        let victims = {
            let Inner {
                memgr,
                arrays,
                engine,
                ..
            } = self;
            let topo = engine.topology();
            let link = topo.link(topo.host_link(device));
            let leg = |b: usize| link.latency + b as f64 / link.bandwidth;
            // Cost-aware victim pricing: a still-valid host copy makes
            // the spill free (the device copy is just dropped) and the
            // possible re-fetch one host-link leg; dirty data pays the
            // spill leg too — both over the device's actual link.
            memgr.select_victims(device, need, pinned, |vid, vbytes| {
                let refetch = leg(vbytes);
                match arrays[&vid].residency {
                    Residency::Device => leg(vbytes) + refetch,
                    _ => refetch,
                }
            })
        };
        let freed: usize = victims.iter().map(|vic| vic.bytes).sum();
        let cap = self
            .memgr
            .capacity(device)
            .expect("shortfall implies a capacity");
        assert!(
            self.memgr.resident_bytes(device) - freed + bytes <= cap,
            "OutOfMemory: device {device} cannot fit array {incoming:?} \
             ({bytes} B): capacity {cap} B, resident {} B of which only \
             {freed} B are evictable (the rest is pinned by the launch)",
            self.memgr.resident_bytes(device),
        );
        for victim in victims {
            self.evict(device, victim.value);
        }
    }

    /// Evict one array's device copy. Dirty copies (no valid host copy)
    /// are spilled by a real device→host bulk copy that contends on the
    /// host link and serializes through the device's D2H DMA engine,
    /// chained on whatever produced the copy; clean copies are dropped
    /// free. Either way the array becomes host-resident, and its next
    /// kernel use pays a fresh migration chained on the spill.
    fn evict(&mut self, device: u32, v: ValueId) {
        let st = self.arrays[&v].clone();
        debug_assert!(st.residency.on_device() && st.device == device);
        let spilled = if st.residency == Residency::Device {
            let dev = self.dev.clone();
            let spec = TaskSpec::bulk_copy(
                TaskKind::CopyD2H,
                format!("evict<-{v:?}"),
                u32::MAX,
                st.bytes as f64,
                &dev,
            )
            .on_device(device)
            .reading(&[v]);
            let mut deps: Vec<TaskId> = st.last_writer.into_iter().collect();
            deps.extend(self.last_d2h[device as usize]);
            let t = self.engine.submit(spec, &deps);
            self.last_d2h[device as usize] = Some(t);
            let stm = self.arrays.get_mut(&v).unwrap();
            stm.residency = Residency::Host;
            // The spill is the host copy's producer: host reads block on
            // it, and the next migration of this array chains after it.
            stm.last_writer = Some(t);
            st.bytes
        } else {
            // A valid host copy exists: drop the device copy for free.
            // The host copy never depended on the task that produced
            // the device copy (an H2D/prefetch), so clear `last_writer`
            // — a later host read must not block on it.
            let stm = self.arrays.get_mut(&v).unwrap();
            stm.residency = Residency::Host;
            stm.last_writer = None;
            0
        };
        let now = self.engine.now();
        self.memgr.remove(device, v, now);
        self.memgr.record_eviction(spilled);
        self.prefetched[device as usize].remove(&v);
        self.sync_residency_cell(v);
        if self.record_mem_events {
            self.mem_events.push(MemEvent {
                value: v,
                bytes: st.bytes,
                device,
                kind: MemEventKind::Evicted {
                    spilled: spilled > 0,
                },
            });
        }
    }

    /// Ensure a stream id exists (graph replay may ask for fresh ones).
    pub(crate) fn ensure_stream(&mut self, stream: StreamId) {
        while self.streams.len() <= stream.0 as usize {
            self.streams.push(StreamState::default());
        }
    }

    pub(crate) fn fresh_stream(&mut self) -> StreamId {
        self.streams.push(StreamState::default());
        StreamId(self.streams.len() as u32 - 1)
    }
}

fn stream_deps(streams: &[StreamState], stream: StreamId) -> Vec<TaskId> {
    streams[stream.0 as usize].last.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Grid, KernelCost};
    use std::rc::Rc;

    fn ctx() -> Cuda {
        Cuda::new(DeviceProfile::gtx1660_super())
    }

    fn simple_kernel(c: &Cuda, name: &str, arr: &UnifiedArray, ms: f64) -> KernelExec {
        let _ = c;
        KernelExec::new(
            name,
            Grid::d1(4096, 256),
            KernelCost {
                min_time: ms * 1e-3,
                ..Default::default()
            },
            vec![arr.buf.clone()],
            vec![(arr.id, false)],
            Rc::new(|_| {}),
        )
    }

    #[test]
    fn fresh_arrays_are_host_resident() {
        let c = ctx();
        let a = c.alloc_f32(1024);
        assert_eq!(c.residency(&a), Residency::Host);
        assert_eq!(a.len(), 1024);
    }

    #[test]
    fn launch_migrates_then_runs() {
        let c = ctx();
        let a = c.alloc_f32(1 << 20);
        let k = simple_kernel(&c, "k", &a, 1.0);
        let t = c.launch(c.default_stream(), &k).unwrap();
        c.task_sync(t);
        assert_eq!(c.residency(&a), Residency::Device); // kernel wrote it
        let tl = c.timeline();
        // One fault migration + one kernel.
        assert_eq!(tl.kernels().count(), 1);
        assert_eq!(tl.transfers().count(), 1);
        assert_eq!(tl.transfers().next().unwrap().kind, TaskKind::FaultH2D);
    }

    #[test]
    fn prefetch_uses_bulk_copy_and_faults_disappear() {
        let c = ctx();
        let a = c.alloc_f32(1 << 20);
        c.prefetch_async(c.default_stream(), &a);
        let k = simple_kernel(&c, "k", &a, 1.0);
        let t = c.launch(c.default_stream(), &k).unwrap();
        c.task_sync(t);
        let tl = c.timeline();
        assert_eq!(tl.of_kind(TaskKind::CopyH2D).count(), 1);
        assert_eq!(tl.of_kind(TaskKind::FaultH2D).count(), 0);
    }

    #[test]
    fn prefetch_is_faster_than_faulting() {
        let bytes = 64 << 20;
        // Faulting path:
        let c1 = ctx();
        let a1 = c1.alloc_u8(bytes);
        let k1 = simple_kernel(&c1, "k", &a1, 0.1);
        let t1 = c1.launch(c1.default_stream(), &k1).unwrap();
        c1.task_sync(t1);
        let slow = c1.now();
        // Prefetching path:
        let c2 = ctx();
        let a2 = c2.alloc_u8(bytes);
        c2.prefetch_async(c2.default_stream(), &a2);
        let k2 = simple_kernel(&c2, "k", &a2, 0.1);
        let t2 = c2.launch(c2.default_stream(), &k2).unwrap();
        c2.task_sync(t2);
        let fast = c2.now();
        assert!(slow > 1.5 * fast, "fault {slow} vs prefetch {fast}");
    }

    #[test]
    fn pre_pascal_copies_eagerly_at_full_bandwidth() {
        let c = Cuda::new(DeviceProfile::gtx960());
        let a = c.alloc_f32(1 << 20);
        // Prefetch is a no-op on Maxwell.
        assert!(c.prefetch_async(c.default_stream(), &a).is_none());
        let k = simple_kernel(&c, "k", &a, 1.0);
        let t = c.launch(c.default_stream(), &k).unwrap();
        c.task_sync(t);
        let tl = c.timeline();
        assert_eq!(tl.of_kind(TaskKind::CopyH2D).count(), 1);
        assert_eq!(tl.of_kind(TaskKind::FaultH2D).count(), 0);
    }

    #[test]
    fn stream_ordering_is_fifo() {
        let c = ctx();
        let a = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        let k1 = simple_kernel(&c, "k1", &a, 1.0);
        let k2 = simple_kernel(&c, "k2", &a, 1.0);
        let s = c.default_stream();
        c.launch(s, &k1);
        let t2 = c.launch(s, &k2).unwrap();
        c.task_sync(t2);
        let tl = c.timeline();
        let ks: Vec<_> = tl.kernels().collect();
        assert_eq!(ks.len(), 2);
        // Issue order on the same stream: k1 ends before k2 starts.
        let k1iv = ks.iter().find(|iv| iv.label == "k1").unwrap();
        let k2iv = ks.iter().find(|iv| iv.label == "k2").unwrap();
        assert!(k1iv.end <= k2iv.start + 1e-12);
    }

    #[test]
    fn events_synchronize_across_streams() {
        let c = ctx();
        let a = c.alloc_f32(16);
        let b = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        c.prefetch_async(c.default_stream(), &b);
        c.device_sync();
        let s1 = c.stream_create();
        let s2 = c.stream_create();
        let ka = simple_kernel(&c, "producer", &a, 2.0);
        c.launch(s1, &ka);
        let ev = c.event_record(s1);
        c.stream_wait_event(s2, ev);
        let kb = simple_kernel(&c, "consumer", &b, 1.0);
        let t = c.launch(s2, &kb).unwrap();
        c.task_sync(t);
        let tl = c.timeline();
        let prod = tl.kernels().find(|iv| iv.label == "producer").unwrap();
        let cons = tl.kernels().find(|iv| iv.label == "consumer").unwrap();
        assert!(
            cons.start >= prod.end - 1e-12,
            "consumer must wait for the event"
        );
    }

    #[test]
    fn independent_streams_overlap() {
        let c = ctx();
        let a = c.alloc_f32(16);
        let b = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        c.prefetch_async(c.default_stream(), &b);
        c.device_sync();
        let t0 = c.now();
        let s1 = c.stream_create();
        let s2 = c.stream_create();
        // Two small-occupancy kernels.
        let mk = |name: &str, arr: &UnifiedArray| {
            KernelExec::new(
                name,
                Grid::d1(64, 32),
                KernelCost {
                    min_time: 1e-3,
                    ..Default::default()
                },
                vec![arr.buf.clone()],
                vec![(arr.id, false)],
                Rc::new(|_| {}),
            )
        };
        c.launch(s1, &mk("a", &a));
        c.launch(s2, &mk("b", &b));
        c.device_sync();
        let span = c.now() - t0;
        assert!(span < 1.5e-3, "kernels must space-share: span = {span}");
    }

    #[test]
    fn host_read_of_device_data_costs_a_migration() {
        let c = ctx();
        let a = c.alloc_f32(1 << 20);
        let k = simple_kernel(&c, "k", &a, 0.5);
        let t = c.launch(c.default_stream(), &k).unwrap();
        c.task_sync(t);
        assert_eq!(c.residency(&a), Residency::Device);
        let dt = c.host_read(&a, 4);
        assert!(dt > 0.0);
        assert_eq!(c.residency(&a), Residency::Both);
        // Second read is free.
        assert_eq!(c.host_read(&a, 4), 0.0);
    }

    #[test]
    fn host_written_invalidates_device_copy() {
        let c = ctx();
        let a = c.alloc_f32(1024);
        let k = simple_kernel(&c, "k", &a, 0.1);
        let t = c.launch(c.default_stream(), &k).unwrap();
        c.task_sync(t);
        c.host_written(&a);
        assert_eq!(c.residency(&a), Residency::Host);
    }

    #[test]
    fn stream_query_tracks_completion() {
        let c = ctx();
        let a = c.alloc_f32(16);
        let s = c.default_stream();
        assert!(c.stream_query(s));
        let k = simple_kernel(&c, "k", &a, 1.0);
        c.launch(s, &k);
        assert!(!c.stream_query(s));
        c.stream_sync(s);
        assert!(c.stream_query(s));
    }

    #[test]
    fn functional_payload_runs_at_completion() {
        let c = ctx();
        let a = c.alloc_f32(4);
        let exec = KernelExec::new(
            "fill7",
            Grid::d1(1, 32),
            KernelCost {
                min_time: 1e-4,
                ..Default::default()
            },
            vec![a.buf.clone()],
            vec![(a.id, false)],
            Rc::new(|bufs: &[gpu_sim::DataBuffer]| {
                for x in bufs[0].as_f32_mut().iter_mut() {
                    *x = 7.0;
                }
            }),
        );
        let t = c.launch(c.default_stream(), &exec).unwrap();
        assert_eq!(a.buf.as_f32()[0], 0.0, "not yet executed in virtual time");
        c.task_sync(t);
        assert_eq!(*a.buf.as_f32(), vec![7.0; 4]);
    }

    #[test]
    fn cross_device_migration_is_charged_and_ordered() {
        let c = Cuda::new_multi(DeviceProfile::tesla_p100(), 2);
        let bytes = 4 << 20;
        let a = c.alloc_f32(bytes / 4);
        let s0 = c.default_stream();
        let s1 = c.stream_create_on(1);
        assert_eq!(c.stream_device(s0), 0);
        assert_eq!(c.stream_device(s1), 1);
        let k = simple_kernel(&c, "produce", &a, 1.0);
        c.launch(s0, &k);
        assert_eq!(c.device_residency(&a), Some(0));
        // Consuming on device 1 must migrate device 0's copy through the
        // host without blocking it, preserving causality.
        let k2 = simple_kernel(&c, "consume", &a, 1.0);
        let t = c.launch(s1, &k2).unwrap();
        c.task_sync(t);
        let (migs, mig_bytes) = c.migration_stats();
        assert_eq!(migs, 1);
        assert_eq!(mig_bytes, bytes);
        assert!(c.races().is_empty());
        let tl = c.timeline();
        let prod = tl.kernels().find(|iv| iv.label == "produce").unwrap();
        let cons = tl.kernels().find(|iv| iv.label == "consume").unwrap();
        assert_eq!((prod.device, cons.device), (0, 1));
        assert!(
            cons.start >= prod.end - 1e-12,
            "consumer must wait for the migrated data"
        );
        assert_eq!(c.device_residency(&a), Some(1), "kernel wrote on device 1");
        assert_eq!(tl.devices_used(), vec![0, 1]);
    }

    #[test]
    fn linked_devices_migrate_peer_to_peer() {
        // Same producer/consumer chain as the host-mediated test, but on
        // an NVLink pair: one direct P2P copy, no D2H staging leg, and
        // the data arrives strictly faster than over the host path.
        let run = |kind: TopologyKind| {
            let c = Cuda::new_multi_topo(DeviceProfile::tesla_p100(), 2, kind);
            let bytes = 16 << 20;
            let a = c.alloc_f32(bytes / 4);
            let s1 = c.stream_create_on(1);
            let k = simple_kernel(&c, "produce", &a, 1.0);
            c.launch(c.default_stream(), &k);
            let k2 = simple_kernel(&c, "consume", &a, 1.0);
            let t = c.launch(s1, &k2).unwrap();
            c.task_sync(t);
            assert!(c.races().is_empty());
            c
        };
        let host = run(TopologyKind::PcieOnly);
        let p2p = run(TopologyKind::NvlinkPair);

        assert_eq!(host.p2p_migration_stats(), (0, 0));
        assert_eq!(host.migration_stats(), host.host_migration_stats());
        let tl = host.timeline();
        assert_eq!(tl.of_kind(TaskKind::CopyP2P).count(), 0);
        assert!(tl.of_kind(TaskKind::CopyD2H).count() >= 1, "staging leg");

        assert_eq!(p2p.migration_stats(), (1, 16 << 20));
        assert_eq!(p2p.p2p_migration_stats(), (1, 16 << 20));
        assert_eq!(p2p.host_migration_stats(), (0, 0));
        let tl = p2p.timeline();
        assert_eq!(tl.of_kind(TaskKind::CopyP2P).count(), 1);
        assert_eq!(tl.of_kind(TaskKind::CopyD2H).count(), 0, "no staging");
        let copy = tl.of_kind(TaskKind::CopyP2P).next().unwrap();
        let lid = p2p.topology().d2d_link(0, 1).unwrap();
        assert_eq!(copy.link, Some(lid.0));
        // Ordering held: consumer waits for the P2P copy.
        let prod = tl.kernels().find(|iv| iv.label == "produce").unwrap();
        let cons = tl.kernels().find(|iv| iv.label == "consume").unwrap();
        assert!(copy.start >= prod.end - 1e-12);
        assert!(cons.start >= copy.end - 1e-12);
        // And the whole chain finishes sooner than host-mediated.
        assert!(
            p2p.now() < host.now(),
            "p2p {} vs host-mediated {}",
            p2p.now(),
            host.now()
        );
        // Migration traffic landed on the peer link, not the host links.
        let traffic = p2p.link_traffic();
        assert_eq!(traffic[lid.0 as usize].1, 1);
        assert!((traffic[lid.0 as usize].0 - (16 << 20) as f64).abs() < 0.5);
        assert!(
            p2p.host_link_bytes() < host.host_link_bytes(),
            "p2p must take migration bytes off the host links"
        );
    }

    #[test]
    fn prefetch_uses_the_peer_link_when_available() {
        let c = Cuda::new_multi_topo(DeviceProfile::tesla_p100(), 2, TopologyKind::FullyConnected);
        let a = c.alloc_f32(1 << 20);
        let s1 = c.stream_create_on(1);
        let k = simple_kernel(&c, "produce", &a, 0.5);
        c.launch(c.default_stream(), &k);
        assert_eq!(c.device_residency(&a), Some(0));
        let t = c.prefetch_async(s1, &a).expect("cross-device prefetch");
        c.task_sync(t);
        assert_eq!(c.device_residency(&a), Some(1));
        assert_eq!(
            c.residency(&a),
            Residency::Device,
            "p2p leaves the host copy stale"
        );
        let tl = c.timeline();
        assert_eq!(tl.of_kind(TaskKind::CopyP2P).count(), 1);
        assert_eq!(tl.of_kind(TaskKind::CopyD2H).count(), 0);
        assert_eq!(c.p2p_migration_stats().0, 1);
    }

    #[test]
    fn transfer_time_estimates_follow_the_links() {
        let c = Cuda::new_multi_topo(DeviceProfile::tesla_p100(), 4, TopologyKind::NvlinkPair);
        let dev = c.device();
        let n = 1 << 20;
        let bytes = (n * 4) as f64;
        let host_leg = gpu_sim::topology::HOST_LINK_LATENCY + bytes / dev.pcie_bw;
        let a = c.alloc_f32(n);
        // Host-resident: one H2D leg (latency + transfer) to any device.
        for d in 0..4 {
            assert!((c.transfer_time_estimate(&a, d) - host_leg).abs() < 1e-12);
        }
        // Device-only on dev 0 after a writing kernel.
        let k = simple_kernel(&c, "w", &a, 0.1);
        let t = c.launch(c.default_stream(), &k).unwrap();
        c.task_sync(t);
        assert_eq!(c.transfer_time_estimate(&a, 0), 0.0);
        let linked = c.transfer_time_estimate(&a, 1);
        let crossed = c.transfer_time_estimate(&a, 2);
        assert!(
            linked < host_leg,
            "nvlink beats even one PCIe leg: {linked}"
        );
        assert!(
            (crossed - 2.0 * host_leg).abs() < 1e-12,
            "host-mediated pays both legs, setup latency included"
        );
        // After a host read the copy is valid on both sides: one H2D leg
        // to anywhere else, free where it lives.
        c.host_read(&a, n * 4);
        assert_eq!(c.transfer_time_estimate(&a, 0), 0.0);
        assert!((c.transfer_time_estimate(&a, 2) - host_leg).abs() < 1e-12);
        // Small arrays: the peer link's low latency must keep the direct
        // hop cheaper than a host-mediated round trip.
        let small = c.alloc_f32(64);
        let ks = simple_kernel(&c, "ws", &small, 0.01);
        let ts = c.launch(c.default_stream(), &ks).unwrap();
        c.task_sync(ts);
        assert!(
            c.transfer_time_estimate(&small, 1) < c.transfer_time_estimate(&small, 2),
            "linked hop must beat the two-leg host route even for tiny arrays"
        );
    }

    #[test]
    fn same_link_same_direction_p2p_copies_serialize() {
        let c = Cuda::new_multi_topo(DeviceProfile::tesla_p100(), 2, TopologyKind::NvlinkPair);
        let n = 4 << 20;
        let a = c.alloc_f32(n / 4);
        let b = c.alloc_f32(n / 4);
        let s0 = c.default_stream();
        let s0b = c.stream_create_on(0);
        let ka = simple_kernel(&c, "wa", &a, 0.1);
        let kb = simple_kernel(&c, "wb", &b, 0.1);
        c.launch(s0, &ka);
        c.launch(s0b, &kb);
        c.device_sync();
        let s1 = c.stream_create_on(1);
        let s1b = c.stream_create_on(1);
        c.prefetch_async(s1, &a);
        c.prefetch_async(s1b, &b);
        c.device_sync();
        let tl = c.timeline();
        let copies: Vec<_> = tl.of_kind(TaskKind::CopyP2P).collect();
        assert_eq!(copies.len(), 2);
        let (first, second) = if copies[0].start <= copies[1].start {
            (copies[0], copies[1])
        } else {
            (copies[1], copies[0])
        };
        assert!(
            second.start >= first.end - 1e-12,
            "same-direction peer copies share one DMA engine"
        );
    }

    #[test]
    fn host_staged_data_reaches_other_devices_without_migration() {
        // Fresh host data is placement-neutral: any device takes it with
        // a plain H2D, never a cross-device migration.
        let c = Cuda::new_multi(DeviceProfile::tesla_p100(), 2);
        let a = c.alloc_f32(1 << 18);
        let b = c.alloc_f32(1 << 18);
        let s1 = c.stream_create_on(1);
        let k = simple_kernel(&c, "k0", &a, 0.5);
        c.launch(c.default_stream(), &k);
        let k1 = simple_kernel(&c, "k1", &b, 0.5);
        let t = c.launch(s1, &k1).unwrap();
        c.task_sync(t);
        c.device_sync();
        assert_eq!(c.migration_stats(), (0, 0));
        assert!(c.races().is_empty());
    }

    fn limited_ctx(capacity: usize, policy: gpu_sim::EvictionPolicy) -> Cuda {
        let dev = DeviceProfile::tesla_p100();
        let topo = gpu_sim::Topology::preset(TopologyKind::PcieOnly, 1, &dev)
            .with_memory(gpu_sim::MemoryConfig::with_capacity(capacity).with_eviction(policy));
        Cuda::with_topology(dev, topo)
    }

    #[test]
    fn oversubscription_evicts_and_refetches_correct_values() {
        // Capacity fits two of the three arrays: the third launch must
        // evict, and later re-use must re-fetch — with correct numbers.
        let n = 1 << 10; // 4 KiB per array
        let c = limited_ctx(2 * 4 * n, gpu_sim::EvictionPolicy::Lru);
        let arrays: Vec<_> = (0..3).map(|_| c.alloc_f32(n)).collect();
        let s = c.default_stream();
        for round in 0..2 {
            for (i, a) in arrays.iter().enumerate() {
                let exec = KernelExec::new(
                    "inc",
                    Grid::d1(4, 256),
                    KernelCost {
                        min_time: 1e-4,
                        ..Default::default()
                    },
                    vec![a.buf.clone()],
                    vec![(a.id, false)],
                    Rc::new(|bufs: &[gpu_sim::DataBuffer]| {
                        for x in bufs[0].as_f32_mut().iter_mut() {
                            *x += 1.0;
                        }
                    }),
                );
                let t = c.launch(s, &exec).unwrap();
                c.task_sync(t);
                assert_eq!(a.resident_device(), Some(0), "round {round} array {i}");
                let st = c.memory_stats();
                assert!(st.resident_bytes[0] <= 2 * 4 * n);
            }
        }
        let st = c.memory_stats();
        assert!(st.evictions >= 3, "three-array cycle must thrash: {st:?}");
        assert!(
            st.spilled_bytes >= 4 * n,
            "dirty copies must spill over the host link: {st:?}"
        );
        assert_eq!(st.peak_resident[0], 2 * 4 * n);
        // The spills are real timeline transfers, and the numbers are
        // exactly two increments per element despite the thrashing.
        let tl = c.timeline();
        assert!(tl
            .transfers()
            .any(|iv| iv.label.starts_with("evict<-") && iv.kind == TaskKind::CopyD2H));
        for a in &arrays {
            c.host_read(a, 4 * n);
            assert_eq!(a.buf.as_f32()[7], 2.0);
        }
        assert!(c.races().is_empty());
        // The resident-bytes timeline recorded the pressure.
        let mt = c.memory_timeline();
        assert!(mt[0].iter().any(|&(_, b)| b == 2 * 4 * n));
        assert!(mt[0].windows(2).all(|w| w[0].0 <= w[1].0), "time-ordered");
    }

    #[test]
    fn clean_copies_are_dropped_free_dirty_ones_spill() {
        let n = 1 << 10;
        let bytes = 4 * n;
        // Room for exactly one array.
        let c = limited_ctx(bytes, gpu_sim::EvictionPolicy::CostAware);
        let clean = c.alloc_f32(n);
        let dirty = c.alloc_f32(n);
        let s = c.default_stream();
        // `clean` is prefetched (Both: valid host copy), then `dirty` is
        // written by a kernel — evicting `clean` must move zero bytes.
        c.prefetch_async(s, &clean);
        let k = simple_kernel(&c, "w", &dirty, 0.1);
        let t = c.launch(s, &k).unwrap();
        c.task_sync(t);
        let st = c.memory_stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.spilled_bytes, 0, "clean eviction is a free drop");
        assert_eq!(clean.resident_device(), None);
        assert_eq!(dirty.resident_device(), Some(0));
        // Now the dirty array is the victim: its eviction must spill.
        let k2 = simple_kernel(&c, "w2", &clean, 0.1);
        let t2 = c.launch(s, &k2).unwrap();
        c.task_sync(t2);
        let st = c.memory_stats();
        assert_eq!(st.evictions, 2);
        assert_eq!(st.spilled_bytes, bytes, "dirty eviction pays a D2H spill");
        assert_eq!(
            c.timeline()
                .transfers()
                .filter(|iv| iv.label.starts_with("evict<-"))
                .count(),
            1
        );
    }

    #[test]
    fn cost_aware_eviction_prefers_clean_victims_over_lru_order() {
        let n = 1 << 10;
        let bytes = 4 * n;
        let run = |policy| {
            let c = limited_ctx(2 * bytes, policy);
            let s = c.default_stream();
            let clean = c.alloc_f32(n);
            let dirty = c.alloc_f32(n);
            let third = c.alloc_f32(n);
            // Dirty first (kernel write), clean second (prefetch): LRU
            // order says evict `dirty`, cost order says drop `clean`.
            let k = simple_kernel(&c, "w", &dirty, 0.1);
            let t = c.launch(s, &k).unwrap();
            c.task_sync(t);
            c.prefetch_async(s, &clean);
            c.device_sync();
            let k3 = simple_kernel(&c, "w3", &third, 0.1);
            let t3 = c.launch(s, &k3).unwrap();
            c.task_sync(t3);
            c.memory_stats()
        };
        let lru = run(gpu_sim::EvictionPolicy::Lru);
        assert_eq!(lru.evictions, 1);
        assert_eq!(lru.spilled_bytes, bytes, "LRU evicts the dirty array");
        let cost = run(gpu_sim::EvictionPolicy::CostAware);
        assert_eq!(cost.evictions, 1);
        assert_eq!(cost.spilled_bytes, 0, "cost-aware drops the clean copy");
    }

    #[test]
    fn largest_first_frees_with_fewest_victims() {
        let small = 1 << 8;
        let big = 1 << 11;
        let c = limited_ctx(4 * (small + big), gpu_sim::EvictionPolicy::LargestFirst);
        let s = c.default_stream();
        let a_small = c.alloc_f32(small);
        let a_big = c.alloc_f32(big);
        c.prefetch_async(s, &a_small);
        c.prefetch_async(s, &a_big);
        c.device_sync();
        // A mid-sized incomer: largest-first evicts only the big array.
        let mid = c.alloc_f32(1 << 10);
        c.prefetch_async(s, &mid); // no headroom: prefetch skipped
        assert_eq!(mid.resident_device(), None);
        let k = simple_kernel(&c, "w", &mid, 0.1);
        let t = c.launch(s, &k).unwrap();
        c.task_sync(t);
        let st = c.memory_stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(a_big.resident_device(), None, "big victim goes first");
        assert_eq!(a_small.resident_device(), Some(0));
        assert_eq!(st.prefetch_skipped, 1, "headroom-less prefetch skipped");
    }

    #[test]
    fn prefetch_hits_are_counted_at_launch() {
        let c = limited_ctx(1 << 20, gpu_sim::EvictionPolicy::Lru);
        let a = c.alloc_f32(1 << 10);
        let s = c.default_stream();
        c.prefetch_async(s, &a);
        let st = c.memory_stats();
        assert_eq!((st.prefetch_issued, st.prefetch_hits), (1, 0));
        let k = simple_kernel(&c, "k", &a, 0.1);
        let t = c.launch(s, &k).unwrap();
        c.task_sync(t);
        let st = c.memory_stats();
        assert_eq!(st.prefetch_hits, 1);
        assert!((st.prefetch_hit_rate() - 1.0).abs() < 1e-12);
        // A second launch of the same (now resident) array is not
        // another hit: the credit is consumed once.
        let k2 = simple_kernel(&c, "k2", &a, 0.1);
        let t2 = c.launch(s, &k2).unwrap();
        c.task_sync(t2);
        assert_eq!(c.memory_stats().prefetch_hits, 1);
    }

    #[test]
    fn host_read_of_spilled_array_waits_for_the_spill() {
        let n = 1 << 20; // 4 MiB arrays, big enough to time
        let c = limited_ctx(4 * n, gpu_sim::EvictionPolicy::Lru);
        let s = c.default_stream();
        let a = c.alloc_f32(n);
        let b = c.alloc_f32(n);
        let k = simple_kernel(&c, "wa", &a, 0.1);
        c.launch(s, &k);
        // Launching on b evicts dirty a: the spill D2H is now in flight.
        let k2 = simple_kernel(&c, "wb", &b, 0.1);
        c.launch(s, &k2);
        assert_eq!(c.residency(&a), Residency::Host, "a was spilled");
        let t0 = c.now();
        let dt = c.host_read(&a, 4);
        assert!(
            dt > 0.0 && c.now() > t0,
            "the read must block until the spill copy lands"
        );
        c.device_sync();
        // Exactly two transfers ever involve `a`: its initial fault
        // migration in and the eviction spill out — the blocked read
        // charged no third one.
        let tl = c.timeline();
        let a_label = format!("{:?}", a.id);
        assert_eq!(
            tl.transfers()
                .filter(|iv| iv.label.contains(&a_label))
                .count(),
            2
        );
        assert!(c.races().is_empty());
    }

    #[test]
    fn unlimited_contexts_never_evict_and_skip_sampling() {
        let c = ctx();
        let a = c.alloc_f32(1 << 20);
        c.prefetch_async(c.default_stream(), &a);
        c.device_sync();
        assert!(!c.memory_limited());
        assert_eq!(c.free_device_bytes(0), usize::MAX);
        let st = c.memory_stats();
        assert_eq!(st.evictions, 0);
        assert_eq!(st.capacity, None);
        assert_eq!(st.resident_bytes[0], 4 << 20, "residency is still tracked");
        assert!(
            c.memory_timeline()[0].is_empty(),
            "no samples when unlimited"
        );
        assert_eq!(a.resident_device(), Some(0));
    }

    #[test]
    fn mem_events_record_evictions_and_prefetches_when_enabled() {
        use crate::memory::MemEventKind;
        let n = 1 << 10;
        let c = limited_ctx(4 * n, gpu_sim::EvictionPolicy::Lru);
        let s = c.default_stream();
        let a = c.alloc_f32(n);
        let b = c.alloc_f32(n);
        // Disabled by default: nothing accumulates.
        c.prefetch_async(s, &a);
        assert!(c.take_mem_events().is_empty());
        c.record_mem_events(true);
        let k = simple_kernel(&c, "wb", &b, 0.1);
        let t = c.launch(s, &k).unwrap();
        c.task_sync(t);
        let events = c.take_mem_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].value, a.id);
        assert_eq!(
            events[0].kind,
            MemEventKind::Evicted { spilled: false },
            "the prefetched copy was clean"
        );
        assert!(c.take_mem_events().is_empty(), "take drains");
        // Free the device (invalidate b's copy) so the next prefetch
        // has headroom and is actually issued — and recorded.
        c.host_written(&b);
        c.prefetch_async(s, &a);
        let events = c.take_mem_events();
        assert!(events
            .iter()
            .any(|e| e.kind == MemEventKind::Prefetched && e.value == a.id));
    }

    #[test]
    fn a_single_array_larger_than_capacity_fails_loudly() {
        let c = limited_ctx(1 << 10, gpu_sim::EvictionPolicy::Lru);
        let a = c.alloc_f32(1 << 10); // 4 KiB > 1 KiB capacity
        let k = simple_kernel(&c, "k", &a, 0.1);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.launch(c.default_stream(), &k)
        }));
        let msg = *res.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("OutOfMemory"), "got: {msg}");
    }

    #[test]
    fn missing_sync_between_conflicting_streams_is_a_race() {
        let c = ctx();
        let a = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        c.device_sync();
        let s1 = c.stream_create();
        let s2 = c.stream_create();
        let k1 = simple_kernel(&c, "w1", &a, 1.0);
        let k2 = simple_kernel(&c, "w2", &a, 1.0);
        c.launch(s1, &k1);
        c.launch(s2, &k2); // no event: both write `a` concurrently
        c.device_sync();
        assert!(
            !c.races().is_empty(),
            "unsynchronized writers must be flagged"
        );
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use gpu_sim::{Grid, KernelCost};
    use std::rc::Rc;

    fn simple_kernel(c: &Cuda, name: &str, arr: &UnifiedArray, ms: f64) -> KernelExec {
        let _ = c;
        KernelExec::new(
            name,
            Grid::d1(4096, 256),
            KernelCost {
                min_time: ms * 1e-3,
                ..Default::default()
            },
            vec![arr.buf.clone()],
            vec![(arr.id, false)],
            Rc::new(|_| {}),
        )
    }

    #[test]
    fn event_sync_blocks_until_the_event() {
        let c = Cuda::new(DeviceProfile::gtx1660_super());
        let a = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        let k = KernelExec::new(
            "k",
            Grid::d1(64, 256),
            KernelCost {
                min_time: 2e-3,
                ..Default::default()
            },
            vec![a.buf.clone()],
            vec![(a.id, false)],
            Rc::new(|_| {}),
        );
        let s = c.stream_create();
        c.launch(s, &k);
        let ev = c.event_record(s);
        assert!(!c.stream_query(s));
        c.event_sync(ev);
        assert!(c.stream_query(s));
        assert!(c.now() >= 2e-3);
    }

    #[test]
    fn host_spin_lets_background_work_finish() {
        let c = Cuda::new(DeviceProfile::tesla_p100());
        let a = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        let k = KernelExec::new(
            "k",
            Grid::d1(64, 256),
            KernelCost {
                min_time: 1e-3,
                ..Default::default()
            },
            vec![a.buf.clone()],
            vec![(a.id, false)],
            Rc::new(|_| {}),
        );
        c.launch(c.default_stream(), &k);
        c.host_spin(5e-3);
        assert!(
            c.stream_query(c.default_stream()),
            "work must finish in the background"
        );
    }

    #[test]
    fn same_direction_copies_serialize_through_the_dma_engine() {
        let c = Cuda::new(DeviceProfile::tesla_p100());
        let n = 12 << 20;
        let a = c.alloc_u8(n);
        let b = c.alloc_u8(n);
        let s1 = c.stream_create();
        let s2 = c.stream_create();
        c.prefetch_async(s1, &a);
        c.prefetch_async(s2, &b);
        c.device_sync();
        let tl = c.timeline();
        let copies: Vec<_> = tl.of_kind(gpu_sim::TaskKind::CopyH2D).collect();
        assert_eq!(copies.len(), 2);
        // Even on different streams, the second copy starts only after
        // the first ends (single H2D DMA engine).
        let (first, second) = if copies[0].start <= copies[1].start {
            (copies[0], copies[1])
        } else {
            (copies[1], copies[0])
        };
        assert!(second.start >= first.end - 1e-12, "copies must serialize");
    }

    #[test]
    fn stream_count_tracks_creation() {
        let c = Cuda::new(DeviceProfile::gtx960());
        assert_eq!(c.stream_count(), 1); // default stream
        c.stream_create();
        c.stream_create();
        assert_eq!(c.stream_count(), 3);
    }

    #[test]
    fn residency_roundtrip_host_device_host() {
        let c = Cuda::new(DeviceProfile::tesla_p100());
        let a = c.alloc_f32(1024);
        assert_eq!(c.residency(&a), Residency::Host);
        let k = KernelExec::new(
            "w",
            Grid::d1(16, 64),
            KernelCost {
                min_time: 1e-5,
                ..Default::default()
            },
            vec![a.buf.clone()],
            vec![(a.id, false)],
            Rc::new(|_| {}),
        );
        let t = c.launch(c.default_stream(), &k).unwrap();
        c.task_sync(t);
        assert_eq!(c.residency(&a), Residency::Device);
        c.host_read(&a, 4096);
        assert_eq!(c.residency(&a), Residency::Both);
        c.host_written(&a);
        assert_eq!(c.residency(&a), Residency::Host);
    }

    #[test]
    fn cross_node_migrations_route_over_the_nic_link() {
        let dev = DeviceProfile::tesla_p100();
        let topo = gpu_sim::Cluster::new(
            2,
            2,
            TopologyKind::PcieOnly,
            gpu_sim::NicKind::InfinibandHdr,
        )
        .build(&dev);
        let c = Cuda::with_topology(dev, topo.clone());
        let a = c.alloc_f32(1 << 20);
        let k0 = simple_kernel(&c, "produce", &a, 0.5);
        c.launch(c.default_stream(), &k0);
        // The producing kernel wrote `a` on device 0: the estimates must
        // price the NIC leg into cross-node candidates only.
        let same_node = c.transfer_time_estimate(&a, 1);
        let cross_node = c.transfer_time_estimate(&a, 2);
        assert!(
            cross_node > same_node,
            "cross-node route must cost more: {cross_node} vs {same_node}"
        );
        // Consume on device 2 — the other node: the migration routes
        // GPU→host→NIC→host→GPU.
        let s2 = c.stream_create_on(2);
        let k2 = simple_kernel(&c, "consume", &a, 0.5);
        let t = c.launch(s2, &k2).unwrap();
        c.task_sync(t);
        let (n, bytes) = c.cross_node_migration_stats();
        assert_eq!(n, 1);
        assert_eq!(bytes, 4 << 20);
        // The NIC link carried exactly that transfer.
        let nic = topo.nic_link(0, 1).unwrap();
        let traffic = c.link_traffic();
        assert_eq!(traffic[nic.0 as usize].1, 1);
        assert!((traffic[nic.0 as usize].0 - (4 << 20) as f64).abs() < 1.0);
        assert_eq!(c.races().len(), 0);
    }

    #[test]
    fn same_node_migrations_pay_no_nic_leg() {
        let dev = DeviceProfile::tesla_p100();
        let topo = gpu_sim::Cluster::new(
            2,
            2,
            TopologyKind::PcieOnly,
            gpu_sim::NicKind::InfinibandHdr,
        )
        .build(&dev);
        let c = Cuda::with_topology(dev, topo.clone());
        let a = c.alloc_f32(1 << 18);
        let k0 = simple_kernel(&c, "produce", &a, 0.5);
        c.launch(c.default_stream(), &k0);
        // Consume on device 1 — same node: host-mediated, no NIC leg.
        let s1 = c.stream_create_on(1);
        let k1 = simple_kernel(&c, "consume", &a, 0.5);
        let t = c.launch(s1, &k1).unwrap();
        c.task_sync(t);
        assert_eq!(c.cross_node_migration_stats(), (0, 0));
        assert!(c.migration_stats().0 >= 1, "the migration itself happened");
        let nic = topo.nic_link(0, 1).unwrap();
        assert_eq!(c.link_traffic()[nic.0 as usize], (0.0, 0));
    }
}
