//! The simulated CUDA context: streams, events, launches, unified-memory
//! management and host synchronization.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use gpu_sim::{
    DeviceProfile, Engine, EngineStats, RaceReport, TaskId, TaskKind, TaskSpec, Time, Timeline,
    TypedData, ValueId,
};

use crate::exec::KernelExec;
use crate::graph::CaptureState;
use crate::memory::{ArrayState, Residency, UnifiedArray};

/// Handle to an in-order execution stream. Stream 0 is the default
/// stream and always exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

/// Handle to a recorded event (a precise synchronization point on a
/// stream, `cudaEventRecord` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId(pub(crate) u32);

#[derive(Debug, Clone)]
pub(crate) enum EventTarget {
    /// Normal execution: the event is a completed-or-pending engine task.
    Task(TaskId),
    /// Recorded during stream capture: the event names a graph node.
    CaptureNode(u32),
}

#[derive(Debug, Default)]
struct StreamState {
    last: Option<TaskId>,
}

pub(crate) struct Inner {
    pub(crate) engine: Engine,
    pub(crate) dev: DeviceProfile,
    arrays: HashMap<ValueId, ArrayState>,
    next_value: u64,
    streams: Vec<StreamState>,
    pub(crate) events: Vec<EventTarget>,
    pub(crate) capture: Option<CaptureState>,
    /// Bulk copies in the same direction serialize through a single DMA
    /// copy engine, like real hardware — the reason the paper's VEC
    /// benchmark shows zero computation/computation overlap: the second
    /// vector's data arrives only after the first vector's copy is done.
    last_h2d: Option<TaskId>,
    /// Reserved for explicit D2H copy APIs (host reads currently block
    /// the virtual host, so ordering is implicit).
    #[allow(dead_code)]
    last_d2h: Option<TaskId>,
}

/// A simulated CUDA device context. Cheap to clone; clones share the
/// same device state (like sharing a `CUcontext`).
#[derive(Clone)]
pub struct Cuda {
    pub(crate) inner: Rc<RefCell<Inner>>,
}

impl Cuda {
    /// Create a context for the given device profile.
    pub fn new(dev: DeviceProfile) -> Self {
        let engine = Engine::new(dev.clone());
        Cuda {
            inner: Rc::new(RefCell::new(Inner {
                engine,
                dev,
                arrays: HashMap::new(),
                next_value: 0,
                streams: vec![StreamState::default()], // default stream
                events: Vec::new(),
                capture: None,
                last_h2d: None,
                last_d2h: None,
            })),
        }
    }

    /// The device profile this context simulates.
    pub fn device(&self) -> DeviceProfile {
        self.inner.borrow().dev.clone()
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> Time {
        self.inner.borrow().engine.now()
    }

    /// The default stream.
    pub fn default_stream(&self) -> StreamId {
        StreamId(0)
    }

    /// Create a new independent stream.
    pub fn stream_create(&self) -> StreamId {
        let mut inner = self.inner.borrow_mut();
        inner.streams.push(StreamState::default());
        StreamId(inner.streams.len() as u32 - 1)
    }

    /// Number of streams ever created (including the default stream).
    pub fn stream_count(&self) -> usize {
        self.inner.borrow().streams.len()
    }

    // ------------------------------------------------------------------
    // memory
    // ------------------------------------------------------------------

    /// Allocate a unified-memory array of `n` f32 elements (GrCUDA's
    /// `float[n]`). Fresh allocations are host-resident.
    pub fn alloc_f32(&self, n: usize) -> UnifiedArray {
        self.alloc(TypedData::F32(vec![0.0; n]))
    }

    /// Allocate a unified-memory array of `n` f64 elements.
    pub fn alloc_f64(&self, n: usize) -> UnifiedArray {
        self.alloc(TypedData::F64(vec![0.0; n]))
    }

    /// Allocate a unified-memory array of `n` i32 elements.
    pub fn alloc_i32(&self, n: usize) -> UnifiedArray {
        self.alloc(TypedData::I32(vec![0; n]))
    }

    /// Allocate a unified-memory array of `n` bytes.
    pub fn alloc_u8(&self, n: usize) -> UnifiedArray {
        self.alloc(TypedData::U8(vec![0; n]))
    }

    fn alloc(&self, data: TypedData) -> UnifiedArray {
        let mut inner = self.inner.borrow_mut();
        let id = ValueId(inner.next_value);
        inner.next_value += 1;
        let arr = UnifiedArray::new(id, data);
        inner.arrays.insert(
            id,
            ArrayState {
                residency: Residency::Host,
                bytes: arr.byte_len(),
            },
        );
        arr
    }

    /// Residency of an allocation.
    pub fn residency(&self, a: &UnifiedArray) -> Residency {
        self.inner.borrow().arrays[&a.id].residency
    }

    /// Mark the host copy as modified (CPU wrote the array): the device
    /// copy, if any, is invalidated. Benchmarks call this after filling
    /// inputs. The caller is responsible for having synchronized; a
    /// concurrent GPU user will be flagged by the race detector at the
    /// next launch.
    pub fn host_written(&self, a: &UnifiedArray) {
        let mut inner = self.inner.borrow_mut();
        inner
            .arrays
            .get_mut(&a.id)
            .expect("unknown array")
            .residency = Residency::Host;
    }

    /// Model the CPU touching `bytes` of the array (e.g. reading a
    /// result). If the current copy is on the device, an on-demand
    /// migration is simulated and the host blocks on it. Returns the
    /// simulated cost in seconds.
    pub fn host_read(&self, a: &UnifiedArray, bytes: usize) -> Time {
        let mut inner = self.inner.borrow_mut();
        let t0 = inner.engine.now();
        let st = inner.arrays.get(&a.id).expect("unknown array").residency;
        if !st.on_host() {
            let dev = inner.dev.clone();
            let spec = if dev.supports_page_faults() {
                TaskSpec::fault_migration(
                    TaskKind::FaultD2H,
                    format!("umfault<-{:?}", a.id),
                    u32::MAX,
                    bytes as f64,
                    &dev,
                )
                .reading(&[a.id])
            } else {
                TaskSpec::bulk_copy(
                    TaskKind::CopyD2H,
                    format!("d2h<-{:?}", a.id),
                    u32::MAX,
                    bytes as f64,
                    &dev,
                )
                .reading(&[a.id])
            };
            let t = inner.engine.submit(spec, &[]);
            inner.engine.sync_task(t);
            // Whole-array state machine: after touching it the host can
            // see it (pages migrate lazily; we charge only what was
            // touched but flip the flag).
            inner.arrays.get_mut(&a.id).unwrap().residency = Residency::Both;
        }
        inner.engine.now() - t0
    }

    // ------------------------------------------------------------------
    // transfers
    // ------------------------------------------------------------------

    /// `cudaMemPrefetchAsync` analogue: bulk-migrate the array to the
    /// device on `stream` at full PCIe bandwidth. Only meaningful on
    /// fault-capable devices; a no-op if the data is already resident.
    ///
    /// During stream capture this records **nothing**: the CUDA Graphs
    /// API of the paper's era cannot capture prefetches, which is the
    /// root cause of the Fig. 8 performance gap.
    pub fn prefetch_async(&self, stream: StreamId, a: &UnifiedArray) -> Option<TaskId> {
        let mut inner = self.inner.borrow_mut();
        if inner.capture.is_some() {
            return None; // not capturable
        }
        if !inner.dev.supports_page_faults() {
            return None; // no UM migration engine on pre-Pascal
        }
        if inner.arrays[&a.id].residency.on_device() {
            return None;
        }
        let dev = inner.dev.clone();
        let overhead = dev.host_api_overhead;
        inner.engine.advance_host(overhead);
        let spec = TaskSpec::bulk_copy(
            TaskKind::CopyH2D,
            format!("prefetch {:?}", a.id),
            stream.0,
            inner.arrays[&a.id].bytes as f64,
            &dev,
        )
        .reading(&[a.id]);
        let mut deps = stream_deps(&inner.streams, stream);
        deps.extend(inner.last_h2d);
        let t = inner.engine.submit(spec, &deps);
        inner.streams[stream.0 as usize].last = Some(t);
        inner.last_h2d = Some(t);
        inner.arrays.get_mut(&a.id).unwrap().residency = Residency::Both;
        Some(t)
    }

    // ------------------------------------------------------------------
    // kernel launch
    // ------------------------------------------------------------------

    /// Launch a kernel on a stream (`<<<grid>>>` analogue). Returns the
    /// engine task, or `None` while capturing (the launch became a graph
    /// node instead).
    ///
    /// Unified-memory behaviour: any argument not resident on the device
    /// is migrated first — eagerly at full bandwidth on pre-Pascal
    /// devices, or through the slow page-fault path on Pascal+ (unless it
    /// was prefetched).
    pub fn launch(&self, stream: StreamId, exec: &KernelExec) -> Option<TaskId> {
        self.launch_with_extra_deps(stream, exec, &[])
    }

    /// [`Cuda::launch`] with additional explicit dependencies (used by
    /// the grcuda scheduler to encode cross-stream DAG edges directly).
    pub fn launch_with_extra_deps(
        &self,
        stream: StreamId,
        exec: &KernelExec,
        extra_deps: &[TaskId],
    ) -> Option<TaskId> {
        let mut inner = self.inner.borrow_mut();
        if let Some(cap) = &mut inner.capture {
            cap.record_kernel(stream, exec);
            return None;
        }
        let overhead = inner.dev.host_api_overhead;
        inner.engine.advance_host(overhead);
        Some(inner.submit_kernel(stream, exec, extra_deps))
    }

    // ------------------------------------------------------------------
    // events & synchronization
    // ------------------------------------------------------------------

    /// Record an event on a stream (`cudaEventRecord`). Later,
    /// [`Cuda::stream_wait_event`] makes another stream wait for it
    /// without blocking the host.
    pub fn event_record(&self, stream: StreamId) -> EventId {
        let mut inner = self.inner.borrow_mut();
        if inner.capture.is_some() {
            let node = inner.capture.as_mut().unwrap().tail_of(stream);
            inner.events.push(EventTarget::CaptureNode(node));
            return EventId(inner.events.len() as u32 - 1);
        }
        let overhead = inner.dev.event_overhead;
        inner.engine.advance_host(overhead);
        let deps = stream_deps(&inner.streams, stream);
        let spec = TaskSpec::marker(format!("event s{}", stream.0), stream.0);
        let t = inner.engine.submit(spec, &deps);
        inner.streams[stream.0 as usize].last = Some(t);
        inner.events.push(EventTarget::Task(t));
        EventId(inner.events.len() as u32 - 1)
    }

    /// Make all future work on `stream` wait for `event`
    /// (`cudaStreamWaitEvent`).
    pub fn stream_wait_event(&self, stream: StreamId, event: EventId) {
        let mut inner = self.inner.borrow_mut();
        if inner.capture.is_some() {
            let target = inner.events[event.0 as usize].clone();
            if let EventTarget::CaptureNode(n) = target {
                inner.capture.as_mut().unwrap().add_wait(stream, n);
            }
            return;
        }
        let overhead = inner.dev.event_overhead;
        inner.engine.advance_host(overhead);
        let ev_task = match inner.events[event.0 as usize] {
            EventTarget::Task(t) => t,
            EventTarget::CaptureNode(_) => {
                panic!("event recorded during capture used outside its graph")
            }
        };
        let mut deps = stream_deps(&inner.streams, stream);
        deps.push(ev_task);
        let spec = TaskSpec::marker(format!("wait s{}", stream.0), stream.0);
        let t = inner.engine.submit(spec, &deps);
        inner.streams[stream.0 as usize].last = Some(t);
    }

    /// True once every operation enqueued on the stream has completed.
    pub fn stream_query(&self, stream: StreamId) -> bool {
        let inner = self.inner.borrow();
        match inner.streams[stream.0 as usize].last {
            None => true,
            Some(t) => inner.engine.is_complete(t),
        }
    }

    /// Block the host until the stream drains (`cudaStreamSynchronize`).
    pub fn stream_sync(&self, stream: StreamId) {
        let mut inner = self.inner.borrow_mut();
        if let Some(t) = inner.streams[stream.0 as usize].last {
            inner.engine.sync_task(t);
        }
    }

    /// Block the host until a specific event completes
    /// (`cudaEventSynchronize`).
    pub fn event_sync(&self, event: EventId) {
        let mut inner = self.inner.borrow_mut();
        match inner.events[event.0 as usize] {
            EventTarget::Task(t) => inner.engine.sync_task(t),
            EventTarget::CaptureNode(_) => panic!("cannot sync a capture-only event"),
        }
    }

    /// Block the host until a specific task completes.
    pub fn task_sync(&self, t: TaskId) {
        self.inner.borrow_mut().engine.sync_task(t);
    }

    /// True once the task completed in virtual time.
    pub fn task_query(&self, t: TaskId) -> bool {
        self.inner.borrow().engine.is_complete(t)
    }

    /// Block the host until the whole device drains
    /// (`cudaDeviceSynchronize`).
    pub fn device_sync(&self) {
        self.inner.borrow_mut().engine.sync_all();
    }

    /// Let the host spin/compute for `dt` seconds while the device keeps
    /// running in the background.
    pub fn host_spin(&self, dt: Time) {
        self.inner.borrow_mut().engine.advance_host(dt);
    }

    // ------------------------------------------------------------------
    // introspection
    // ------------------------------------------------------------------

    /// Snapshot of the execution timeline.
    pub fn timeline(&self) -> Timeline {
        self.inner.borrow().engine.timeline().clone()
    }

    /// Visit the execution timeline without cloning it (for frequent
    /// bookkeeping passes like the grcuda history harvest).
    pub fn with_timeline<R>(&self, f: impl FnOnce(&Timeline) -> R) -> R {
        f(self.inner.borrow().engine.timeline())
    }

    /// Reset the timeline between measured iterations.
    pub fn clear_timeline(&self) {
        self.inner.borrow_mut().engine.clear_timeline();
    }

    /// Data races detected so far.
    pub fn races(&self) -> Vec<RaceReport> {
        self.inner.borrow().engine.races().to_vec()
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        self.inner.borrow().engine.stats()
    }
}

impl Inner {
    /// Shared kernel-submission path (used by direct launches and graph
    /// replays): migrate non-resident arguments, then submit the kernel
    /// chained on the stream.
    pub(crate) fn submit_kernel(
        &mut self,
        stream: StreamId,
        exec: &KernelExec,
        extra_deps: &[TaskId],
    ) -> TaskId {
        let dev = self.dev.clone();
        // Unified-memory migrations for non-resident arguments.
        let mut seen: Vec<ValueId> = Vec::new();
        for (v, _) in &exec.accesses {
            if seen.contains(v) {
                continue;
            }
            seen.push(*v);
            let st = self
                .arrays
                .get(v)
                .expect("kernel argument not allocated here");
            if st.residency.on_device() {
                continue;
            }
            let bytes = st.bytes as f64;
            let spec = if dev.supports_page_faults() {
                TaskSpec::fault_migration(
                    TaskKind::FaultH2D,
                    format!("umfault->{v:?}"),
                    stream.0,
                    bytes,
                    &dev,
                )
                .reading(&[*v])
            } else {
                TaskSpec::bulk_copy(
                    TaskKind::CopyH2D,
                    format!("h2d->{v:?}"),
                    stream.0,
                    bytes,
                    &dev,
                )
                .reading(&[*v])
            };
            let mut deps = stream_deps(&self.streams, stream);
            if dev.supports_page_faults() {
                // Fault-path migrations interleave page-by-page; they
                // contend through the fault controller instead.
            } else {
                deps.extend(self.last_h2d);
            }
            let t = self.engine.submit(spec, &deps);
            self.streams[stream.0 as usize].last = Some(t);
            if !dev.supports_page_faults() {
                self.last_h2d = Some(t);
            }
            self.arrays.get_mut(v).unwrap().residency = Residency::Both;
        }

        let (solo, demand) = exec.cost.solo_profile(exec.grid, &dev);
        let mut spec = TaskSpec::kernel(exec.name.clone(), stream.0);
        spec.fixed_latency = dev.launch_overhead;
        spec.fluid_work = solo;
        spec.demand = demand;
        spec.reads = exec.reads();
        spec.writes = exec.writes();
        spec.meta.bytes = exec.cost.dram_bytes;
        spec.meta.flops32 = exec.cost.flops32;
        spec.meta.flops64 = exec.cost.flops64;
        spec.meta.l2_bytes = exec.cost.l2_bytes;
        spec.meta.instructions = exec.cost.instructions;
        spec.on_complete = Some(exec.make_payload());

        let mut deps = stream_deps(&self.streams, stream);
        deps.extend_from_slice(extra_deps);
        let t = self.engine.submit(spec, &deps);
        self.streams[stream.0 as usize].last = Some(t);

        // A kernel that writes an array makes the device copy the only
        // current one.
        for v in exec.writes() {
            self.arrays.get_mut(&v).unwrap().residency = Residency::Device;
        }
        t
    }

    /// Ensure a stream id exists (graph replay may ask for fresh ones).
    pub(crate) fn ensure_stream(&mut self, stream: StreamId) {
        while self.streams.len() <= stream.0 as usize {
            self.streams.push(StreamState::default());
        }
    }

    pub(crate) fn fresh_stream(&mut self) -> StreamId {
        self.streams.push(StreamState::default());
        StreamId(self.streams.len() as u32 - 1)
    }
}

fn stream_deps(streams: &[StreamState], stream: StreamId) -> Vec<TaskId> {
    streams[stream.0 as usize].last.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Grid, KernelCost};
    use std::rc::Rc;

    fn ctx() -> Cuda {
        Cuda::new(DeviceProfile::gtx1660_super())
    }

    fn simple_kernel(c: &Cuda, name: &str, arr: &UnifiedArray, ms: f64) -> KernelExec {
        let _ = c;
        KernelExec::new(
            name,
            Grid::d1(4096, 256),
            KernelCost {
                min_time: ms * 1e-3,
                ..Default::default()
            },
            vec![arr.buf.clone()],
            vec![(arr.id, false)],
            Rc::new(|_| {}),
        )
    }

    #[test]
    fn fresh_arrays_are_host_resident() {
        let c = ctx();
        let a = c.alloc_f32(1024);
        assert_eq!(c.residency(&a), Residency::Host);
        assert_eq!(a.len(), 1024);
    }

    #[test]
    fn launch_migrates_then_runs() {
        let c = ctx();
        let a = c.alloc_f32(1 << 20);
        let k = simple_kernel(&c, "k", &a, 1.0);
        let t = c.launch(c.default_stream(), &k).unwrap();
        c.task_sync(t);
        assert_eq!(c.residency(&a), Residency::Device); // kernel wrote it
        let tl = c.timeline();
        // One fault migration + one kernel.
        assert_eq!(tl.kernels().count(), 1);
        assert_eq!(tl.transfers().count(), 1);
        assert_eq!(tl.transfers().next().unwrap().kind, TaskKind::FaultH2D);
    }

    #[test]
    fn prefetch_uses_bulk_copy_and_faults_disappear() {
        let c = ctx();
        let a = c.alloc_f32(1 << 20);
        c.prefetch_async(c.default_stream(), &a);
        let k = simple_kernel(&c, "k", &a, 1.0);
        let t = c.launch(c.default_stream(), &k).unwrap();
        c.task_sync(t);
        let tl = c.timeline();
        assert_eq!(tl.of_kind(TaskKind::CopyH2D).count(), 1);
        assert_eq!(tl.of_kind(TaskKind::FaultH2D).count(), 0);
    }

    #[test]
    fn prefetch_is_faster_than_faulting() {
        let bytes = 64 << 20;
        // Faulting path:
        let c1 = ctx();
        let a1 = c1.alloc_u8(bytes);
        let k1 = simple_kernel(&c1, "k", &a1, 0.1);
        let t1 = c1.launch(c1.default_stream(), &k1).unwrap();
        c1.task_sync(t1);
        let slow = c1.now();
        // Prefetching path:
        let c2 = ctx();
        let a2 = c2.alloc_u8(bytes);
        c2.prefetch_async(c2.default_stream(), &a2);
        let k2 = simple_kernel(&c2, "k", &a2, 0.1);
        let t2 = c2.launch(c2.default_stream(), &k2).unwrap();
        c2.task_sync(t2);
        let fast = c2.now();
        assert!(slow > 1.5 * fast, "fault {slow} vs prefetch {fast}");
    }

    #[test]
    fn pre_pascal_copies_eagerly_at_full_bandwidth() {
        let c = Cuda::new(DeviceProfile::gtx960());
        let a = c.alloc_f32(1 << 20);
        // Prefetch is a no-op on Maxwell.
        assert!(c.prefetch_async(c.default_stream(), &a).is_none());
        let k = simple_kernel(&c, "k", &a, 1.0);
        let t = c.launch(c.default_stream(), &k).unwrap();
        c.task_sync(t);
        let tl = c.timeline();
        assert_eq!(tl.of_kind(TaskKind::CopyH2D).count(), 1);
        assert_eq!(tl.of_kind(TaskKind::FaultH2D).count(), 0);
    }

    #[test]
    fn stream_ordering_is_fifo() {
        let c = ctx();
        let a = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        let k1 = simple_kernel(&c, "k1", &a, 1.0);
        let k2 = simple_kernel(&c, "k2", &a, 1.0);
        let s = c.default_stream();
        c.launch(s, &k1);
        let t2 = c.launch(s, &k2).unwrap();
        c.task_sync(t2);
        let tl = c.timeline();
        let ks: Vec<_> = tl.kernels().collect();
        assert_eq!(ks.len(), 2);
        // Issue order on the same stream: k1 ends before k2 starts.
        let k1iv = ks.iter().find(|iv| iv.label == "k1").unwrap();
        let k2iv = ks.iter().find(|iv| iv.label == "k2").unwrap();
        assert!(k1iv.end <= k2iv.start + 1e-12);
    }

    #[test]
    fn events_synchronize_across_streams() {
        let c = ctx();
        let a = c.alloc_f32(16);
        let b = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        c.prefetch_async(c.default_stream(), &b);
        c.device_sync();
        let s1 = c.stream_create();
        let s2 = c.stream_create();
        let ka = simple_kernel(&c, "producer", &a, 2.0);
        c.launch(s1, &ka);
        let ev = c.event_record(s1);
        c.stream_wait_event(s2, ev);
        let kb = simple_kernel(&c, "consumer", &b, 1.0);
        let t = c.launch(s2, &kb).unwrap();
        c.task_sync(t);
        let tl = c.timeline();
        let prod = tl.kernels().find(|iv| iv.label == "producer").unwrap();
        let cons = tl.kernels().find(|iv| iv.label == "consumer").unwrap();
        assert!(
            cons.start >= prod.end - 1e-12,
            "consumer must wait for the event"
        );
    }

    #[test]
    fn independent_streams_overlap() {
        let c = ctx();
        let a = c.alloc_f32(16);
        let b = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        c.prefetch_async(c.default_stream(), &b);
        c.device_sync();
        let t0 = c.now();
        let s1 = c.stream_create();
        let s2 = c.stream_create();
        // Two small-occupancy kernels.
        let mk = |name: &str, arr: &UnifiedArray| {
            KernelExec::new(
                name,
                Grid::d1(64, 32),
                KernelCost {
                    min_time: 1e-3,
                    ..Default::default()
                },
                vec![arr.buf.clone()],
                vec![(arr.id, false)],
                Rc::new(|_| {}),
            )
        };
        c.launch(s1, &mk("a", &a));
        c.launch(s2, &mk("b", &b));
        c.device_sync();
        let span = c.now() - t0;
        assert!(span < 1.5e-3, "kernels must space-share: span = {span}");
    }

    #[test]
    fn host_read_of_device_data_costs_a_migration() {
        let c = ctx();
        let a = c.alloc_f32(1 << 20);
        let k = simple_kernel(&c, "k", &a, 0.5);
        let t = c.launch(c.default_stream(), &k).unwrap();
        c.task_sync(t);
        assert_eq!(c.residency(&a), Residency::Device);
        let dt = c.host_read(&a, 4);
        assert!(dt > 0.0);
        assert_eq!(c.residency(&a), Residency::Both);
        // Second read is free.
        assert_eq!(c.host_read(&a, 4), 0.0);
    }

    #[test]
    fn host_written_invalidates_device_copy() {
        let c = ctx();
        let a = c.alloc_f32(1024);
        let k = simple_kernel(&c, "k", &a, 0.1);
        let t = c.launch(c.default_stream(), &k).unwrap();
        c.task_sync(t);
        c.host_written(&a);
        assert_eq!(c.residency(&a), Residency::Host);
    }

    #[test]
    fn stream_query_tracks_completion() {
        let c = ctx();
        let a = c.alloc_f32(16);
        let s = c.default_stream();
        assert!(c.stream_query(s));
        let k = simple_kernel(&c, "k", &a, 1.0);
        c.launch(s, &k);
        assert!(!c.stream_query(s));
        c.stream_sync(s);
        assert!(c.stream_query(s));
    }

    #[test]
    fn functional_payload_runs_at_completion() {
        let c = ctx();
        let a = c.alloc_f32(4);
        let exec = KernelExec::new(
            "fill7",
            Grid::d1(1, 32),
            KernelCost {
                min_time: 1e-4,
                ..Default::default()
            },
            vec![a.buf.clone()],
            vec![(a.id, false)],
            Rc::new(|bufs: &[gpu_sim::DataBuffer]| {
                for x in bufs[0].as_f32_mut().iter_mut() {
                    *x = 7.0;
                }
            }),
        );
        let t = c.launch(c.default_stream(), &exec).unwrap();
        assert_eq!(a.buf.as_f32()[0], 0.0, "not yet executed in virtual time");
        c.task_sync(t);
        assert_eq!(*a.buf.as_f32(), vec![7.0; 4]);
    }

    #[test]
    fn missing_sync_between_conflicting_streams_is_a_race() {
        let c = ctx();
        let a = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        c.device_sync();
        let s1 = c.stream_create();
        let s2 = c.stream_create();
        let k1 = simple_kernel(&c, "w1", &a, 1.0);
        let k2 = simple_kernel(&c, "w2", &a, 1.0);
        c.launch(s1, &k1);
        c.launch(s2, &k2); // no event: both write `a` concurrently
        c.device_sync();
        assert!(
            !c.races().is_empty(),
            "unsynchronized writers must be flagged"
        );
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use gpu_sim::{Grid, KernelCost};
    use std::rc::Rc;

    #[test]
    fn event_sync_blocks_until_the_event() {
        let c = Cuda::new(DeviceProfile::gtx1660_super());
        let a = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        let k = KernelExec::new(
            "k",
            Grid::d1(64, 256),
            KernelCost {
                min_time: 2e-3,
                ..Default::default()
            },
            vec![a.buf.clone()],
            vec![(a.id, false)],
            Rc::new(|_| {}),
        );
        let s = c.stream_create();
        c.launch(s, &k);
        let ev = c.event_record(s);
        assert!(!c.stream_query(s));
        c.event_sync(ev);
        assert!(c.stream_query(s));
        assert!(c.now() >= 2e-3);
    }

    #[test]
    fn host_spin_lets_background_work_finish() {
        let c = Cuda::new(DeviceProfile::tesla_p100());
        let a = c.alloc_f32(16);
        c.prefetch_async(c.default_stream(), &a);
        let k = KernelExec::new(
            "k",
            Grid::d1(64, 256),
            KernelCost {
                min_time: 1e-3,
                ..Default::default()
            },
            vec![a.buf.clone()],
            vec![(a.id, false)],
            Rc::new(|_| {}),
        );
        c.launch(c.default_stream(), &k);
        c.host_spin(5e-3);
        assert!(
            c.stream_query(c.default_stream()),
            "work must finish in the background"
        );
    }

    #[test]
    fn same_direction_copies_serialize_through_the_dma_engine() {
        let c = Cuda::new(DeviceProfile::tesla_p100());
        let n = 12 << 20;
        let a = c.alloc_u8(n);
        let b = c.alloc_u8(n);
        let s1 = c.stream_create();
        let s2 = c.stream_create();
        c.prefetch_async(s1, &a);
        c.prefetch_async(s2, &b);
        c.device_sync();
        let tl = c.timeline();
        let copies: Vec<_> = tl.of_kind(gpu_sim::TaskKind::CopyH2D).collect();
        assert_eq!(copies.len(), 2);
        // Even on different streams, the second copy starts only after
        // the first ends (single H2D DMA engine).
        let (first, second) = if copies[0].start <= copies[1].start {
            (copies[0], copies[1])
        } else {
            (copies[1], copies[0])
        };
        assert!(second.start >= first.end - 1e-12, "copies must serialize");
    }

    #[test]
    fn stream_count_tracks_creation() {
        let c = Cuda::new(DeviceProfile::gtx960());
        assert_eq!(c.stream_count(), 1); // default stream
        c.stream_create();
        c.stream_create();
        assert_eq!(c.stream_count(), 3);
    }

    #[test]
    fn residency_roundtrip_host_device_host() {
        let c = Cuda::new(DeviceProfile::tesla_p100());
        let a = c.alloc_f32(1024);
        assert_eq!(c.residency(&a), Residency::Host);
        let k = KernelExec::new(
            "w",
            Grid::d1(16, 64),
            KernelCost {
                min_time: 1e-5,
                ..Default::default()
            },
            vec![a.buf.clone()],
            vec![(a.id, false)],
            Rc::new(|_| {}),
        );
        let t = c.launch(c.default_stream(), &k).unwrap();
        c.task_sync(t);
        assert_eq!(c.residency(&a), Residency::Device);
        c.host_read(&a, 4096);
        assert_eq!(c.residency(&a), Residency::Both);
        c.host_written(&a);
        assert_eq!(c.residency(&a), Residency::Host);
    }
}
