#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # cuda-sim — a CUDA-runtime-shaped API over the [`gpu_sim`] engine
//!
//! This crate plays the role the CUDA Runtime/Driver API plays in the
//! paper's architecture diagram (Fig. 5): everything above it — the
//! GrCUDA execution context, the stream manager, and the hand-written
//! C++ baselines of §V-D — talks to the GPU exclusively through this
//! interface. It provides:
//!
//! * **contexts** ([`Cuda`]): one simulated device plus its memory state;
//! * **streams** ([`StreamId`]): in-order queues realized as dependency
//!   chains on the engine; operations on different streams are
//!   independent unless explicitly synchronized;
//! * **events** ([`EventId`]): zero-duration markers used for
//!   cross-stream synchronization without blocking the host
//!   (`cudaEventRecord`/`cudaStreamWaitEvent` analogues);
//! * **unified memory** ([`UnifiedArray`]): host-visible arrays with a
//!   residency state machine. On Pascal+ devices, kernels touching
//!   non-resident arrays trigger *fault migrations* (slow, serialized
//!   through the fault controller) unless the data was *prefetched*
//!   (full-bandwidth bulk copy); on pre-Pascal devices the runtime must
//!   copy eagerly before each kernel;
//! * **CUDA Graphs** ([`graph::CudaGraph`]): DAGs of operations with
//!   manually-specified dependencies, plus *stream capture* — the two
//!   baselines the paper compares against in Fig. 8. Faithful to the
//!   original API of the paper's era, prefetch operations cannot be
//!   captured into a graph, which is exactly why the paper's scheduler
//!   beats CUDA Graphs on fault-capable devices.

pub mod context;
pub mod exec;
pub mod graph;
pub mod memory;

pub use context::{Cuda, EventId, StreamId};
pub use exec::KernelExec;
pub use graph::{CudaGraph, GraphNodeId};
pub use memory::{MemEvent, MemEventKind, Residency, UnifiedArray};

pub use gpu_sim::{
    DeviceProfile, Endpoint, EvictionPolicy, Grid, KernelCost, Link, LinkId, MemoryConfig,
    MemoryStats, TaskId, Time, Topology, TopologyKind,
};

#[cfg(test)]
mod prop_tests;
