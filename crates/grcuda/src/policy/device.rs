//! Device-selection policies: where each computational element runs.
//!
//! The paper's §VI names the hard part of multi-GPU scheduling:
//! "it requires to compute data location and migration costs at run
//! time to identify the optimal scheduling". The scheduler core computes
//! exactly that context per vertex — argument residency per device,
//! parent placement, per-device in-flight load — and hands it to a
//! [`DeviceSelectionPolicy`] to make the call.

/// Run-time context for one placement decision. All slices are indexed
/// by device id and sized to `device_count`.
#[derive(Debug, Clone, Copy)]
pub struct PlacementCtx<'a> {
    /// Number of devices available.
    pub device_count: usize,
    /// Devices the vertex's DAG parents were placed on, in dependency
    /// discovery order (may contain duplicates; empty for roots).
    pub parent_devices: &'a [u32],
    /// Bytes of this computation's argument data currently resident on
    /// each device (host-staged data counts for no device: it is
    /// placement-neutral).
    pub resident_bytes: &'a [usize],
    /// Estimated seconds to make every argument resident on each
    /// candidate device, given where the copies live and the
    /// interconnect links available: `bytes / link bandwidth` over the
    /// best path, two host-link legs when a migration must stage through
    /// the host, zero for data already in place. Unlike
    /// `resident_bytes`, this sees link *speed*, not just byte counts.
    pub est_transfer_time: &'a [f64],
    /// Submitted-but-unfinished tasks per device (kernels, copies and
    /// markers alike) — the load gauge.
    pub inflight: &'a [usize],
    /// Free device-memory bytes per device (`usize::MAX` when the
    /// machine has no capacity limit) — the headroom gauge
    /// capacity-aware placement consults.
    pub free_bytes: &'a [usize],
    /// Total bytes of this computation's distinct array arguments (what
    /// must be resident, somewhere, for it to run).
    pub arg_bytes: usize,
    /// The computation's signature (its kernel name) — what
    /// history-driven policies key their per-signature state by.
    pub kernel: &'a str,
    /// Decaying mean duration observed for this signature by online
    /// calibration, or `None` while calibration is off or has no
    /// samples yet (see [`crate::Options::calibrate`]). This is the
    /// per-signature weight [`crate::policy::Adaptive`] reweights
    /// in-flight work by.
    pub duration_prior: Option<f64>,
    /// Cluster node the partitioning pre-pass assigned this vertex to
    /// (`None` for single launches, single-node machines, or when the
    /// pre-pass is off). Only [`crate::partition::NodeAware`] consults
    /// it; every other policy ignores the hint.
    pub node_hint: Option<u32>,
    /// Node of each device (indexed by device id), empty on single-node
    /// machines — the map [`crate::partition::NodeAware`] uses to narrow
    /// the context to the hinted node's GPU range.
    pub node_of: &'a [u32],
}

impl PlacementCtx<'_> {
    /// Bytes that would have to *newly* land on a device to run this
    /// computation there: the argument set minus what is already
    /// resident on it.
    pub fn needed_bytes(&self, device: usize) -> usize {
        self.arg_bytes.saturating_sub(self.resident_bytes[device])
    }

    /// True when the computation's arguments fit the device's current
    /// headroom without evicting anything.
    pub fn fits(&self, device: usize) -> bool {
        self.needed_bytes(device) <= self.free_bytes[device]
    }
}

/// Picks the device for each computational element at launch time.
///
/// Implementations may keep state (e.g. a round-robin cursor); the
/// scheduler calls [`DeviceSelectionPolicy::select`] exactly once per
/// scheduled vertex, in submission order.
pub trait DeviceSelectionPolicy {
    /// Short display name for tables and sweeps.
    fn name(&self) -> &'static str;

    /// Choose a device in `0..ctx.device_count`.
    fn select(&mut self, ctx: &PlacementCtx) -> u32;
}

/// Everything on device 0 — the single-GPU baseline for scaling studies.
#[derive(Debug, Default)]
pub struct SingleGpu;

impl DeviceSelectionPolicy for SingleGpu {
    fn name(&self) -> &'static str {
        "single-gpu"
    }

    fn select(&mut self, _ctx: &PlacementCtx) -> u32 {
        0
    }
}

/// Cycle through the devices regardless of data location.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl DeviceSelectionPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn select(&mut self, ctx: &PlacementCtx) -> u32 {
        let d = (self.next % ctx.device_count) as u32;
        self.next += 1;
        d
    }
}

/// Minimize migrated bytes: run where the most argument bytes already
/// live; break ties toward the least-loaded device, then the lowest id.
#[derive(Debug, Default)]
pub struct LocalityAware;

impl DeviceSelectionPolicy for LocalityAware {
    fn name(&self) -> &'static str {
        "locality-aware"
    }

    fn select(&mut self, ctx: &PlacementCtx) -> u32 {
        (0..ctx.device_count)
            .min_by_key(|&d| (usize::MAX - ctx.resident_bytes[d], ctx.inflight[d], d))
            .unwrap_or(0) as u32
    }
}

/// Minimize per-device load: run on the device with the fewest in-flight
/// tasks; break ties toward the most resident bytes, then the lowest id.
/// The right default for embarrassingly-parallel fan-outs.
#[derive(Debug, Default)]
pub struct StreamAware;

impl DeviceSelectionPolicy for StreamAware {
    fn name(&self) -> &'static str {
        "stream-aware"
    }

    fn select(&mut self, ctx: &PlacementCtx) -> u32 {
        (0..ctx.device_count)
            .min_by_key(|&d| (ctx.inflight[d], usize::MAX - ctx.resident_bytes[d], d))
            .unwrap_or(0) as u32
    }
}

/// Minimize estimated transfer *time*: run where moving the arguments
/// costs the least, given link bandwidths — a fast peer link makes a
/// remote replica cheap, a host-mediated migration makes it expensive,
/// and a still-valid host copy costs one H2D leg anywhere. Ties break
/// toward the least-loaded device, then the lowest id.
///
/// This is the cost-aware refinement of [`LocalityAware`]: byte counting
/// treats every remote byte the same, so it happily drags data over two
/// PCIe legs to chase a slightly larger replica that a single cheap leg
/// (or an NVLink hop) would have avoided.
#[derive(Debug, Default)]
pub struct TransferAware;

impl DeviceSelectionPolicy for TransferAware {
    fn name(&self) -> &'static str {
        "transfer-aware"
    }

    fn select(&mut self, ctx: &PlacementCtx) -> u32 {
        (0..ctx.device_count)
            .min_by(|&a, &b| {
                ctx.est_transfer_time[a]
                    .total_cmp(&ctx.est_transfer_time[b])
                    .then(ctx.inflight[a].cmp(&ctx.inflight[b]))
                    .then(a.cmp(&b))
            })
            .unwrap_or(0) as u32
    }
}

/// Capacity-aware placement for finite device memory: *skip devices
/// where the arguments do not fit* (running there would evict live data
/// and thrash), then choose the cheapest fitting device by estimated
/// transfer time (ties → load → id). When no device has the headroom,
/// it degrades gracefully to the device with the most free bytes —
/// eviction is then unavoidable, so pressure is at least minimized.
///
/// This is what [`TransferAware`] is missing under oversubscription:
/// transfer-time estimates say "free, the data is resident" while every
/// launch on the full device silently evicts someone else's working
/// set.
#[derive(Debug, Default)]
pub struct MemoryAware;

impl DeviceSelectionPolicy for MemoryAware {
    fn name(&self) -> &'static str {
        "memory-aware"
    }

    fn select(&mut self, ctx: &PlacementCtx) -> u32 {
        let fitting = (0..ctx.device_count)
            .filter(|&d| ctx.fits(d))
            .min_by(|&a, &b| {
                ctx.est_transfer_time[a]
                    .total_cmp(&ctx.est_transfer_time[b])
                    .then(ctx.inflight[a].cmp(&ctx.inflight[b]))
                    .then(a.cmp(&b))
            });
        match fitting {
            Some(d) => d as u32,
            // Nothing fits: evicting is unavoidable, go where the
            // pressure is lowest (ties → cheapest transfer → id).
            None => (0..ctx.device_count)
                .min_by(|&a, &b| {
                    ctx.free_bytes[b]
                        .cmp(&ctx.free_bytes[a])
                        .then(ctx.est_transfer_time[a].total_cmp(&ctx.est_transfer_time[b]))
                        .then(a.cmp(&b))
                })
                .unwrap_or(0) as u32,
        }
    }
}

/// The built-in device-selection policies, as a value (what sweeps and
/// option parsing pass around; [`PlacementPolicy::build`] instantiates
/// the trait object the scheduler consults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Everything on device 0 (single-GPU baseline).
    SingleGpu,
    /// Cycle through the devices regardless of data location.
    RoundRobin,
    /// Place where the most argument bytes already live (min-migration).
    LocalityAware,
    /// Place where the estimated transfer time is lowest (cost-aware:
    /// sees link bandwidths, not just byte counts).
    TransferAware,
    /// Place on the least-loaded device (min-device-load).
    StreamAware,
    /// Skip devices whose free memory cannot hold the arguments,
    /// tie-break by transfer cost (capacity-aware: sees device memory,
    /// not just links and load).
    MemoryAware,
    /// History-driven placement: [`MemoryAware`]'s capacity filter and
    /// transfer-cost ordering, plus a per-device ledger of *predicted
    /// outstanding seconds* weighted by each signature's calibrated
    /// duration prior — so independent fan-outs balance by how long
    /// work actually takes, not by how many tasks are in flight.
    /// Degrades to transfer-aware behavior while calibration is off.
    Adaptive,
    /// Cluster-aware placement: honor the node hint the deterministic
    /// batch partitioner assigned (see [`crate::partition`]), delegate
    /// the in-node GPU choice to transfer-aware placement. Without a
    /// hint (single launches, single-node machines) it behaves exactly
    /// like [`PlacementPolicy::TransferAware`].
    NodeAware,
}

impl PlacementPolicy {
    /// All built-in policies, in sweep order.
    pub const ALL: [PlacementPolicy; 8] = [
        PlacementPolicy::SingleGpu,
        PlacementPolicy::RoundRobin,
        PlacementPolicy::LocalityAware,
        PlacementPolicy::TransferAware,
        PlacementPolicy::StreamAware,
        PlacementPolicy::MemoryAware,
        PlacementPolicy::Adaptive,
        PlacementPolicy::NodeAware,
    ];

    /// The static (history-blind) policies — what
    /// [`crate::policy::Portfolio`] picks between per workload.
    pub const STATIC: [PlacementPolicy; 6] = [
        PlacementPolicy::SingleGpu,
        PlacementPolicy::RoundRobin,
        PlacementPolicy::LocalityAware,
        PlacementPolicy::TransferAware,
        PlacementPolicy::StreamAware,
        PlacementPolicy::MemoryAware,
    ];

    /// Instantiate the policy object the scheduler core consults.
    pub fn build(self) -> Box<dyn DeviceSelectionPolicy> {
        match self {
            PlacementPolicy::SingleGpu => Box::new(SingleGpu),
            PlacementPolicy::RoundRobin => Box::new(RoundRobin::default()),
            PlacementPolicy::LocalityAware => Box::new(LocalityAware),
            PlacementPolicy::TransferAware => Box::new(TransferAware),
            PlacementPolicy::StreamAware => Box::new(StreamAware),
            PlacementPolicy::MemoryAware => Box::new(MemoryAware),
            PlacementPolicy::Adaptive => Box::new(super::adaptive::Adaptive::default()),
            PlacementPolicy::NodeAware => Box::new(crate::partition::NodeAware::new()),
        }
    }

    /// Short display name for tables and sweeps.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::SingleGpu => "single-gpu",
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::LocalityAware => "locality-aware",
            PlacementPolicy::TransferAware => "transfer-aware",
            PlacementPolicy::StreamAware => "stream-aware",
            PlacementPolicy::MemoryAware => "memory-aware",
            PlacementPolicy::Adaptive => "adaptive",
            PlacementPolicy::NodeAware => "node-aware",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Zero transfer estimates everywhere: the byte/load policies under
    /// test ignore them.
    const FREE: [f64; 4] = [0.0; 4];
    /// Unlimited headroom everywhere, likewise.
    const ROOMY: [usize; 4] = [usize::MAX; 4];

    fn ctx<'a>(
        resident: &'a [usize],
        inflight: &'a [usize],
        parents: &'a [u32],
    ) -> PlacementCtx<'a> {
        PlacementCtx {
            device_count: resident.len(),
            parent_devices: parents,
            resident_bytes: resident,
            est_transfer_time: &FREE[..resident.len()],
            inflight,
            free_bytes: &ROOMY[..resident.len()],
            arg_bytes: 0,
            kernel: "k",
            duration_prior: None,
            node_hint: None,
            node_of: &[],
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = RoundRobin::default();
        let c = ctx(&[0, 0, 0], &[0, 0, 0], &[]);
        let picks: Vec<u32> = (0..6).map(|_| p.select(&c)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn locality_follows_the_bytes() {
        let mut p = LocalityAware;
        assert_eq!(p.select(&ctx(&[0, 4096, 64], &[9, 9, 0], &[])), 1);
        // All-host data is placement-neutral: ties break to lighter load.
        assert_eq!(p.select(&ctx(&[0, 0, 0], &[3, 1, 2], &[])), 1);
        // Full tie: lowest device id.
        assert_eq!(p.select(&ctx(&[0, 0], &[2, 2], &[])), 0);
    }

    #[test]
    fn stream_aware_balances_load() {
        let mut p = StreamAware;
        assert_eq!(p.select(&ctx(&[0, 0, 0], &[4, 0, 2], &[])), 1);
        // Load tie: prefer the device that already holds data.
        assert_eq!(p.select(&ctx(&[0, 128, 0], &[1, 1, 1], &[])), 1);
    }

    #[test]
    fn transfer_aware_follows_the_cheapest_link_not_the_most_bytes() {
        let mut p = TransferAware;
        // Device 1 holds more bytes, but reaching it costs a
        // host-mediated migration; device 0's data comes over a cheap
        // link. Byte counting would pick 1; cost-aware picks 0.
        let c = PlacementCtx {
            device_count: 2,
            parent_devices: &[],
            resident_bytes: &[1024, 4096],
            est_transfer_time: &[0.2e-3, 1.5e-3],
            inflight: &[5, 0],
            free_bytes: &ROOMY[..2],
            arg_bytes: 0,
            kernel: "k",
            duration_prior: None,
            node_hint: None,
            node_of: &[],
        };
        assert_eq!(p.select(&c), 0);
        let mut loc = LocalityAware;
        assert_eq!(loc.select(&c), 1, "byte counting chases the bigger pile");
    }

    #[test]
    fn transfer_aware_breaks_cost_ties_by_load_then_id() {
        let mut p = TransferAware;
        let c = PlacementCtx {
            device_count: 3,
            parent_devices: &[],
            resident_bytes: &[0, 0, 0],
            est_transfer_time: &[1e-3, 1e-3, 1e-3],
            inflight: &[2, 1, 2],
            free_bytes: &ROOMY[..3],
            arg_bytes: 0,
            kernel: "k",
            duration_prior: None,
            node_hint: None,
            node_of: &[],
        };
        assert_eq!(p.select(&c), 1);
        let c2 = PlacementCtx {
            device_count: 3,
            parent_devices: &[],
            resident_bytes: &[0, 0, 0],
            est_transfer_time: &[1e-3, 1e-3, 1e-3],
            inflight: &[2, 2, 2],
            free_bytes: &ROOMY[..3],
            arg_bytes: 0,
            kernel: "k",
            duration_prior: None,
            node_hint: None,
            node_of: &[],
        };
        assert_eq!(p.select(&c2), 0, "full tie goes to the lowest id");
    }

    #[test]
    fn memory_aware_skips_devices_where_arguments_do_not_fit() {
        let mut p = MemoryAware;
        // Device 0 is cheapest by transfer time but has no headroom for
        // the 4 KiB argument set; device 1 fits (2 KiB already resident
        // there, so only 2 KiB must land).
        let c = PlacementCtx {
            device_count: 2,
            parent_devices: &[],
            resident_bytes: &[0, 2048],
            est_transfer_time: &[0.0, 1e-3],
            inflight: &[0, 4],
            free_bytes: &[1024, 2048],
            arg_bytes: 4096,
            kernel: "k",
            duration_prior: None,
            node_hint: None,
            node_of: &[],
        };
        assert!(!c.fits(0) && c.fits(1));
        assert_eq!(c.needed_bytes(1), 2048);
        assert_eq!(p.select(&c), 1, "the full device is skipped");
        // Transfer-aware walks straight into the full device.
        let mut ta = TransferAware;
        assert_eq!(ta.select(&c), 0);
    }

    #[test]
    fn memory_aware_prefers_cheapest_fitting_then_degrades_to_most_free() {
        let mut p = MemoryAware;
        // Both fit: cheapest transfer wins.
        let both = PlacementCtx {
            device_count: 2,
            parent_devices: &[],
            resident_bytes: &[0, 0],
            est_transfer_time: &[2e-3, 1e-3],
            inflight: &[0, 0],
            free_bytes: &[1 << 20, 1 << 20],
            arg_bytes: 4096,
            kernel: "k",
            duration_prior: None,
            node_hint: None,
            node_of: &[],
        };
        assert_eq!(p.select(&both), 1);
        // Nothing fits: go where the pressure is lowest.
        let none = PlacementCtx {
            device_count: 2,
            parent_devices: &[],
            resident_bytes: &[0, 0],
            est_transfer_time: &[0.0, 1e-3],
            inflight: &[0, 0],
            free_bytes: &[256, 1024],
            arg_bytes: 4096,
            kernel: "k",
            duration_prior: None,
            node_hint: None,
            node_of: &[],
        };
        assert_eq!(
            p.select(&none),
            1,
            "most free bytes when eviction is forced"
        );
        // Unlimited machines never skip anything.
        let roomy = ctx(&[0, 0], &[1, 0], &[]);
        assert_eq!(p.select(&roomy), 1, "falls back to transfer/load ordering");
    }

    #[test]
    fn enum_builds_matching_trait_objects() {
        for p in PlacementPolicy::ALL {
            assert_eq!(p.build().name(), p.name());
        }
        assert_eq!(PlacementPolicy::ALL.len(), 8);
        assert_eq!(PlacementPolicy::STATIC.len(), 6);
    }
}
