//! Device-selection policies: where each computational element runs.
//!
//! The paper's §VI names the hard part of multi-GPU scheduling:
//! "it requires to compute data location and migration costs at run
//! time to identify the optimal scheduling". The scheduler core computes
//! exactly that context per vertex — argument residency per device,
//! parent placement, per-device in-flight load — and hands it to a
//! [`DeviceSelectionPolicy`] to make the call.

/// Run-time context for one placement decision. All slices are indexed
/// by device id and sized to `device_count`.
#[derive(Debug, Clone, Copy)]
pub struct PlacementCtx<'a> {
    /// Number of devices available.
    pub device_count: usize,
    /// Devices the vertex's DAG parents were placed on, in dependency
    /// discovery order (may contain duplicates; empty for roots).
    pub parent_devices: &'a [u32],
    /// Bytes of this computation's argument data currently resident on
    /// each device (host-staged data counts for no device: it is
    /// placement-neutral).
    pub resident_bytes: &'a [usize],
    /// Submitted-but-unfinished tasks per device (kernels, copies and
    /// markers alike) — the load gauge.
    pub inflight: &'a [usize],
}

/// Picks the device for each computational element at launch time.
///
/// Implementations may keep state (e.g. a round-robin cursor); the
/// scheduler calls [`DeviceSelectionPolicy::select`] exactly once per
/// scheduled vertex, in submission order.
pub trait DeviceSelectionPolicy {
    /// Short display name for tables and sweeps.
    fn name(&self) -> &'static str;

    /// Choose a device in `0..ctx.device_count`.
    fn select(&mut self, ctx: &PlacementCtx) -> u32;
}

/// Everything on device 0 — the single-GPU baseline for scaling studies.
#[derive(Debug, Default)]
pub struct SingleGpu;

impl DeviceSelectionPolicy for SingleGpu {
    fn name(&self) -> &'static str {
        "single-gpu"
    }

    fn select(&mut self, _ctx: &PlacementCtx) -> u32 {
        0
    }
}

/// Cycle through the devices regardless of data location.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl DeviceSelectionPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn select(&mut self, ctx: &PlacementCtx) -> u32 {
        let d = (self.next % ctx.device_count) as u32;
        self.next += 1;
        d
    }
}

/// Minimize migrated bytes: run where the most argument bytes already
/// live; break ties toward the least-loaded device, then the lowest id.
#[derive(Debug, Default)]
pub struct LocalityAware;

impl DeviceSelectionPolicy for LocalityAware {
    fn name(&self) -> &'static str {
        "locality-aware"
    }

    fn select(&mut self, ctx: &PlacementCtx) -> u32 {
        (0..ctx.device_count)
            .min_by_key(|&d| (usize::MAX - ctx.resident_bytes[d], ctx.inflight[d], d))
            .unwrap_or(0) as u32
    }
}

/// Minimize per-device load: run on the device with the fewest in-flight
/// tasks; break ties toward the most resident bytes, then the lowest id.
/// The right default for embarrassingly-parallel fan-outs.
#[derive(Debug, Default)]
pub struct StreamAware;

impl DeviceSelectionPolicy for StreamAware {
    fn name(&self) -> &'static str {
        "stream-aware"
    }

    fn select(&mut self, ctx: &PlacementCtx) -> u32 {
        (0..ctx.device_count)
            .min_by_key(|&d| (ctx.inflight[d], usize::MAX - ctx.resident_bytes[d], d))
            .unwrap_or(0) as u32
    }
}

/// The built-in device-selection policies, as a value (what sweeps and
/// option parsing pass around; [`PlacementPolicy::build`] instantiates
/// the trait object the scheduler consults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Everything on device 0 (single-GPU baseline).
    SingleGpu,
    /// Cycle through the devices regardless of data location.
    RoundRobin,
    /// Place where the most argument bytes already live (min-migration).
    LocalityAware,
    /// Place on the least-loaded device (min-device-load).
    StreamAware,
}

impl PlacementPolicy {
    /// All built-in policies, in sweep order.
    pub const ALL: [PlacementPolicy; 4] = [
        PlacementPolicy::SingleGpu,
        PlacementPolicy::RoundRobin,
        PlacementPolicy::LocalityAware,
        PlacementPolicy::StreamAware,
    ];

    /// Instantiate the policy object the scheduler core consults.
    pub fn build(self) -> Box<dyn DeviceSelectionPolicy> {
        match self {
            PlacementPolicy::SingleGpu => Box::new(SingleGpu),
            PlacementPolicy::RoundRobin => Box::new(RoundRobin::default()),
            PlacementPolicy::LocalityAware => Box::new(LocalityAware),
            PlacementPolicy::StreamAware => Box::new(StreamAware),
        }
    }

    /// Short display name for tables and sweeps.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::SingleGpu => "single-gpu",
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::LocalityAware => "locality-aware",
            PlacementPolicy::StreamAware => "stream-aware",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        resident: &'a [usize],
        inflight: &'a [usize],
        parents: &'a [u32],
    ) -> PlacementCtx<'a> {
        PlacementCtx {
            device_count: resident.len(),
            parent_devices: parents,
            resident_bytes: resident,
            inflight,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = RoundRobin::default();
        let c = ctx(&[0, 0, 0], &[0, 0, 0], &[]);
        let picks: Vec<u32> = (0..6).map(|_| p.select(&c)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn locality_follows_the_bytes() {
        let mut p = LocalityAware;
        assert_eq!(p.select(&ctx(&[0, 4096, 64], &[9, 9, 0], &[])), 1);
        // All-host data is placement-neutral: ties break to lighter load.
        assert_eq!(p.select(&ctx(&[0, 0, 0], &[3, 1, 2], &[])), 1);
        // Full tie: lowest device id.
        assert_eq!(p.select(&ctx(&[0, 0], &[2, 2], &[])), 0);
    }

    #[test]
    fn stream_aware_balances_load() {
        let mut p = StreamAware;
        assert_eq!(p.select(&ctx(&[0, 0, 0], &[4, 0, 2], &[])), 1);
        // Load tie: prefer the device that already holds data.
        assert_eq!(p.select(&ctx(&[0, 128, 0], &[1, 1, 1], &[])), 1);
    }

    #[test]
    fn enum_builds_matching_trait_objects() {
        for p in PlacementPolicy::ALL {
            assert_eq!(p.build().name(), p.name());
        }
    }
}
