//! History-driven placement: calibrated priors turn the load gauge from
//! *task counts* into *predicted seconds*.
//!
//! Every count-based policy has the same blind spot: a device running one
//! 9 ms kernel and a device running one 3 ms kernel look equally busy.
//! On an independent fan-out of mixed-duration kernels the counts
//! collide work onto the device that happens to be numerically less
//! loaded, even when it is *temporally* the bottleneck. [`Adaptive`]
//! closes that gap with the per-signature duration priors online
//! calibration accumulates (see [`crate::Options::calibrate`]): it keeps
//! a per-device ledger of predicted outstanding seconds and places each
//! root where transfer cost *plus predicted queue* is smallest.
//!
//! [`Portfolio`] is the complementary coarse-grained knob: instead of
//! reweighting individual decisions it records observed makespans per
//! workload and replays whichever *static* policy won there.

use std::collections::HashMap;

use super::device::{DeviceSelectionPolicy, PlacementCtx, PlacementPolicy};

/// [`PlacementPolicy::MemoryAware`]'s capacity filter and transfer-cost
/// ordering, augmented with a per-device *predicted-seconds ledger*:
/// each placed root adds its signature's calibrated duration prior to
/// the chosen device's ledger, and subsequent roots see that predicted
/// queue as part of the placement cost. Dependent vertices (non-roots)
/// are placed by transfer cost alone — their timing is dominated by the
/// parent chain, not by queueing.
///
/// The ledger drains at synchronization points: when the scheduler
/// reports every device idle (`inflight` all zero) the predicted queue
/// has demonstrably completed and the ledger resets. Without calibration
/// (no priors) the ledger never grows, and the policy degrades exactly
/// to capacity-filtered transfer-aware placement.
#[derive(Debug, Default)]
pub struct Adaptive {
    /// Predicted outstanding seconds per device.
    ledger: Vec<f64>,
}

impl Adaptive {
    /// Predicted outstanding seconds currently on `device` (0 when the
    /// device is unknown — the ledger sizes lazily on first use).
    pub fn predicted_backlog(&self, device: usize) -> f64 {
        self.ledger.get(device).copied().unwrap_or(0.0)
    }
}

impl DeviceSelectionPolicy for Adaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn select(&mut self, ctx: &PlacementCtx) -> u32 {
        if self.ledger.len() != ctx.device_count {
            self.ledger = vec![0.0; ctx.device_count];
        }
        // All devices idle: everything the ledger predicted has
        // finished, so the predicted queue is empty too.
        if ctx.inflight.iter().all(|&n| n == 0) {
            self.ledger.iter_mut().for_each(|s| *s = 0.0);
        }
        let is_root = ctx.parent_devices.is_empty();
        // Roots queue behind the predicted backlog; dependents wait on
        // their parents regardless, so only transfer cost matters.
        let score =
            |d: usize| ctx.est_transfer_time[d] + if is_root { self.ledger[d] } else { 0.0 };
        let fitting = (0..ctx.device_count)
            .filter(|&d| ctx.fits(d))
            .min_by(|&a, &b| {
                score(a)
                    .total_cmp(&score(b))
                    .then(ctx.inflight[a].cmp(&ctx.inflight[b]))
                    .then(a.cmp(&b))
            });
        let chosen = match fitting {
            Some(d) => d,
            // Nothing fits: eviction is unavoidable — minimize pressure,
            // exactly like memory-aware placement.
            None => (0..ctx.device_count)
                .min_by(|&a, &b| {
                    ctx.free_bytes[b]
                        .cmp(&ctx.free_bytes[a])
                        .then(ctx.est_transfer_time[a].total_cmp(&ctx.est_transfer_time[b]))
                        .then(a.cmp(&b))
                })
                .unwrap_or(0),
        };
        if is_root {
            if let Some(prior) = ctx.duration_prior {
                self.ledger[chosen] += prior;
            }
        }
        chosen as u32
    }
}

/// Per-workload policy portfolio: record the makespan each *static*
/// policy achieved on a named workload, then replay the winner.
///
/// This is the coarse-grained half of adaptive scheduling — no single
/// static policy wins every workload (transfer-aware wins transfer
/// chains, memory-aware wins oversubscription, count-balancing wins
/// uniform fan-outs), so a scheduler that has run the sweep once can
/// simply pick per workload. [`Portfolio::best`] returns the winner so
/// far; [`Portfolio::pick`] falls back to a caller-supplied default for
/// workloads never measured.
#[derive(Debug, Default)]
pub struct Portfolio {
    best: HashMap<String, (PlacementPolicy, f64)>,
}

impl Portfolio {
    /// Empty portfolio: every workload falls back to the default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observed `makespan` (seconds) for `policy` on
    /// `workload`. Keeps only the best (smallest makespan) entry per
    /// workload; non-finite or negative observations are ignored.
    pub fn record(&mut self, workload: &str, policy: PlacementPolicy, makespan: f64) {
        if !makespan.is_finite() || makespan < 0.0 {
            return;
        }
        match self.best.get_mut(workload) {
            Some(entry) if entry.1 <= makespan => {}
            Some(entry) => *entry = (policy, makespan),
            None => {
                self.best.insert(workload.to_string(), (policy, makespan));
            }
        }
    }

    /// The best (policy, makespan) observed for `workload`, if any.
    pub fn best(&self, workload: &str) -> Option<(PlacementPolicy, f64)> {
        self.best.get(workload).copied()
    }

    /// The policy to use for `workload`: the observed winner, or
    /// `default` when the workload was never measured.
    pub fn pick(&self, workload: &str, default: PlacementPolicy) -> PlacementPolicy {
        self.best(workload).map(|(p, _)| p).unwrap_or(default)
    }

    /// Number of workloads with at least one recorded observation.
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROOMY: [usize; 2] = [usize::MAX; 2];

    fn root_ctx<'a>(est: &'a [f64], inflight: &'a [usize], prior: Option<f64>) -> PlacementCtx<'a> {
        PlacementCtx {
            device_count: est.len(),
            parent_devices: &[],
            resident_bytes: &[0, 0],
            est_transfer_time: est,
            inflight,
            free_bytes: &ROOMY,
            arg_bytes: 0,
            kernel: "k",
            duration_prior: prior,
            node_hint: None,
            node_of: &[],
        }
    }

    #[test]
    fn ledger_splits_a_mixed_fanout_that_counts_cannot() {
        let mut p = Adaptive::default();
        let est = [0.0, 0.0];
        // One long root (predicted 3 s) then three short roots (1 s
        // each): the seconds ledger routes every short to the other
        // device. A count-based policy would give the long device a
        // short kernel too.
        assert_eq!(p.select(&root_ctx(&est, &[0, 0], Some(3.0))), 0);
        assert_eq!(p.select(&root_ctx(&est, &[2, 0], Some(1.0))), 1);
        assert_eq!(p.select(&root_ctx(&est, &[2, 2], Some(1.0))), 1);
        assert_eq!(p.select(&root_ctx(&est, &[2, 4], Some(1.0))), 1);
        assert_eq!(p.predicted_backlog(0), 3.0);
        assert_eq!(p.predicted_backlog(1), 3.0);
    }

    #[test]
    fn without_priors_it_is_transfer_aware() {
        let mut p = Adaptive::default();
        // No calibration: the ledger never grows, so placement follows
        // transfer estimates (ties → load → id) exactly.
        assert_eq!(p.select(&root_ctx(&[2e-3, 1e-3], &[0, 5], None)), 1);
        assert_eq!(p.select(&root_ctx(&[1e-3, 1e-3], &[3, 1], None)), 1);
        assert_eq!(p.select(&root_ctx(&[1e-3, 1e-3], &[2, 2], None)), 0);
        assert_eq!(p.predicted_backlog(0), 0.0);
    }

    #[test]
    fn capacity_filter_skips_full_devices_like_memory_aware() {
        let mut p = Adaptive::default();
        // Device 0 is cheapest but has no headroom for the arguments.
        let c = PlacementCtx {
            device_count: 2,
            parent_devices: &[],
            resident_bytes: &[0, 2048],
            est_transfer_time: &[0.0, 1e-3],
            inflight: &[0, 4],
            free_bytes: &[1024, 2048],
            arg_bytes: 4096,
            kernel: "k",
            duration_prior: None,
            node_hint: None,
            node_of: &[],
        };
        assert_eq!(p.select(&c), 1);
        // Nothing fits: degrade to the most-free device.
        let none = PlacementCtx {
            free_bytes: &[256, 1024],
            resident_bytes: &[0, 0],
            ..c
        };
        assert_eq!(p.select(&none), 1);
    }

    #[test]
    fn ledger_resets_when_every_device_goes_idle() {
        let mut p = Adaptive::default();
        let est = [0.0, 0.0];
        assert_eq!(p.select(&root_ctx(&est, &[0, 0], Some(5.0))), 0);
        assert_eq!(p.predicted_backlog(0), 5.0);
        // A sync drained everything: the next all-idle decision starts
        // from a clean ledger, so the tie goes back to device 0.
        assert_eq!(p.select(&root_ctx(&est, &[0, 0], Some(1.0))), 0);
        assert_eq!(p.predicted_backlog(0), 1.0);
    }

    #[test]
    fn non_roots_do_not_charge_the_ledger() {
        let mut p = Adaptive::default();
        let c = PlacementCtx {
            device_count: 2,
            parent_devices: &[1],
            resident_bytes: &[0, 0],
            est_transfer_time: &[0.0, 0.0],
            inflight: &[1, 1],
            free_bytes: &ROOMY,
            arg_bytes: 0,
            kernel: "k",
            duration_prior: Some(2.0),
            node_hint: None,
            node_of: &[],
        };
        assert_eq!(p.select(&c), 0);
        assert_eq!(p.predicted_backlog(0), 0.0, "dependents are free");
    }

    #[test]
    fn portfolio_replays_the_observed_winner_per_workload() {
        let mut f = Portfolio::new();
        assert!(f.is_empty());
        f.record("chain", PlacementPolicy::RoundRobin, 9.0);
        f.record("chain", PlacementPolicy::TransferAware, 4.0);
        f.record("chain", PlacementPolicy::StreamAware, 6.0);
        f.record("oversub", PlacementPolicy::MemoryAware, 2.0);
        f.record("oversub", PlacementPolicy::TransferAware, f64::NAN);
        assert_eq!(f.best("chain"), Some((PlacementPolicy::TransferAware, 4.0)));
        assert_eq!(
            f.pick("oversub", PlacementPolicy::SingleGpu),
            PlacementPolicy::MemoryAware
        );
        assert_eq!(
            f.pick("never-seen", PlacementPolicy::SingleGpu),
            PlacementPolicy::SingleGpu,
            "unmeasured workloads fall back to the default"
        );
        assert_eq!(f.len(), 2);
    }
}
