//! Stream-retrieval policies: which stream on the chosen device carries
//! a computation (§IV-C).
//!
//! This absorbs the paper's two policy axes — how children of a
//! dependency pick streams ([`DepStreamPolicy`]) and when drained
//! streams are recycled ([`StreamReusePolicy`]) — behind one trait the
//! [`crate::stream_manager::StreamManager`] consults per vertex. The
//! manager does the mechanism (per-device pools, claim bookkeeping,
//! stream creation); the policy only makes the choice.

use cuda_sim::StreamId;
use dag::VertexId;

use crate::options::{DepStreamPolicy, StreamReusePolicy};

/// One same-device DAG parent of the vertex being scheduled.
#[derive(Debug, Clone, Copy)]
pub struct ParentStream {
    /// The parent vertex.
    pub vertex: VertexId,
    /// The stream the parent ran on.
    pub stream: StreamId,
    /// Whether an earlier child already claimed the parent's stream
    /// (the first-child rule claims each parent at most once).
    pub claimed: bool,
}

/// Context for one stream-retrieval decision, restricted to the device
/// the placement policy chose.
#[derive(Clone, Copy)]
pub struct StreamRetrievalCtx<'a> {
    /// Same-device parents in dependency discovery order.
    pub parents: &'a [ParentStream],
    /// The device's stream pool in creation (FIFO) order.
    pub pool: &'a [StreamId],
    /// Whether a pooled stream has drained (a completion poll, like
    /// `cudaEventQuery`). Lazy on purpose: policies that inherit a
    /// parent's stream never pay for polling the pool.
    pub is_idle: &'a dyn Fn(StreamId) -> bool,
}

/// A stream-retrieval decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamChoice {
    /// Inherit the stream of `parents[i]`; the manager records the claim.
    Parent(usize),
    /// Reuse an idle pool stream.
    Reuse(StreamId),
    /// Create a fresh stream on the target device.
    Create,
}

/// Picks the stream for each computational element on its chosen device.
pub trait StreamRetrievalPolicy {
    /// Short display name.
    fn name(&self) -> &'static str;

    /// Choose where the computation runs. `Parent(i)` must index into
    /// `ctx.parents`; `Reuse` must name a stream from `ctx.pool` for
    /// which `ctx.is_idle` returned true.
    fn retrieve(&mut self, ctx: &StreamRetrievalCtx) -> StreamChoice;
}

/// The paper's §IV-C policy matrix as one parameterized implementation:
/// a [`DepStreamPolicy`] for computations with dependencies and a
/// [`StreamReusePolicy`] for the rest.
#[derive(Debug, Clone, Copy)]
pub struct ClassicStreams {
    dep: DepStreamPolicy,
    reuse: StreamReusePolicy,
}

impl ClassicStreams {
    /// Combine the two §IV-C axes.
    pub fn new(dep: DepStreamPolicy, reuse: StreamReusePolicy) -> Self {
        ClassicStreams { dep, reuse }
    }
}

impl StreamRetrievalPolicy for ClassicStreams {
    fn name(&self) -> &'static str {
        match (self.dep, self.reuse) {
            (DepStreamPolicy::FirstChildOnParent, StreamReusePolicy::FifoReuse) => {
                "first-child+fifo"
            }
            _ => "classic",
        }
    }

    fn retrieve(&mut self, ctx: &StreamRetrievalCtx) -> StreamChoice {
        // Rule 1: inherit a parent's stream.
        match self.dep {
            DepStreamPolicy::FirstChildOnParent => {
                // "The first child is scheduled on the parent's stream to
                // minimize synchronization events, while following
                // children are scheduled on other streams."
                if let Some(i) = ctx.parents.iter().position(|p| !p.claimed) {
                    return StreamChoice::Parent(i);
                }
            }
            DepStreamPolicy::AlwaysParent => {
                if !ctx.parents.is_empty() {
                    return StreamChoice::Parent(0);
                }
            }
            DepStreamPolicy::AlwaysNew => {}
        }
        // Rule 2: reuse an empty stream from the pool (FIFO), else create.
        if self.reuse == StreamReusePolicy::FifoReuse {
            if let Some(&s) = ctx.pool.iter().find(|&&s| (ctx.is_idle)(s)) {
                return StreamChoice::Reuse(s);
            }
        }
        StreamChoice::Create
    }
}

/// Instantiate the stream policy for a pair of §IV-C options.
pub fn make_stream_policy(
    dep: DepStreamPolicy,
    reuse: StreamReusePolicy,
) -> Box<dyn StreamRetrievalPolicy> {
    Box::new(ClassicStreams::new(dep, reuse))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parent(v: u32, s: u32, claimed: bool) -> ParentStream {
        ParentStream {
            vertex: VertexId(v),
            stream: StreamId(s),
            claimed,
        }
    }

    #[test]
    fn first_child_takes_first_unclaimed_parent() {
        let mut p = ClassicStreams::new(
            DepStreamPolicy::FirstChildOnParent,
            StreamReusePolicy::FifoReuse,
        );
        let parents = [parent(0, 1, true), parent(1, 2, false)];
        let ctx = StreamRetrievalCtx {
            parents: &parents,
            pool: &[],
            is_idle: &|_| unreachable!("inheriting a parent must not poll"),
        };
        assert_eq!(p.retrieve(&ctx), StreamChoice::Parent(1));
    }

    #[test]
    fn all_parents_claimed_falls_back_to_fifo_then_create() {
        let mut p = ClassicStreams::new(
            DepStreamPolicy::FirstChildOnParent,
            StreamReusePolicy::FifoReuse,
        );
        let parents = [parent(0, 1, true)];
        let ctx = StreamRetrievalCtx {
            parents: &parents,
            pool: &[StreamId(4), StreamId(5), StreamId(6)],
            is_idle: &|s| s != StreamId(4),
        };
        assert_eq!(
            p.retrieve(&ctx),
            StreamChoice::Reuse(StreamId(5)),
            "oldest idle stream wins"
        );
        let ctx = StreamRetrievalCtx {
            parents: &parents,
            pool: &[StreamId(4)],
            is_idle: &|_| false,
        };
        assert_eq!(p.retrieve(&ctx), StreamChoice::Create);
    }

    #[test]
    fn always_new_ignores_parents_and_pool() {
        let mut p = ClassicStreams::new(DepStreamPolicy::AlwaysNew, StreamReusePolicy::AlwaysNew);
        let parents = [parent(0, 1, false)];
        let ctx = StreamRetrievalCtx {
            parents: &parents,
            pool: &[StreamId(5)],
            is_idle: &|_| true,
        };
        assert_eq!(p.retrieve(&ctx), StreamChoice::Create);
    }

    #[test]
    fn always_parent_reuses_for_every_child() {
        let mut p =
            ClassicStreams::new(DepStreamPolicy::AlwaysParent, StreamReusePolicy::FifoReuse);
        let parents = [parent(0, 1, true)];
        let ctx = StreamRetrievalCtx {
            parents: &parents,
            pool: &[],
            is_idle: &|_| unreachable!("always-parent must not poll"),
        };
        assert_eq!(p.retrieve(&ctx), StreamChoice::Parent(0));
    }
}
