//! The scheduler's policy layer: *what* to decide is fixed by the
//! scheduler core (one computation DAG, one stream manager, one engine
//! spanning every device); *how* to decide is pluggable here.
//!
//! Two decisions are taken per computational element at launch time,
//! each behind its own trait:
//!
//! * **Device selection** ([`DeviceSelectionPolicy`]) — which device runs
//!   the computation. The policy sees the DAG context of the vertex
//!   being scheduled: where its parents ran, how many argument bytes
//!   already reside on each device, and each device's in-flight load.
//!   Built-in policies: [`PlacementPolicy::SingleGpu`] (everything on
//!   device 0), [`PlacementPolicy::RoundRobin`] (cycle regardless of
//!   data), [`PlacementPolicy::LocalityAware`] (minimize migrated
//!   bytes), [`PlacementPolicy::TransferAware`] (minimize estimated
//!   transfer time given the interconnect's link bandwidths),
//!   [`PlacementPolicy::StreamAware`] (minimize per-device load),
//!   [`PlacementPolicy::MemoryAware`] (skip devices whose free memory
//!   cannot hold the arguments, tie-break by transfer cost — the
//!   capacity-aware choice under finite device memory),
//!   [`PlacementPolicy::Adaptive`] (memory-aware's filter plus a
//!   predicted-seconds ledger fed by online calibration — the
//!   history-driven choice; see [`adaptive`]),
//!   [`PlacementPolicy::NodeAware`] (honor the cluster partitioner's
//!   node hint, delegate the in-node GPU choice — the multi-node
//!   choice; see [`crate::partition`]). The [`Portfolio`] helper
//!   complements them by replaying whichever static policy won a named
//!   workload before.
//! * **Stream retrieval** ([`StreamRetrievalPolicy`]) — which CUDA
//!   stream on the chosen device carries it. This absorbs the paper's
//!   §IV-C policy pairs ([`crate::DepStreamPolicy`] ×
//!   [`crate::StreamReusePolicy`]): first-child-on-parent-stream, FIFO
//!   reuse of drained streams, create-on-demand, and the ablation
//!   variants.
//!
//! The separation mirrors deterministic work-partitioning frameworks:
//! partitioning policy is declared, execution mechanism (dependency
//! inference, events, retire/compact, bounded state) is shared. Every
//! device count and every policy combination produces bit-identical
//! numeric results — policies only move work, never reorder conflicting
//! accesses, because ordering always comes from the shared DAG.

pub mod adaptive;
pub mod device;
pub mod stream;

pub use adaptive::{Adaptive, Portfolio};
pub use device::{
    DeviceSelectionPolicy, LocalityAware, MemoryAware, PlacementCtx, PlacementPolicy, RoundRobin,
    SingleGpu, StreamAware, TransferAware,
};
pub use stream::{
    make_stream_policy, ClassicStreams, ParentStream, StreamChoice, StreamRetrievalCtx,
    StreamRetrievalPolicy,
};
