//! Kernel handles and launch arguments.

use std::fmt;

use gpu_sim::Grid;
use kernels::KernelDef;

use crate::array::DeviceArray;
use crate::context::GrCuda;
use crate::nidl::{NidlParam, Signature};

/// A launch argument: a managed array or a scalar passed by copy.
///
/// Scalars are "ignored for dependencies" (paper Fig. 4) — only array
/// arguments participate in DAG construction.
#[derive(Clone)]
pub enum Arg {
    /// A managed device array.
    Array(DeviceArray),
    /// A scalar (sizes, coefficients). All scalars ride as `f64` and are
    /// converted by the kernel's functional implementation.
    Scalar(f64),
}

impl Arg {
    /// Wrap an array argument.
    pub fn array(a: &DeviceArray) -> Arg {
        Arg::Array(a.clone())
    }

    /// Wrap a scalar argument.
    pub fn scalar(v: f64) -> Arg {
        Arg::Scalar(v)
    }
}

/// Errors raised when a launch does not match the kernel's NIDL
/// signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Wrong number of arguments.
    ArityMismatch {
        /// Kernel name.
        kernel: String,
        /// Parameters the signature declares.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
    /// An array was passed where a scalar was declared, or vice versa.
    KindMismatch {
        /// Kernel name.
        kernel: String,
        /// Zero-based parameter index.
        index: usize,
    },
    /// An array's element type does not match the declared pointer type.
    TypeMismatch {
        /// Kernel name.
        kernel: String,
        /// Zero-based parameter index.
        index: usize,
        /// Type the signature declares.
        expected: String,
        /// Element type of the array supplied.
        got: String,
    },
    /// The launch's argument set is larger than any device's memory:
    /// even evicting every other resident array could not make it fit.
    /// Raised only under a finite [`gpu_sim::MemoryConfig`] capacity.
    OutOfMemory {
        /// Kernel name.
        kernel: String,
        /// Total distinct argument bytes the launch needs resident.
        needed: usize,
        /// The per-device capacity none of the devices can stretch.
        capacity: usize,
    },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::ArityMismatch {
                kernel,
                expected,
                got,
            } => {
                write!(f, "kernel `{kernel}` takes {expected} arguments, got {got}")
            }
            LaunchError::KindMismatch { kernel, index } => {
                write!(
                    f,
                    "kernel `{kernel}` argument {index}: array/scalar kind mismatch"
                )
            }
            LaunchError::TypeMismatch {
                kernel,
                index,
                expected,
                got,
            } => write!(
                f,
                "kernel `{kernel}` argument {index}: expected {expected} array, got {got}"
            ),
            LaunchError::OutOfMemory {
                kernel,
                needed,
                capacity,
            } => write!(
                f,
                "kernel `{kernel}` is out of memory: its arguments need {needed} \
                 bytes resident but every device caps at {capacity} bytes"
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

/// One entry of a batched submission ([`GrCuda::launch_batch`]): a
/// kernel, its grid and its arguments, exactly as a standalone
/// [`Kernel::launch`] would take them.
///
/// [`GrCuda::launch_batch`]: crate::GrCuda::launch_batch
pub struct BatchLaunch<'a> {
    /// The kernel to launch.
    pub kernel: &'a Kernel,
    /// Launch grid.
    pub grid: Grid,
    /// Launch arguments (validated against the NIDL signature before
    /// anything in the batch is submitted).
    pub args: &'a [Arg],
}

/// A compiled kernel bound to a [`GrCuda`] context — what GrCUDA's
/// `buildkernel` returns. Launch it like a CUDA kernel:
/// `k.launch(grid, &[args...])`.
#[derive(Clone)]
pub struct Kernel {
    pub(crate) ctx: GrCuda,
    pub(crate) def: KernelDef,
    pub(crate) sig: Signature,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("name", &self.def.name)
            .field("nidl", &self.def.nidl)
            .finish()
    }
}

impl Kernel {
    /// Kernel name.
    pub fn name(&self) -> &'static str {
        self.def.name
    }

    /// Parsed signature.
    pub fn signature(&self) -> &Signature {
        &self.sig
    }

    /// Validate arguments against the NIDL signature and hand the launch
    /// to the scheduler. Returns when the launch is *scheduled* (parallel
    /// policy) or *complete* (serial policy).
    pub fn launch(&self, grid: Grid, args: &[Arg]) -> Result<(), LaunchError> {
        self.launch_placed(grid, args).map(|_| ())
    }

    /// [`Kernel::launch`], additionally reporting the device the
    /// placement policy chose (always 0 on single-device runtimes). The
    /// multi-GPU front-end and the placement tests use this to observe
    /// scheduling decisions without changing them.
    pub fn launch_placed(&self, grid: Grid, args: &[Arg]) -> Result<u32, LaunchError> {
        self.validate(args)?;
        self.ctx
            .launch_validated(self, grid, args, dag::ElementKind::Kernel)
    }

    /// Launch as a pre-registered library call (same scheduling, tagged
    /// as [`dag::ElementKind::Library`] in the DAG).
    pub(crate) fn launch_as_library(&self, grid: Grid, args: &[Arg]) -> Result<(), LaunchError> {
        self.validate(args)?;
        self.ctx
            .launch_validated(self, grid, args, dag::ElementKind::Library)?;
        Ok(())
    }

    /// Launch with an **autotuned** 1-D block size (the paper's §VI
    /// future-work heuristic: "estimating the ideal block size based on
    /// data size and previous executions"). The runtime's per-kernel
    /// history first explores the candidate block sizes for this input
    /// magnitude, then exploits the fastest observed one. Call
    /// [`crate::GrCuda::sync`] (or `harvest_history`) between launches so
    /// measurements reach the tuner. Returns the grid it chose.
    ///
    /// `blocks` is the fixed 1-D block count (the paper tunes only the
    /// threads-per-block dimension).
    pub fn launch_autotuned(&self, blocks: u32, args: &[Arg]) -> Result<Grid, LaunchError> {
        self.validate(args)?;
        let elements = args
            .iter()
            .filter_map(|a| match a {
                Arg::Array(arr) => Some(arr.len()),
                Arg::Scalar(_) => None,
            })
            .max()
            .unwrap_or(0);
        let bs = self.ctx.choose_block_size(self.def.name, elements);
        let grid = Grid::d1(blocks, bs);
        self.ctx
            .launch_validated(self, grid, args, dag::ElementKind::Kernel)?;
        Ok(grid)
    }

    /// Check arity, kinds and element types.
    pub(crate) fn validate(&self, args: &[Arg]) -> Result<(), LaunchError> {
        if args.len() != self.sig.params.len() {
            return Err(LaunchError::ArityMismatch {
                kernel: self.def.name.into(),
                expected: self.sig.params.len(),
                got: args.len(),
            });
        }
        for (i, (p, a)) in self.sig.params.iter().zip(args).enumerate() {
            match (p, a) {
                (NidlParam::Pointer { ty, .. }, Arg::Array(arr)) => {
                    if let Some(expected) = ty.buffer_type_name() {
                        let got = arr.type_name();
                        if got != expected {
                            return Err(LaunchError::TypeMismatch {
                                kernel: self.def.name.into(),
                                index: i,
                                expected: expected.into(),
                                got: got.into(),
                            });
                        }
                    }
                }
                (NidlParam::Scalar { .. }, Arg::Scalar(_)) => {}
                _ => {
                    return Err(LaunchError::KindMismatch {
                        kernel: self.def.name.into(),
                        index: i,
                    })
                }
            }
        }
        Ok(())
    }
}
