//! NIDL signature parsing (§IV-D).
//!
//! GrCUDA kernels are declared with a *Native Interface Definition
//! Language* string, e.g. `buildkernel(code, "square", "ptr, sint32")`.
//! The scheduler reads two things out of the signature:
//!
//! * which parameters are **pointers** (managed arrays that create
//!   dependencies) and which are scalars passed by copy (ignored for
//!   dependencies — paper Fig. 4);
//! * which pointers are **read-only** (`const` or `in` annotations),
//!   enabling the Fig. 3 concurrency rules. "Not specifying arguments as
//!   read-only does not affect correctness, but might limit the scheduler
//!   from performing further optimizations."
//!
//! Accepted grammar (comma-separated parameters):
//!
//! ```text
//! param   := [name ':'] qualifier* ('pointer' type | type)
//! qualifier := 'const' | 'in' | 'out' | 'inout'
//! type    := 'float' | 'double' | 'sint32' | 'sint64' | 'uint8' | 'char' | 'ptr'
//! ```
//!
//! `ptr` is accepted as an untyped pointer (GrCUDA's original spelling).

use std::fmt;

/// Element / scalar types NIDL can express.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NidlType {
    /// 32-bit float.
    Float,
    /// 64-bit float.
    Double,
    /// 32-bit signed integer.
    Sint32,
    /// 64-bit signed integer.
    Sint64,
    /// Unsigned byte (images).
    Uint8,
    /// Untyped (`ptr`) — matches any element type.
    Untyped,
}

impl NidlType {
    fn parse(tok: &str) -> Option<NidlType> {
        Some(match tok {
            "float" => NidlType::Float,
            "double" => NidlType::Double,
            "sint32" | "int" | "int32" => NidlType::Sint32,
            "sint64" | "long" | "int64" => NidlType::Sint64,
            "uint8" | "char" => NidlType::Uint8,
            _ => return None,
        })
    }

    /// The buffer type-name this NIDL type accepts (None = any).
    pub fn buffer_type_name(self) -> Option<&'static str> {
        match self {
            NidlType::Float => Some("float"),
            NidlType::Double => Some("double"),
            NidlType::Sint32 => Some("sint32"),
            NidlType::Uint8 => Some("char"),
            NidlType::Sint64 => Some("sint64"),
            NidlType::Untyped => None,
        }
    }
}

impl fmt::Display for NidlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NidlType::Float => "float",
            NidlType::Double => "double",
            NidlType::Sint32 => "sint32",
            NidlType::Sint64 => "sint64",
            NidlType::Uint8 => "uint8",
            NidlType::Untyped => "ptr",
        };
        f.write_str(s)
    }
}

/// One parsed parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NidlParam {
    /// A managed-array parameter.
    Pointer {
        /// Optional parameter name (`x: const pointer float`).
        name: Option<String>,
        /// Element type.
        ty: NidlType,
        /// True for `const`/`in` parameters: the kernel only reads it.
        read_only: bool,
        /// True for `out`-annotated parameters: the kernel overwrites the
        /// array without reading it. A plain (unannotated) writable
        /// pointer is treated as `inout` — it *may* read what it
        /// overwrites — so only pure `out` parameters let the schedule
        /// sanitizer prove an earlier write dead.
        declared_out: bool,
    },
    /// A scalar passed by copy — never a dependency source.
    Scalar {
        /// Optional parameter name.
        name: Option<String>,
        /// Scalar type.
        ty: NidlType,
    },
}

impl NidlParam {
    /// Is this parameter a pointer?
    pub fn is_pointer(&self) -> bool {
        matches!(self, NidlParam::Pointer { .. })
    }

    /// Is this parameter a read-only pointer?
    pub fn is_read_only(&self) -> bool {
        matches!(
            self,
            NidlParam::Pointer {
                read_only: true,
                ..
            }
        )
    }

    /// Is this parameter a pure-`out` pointer (overwritten, never read)?
    pub fn is_declared_out(&self) -> bool {
        matches!(
            self,
            NidlParam::Pointer {
                declared_out: true,
                ..
            }
        )
    }
}

/// A fully parsed kernel signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Parameters in declaration order.
    pub params: Vec<NidlParam>,
}

/// Signature parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NidlError {
    /// Human-readable description with the offending parameter.
    pub message: String,
    /// Byte offset of the offending token (or parameter) within the
    /// signature string. Signatures are single-line, so the 1-based
    /// column is `offset + 1`.
    pub offset: usize,
}

impl NidlError {
    /// 1-based column of the offending token (signatures are one line).
    pub fn column(&self) -> usize {
        self.offset + 1
    }
}

impl fmt::Display for NidlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NIDL parse error at byte {} (column {}): {}",
            self.offset,
            self.column(),
            self.message
        )
    }
}

impl std::error::Error for NidlError {}

impl Signature {
    /// Parse a NIDL signature string.
    pub fn parse(s: &str) -> Result<Signature, NidlError> {
        let mut params = Vec::new();
        let mut pos = 0usize;
        for (i, seg) in s.split(',').enumerate() {
            let seg_start = pos;
            pos += seg.len() + 1; // past this segment and its comma
            let raw = seg.trim();
            if raw.is_empty() {
                return Err(NidlError {
                    message: format!("parameter {i} is empty in `{s}`"),
                    offset: seg_start,
                });
            }
            // Byte offset of the trimmed parameter within `s`; every
            // token inside `raw` is a subslice of `s`, so token offsets
            // fall out of pointer arithmetic against `s` below.
            let param_start = seg_start + (seg.len() - seg.trim_start().len());
            params.push(Self::parse_param(s, raw, param_start, i)?);
        }
        Ok(Signature { params })
    }

    fn parse_param(
        full: &str,
        raw: &str,
        param_start: usize,
        index: usize,
    ) -> Result<NidlParam, NidlError> {
        // Byte offset of a token (a subslice of `full`) within `full`.
        let offset_of = |tok: &str| tok.as_ptr() as usize - full.as_ptr() as usize;
        debug_assert_eq!(offset_of(raw), param_start);
        // Optional `name :` prefix.
        let (name, rest) = match raw.split_once(':') {
            Some((n, r)) => (Some(n.trim().to_string()), r.trim()),
            None => (None, raw),
        };
        let mut read_only = false;
        let mut declared_out = false;
        let mut is_pointer = false;
        let mut ty: Option<NidlType> = None;
        for tok in rest.split_whitespace() {
            match tok {
                "const" | "in" => read_only = true,
                "out" => {
                    read_only = false;
                    declared_out = true;
                }
                "inout" => read_only = false,
                "pointer" => is_pointer = true,
                "ptr" => {
                    is_pointer = true;
                    ty.get_or_insert(NidlType::Untyped);
                }
                other => match NidlType::parse(other) {
                    Some(t) => {
                        if ty.is_some() && ty != Some(NidlType::Untyped) {
                            return Err(NidlError {
                                message: format!("parameter {index} `{raw}` has two types"),
                                offset: offset_of(tok),
                            });
                        }
                        ty = Some(t);
                    }
                    None => {
                        return Err(NidlError {
                            message: format!(
                                "unknown token `{other}` in parameter {index} `{raw}`"
                            ),
                            offset: offset_of(tok),
                        })
                    }
                },
            }
        }
        let ty = ty.ok_or_else(|| NidlError {
            message: format!("parameter {index} `{raw}` has no type"),
            offset: param_start,
        })?;
        if is_pointer {
            Ok(NidlParam::Pointer {
                name,
                ty,
                read_only,
                declared_out,
            })
        } else {
            if read_only {
                return Err(NidlError {
                    message: format!(
                        "parameter {index} `{raw}` is a const scalar — scalars are always by-copy"
                    ),
                    offset: param_start,
                });
            }
            Ok(NidlParam::Scalar { name, ty })
        }
    }

    /// Number of pointer parameters.
    pub fn pointer_count(&self) -> usize {
        self.params.iter().filter(|p| p.is_pointer()).count()
    }

    /// Number of scalar parameters.
    pub fn scalar_count(&self) -> usize {
        self.params.len() - self.pointer_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_vec_signature() {
        // Fig. 4: K2 = buildkernel(..., "const ptr, const ptr, ptr, sint32")
        let sig = Signature::parse("const ptr, const ptr, ptr, sint32").unwrap();
        assert_eq!(sig.params.len(), 4);
        assert!(sig.params[0].is_read_only());
        assert!(sig.params[1].is_read_only());
        assert!(sig.params[2].is_pointer() && !sig.params[2].is_read_only());
        assert!(!sig.params[3].is_pointer());
        assert_eq!(sig.pointer_count(), 3);
        assert_eq!(sig.scalar_count(), 1);
    }

    #[test]
    fn parses_typed_pointers() {
        let sig = Signature::parse("const pointer float, pointer double, sint32").unwrap();
        match &sig.params[0] {
            NidlParam::Pointer { ty, read_only, .. } => {
                assert_eq!(*ty, NidlType::Float);
                assert!(read_only);
            }
            _ => panic!("expected pointer"),
        }
        match &sig.params[1] {
            NidlParam::Pointer { ty, read_only, .. } => {
                assert_eq!(*ty, NidlType::Double);
                assert!(!read_only);
            }
            _ => panic!("expected pointer"),
        }
    }

    #[test]
    fn parses_named_params_and_in_qualifier() {
        let sig = Signature::parse("x: in pointer float, n: sint32").unwrap();
        match &sig.params[0] {
            NidlParam::Pointer {
                name, read_only, ..
            } => {
                assert_eq!(name.as_deref(), Some("x"));
                assert!(read_only);
            }
            _ => panic!("expected pointer"),
        }
        match &sig.params[1] {
            NidlParam::Scalar { name, ty } => {
                assert_eq!(name.as_deref(), Some("n"));
                assert_eq!(*ty, NidlType::Sint32);
            }
            _ => panic!("expected scalar"),
        }
    }

    #[test]
    fn scalar_float_is_by_copy() {
        let sig = Signature::parse("pointer float, float, sint32").unwrap();
        assert_eq!(sig.pointer_count(), 1);
        assert_eq!(sig.scalar_count(), 2);
    }

    #[test]
    fn rejects_unknown_tokens() {
        let err = Signature::parse("pointer quux").unwrap_err();
        assert!(err.message.contains("quux"));
    }

    #[test]
    fn rejects_missing_type() {
        assert!(Signature::parse("const pointer").is_err());
    }

    #[test]
    fn rejects_const_scalars() {
        assert!(Signature::parse("const sint32").is_err());
    }

    #[test]
    fn rejects_empty_params() {
        assert!(Signature::parse("float,,sint32").is_err());
    }

    #[test]
    fn parses_pure_out_qualifier() {
        let sig =
            Signature::parse("out pointer float, inout pointer float, pointer float").unwrap();
        assert!(sig.params[0].is_declared_out());
        assert!(!sig.params[0].is_read_only());
        assert!(!sig.params[1].is_declared_out(), "inout may read");
        assert!(!sig.params[2].is_declared_out(), "plain pointer is inout");
        assert!(!Signature::parse("const ptr").unwrap().params[0].is_declared_out());
    }

    #[test]
    fn errors_carry_the_offending_tokens_byte_offset() {
        let src = "pointer float, pointer quux";
        let err = Signature::parse(src).unwrap_err();
        assert_eq!(err.offset, src.find("quux").unwrap());
        assert_eq!(err.column(), err.offset + 1);

        // Second type token, not the first, is the offender.
        let src = "x: pointer float sint32";
        let err = Signature::parse(src).unwrap_err();
        assert_eq!(err.offset, src.find("sint32").unwrap());

        // Structural errors point at the parameter start.
        let src = "float,  const pointer";
        let err = Signature::parse(src).unwrap_err();
        assert_eq!(err.offset, src.find("const").unwrap());
        let src = "float,,sint32";
        assert_eq!(Signature::parse(src).unwrap_err().offset, 6);
    }

    #[test]
    fn error_rendering_names_byte_and_column() {
        let err = Signature::parse("const ptr, bogus ptr").unwrap_err();
        let rendered = err.to_string();
        assert_eq!(
            rendered,
            "NIDL parse error at byte 11 (column 12): unknown token `bogus` \
             in parameter 1 `bogus ptr`"
        );
    }

    #[test]
    fn every_registered_kernel_signature_parses() {
        for k in kernels::all_kernels() {
            let sig = Signature::parse(k.nidl)
                .unwrap_or_else(|e| panic!("{} signature invalid: {e}", k.name));
            assert!(sig.pointer_count() > 0, "{} takes no arrays", k.name);
        }
    }

    /// The point of the `const`/`in` annotations (§IV-D, Fig. 3 case C):
    /// a signature's read-only flags feed dependency inference, and
    /// computations that only *read* a value must never be ordered
    /// against each other — only against the value's last writer.
    #[test]
    fn const_annotated_args_create_no_edges_between_readers() {
        use dag::{ArgAccess, ComputationDag, ElementKind, Value};

        // `out, n` writer followed by `in, out, n` readers, as NIDL
        // declares them.
        let writer_sig = Signature::parse("ptr, sint32").unwrap();
        let reader_sig = Signature::parse("const ptr, ptr, sint32").unwrap();

        // Dependency inference sees exactly one ArgAccess per pointer
        // param, read-only iff the signature says `const`/`in`.
        let accesses = |sig: &Signature, values: &[u64]| -> Vec<ArgAccess> {
            sig.params
                .iter()
                .filter(|p| p.is_pointer())
                .zip(values)
                .map(|(p, &v)| ArgAccess {
                    value: Value(v),
                    read_only: p.is_read_only(),
                })
                .collect()
        };

        let mut g = ComputationDag::new();
        // K0 writes value 0; readers K1..K4 each read value 0 and write
        // their own private output (values 1..=4).
        let (writer, _) = g.add_computation(ElementKind::Kernel, "W", accesses(&writer_sig, &[0]));
        let mut readers = Vec::new();
        for out in 1..=4u64 {
            let (id, deps) =
                g.add_computation(ElementKind::Kernel, "R", accesses(&reader_sig, &[0, out]));
            assert_eq!(
                deps,
                vec![writer],
                "a const-annotated read must depend on the writer and nothing else"
            );
            readers.push(id);
        }

        // Contrast: without the `const` annotation the same launches are
        // treated as writes and serialize into a chain (correct but
        // parallelism-free — "not specifying arguments as read-only does
        // not affect correctness").
        let plain_sig = Signature::parse("ptr, ptr, sint32").unwrap();
        let mut g2 = ComputationDag::new();
        let (w2, _) = g2.add_computation(ElementKind::Kernel, "W", accesses(&writer_sig, &[0]));
        let mut prev = w2;
        for out in 1..=4u64 {
            let (id, deps) =
                g2.add_computation(ElementKind::Kernel, "R", accesses(&plain_sig, &[0, out]));
            assert_eq!(
                deps,
                vec![prev],
                "without const, each op must wait for the previous accessor"
            );
            prev = id;
        }
    }

    #[test]
    fn type_display_roundtrips() {
        for (t, s) in [
            (NidlType::Float, "float"),
            (NidlType::Double, "double"),
            (NidlType::Sint32, "sint32"),
            (NidlType::Uint8, "uint8"),
        ] {
            assert_eq!(t.to_string(), s);
        }
    }
}
