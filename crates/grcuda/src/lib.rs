#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # grcuda — the paper's runtime scheduler
//!
//! This crate is the reproduction of the paper's contribution (§IV): a
//! **low-profile runtime scheduler for multi-task, asynchronous GPU
//! computations** that
//!
//! 1. wraps every GPU-touching operation in a *computational element*,
//! 2. infers data dependencies automatically from kernel signatures
//!    (`const`/`in` NIDL annotations mark read-only arguments) and builds
//!    a computation DAG incrementally at run time,
//! 3. maps independent computations onto CUDA streams through a *stream
//!    manager* (FIFO stream reuse, create-on-demand, first child inherits
//!    the parent's stream),
//! 4. synchronizes across streams with events — never blocking the host
//!    unless the CPU actually reads GPU-owned data,
//! 5. prefetches unified-memory arrays automatically on fault-capable
//!    devices, and restricts array visibility on pre-Pascal ones,
//! 6. keeps its own memory **O(live computations)**: every retire path
//!    (full [`GrCuda::sync`], fine-grained CPU accesses, the pre-Pascal
//!    full-sync branch) drops the retired vertices' stream claims and
//!    vertex→task/stream entries and compacts the DAG, so a service
//!    issuing millions of launches does not grow without bound. The
//!    gauges are exposed via [`GrCuda::scheduler_stats`]; the `soak`
//!    binary in `crates/bench` asserts them under sustained traffic.
//!
//! The host program is written *as if it were serial* — launch kernels,
//! read array elements — and the scheduler extracts the task parallelism:
//!
//! ```
//! use grcuda::{GrCuda, Options, Arg};
//! use gpu_sim::{DeviceProfile, Grid};
//! use kernels::vec_ops::{SQUARE, REDUCE_SUM_DIFF};
//!
//! let g = GrCuda::new(DeviceProfile::tesla_p100(), Options::parallel());
//! let n = 1 << 16;
//! let x = g.array_f32(n);
//! let y = g.array_f32(n);
//! let z = g.array_f32(1);
//! x.fill_f32(2.0);
//! y.fill_f32(1.0);
//!
//! let square = g.build_kernel(&SQUARE).unwrap();
//! let reduce = g.build_kernel(&REDUCE_SUM_DIFF).unwrap();
//! let grid = Grid::d1(64, 256);
//! // The two squares are independent: the scheduler runs them on
//! // different streams, then fences the reduction on both.
//! square.launch(grid, &[Arg::array(&x), Arg::scalar(n as f64)]).unwrap();
//! square.launch(grid, &[Arg::array(&y), Arg::scalar(n as f64)]).unwrap();
//! reduce
//!     .launch(grid, &[Arg::array(&x), Arg::array(&y), Arg::array(&z), Arg::scalar(n as f64)])
//!     .unwrap();
//! // Reading z[0] synchronizes exactly the work that produces it.
//! assert_eq!(z.get_f32(0), (n as f32) * 3.0);
//! ```

pub mod array;
pub mod audit;
pub mod context;
pub mod history;
pub mod kernel;
pub mod library;
pub mod multi;
pub mod nidl;
pub mod options;
pub mod partition;
pub mod policy;
pub mod serve;
pub mod stream_manager;

pub use array::DeviceArray;
pub use audit::{
    audit_dag, AuditReport, ConflictKind, EdgeView, EffectsTable, KernelEffects, Lint, LintKind,
    ScheduleViolation,
};
pub use context::{GrCuda, SchedulerStats};
pub use history::KernelHistory;
pub use kernel::{Arg, BatchLaunch, Kernel, LaunchError};
pub use library::Library;
pub use multi::{MultiArg, MultiArray, MultiGpu};
pub use nidl::{NidlError, NidlParam, NidlType, Signature};
pub use options::{DepStreamPolicy, Options, PrefetchPolicy, SchedulePolicy, StreamReusePolicy};
pub use partition::{partition_batch, BatchPartition, NodeAware};
pub use policy::{
    DeviceSelectionPolicy, MemoryAware, PlacementCtx, PlacementPolicy, StreamRetrievalPolicy,
};

pub use context::ClusterStats;
pub use gpu_sim::{
    Cluster, DeviceProfile, EvictionPolicy, Grid, MemoryConfig, MemoryStats, NicKind, Topology,
    TopologyKind,
};

#[cfg(test)]
mod prop_tests;
