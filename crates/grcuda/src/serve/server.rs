//! The threaded front-end: a service thread owning the core, and
//! `Send + Clone` client handles feeding it over an mpsc queue.
//!
//! [`GrCuda`](crate::GrCuda) is an `Rc`-based handle and cannot cross
//! threads, so the [`Server`] ships only the (fully `Send`)
//! [`ServeConfig`] to its service thread and builds the
//! [`ServiceCore`] there. Each [`Client`] is an mpsc sender plus a
//! tenant id: cloning is cheap, every clone submits into the same
//! tenant namespace, and handles from different clients cannot be
//! mixed (the core rejects cross-tenant handles).
//!
//! The service loop blocks while idle, drains the message queue while
//! work is pending, and interleaves pump cycles — so submissions from
//! many OS threads coalesce into shared
//! [`launch_batch`](crate::GrCuda::launch_batch) submissions. Virtual
//! metrics from a threaded run depend on OS message-arrival order and
//! are therefore *not* gate-grade; the deterministic figures come from
//! driving a [`ServiceCore`] directly (see the `serve` bench binary).

use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;

use gpu_sim::TypedData;
use kernels::KernelDef;

use super::core::{
    ArrayRef, ElemKind, KernelRef, RequestId, RequestSpec, ServeConfig, ServeError, ServiceCore,
    TenantId, TenantStats,
};

/// Final report returned by [`Server::shutdown`] after the core drains.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Virtual time at shutdown (seconds).
    pub virtual_now: f64,
    /// Data races the simulator detected (always 0 unless dependency
    /// inference was deliberately broken).
    pub races: usize,
    /// Per-tenant statistics, in tenant-id order.
    pub tenants: Vec<TenantStats>,
}

impl ServiceReport {
    /// Total kernel launches across tenants.
    pub fn total_launches(&self) -> u64 {
        self.tenants.iter().map(|t| t.launches).sum()
    }

    /// Total completed requests across tenants.
    pub fn total_completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }
}

enum Envelope {
    AddTenant {
        name: String,
        weight: u32,
        reply: Sender<TenantId>,
    },
    Alloc {
        tenant: TenantId,
        kind: ElemKind,
        n: usize,
        reply: Sender<Result<ArrayRef, ServeError>>,
    },
    Write {
        tenant: TenantId,
        array: ArrayRef,
        data: TypedData,
        reply: Sender<Result<(), ServeError>>,
    },
    Fill {
        tenant: TenantId,
        array: ArrayRef,
        value: f64,
        reply: Sender<Result<(), ServeError>>,
    },
    Kernel {
        tenant: TenantId,
        def: &'static KernelDef,
        reply: Sender<Result<KernelRef, ServeError>>,
    },
    Submit {
        tenant: TenantId,
        spec: RequestSpec,
        reply: Sender<Result<RequestId, ServeError>>,
    },
    Read {
        tenant: TenantId,
        array: ArrayRef,
        index: usize,
        reply: Sender<Result<f64, ServeError>>,
    },
    Drain {
        tenant: TenantId,
        reply: Sender<Result<TenantStats, ServeError>>,
    },
    Stats {
        tenant: TenantId,
        reply: Sender<Result<TenantStats, ServeError>>,
    },
    Shutdown,
}

/// The service front-end: owns the service thread. Create clients with
/// [`Server::client`], stop (and collect the final report) with
/// [`Server::shutdown`].
pub struct Server {
    tx: Sender<Envelope>,
    handle: Option<JoinHandle<ServiceReport>>,
}

impl Server {
    /// Spawn the service thread and build the core (scheduler included)
    /// on it.
    pub fn start(config: ServeConfig) -> Server {
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = std::thread::Builder::new()
            .name("grcuda-serve".into())
            .spawn(move || run_service(config, rx))
            .expect("spawn service thread");
        Server {
            tx,
            handle: Some(handle),
        }
    }

    /// Register a tenant and return its client handle. The handle is
    /// `Send + Clone`; clones share the tenant's namespace.
    pub fn client(&self, name: &str, weight: u32) -> Client {
        let (reply, rx) = std::sync::mpsc::channel();
        self.tx
            .send(Envelope::AddTenant {
                name: name.to_string(),
                weight,
                reply,
            })
            .expect("service thread alive");
        let tenant = rx.recv().expect("service thread alive");
        Client {
            tx: self.tx.clone(),
            tenant,
        }
    }

    /// Stop the service: queued messages are processed, the core drains
    /// every pending request, and the final per-tenant report comes
    /// back. Clients must be done submitting — an RPC racing a
    /// shutdown panics its calling thread.
    pub fn shutdown(mut self) -> ServiceReport {
        self.tx
            .send(Envelope::Shutdown)
            .expect("service thread alive");
        self.handle
            .take()
            .expect("shutdown called once")
            .join()
            .expect("service thread panicked")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = self.tx.send(Envelope::Shutdown);
            let _ = handle.join();
        }
    }
}

/// A tenant's handle to the service: `Send + Clone`, backed by the
/// server's submission queue. All methods are synchronous RPCs;
/// [`Client::submit`] returns as soon as admission control accepts (or
/// rejects) the request — completion is asynchronous, observed via
/// [`Client::drain`] or by [`Client::read`] of an output element.
#[derive(Clone)]
pub struct Client {
    tx: Sender<Envelope>,
    tenant: TenantId,
}

impl Client {
    /// The tenant this handle submits as.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    fn rpc<T>(&self, make: impl FnOnce(Sender<T>) -> Envelope) -> T {
        let (reply, rx) = std::sync::mpsc::channel();
        self.tx.send(make(reply)).expect("service thread alive");
        rx.recv().expect("service thread alive")
    }

    /// Allocate an array in this tenant's namespace.
    pub fn alloc(&self, kind: ElemKind, n: usize) -> Result<ArrayRef, ServeError> {
        self.rpc(|reply| Envelope::Alloc {
            tenant: self.tenant,
            kind,
            n,
            reply,
        })
    }

    /// Copy host data into a tenant array.
    pub fn write(&self, array: ArrayRef, data: TypedData) -> Result<(), ServeError> {
        self.rpc(|reply| Envelope::Write {
            tenant: self.tenant,
            array,
            data,
            reply,
        })
    }

    /// Fill a tenant array with a scalar.
    pub fn fill(&self, array: ArrayRef, value: f64) -> Result<(), ServeError> {
        self.rpc(|reply| Envelope::Fill {
            tenant: self.tenant,
            array,
            value,
            reply,
        })
    }

    /// Build a kernel in this tenant's namespace.
    pub fn kernel(&self, def: &'static KernelDef) -> Result<KernelRef, ServeError> {
        self.rpc(|reply| Envelope::Kernel {
            tenant: self.tenant,
            def,
            reply,
        })
    }

    /// Submit a request (admission-checked synchronously, executed
    /// asynchronously).
    ///
    /// # Examples
    ///
    /// ```
    /// use grcuda::serve::{ArgSpec, CallSpec, ElemKind, RequestSpec, ServeConfig, Server};
    /// use grcuda::{DeviceProfile, Grid, Options};
    /// use kernels::util::SCALE;
    ///
    /// let server = Server::start(ServeConfig::new(
    ///     DeviceProfile::tesla_p100(),
    ///     Options::parallel(),
    /// ));
    /// let client = server.client("alice", 1);
    /// let n = 256;
    /// let x = client.alloc(ElemKind::F32, n).unwrap();
    /// let y = client.alloc(ElemKind::F32, n).unwrap();
    /// client.fill(x, 2.0).unwrap();
    /// let scale = client.kernel(&SCALE).unwrap();
    ///
    /// let request = RequestSpec {
    ///     calls: vec![CallSpec {
    ///         kernel: scale,
    ///         grid: Grid::d1(2, 128),
    ///         args: vec![
    ///             ArgSpec::Array(x),
    ///             ArgSpec::Array(y),
    ///             ArgSpec::Scalar(1.5),
    ///             ArgSpec::Scalar(n as f64),
    ///         ],
    ///     }],
    ///     deadline_us: None,
    /// };
    /// client.submit(request).unwrap(); // admitted now, runs asynchronously
    ///
    /// assert_eq!(client.read(y, 0).unwrap(), 3.0); // syncs with the GPU work
    /// let stats = client.drain().unwrap();
    /// assert_eq!(stats.completed, 1);
    /// server.shutdown();
    /// ```
    pub fn submit(&self, spec: RequestSpec) -> Result<RequestId, ServeError> {
        self.rpc(|reply| Envelope::Submit {
            tenant: self.tenant,
            spec,
            reply,
        })
    }

    /// Read one element of a tenant array (synchronizes with the GPU
    /// work producing it).
    pub fn read(&self, array: ArrayRef, index: usize) -> Result<f64, ServeError> {
        self.rpc(|reply| Envelope::Read {
            tenant: self.tenant,
            array,
            index,
            reply,
        })
    }

    /// Block until everything this tenant submitted has completed;
    /// returns the tenant's statistics (including per-request virtual
    /// latencies).
    pub fn drain(&self) -> Result<TenantStats, ServeError> {
        self.rpc(|reply| Envelope::Drain {
            tenant: self.tenant,
            reply,
        })
    }

    /// Snapshot this tenant's statistics without waiting.
    pub fn stats(&self) -> Result<TenantStats, ServeError> {
        self.rpc(|reply| Envelope::Stats {
            tenant: self.tenant,
            reply,
        })
    }
}

fn handle(core: &mut ServiceCore, msg: Envelope) -> bool {
    match msg {
        Envelope::AddTenant {
            name,
            weight,
            reply,
        } => {
            let _ = reply.send(core.add_tenant(&name, weight));
        }
        Envelope::Alloc {
            tenant,
            kind,
            n,
            reply,
        } => {
            let _ = reply.send(core.alloc(tenant, kind, n));
        }
        Envelope::Write {
            tenant,
            array,
            data,
            reply,
        } => {
            let _ = reply.send(core.write(tenant, array, &data));
        }
        Envelope::Fill {
            tenant,
            array,
            value,
            reply,
        } => {
            let _ = reply.send(core.fill(tenant, array, value));
        }
        Envelope::Kernel { tenant, def, reply } => {
            let _ = reply.send(core.register_kernel(tenant, def));
        }
        Envelope::Submit {
            tenant,
            spec,
            reply,
        } => {
            let _ = reply.send(core.submit(tenant, spec));
        }
        Envelope::Read {
            tenant,
            array,
            index,
            reply,
        } => {
            let _ = reply.send(core.read(tenant, array, index));
        }
        Envelope::Drain { tenant, reply } => {
            let res = core
                .drain_tenant(tenant)
                .and_then(|()| core.tenant_stats(tenant));
            let _ = reply.send(res);
        }
        Envelope::Stats { tenant, reply } => {
            let _ = reply.send(core.tenant_stats(tenant));
        }
        Envelope::Shutdown => return false,
    }
    true
}

fn run_service(config: ServeConfig, rx: Receiver<Envelope>) -> ServiceReport {
    let mut core = ServiceCore::new(config);
    'serve: loop {
        // Idle: block for the next message. Busy: take whatever has
        // arrived (coalescing cross-client submissions into the next
        // pump cycle) without blocking.
        if core.idle() {
            match rx.recv() {
                Ok(msg) => {
                    if !handle(&mut core, msg) {
                        break 'serve;
                    }
                }
                Err(_) => break 'serve,
            }
            // The timeline and retired bookkeeping stay bounded across
            // idle periods of a long-lived service.
            core.maintain();
        } else {
            loop {
                match rx.try_recv() {
                    Ok(msg) => {
                        if !handle(&mut core, msg) {
                            break 'serve;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => break 'serve,
                }
            }
            // One coalesced cycle; when the window is idle-full (no new
            // work arriving), complete the pipeline head so in-flight
            // requests finish even without a drain call.
            if core.pump() == 0 {
                core.complete_oldest();
            }
        }
    }
    core.drain_all();
    ServiceReport {
        virtual_now: core.now(),
        races: core.runtime().races().len(),
        tenants: core.all_stats(),
    }
}
