//! The deterministic multi-tenant service core.
//!
//! [`ServiceCore`] owns one scheduler runtime ([`GrCuda`]) and
//! multiplexes any number of *tenants* over it. It is deliberately
//! single-threaded: given the same sequence of calls it produces a
//! bit-identical virtual timeline, which is what makes the `serve.*`
//! benchmark keys gateable. The threaded front-end
//! ([`crate::serve::Server`] / [`crate::serve::Client`]) is a thin
//! mpsc shell around this type — all serving semantics live here.
//!
//! Three properties the core maintains:
//!
//! * **Isolation** — every array and kernel handle is scoped to the
//!   tenant that created it; using another tenant's handle fails with
//!   [`ServeError::CrossTenant`] before touching the scheduler.
//! * **Admission control** — a request whose launches could never fit
//!   device memory (PR 5's finite [`MemoryConfig`]) is rejected at
//!   submit time with a recoverable [`ServeError::Rejected`]; the core
//!   and the other tenants are unaffected.
//! * **Bounded pipelining** — admitted requests are coalesced through
//!   [`GrCuda::launch_batch`] (host overhead charged once per cycle,
//!   across tenants) while at most `window` requests are in flight;
//!   completing a request reads one element of every array it wrote,
//!   which synchronizes exactly its producing chain, timestamps its
//!   virtual latency, and lets the scheduler retire the chain's state.

use std::collections::{BTreeMap, VecDeque};

use gpu_sim::{DeviceProfile, Grid, MemoryConfig, TopologyKind, TypedData};
use kernels::KernelDef;

use crate::array::DeviceArray;
use crate::context::GrCuda;
use crate::kernel::{Arg, BatchLaunch, Kernel, LaunchError};
use crate::nidl::NidlParam;
use crate::options::Options;
use crate::policy::PlacementPolicy;

use super::fairness::{Fairness, FairnessCtx, FairnessPolicy};

/// Identifies one tenant of a service core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub(crate) u32);

impl TenantId {
    /// Zero-based tenant index (also the fairness-policy index).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a device array inside a tenant's namespace. Only the
/// owning tenant can pass it back to the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayRef {
    pub(crate) tenant: TenantId,
    pub(crate) index: u32,
}

impl ArrayRef {
    /// The tenant that owns the array.
    pub fn tenant(self) -> TenantId {
        self.tenant
    }
}

/// Handle to a built kernel inside a tenant's namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelRef {
    pub(crate) tenant: TenantId,
    pub(crate) index: u32,
}

impl KernelRef {
    /// The tenant that owns the kernel.
    pub fn tenant(self) -> TenantId {
        self.tenant
    }
}

/// Identifies one submitted request: the owning tenant plus a
/// per-tenant sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Zero-based submission index within that tenant.
    pub seq: u64,
}

/// Element type of a service-allocated array (the NIDL buffer types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemKind {
    /// 32-bit float (`float`).
    F32,
    /// 64-bit float (`double`).
    F64,
    /// 32-bit signed integer (`sint32`).
    I32,
    /// Byte (`char`).
    U8,
}

/// One launch argument of a [`CallSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgSpec {
    /// A tenant-owned array.
    Array(ArrayRef),
    /// A scalar by copy.
    Scalar(f64),
}

/// One kernel launch of a request.
#[derive(Debug, Clone)]
pub struct CallSpec {
    /// The kernel to launch (tenant-owned handle).
    pub kernel: KernelRef,
    /// Launch configuration.
    pub grid: Grid,
    /// Arguments in signature order.
    pub args: Vec<ArgSpec>,
}

/// A request: one dependent chain of kernel launches submitted
/// atomically, plus an optional latency deadline.
#[derive(Debug, Clone, Default)]
pub struct RequestSpec {
    /// Launches in program order (dependencies are inferred, as always).
    pub calls: Vec<CallSpec>,
    /// Relative deadline in virtual microseconds, consumed by
    /// deadline-aware fairness. `None` means best-effort.
    pub deadline_us: Option<f64>,
}

/// Errors surfaced by the serving layer. All of them are *recoverable
/// per tenant*: the core keeps serving every other tenant (and further
/// requests of the failing one).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The tenant id is not registered with this core.
    UnknownTenant(u32),
    /// A handle owned by one tenant was used by another.
    CrossTenant {
        /// Tenant that owns the handle.
        owner: u32,
        /// Tenant that tried to use it.
        caller: u32,
    },
    /// A handle's index does not exist in the owner's namespace.
    BadHandle(u32),
    /// Admission control rejected the request: some launch in it could
    /// never fit device memory, even after evicting everything else.
    Rejected(LaunchError),
    /// The request is malformed (signature mismatch, bad write shape,
    /// zero-length allocation, unparsable kernel).
    Invalid(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            ServeError::CrossTenant { owner, caller } => {
                write!(f, "tenant {caller} used a handle owned by tenant {owner}")
            }
            ServeError::BadHandle(i) => write!(f, "handle index {i} does not exist"),
            ServeError::Rejected(e) => write!(f, "admission rejected: {e}"),
            ServeError::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Configuration of a service core (and of the threaded
/// [`crate::serve::Server`], which builds the core on its service
/// thread — every field is `Send`).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulated device profile.
    pub device: DeviceProfile,
    /// Number of identical devices behind the scheduler.
    pub devices: usize,
    /// Scheduler options.
    pub options: Options,
    /// Device-placement policy.
    pub placement: PlacementPolicy,
    /// Interconnect preset.
    pub topology: TopologyKind,
    /// Device-memory model (finite capacities enable admission
    /// control's rejection path).
    pub memory: MemoryConfig,
    /// Which tenant's request is admitted next under contention.
    pub fairness: Fairness,
    /// Maximum requests in flight; beyond it the oldest request is
    /// completed (synchronized + latency-stamped) to make room.
    pub window: usize,
    /// Maximum requests admitted per pump cycle — one coalesced
    /// [`GrCuda::launch_batch`] submission.
    pub batch_limit: usize,
}

impl ServeConfig {
    /// A single-device service with FIFO fairness and a 16-request
    /// pipeline window.
    pub fn new(device: DeviceProfile, options: Options) -> Self {
        ServeConfig {
            device,
            devices: 1,
            options,
            placement: PlacementPolicy::SingleGpu,
            topology: TopologyKind::PcieOnly,
            memory: MemoryConfig::default(),
            fairness: Fairness::Fifo,
            window: 16,
            batch_limit: 8,
        }
    }

    /// Replace the fairness policy.
    pub fn with_fairness(mut self, fairness: Fairness) -> Self {
        self.fairness = fairness;
        self
    }

    /// Replace the pipeline window and per-cycle admission budget.
    pub fn with_pipeline(mut self, window: usize, batch_limit: usize) -> Self {
        self.window = window.max(1);
        self.batch_limit = batch_limit.max(1);
        self
    }

    /// Replace the device-memory model.
    pub fn with_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// Span `n` identical devices with the given placement policy and
    /// topology.
    pub fn with_devices(
        mut self,
        n: usize,
        placement: PlacementPolicy,
        topology: TopologyKind,
    ) -> Self {
        self.devices = n.max(1);
        self.placement = placement;
        self.topology = topology;
        self
    }
}

/// Point-in-time statistics of one tenant.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant display name.
    pub name: String,
    /// Weighted-round-robin share.
    pub weight: u32,
    /// Requests accepted by admission control.
    pub submitted: u64,
    /// Requests completed (latency recorded).
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Kernel launches submitted to the scheduler.
    pub launches: u64,
    /// Requests waiting in the tenant's queue.
    pub queued: usize,
    /// Requests currently in flight on the device.
    pub inflight: usize,
    /// Virtual latency (seconds) of every completed request, in
    /// completion order.
    pub latencies: Vec<f64>,
}

/// A request accepted by admission control, waiting in its tenant's
/// queue with fully resolved (owned) launch arguments.
struct PendingRequest {
    id: RequestId,
    arrival: f64,
    deadline: Option<f64>,
    calls: Vec<(Kernel, Grid, Vec<Arg>)>,
    written: Vec<DeviceArray>,
}

/// A request whose launches have been submitted to the scheduler.
struct InFlight {
    id: RequestId,
    arrival: f64,
    written: Vec<DeviceArray>,
}

struct Tenant {
    name: String,
    weight: u32,
    arrays: Vec<DeviceArray>,
    kernels: Vec<Kernel>,
    queue: VecDeque<PendingRequest>,
    submitted: u64,
    completed: u64,
    rejected: u64,
    launches: u64,
    // Launches by kernel signature — the per-tenant attribution the
    // history/calibration layer keys by (BTreeMap for deterministic
    // iteration order in stats output).
    kernel_launches: BTreeMap<&'static str, u64>,
    latencies: Vec<f64>,
}

/// The deterministic multi-tenant service core. See the module docs.
pub struct ServiceCore {
    g: GrCuda,
    fairness: Box<dyn FairnessPolicy + Send>,
    window: usize,
    batch_limit: usize,
    tenants: Vec<Tenant>,
    inflight: VecDeque<InFlight>,
}

impl ServiceCore {
    /// Build a core (and its scheduler runtime) from a configuration.
    pub fn new(config: ServeConfig) -> Self {
        let g = GrCuda::new_multi_mem(
            config.device,
            config.devices,
            config.options,
            config.placement,
            config.topology,
            config.memory,
        );
        ServiceCore {
            g,
            fairness: config.fairness.build(),
            window: config.window.max(1),
            batch_limit: config.batch_limit.max(1),
            tenants: Vec::new(),
            inflight: VecDeque::new(),
        }
    }

    /// The underlying scheduler runtime (timeline, stats, audit).
    pub fn runtime(&self) -> &GrCuda {
        &self.g
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.g.now()
    }

    /// Register a tenant with a weighted-round-robin share.
    pub fn add_tenant(&mut self, name: &str, weight: u32) -> TenantId {
        let id = TenantId(self.tenants.len() as u32);
        self.tenants.push(Tenant {
            name: name.to_string(),
            weight,
            arrays: Vec::new(),
            kernels: Vec::new(),
            queue: VecDeque::new(),
            submitted: 0,
            completed: 0,
            rejected: 0,
            launches: 0,
            kernel_launches: BTreeMap::new(),
            latencies: Vec::new(),
        });
        id
    }

    fn tenant(&self, t: TenantId) -> Result<&Tenant, ServeError> {
        self.tenants
            .get(t.index())
            .ok_or(ServeError::UnknownTenant(t.0))
    }

    fn tenant_mut(&mut self, t: TenantId) -> Result<&mut Tenant, ServeError> {
        self.tenants
            .get_mut(t.index())
            .ok_or(ServeError::UnknownTenant(t.0))
    }

    fn resolve_array(&self, caller: TenantId, r: ArrayRef) -> Result<&DeviceArray, ServeError> {
        if r.tenant != caller {
            return Err(ServeError::CrossTenant {
                owner: r.tenant.0,
                caller: caller.0,
            });
        }
        self.tenant(caller)?
            .arrays
            .get(r.index as usize)
            .ok_or(ServeError::BadHandle(r.index))
    }

    fn resolve_kernel(&self, caller: TenantId, r: KernelRef) -> Result<&Kernel, ServeError> {
        if r.tenant != caller {
            return Err(ServeError::CrossTenant {
                owner: r.tenant.0,
                caller: caller.0,
            });
        }
        self.tenant(caller)?
            .kernels
            .get(r.index as usize)
            .ok_or(ServeError::BadHandle(r.index))
    }

    /// Allocate an array in the tenant's namespace.
    pub fn alloc(&mut self, t: TenantId, kind: ElemKind, n: usize) -> Result<ArrayRef, ServeError> {
        if n == 0 {
            return Err(ServeError::Invalid("zero-length allocation".into()));
        }
        let arr = match kind {
            ElemKind::F32 => self.g.array_f32(n),
            ElemKind::F64 => self.g.array_f64(n),
            ElemKind::I32 => self.g.array_i32(n),
            ElemKind::U8 => self.g.array_u8(n),
        };
        let tenant = self.tenant_mut(t)?;
        tenant.arrays.push(arr);
        Ok(ArrayRef {
            tenant: t,
            index: (tenant.arrays.len() - 1) as u32,
        })
    }

    /// Copy host data into a tenant array (type and length must match).
    pub fn write(&mut self, t: TenantId, r: ArrayRef, data: &TypedData) -> Result<(), ServeError> {
        let arr = self.resolve_array(t, r)?;
        if arr.type_name() != data.type_name() {
            return Err(ServeError::Invalid(format!(
                "write of {} data into a {} array",
                data.type_name(),
                arr.type_name()
            )));
        }
        if arr.len() != data.len() {
            return Err(ServeError::Invalid(format!(
                "write of {} elements into an array of {}",
                data.len(),
                arr.len()
            )));
        }
        match data {
            TypedData::F32(v) => arr.copy_from_f32(v),
            TypedData::F64(v) => arr.copy_from_f64(v),
            TypedData::I32(v) => arr.copy_from_i32(v),
            TypedData::U8(v) => arr.copy_from_u8(v),
        }
        Ok(())
    }

    /// Fill a tenant array with a scalar (cast to the element type).
    pub fn fill(&mut self, t: TenantId, r: ArrayRef, v: f64) -> Result<(), ServeError> {
        let arr = self.resolve_array(t, r)?;
        match arr.type_name() {
            "float" => arr.fill_f32(v as f32),
            "double" => arr.fill_f64(v),
            "sint32" => arr.fill_i32(v as i32),
            _ => arr.fill_u8(v as u8),
        }
        Ok(())
    }

    /// Read one element of a tenant array (cast up to `f64`). Reads are
    /// *read-your-writes*: the tenant's queued and in-flight requests
    /// are driven to completion first (requests a read races would
    /// otherwise still be waiting in the admission queue, invisible to
    /// the scheduler's fine-grained synchronization), then the host
    /// access synchronizes with exactly the GPU work producing the
    /// array.
    pub fn read(&mut self, t: TenantId, r: ArrayRef, i: usize) -> Result<f64, ServeError> {
        {
            let arr = self.resolve_array(t, r)?;
            if i >= arr.len() {
                return Err(ServeError::Invalid(format!(
                    "read of element {i} from an array of {}",
                    arr.len()
                )));
            }
        }
        self.drain_tenant(t)?;
        let arr = self.resolve_array(t, r)?;
        Ok(read_elem(arr, i))
    }

    /// Build a kernel in the tenant's namespace.
    pub fn register_kernel(
        &mut self,
        t: TenantId,
        def: &'static KernelDef,
    ) -> Result<KernelRef, ServeError> {
        self.tenant(t)?;
        let k = self
            .g
            .build_kernel(def)
            .map_err(|e| ServeError::Invalid(format!("kernel `{}`: {e}", def.name)))?;
        let tenant = self.tenant_mut(t)?;
        tenant.kernels.push(k);
        Ok(KernelRef {
            tenant: t,
            index: (tenant.kernels.len() - 1) as u32,
        })
    }

    /// Submit a request. Validates handles and signatures, runs
    /// admission control, and enqueues the request for the next pump
    /// cycles — nothing reaches the scheduler yet. The error path never
    /// touches scheduler state, so a rejected request cannot stall
    /// other tenants.
    pub fn submit(&mut self, t: TenantId, spec: RequestSpec) -> Result<RequestId, ServeError> {
        if spec.calls.is_empty() {
            return Err(ServeError::Invalid("request with no launches".into()));
        }
        let capacity = self.g.device_capacity();
        let mut calls: Vec<(Kernel, Grid, Vec<Arg>)> = Vec::with_capacity(spec.calls.len());
        let mut written: Vec<DeviceArray> = Vec::new();
        for c in &spec.calls {
            let kernel = self.resolve_kernel(t, c.kernel)?.clone();
            let mut args: Vec<Arg> = Vec::with_capacity(c.args.len());
            for a in &c.args {
                match a {
                    ArgSpec::Array(r) => args.push(Arg::Array(self.resolve_array(t, *r)?.clone())),
                    ArgSpec::Scalar(v) => args.push(Arg::Scalar(*v)),
                }
            }
            kernel
                .validate(&args)
                .map_err(|e| ServeError::Invalid(e.to_string()))?;
            // Admission control: the same distinct-argument-bytes bound
            // the scheduler enforces per launch, applied *before* the
            // request enters the queue — so a can-never-fit launch is a
            // clean per-tenant error, not a mid-batch failure.
            if let Some(cap) = capacity {
                let needed = distinct_arg_bytes(&args);
                if needed > cap {
                    let tenant = self.tenant_mut(t)?;
                    tenant.rejected += 1;
                    return Err(ServeError::Rejected(LaunchError::OutOfMemory {
                        kernel: kernel.name().into(),
                        needed,
                        capacity: cap,
                    }));
                }
            }
            for (p, a) in kernel.signature().params.iter().zip(&args) {
                if let (
                    NidlParam::Pointer {
                        read_only: false, ..
                    },
                    Arg::Array(arr),
                ) = (p, a)
                {
                    if !written
                        .iter()
                        .any(|w| w.raw_buffer().same_buffer(&arr.raw_buffer()))
                    {
                        written.push(arr.clone());
                    }
                }
            }
            calls.push((kernel, c.grid, args));
        }
        let arrival = self.g.now();
        let tenant = self.tenant_mut(t)?;
        let id = RequestId {
            tenant: t,
            seq: tenant.submitted,
        };
        tenant.submitted += 1;
        tenant.queue.push_back(PendingRequest {
            id,
            arrival,
            deadline: spec.deadline_us.map(|d| arrival + d * 1e-6),
            calls,
            written,
        });
        Ok(id)
    }

    /// True when no request is queued or in flight.
    pub fn idle(&self) -> bool {
        self.inflight_count() == 0 && self.tenants.iter().all(|t| t.queue.is_empty())
    }

    fn inflight_count(&self) -> usize {
        self.inflight.len()
    }

    /// One pump cycle: make room in the pipeline window, ask the
    /// fairness policy which tenants' head requests to admit, and
    /// submit them as **one** coalesced [`GrCuda::launch_batch`] — the
    /// host-API and scheduling overheads are charged once for the whole
    /// cross-tenant cycle. Returns the number of requests admitted.
    pub fn pump(&mut self) -> usize {
        if self.tenants.iter().all(|t| t.queue.is_empty()) {
            return 0;
        }
        // Open a full batch worth of slots before admitting: retiring
        // only to `window - 1` would shrink every steady-state batch to
        // a single request and forfeit the cross-tenant coalescing.
        let low_water = self.window.saturating_sub(self.batch_limit);
        while self.inflight.len() > low_water {
            self.complete_oldest();
        }
        let room = self.batch_limit.min(self.window - self.inflight.len());
        let mut admitted: Vec<PendingRequest> = Vec::new();
        for _ in 0..room {
            let n = self.tenants.len();
            let mut queued = Vec::with_capacity(n);
            let mut head_arrival = Vec::with_capacity(n);
            let mut head_deadline = Vec::with_capacity(n);
            let mut weights = Vec::with_capacity(n);
            for t in &self.tenants {
                queued.push(t.queue.len());
                head_arrival.push(t.queue.front().map(|r| r.arrival));
                head_deadline.push(t.queue.front().and_then(|r| r.deadline));
                weights.push(t.weight);
            }
            let ctx = FairnessCtx {
                queued: &queued,
                head_arrival: &head_arrival,
                head_deadline: &head_deadline,
                weights: &weights,
                now: self.g.now(),
            };
            let Some(ti) = self.fairness.next_tenant(&ctx) else {
                break;
            };
            let Some(req) = self.tenants[ti].queue.pop_front() else {
                break;
            };
            self.tenants[ti].launches += req.calls.len() as u64;
            for (k, _, _) in &req.calls {
                *self.tenants[ti]
                    .kernel_launches
                    .entry(k.name())
                    .or_insert(0) += 1;
            }
            admitted.push(req);
        }
        if admitted.is_empty() {
            return 0;
        }
        let batch: Vec<BatchLaunch<'_>> = admitted
            .iter()
            .flat_map(|r| {
                r.calls.iter().map(|(k, grid, args)| BatchLaunch {
                    kernel: k,
                    grid: *grid,
                    args,
                })
            })
            .collect();
        // Admission validated signatures and the memory bound, so the
        // scheduler cannot refuse the coalesced batch.
        self.g
            .launch_batch(&batch)
            .expect("admitted request failed validation");
        let count = admitted.len();
        for req in admitted {
            self.inflight.push_back(InFlight {
                id: req.id,
                arrival: req.arrival,
                written: req.written,
            });
        }
        count
    }

    /// Complete the oldest in-flight request: event-wait on every array
    /// it wrote (synchronizing exactly its producing chain, which also
    /// lets the scheduler retire that chain's bookkeeping), then record
    /// its virtual latency. The wait is migration-free — outputs stay
    /// device-resident until a tenant actually reads them — so
    /// completing concurrent tenants' requests does not serialize them
    /// through the unified-memory fault controller. Returns `false`
    /// when nothing was in flight.
    pub fn complete_oldest(&mut self) -> bool {
        let Some(req) = self.inflight.pop_front() else {
            return false;
        };
        for arr in &req.written {
            arr.sync_writes();
        }
        let latency = self.g.now() - req.arrival;
        let tenant = &mut self.tenants[req.id.tenant.index()];
        tenant.completed += 1;
        tenant.latencies.push(latency);
        true
    }

    /// Pump until every queued request is admitted, then complete all
    /// in-flight requests.
    pub fn drain_all(&mut self) {
        loop {
            let admitted = self.pump();
            if admitted == 0 && self.tenants.iter().all(|t| t.queue.is_empty()) {
                break;
            }
        }
        while self.complete_oldest() {}
    }

    /// Drain one tenant: pump (and, when its requests are merely in
    /// flight, complete the pipeline head) until the tenant has nothing
    /// queued or in flight. Other tenants' requests keep flowing —
    /// admission order is still the fairness policy's.
    pub fn drain_tenant(&mut self, t: TenantId) -> Result<(), ServeError> {
        self.tenant(t)?;
        loop {
            let queued = self.tenants[t.index()].queue.len();
            let inflight = self.inflight.iter().any(|r| r.id.tenant == t);
            if queued == 0 && !inflight {
                return Ok(());
            }
            if queued > 0 {
                if self.pump() == 0 && !self.complete_oldest() {
                    // Queue non-empty but the policy admitted nothing
                    // and nothing is in flight: admit by pumping again
                    // after the policy replenishes; guaranteed by the
                    // built-ins, defended against for custom policies.
                    self.pump();
                }
            } else {
                self.complete_oldest();
            }
        }
    }

    /// Snapshot one tenant's statistics.
    pub fn tenant_stats(&self, t: TenantId) -> Result<TenantStats, ServeError> {
        let tenant = self.tenant(t)?;
        Ok(TenantStats {
            name: tenant.name.clone(),
            weight: tenant.weight,
            submitted: tenant.submitted,
            completed: tenant.completed,
            rejected: tenant.rejected,
            launches: tenant.launches,
            queued: tenant.queue.len(),
            inflight: self.inflight.iter().filter(|r| r.id.tenant == t).count(),
            latencies: tenant.latencies.clone(),
        })
    }

    /// Per-kernel-signature launch counts for one tenant, in signature
    /// order — who ran what, the attribution that lets an operator (or
    /// a calibration consumer) explain where a tenant's device time
    /// went. Counts are attributed at admission, like
    /// [`TenantStats::launches`].
    pub fn tenant_kernel_stats(&self, t: TenantId) -> Result<Vec<(String, u64)>, ServeError> {
        let tenant = self.tenant(t)?;
        Ok(tenant
            .kernel_launches
            .iter()
            .map(|(k, &n)| (k.to_string(), n))
            .collect())
    }

    /// Snapshot every tenant's statistics, in tenant-id order.
    pub fn all_stats(&self) -> Vec<TenantStats> {
        (0..self.tenants.len())
            .map(|i| {
                self.tenant_stats(TenantId(i as u32))
                    .expect("tenant exists")
            })
            .collect()
    }

    /// Housekeeping for long-lived services: when fully idle, sync the
    /// scheduler (running its retire audit) and drop the accumulated
    /// timeline so a service processing millions of requests stays
    /// O(live work). No-op while anything is queued or in flight.
    pub fn maintain(&mut self) {
        if self.idle() {
            self.g.sync();
            self.g.clear_timeline();
        }
    }
}

/// Read one element, dispatching on the array's element type.
fn read_elem(arr: &DeviceArray, i: usize) -> f64 {
    match arr.type_name() {
        "float" => arr.get_f32(i) as f64,
        "double" => arr.get_f64(i),
        "sint32" => arr.get_i32(i) as f64,
        _ => arr.get_u8(i) as f64,
    }
}

/// Total bytes of the distinct arrays among `args` — the residency the
/// scheduler will demand for the launch.
fn distinct_arg_bytes(args: &[Arg]) -> usize {
    let mut seen: Vec<gpu_sim::DataBuffer> = Vec::new();
    let mut bytes = 0usize;
    for a in args {
        if let Arg::Array(arr) = a {
            let buf = arr.raw_buffer();
            if !seen.iter().any(|s| s.same_buffer(&buf)) {
                bytes += arr.byte_len();
                seen.push(buf);
            }
        }
    }
    bytes
}
