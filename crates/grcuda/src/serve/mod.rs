//! # serve — concurrent multi-tenant serving on one scheduler core
//!
//! The paper's scheduler extracts parallelism from *one* serial host
//! program; this module turns it into a **multi-client service**: many
//! producers submit independent request chains, the service coalesces
//! them into shared [`launch_batch`](crate::GrCuda::launch_batch)
//! submissions (amortizing host overhead *across tenants*), and the
//! scheduler's dependency inference overlaps the tenants' chains on the
//! device — converting single-thread scheduling throughput into
//! aggregate multi-client throughput.
//!
//! Two layers:
//!
//! * [`ServiceCore`] — the deterministic single-threaded core: tenant
//!   namespaces, admission control, fairness-ordered batch coalescing,
//!   per-request virtual latency. Drive it directly for reproducible
//!   (gateable) measurements.
//! * [`Server`] / [`Client`] — the threaded shell: the core lives on a
//!   service thread; `Client` is a `Send + Clone` handle over the
//!   submission queue, so any number of OS threads can submit
//!   concurrently.
//!
//! Fairness under contention is pluggable via [`FairnessPolicy`]
//! (global [`Fifo`], deficit [`WeightedRoundRobin`], and
//! [`DeadlineAware`] earliest-deadline-first), mirroring how device
//! placement is pluggable via
//! [`DeviceSelectionPolicy`](crate::DeviceSelectionPolicy).
//!
//! ```
//! use grcuda::serve::{ArgSpec, CallSpec, ElemKind, RequestSpec, ServeConfig, Server};
//! use grcuda::{DeviceProfile, Grid, Options};
//! use kernels::vec_ops::SQUARE;
//!
//! let server = Server::start(ServeConfig::new(
//!     DeviceProfile::tesla_p100(),
//!     Options::parallel(),
//! ));
//! let client = server.client("tenant-a", 1);
//! let x = client.alloc(ElemKind::F32, 1024).unwrap();
//! client.fill(x, 3.0).unwrap();
//! let square = client.kernel(&SQUARE).unwrap();
//! client
//!     .submit(RequestSpec {
//!         calls: vec![CallSpec {
//!             kernel: square,
//!             grid: Grid::d1(4, 256),
//!             args: vec![ArgSpec::Array(x), ArgSpec::Scalar(1024.0)],
//!         }],
//!         deadline_us: None,
//!     })
//!     .unwrap();
//! let stats = client.drain().unwrap();
//! assert_eq!(stats.completed, 1);
//! assert_eq!(client.read(x, 0).unwrap(), 9.0);
//! server.shutdown();
//! ```

pub mod core;
pub mod fairness;
pub mod server;

pub use self::core::{
    ArgSpec, ArrayRef, CallSpec, ElemKind, KernelRef, RequestId, RequestSpec, ServeConfig,
    ServeError, ServiceCore, TenantId, TenantStats,
};
pub use fairness::{
    DeadlineAware, Fairness, FairnessCtx, FairnessPolicy, Fifo, WeightedRoundRobin,
};
pub use server::{Client, Server, ServiceReport};
