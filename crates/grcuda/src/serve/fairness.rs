//! Fairness policies for the multi-tenant admission queue.
//!
//! Where [`crate::policy::DeviceSelectionPolicy`] decides *where* a
//! computation runs, a [`FairnessPolicy`] decides *whose* request is
//! admitted next when several tenants have work queued. The service
//! core consults the policy once per admission slot of a pump cycle;
//! the chosen tenants' requests are then coalesced into a single
//! [`crate::GrCuda::launch_batch`] submission.
//!
//! All built-in policies are deterministic: ties break toward the
//! lowest tenant id, so a given arrival order always produces the same
//! admission order (and therefore the same virtual timeline).

/// Everything a fairness policy may look at when choosing the next
/// tenant to admit. All slices are indexed by tenant id.
#[derive(Debug)]
pub struct FairnessCtx<'a> {
    /// Requests waiting in each tenant's queue.
    pub queued: &'a [usize],
    /// Virtual arrival time of each tenant's head-of-queue request
    /// (`None` when the queue is empty).
    pub head_arrival: &'a [Option<f64>],
    /// Absolute virtual deadline of each tenant's head-of-queue request
    /// (`None` when the queue is empty or the request has no deadline).
    pub head_deadline: &'a [Option<f64>],
    /// Configured tenant weights (weighted round-robin shares).
    pub weights: &'a [u32],
    /// Current virtual time.
    pub now: f64,
}

impl FairnessCtx<'_> {
    /// Tenants with at least one queued request.
    fn backlogged(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.queued.len()).filter(|&i| self.queued[i] > 0)
    }
}

/// Chooses which tenant's head-of-queue request is admitted next.
///
/// `next_tenant` is called repeatedly within one pump cycle, each call
/// observing the queue state *after* the previous admission; returning
/// `None` leaves the remaining admission slots unused. Policies may
/// keep internal state (round-robin cursors, deficit counters) — the
/// core owns the policy for the lifetime of the service.
pub trait FairnessPolicy {
    /// Short display name (`fifo`, `wrr`, `deadline`).
    fn name(&self) -> &'static str;

    /// The tenant whose head request should be admitted next, or `None`
    /// if no queued request should be admitted this cycle.
    fn next_tenant(&mut self, ctx: &FairnessCtx<'_>) -> Option<usize>;
}

/// Config-friendly selector for the built-in fairness policies, in the
/// spirit of [`crate::PlacementPolicy`]: a `Send + Clone` value that
/// crosses the service-thread boundary and is built into the stateful
/// policy object inside the service core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fairness {
    /// Global first-come-first-served across tenants.
    Fifo,
    /// Deficit weighted round-robin over the per-tenant weights.
    WeightedRoundRobin,
    /// Earliest head-of-queue deadline first.
    DeadlineAware,
}

impl Fairness {
    /// Build the stateful policy object.
    pub fn build(self) -> Box<dyn FairnessPolicy + Send> {
        match self {
            Fairness::Fifo => Box::new(Fifo),
            Fairness::WeightedRoundRobin => Box::new(WeightedRoundRobin::new()),
            Fairness::DeadlineAware => Box::new(DeadlineAware),
        }
    }
}

/// Global FIFO: the queued request that arrived earliest (any tenant)
/// is admitted next; ties break toward the lower tenant id.
#[derive(Debug, Default)]
pub struct Fifo;

impl FairnessPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn next_tenant(&mut self, ctx: &FairnessCtx<'_>) -> Option<usize> {
        ctx.backlogged().min_by(|&a, &b| {
            let ta = ctx.head_arrival[a].unwrap_or(f64::INFINITY);
            let tb = ctx.head_arrival[b].unwrap_or(f64::INFINITY);
            ta.partial_cmp(&tb).unwrap().then(a.cmp(&b))
        })
    }
}

/// Deficit weighted round-robin: each tenant accrues `weight` admission
/// credits per replenish round; a misbehaving tenant that floods the
/// queue can consume at most its weight share of each round before the
/// cursor moves on, so well-behaved tenants keep their admission rate.
#[derive(Debug, Default)]
pub struct WeightedRoundRobin {
    credit: Vec<u64>,
    cursor: usize,
}

impl WeightedRoundRobin {
    /// Fresh policy with no accumulated credit.
    pub fn new() -> Self {
        Self::default()
    }

    fn replenish(&mut self, ctx: &FairnessCtx<'_>) {
        for (i, c) in self.credit.iter_mut().enumerate() {
            // A zero weight still progresses (minimum share of 1):
            // fairness throttles, it must never starve.
            *c += u64::from(ctx.weights[i].max(1));
        }
    }
}

impl FairnessPolicy for WeightedRoundRobin {
    fn name(&self) -> &'static str {
        "wrr"
    }

    fn next_tenant(&mut self, ctx: &FairnessCtx<'_>) -> Option<usize> {
        let n = ctx.queued.len();
        self.credit.resize(n, 0);
        ctx.backlogged().next()?;
        for round in 0..2 {
            for k in 0..n {
                let i = (self.cursor + k) % n;
                if ctx.queued[i] > 0 && self.credit[i] > 0 {
                    self.credit[i] -= 1;
                    self.cursor = (i + 1) % n;
                    return Some(i);
                }
            }
            if round == 0 {
                self.replenish(ctx);
            }
        }
        None
    }
}

/// Earliest-deadline-first over head-of-queue requests: a request with
/// no deadline sorts after every deadlined one; ties break by arrival
/// time, then tenant id.
#[derive(Debug, Default)]
pub struct DeadlineAware;

impl FairnessPolicy for DeadlineAware {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn next_tenant(&mut self, ctx: &FairnessCtx<'_>) -> Option<usize> {
        ctx.backlogged().min_by(|&a, &b| {
            let da = ctx.head_deadline[a].unwrap_or(f64::INFINITY);
            let db = ctx.head_deadline[b].unwrap_or(f64::INFINITY);
            let ta = ctx.head_arrival[a].unwrap_or(f64::INFINITY);
            let tb = ctx.head_arrival[b].unwrap_or(f64::INFINITY);
            da.partial_cmp(&db)
                .unwrap()
                .then(ta.partial_cmp(&tb).unwrap())
                .then(a.cmp(&b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        queued: &'a [usize],
        arrival: &'a [Option<f64>],
        deadline: &'a [Option<f64>],
        weights: &'a [u32],
    ) -> FairnessCtx<'a> {
        FairnessCtx {
            queued,
            head_arrival: arrival,
            head_deadline: deadline,
            weights,
            now: 0.0,
        }
    }

    #[test]
    fn fifo_picks_earliest_arrival_then_lowest_id() {
        let mut p = Fifo;
        let c = ctx(
            &[1, 1, 1],
            &[Some(3.0), Some(1.0), Some(1.0)],
            &[None, None, None],
            &[1, 1, 1],
        );
        assert_eq!(p.next_tenant(&c), Some(1));
        let empty = ctx(&[0, 0], &[None, None], &[None, None], &[1, 1]);
        assert_eq!(p.next_tenant(&empty), None);
    }

    #[test]
    fn deadline_prefers_deadlined_heads() {
        let mut p = DeadlineAware;
        let c = ctx(
            &[1, 1, 1],
            &[Some(0.0), Some(1.0), Some(2.0)],
            &[None, Some(9.0), Some(4.0)],
            &[1, 1, 1],
        );
        assert_eq!(p.next_tenant(&c), Some(2));
    }

    #[test]
    fn wrr_respects_weights_over_a_round() {
        let mut p = WeightedRoundRobin::new();
        let queued = [100, 100];
        let arrival = [Some(0.0), Some(0.0)];
        let deadline = [None, None];
        let weights = [3, 1];
        let mut picks = [0usize; 2];
        for _ in 0..8 {
            let c = ctx(&queued, &arrival, &deadline, &weights);
            picks[p.next_tenant(&c).unwrap()] += 1;
        }
        // Two full replenish rounds of 3:1.
        assert_eq!(picks, [6, 2]);
    }

    #[test]
    fn wrr_skips_idle_tenants_without_burning_their_credit() {
        let mut p = WeightedRoundRobin::new();
        // Tenant 0 idle: every admission goes to tenant 1.
        for _ in 0..5 {
            let c = ctx(&[0, 9], &[None, Some(0.0)], &[None, None], &[5, 1]);
            assert_eq!(p.next_tenant(&c), Some(1));
        }
        let c = ctx(&[0, 0], &[None, None], &[None, None], &[5, 1]);
        assert_eq!(p.next_tenant(&c), None);
    }
}
