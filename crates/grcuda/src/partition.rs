//! Deterministic DAG partitioning across cluster nodes.
//!
//! On a multi-node machine ([`gpu_sim::Cluster`]) a placement mistake is
//! no longer a PCIe hop — it is a D2H + NIC + H2D round trip. The right
//! moment to avoid that cost is *before* per-vertex placement: a batch
//! submitted through [`crate::GrCuda::launch_batch`] is a whole subgraph,
//! so the scheduler can shard it across nodes to minimize the bytes that
//! must cross the network, then let the in-node policy pick the GPU.
//!
//! The pre-pass here follows the deterministic-partitioning shape of
//! Bobpp-style frameworks: the *policy* (which node) is a pure function
//! of the submitted batch, with every tie broken on vertex id — no
//! `HashMap` iteration order, no randomness — so the same batch always
//! shards the same way:
//!
//! 1. **Seed by connected components.** Two launches sharing an array
//!    argument are connected; components are the natural unsplittable
//!    units (assigning one entirely to a node costs zero cut bytes).
//! 2. **Greedy bin-pack whole components** onto the least-loaded node,
//!    largest component first (ties: smallest member vertex id, then
//!    lowest node id).
//! 3. **BFS-grow split** only components larger than the fair share:
//!    grow a part from the smallest unassigned vertex id, repeatedly
//!    absorbing the frontier vertex with the most connecting bytes
//!    (ties: lowest vertex id) until the part reaches the share, then
//!    start the next part.
//!
//! The companion [`NodeAware`] placement policy consumes the resulting
//! per-vertex node hints: it narrows the placement context to the
//! hinted node's GPUs and delegates the in-node choice to a wrapped
//! single-box policy (transfer-aware by default).

use std::collections::HashMap;

use crate::policy::{DeviceSelectionPolicy, PlacementCtx, PlacementPolicy};

/// The result of partitioning one submitted batch across cluster nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPartition {
    /// Node assigned to each batch item, indexed like the input batch.
    pub assignment: Vec<u32>,
    /// Bytes of array arguments shared across parts: for every value
    /// referenced from `k` distinct nodes, its size counts `k - 1`
    /// times (each extra node implies one cross-node replica).
    pub cut_bytes: usize,
    /// Number of distinct nodes actually used.
    pub parts: usize,
}

/// Shard a submitted batch across `nodes` to minimize cut bytes.
///
/// Each item is described by its array arguments as `(value id, bytes)`
/// pairs (duplicates within an item are ignored). The result is a pure,
/// deterministic function of the input: identical batches produce
/// bit-identical assignments, and `nodes <= 1` maps everything to node
/// 0 with zero cut.
pub fn partition_batch(items: &[Vec<(u64, usize)>], nodes: usize) -> BatchPartition {
    let n = items.len();
    if nodes <= 1 || n == 0 {
        return BatchPartition {
            assignment: vec![0; n],
            cut_bytes: 0,
            parts: usize::from(n > 0),
        };
    }

    // Values in first-encounter order: (bytes, referencing items). The
    // HashMap is only probed, never iterated, so bucket order cannot
    // leak into the result.
    let mut value_slot: HashMap<u64, usize> = HashMap::new();
    let mut values: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut item_values: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut weight = vec![0usize; n];
    for (i, args) in items.iter().enumerate() {
        for &(v, bytes) in args {
            let slot = *value_slot.entry(v).or_insert_with(|| {
                values.push((bytes, Vec::new()));
                values.len() - 1
            });
            if item_values[i].contains(&slot) {
                continue;
            }
            item_values[i].push(slot);
            weight[i] += bytes;
            let entry = &mut values[slot];
            entry.0 = entry.0.max(bytes);
            entry.1.push(i);
        }
    }

    // Union-find over items through shared values.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (_, refs) in &values {
        for w in refs.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if a != b {
                // Root at the smaller id, so representatives are stable.
                parent[a.max(b)] = a.min(b);
            }
        }
    }

    // Components, members ascending by construction.
    let mut comp_of_root = vec![usize::MAX; n];
    let mut comps: Vec<(usize, Vec<usize>)> = Vec::new(); // (weight, members)
    for (i, &w) in weight.iter().enumerate() {
        let r = find(&mut parent, i);
        if comp_of_root[r] == usize::MAX {
            comp_of_root[r] = comps.len();
            comps.push((0, Vec::new()));
        }
        let c = &mut comps[comp_of_root[r]];
        c.0 += w;
        c.1.push(i);
    }
    // Largest first; ties toward the smallest member vertex id.
    comps.sort_by(|a, b| b.0.cmp(&a.0).then(a.1[0].cmp(&b.1[0])));

    let total: usize = weight.iter().sum();
    let target = total.div_ceil(nodes).max(1);
    let mut load = vec![0usize; nodes];
    let mut assignment = vec![0u32; n];
    let least_loaded =
        |load: &[usize]| (0..load.len()).min_by_key(|&d| (load[d], d)).unwrap_or(0) as u32;

    let mut in_s = vec![false; n];
    let mut gain = vec![0usize; n];
    for (comp_weight, members) in &comps {
        if *comp_weight <= target {
            let node = least_loaded(&load);
            load[node as usize] += comp_weight;
            for &i in members {
                assignment[i] = node;
            }
            continue;
        }
        // Oversized component: carve fair-share parts by BFS growth.
        let mut assigned = vec![false; members.len()];
        let pos: HashMap<usize, usize> = members.iter().enumerate().map(|(p, &i)| (i, p)).collect();
        while let Some(seed_pos) = (0..members.len()).find(|&p| !assigned[p]) {
            let mut part: Vec<usize> = Vec::new();
            let mut part_weight = 0usize;
            let absorb = |i: usize,
                          part: &mut Vec<usize>,
                          part_weight: &mut usize,
                          in_s: &mut [bool],
                          gain: &mut [usize]| {
                part.push(i);
                *part_weight += weight[i];
                in_s[i] = true;
                gain[i] = 0;
                for &slot in &item_values[i] {
                    let (bytes, refs) = &values[slot];
                    for &j in refs {
                        if !in_s[j] && !assigned[pos[&j]] {
                            gain[j] += bytes;
                        }
                    }
                }
            };
            absorb(
                members[seed_pos],
                &mut part,
                &mut part_weight,
                &mut in_s,
                &mut gain,
            );
            while part_weight < target {
                // Frontier vertex with the most connecting bytes; ties
                // break to the lowest vertex id (members are ascending).
                let next = members
                    .iter()
                    .copied()
                    .filter(|&j| !in_s[j] && !assigned[pos[&j]] && gain[j] > 0)
                    .max_by(|&a, &b| gain[a].cmp(&gain[b]).then(b.cmp(&a)));
                let Some(j) = next else { break };
                absorb(j, &mut part, &mut part_weight, &mut in_s, &mut gain);
            }
            let node = least_loaded(&load);
            load[node as usize] += part_weight;
            for &i in &part {
                assignment[i] = node;
                assigned[pos[&i]] = true;
                in_s[i] = false;
            }
            // Reset gains touched while growing this part.
            for &i in members {
                gain[i] = 0;
            }
        }
    }

    // Cut accounting: each value pays once per extra node touching it.
    let mut cut_bytes = 0usize;
    let mut seen_nodes: Vec<u32> = Vec::new();
    for (bytes, refs) in &values {
        seen_nodes.clear();
        for &i in refs {
            if !seen_nodes.contains(&assignment[i]) {
                seen_nodes.push(assignment[i]);
            }
        }
        cut_bytes += bytes * seen_nodes.len().saturating_sub(1);
    }
    let mut used: Vec<u32> = Vec::new();
    for &a in &assignment {
        if !used.contains(&a) {
            used.push(a);
        }
    }
    BatchPartition {
        assignment,
        cut_bytes,
        parts: used.len(),
    }
}

/// Cluster-aware placement: honor the partitioner's node hint, delegate
/// the GPU choice within the node to a wrapped single-box policy.
///
/// When a vertex carries a [`PlacementCtx::node_hint`] (set by the
/// [`crate::GrCuda::launch_batch`] partitioning pre-pass on multi-node
/// machines), the context is narrowed to that node's contiguous GPU
/// range — residency, transfer estimates, load and headroom re-indexed
/// in-node, out-of-node parents dropped — and the wrapped policy
/// (transfer-aware by default, [`NodeAware::with_inner`] for others,
/// e.g. [`crate::policy::Adaptive`]) picks among the node's GPUs.
/// Vertices without a hint (single launches, single-node machines) are
/// delegated unchanged, so outside a cluster this behaves exactly like
/// its inner policy.
pub struct NodeAware {
    inner: Box<dyn DeviceSelectionPolicy>,
    parents: Vec<u32>,
}

impl NodeAware {
    /// Node-aware placement over the default in-node policy
    /// (transfer-aware).
    pub fn new() -> Self {
        Self::with_inner(PlacementPolicy::TransferAware.build())
    }

    /// Node-aware placement over an explicit in-node policy.
    pub fn with_inner(inner: Box<dyn DeviceSelectionPolicy>) -> Self {
        Self {
            inner,
            parents: Vec::new(),
        }
    }
}

impl Default for NodeAware {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for NodeAware {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeAware")
            .field("inner", &self.inner.name())
            .finish()
    }
}

impl DeviceSelectionPolicy for NodeAware {
    fn name(&self) -> &'static str {
        "node-aware"
    }

    fn select(&mut self, ctx: &PlacementCtx) -> u32 {
        let Some(node) = ctx.node_hint else {
            return self.inner.select(ctx);
        };
        // The hinted node's devices are a contiguous id range by
        // cluster construction.
        let Some(base) = ctx.node_of.iter().position(|&m| m == node) else {
            return self.inner.select(ctx);
        };
        let len = ctx.node_of[base..]
            .iter()
            .take_while(|&&m| m == node)
            .count();
        if len == 0 || base + len > ctx.device_count {
            return self.inner.select(ctx);
        }
        self.parents.clear();
        for &d in ctx.parent_devices {
            let d = d as usize;
            if (base..base + len).contains(&d) {
                self.parents.push((d - base) as u32);
            }
        }
        let narrowed = PlacementCtx {
            device_count: len,
            parent_devices: &self.parents,
            resident_bytes: &ctx.resident_bytes[base..base + len],
            est_transfer_time: &ctx.est_transfer_time[base..base + len],
            inflight: &ctx.inflight[base..base + len],
            free_bytes: &ctx.free_bytes[base..base + len],
            arg_bytes: ctx.arg_bytes,
            kernel: ctx.kernel,
            duration_prior: ctx.duration_prior,
            node_hint: None,
            node_of: &[],
        };
        base as u32 + self.inner.select(&narrowed).min(len as u32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: usize = 1 << 20;

    /// A dependent chain of `k` items over fresh values `base..`: item i
    /// shares value `base + i` with item i+1.
    fn chain(k: usize, base: u64, bytes: usize) -> Vec<Vec<(u64, usize)>> {
        (0..k)
            .map(|i| {
                let mut args = vec![(base + i as u64, bytes)];
                if i + 1 < k {
                    args.push((base + i as u64 + 1, bytes));
                }
                args
            })
            .collect()
    }

    #[test]
    fn independent_chains_land_whole_on_separate_nodes_with_zero_cut() {
        let mut items = chain(4, 0, MIB);
        items.extend(chain(4, 100, MIB));
        let p = partition_batch(&items, 2);
        assert_eq!(p.cut_bytes, 0, "whole components never pay cut");
        assert_eq!(p.parts, 2);
        // Each chain is one component on one node.
        assert!(p.assignment[..4].iter().all(|&a| a == p.assignment[0]));
        assert!(p.assignment[4..].iter().all(|&a| a == p.assignment[4]));
        assert_ne!(p.assignment[0], p.assignment[4]);
    }

    #[test]
    fn single_node_assigns_everything_to_node_zero() {
        let items = chain(6, 0, MIB);
        let p = partition_batch(&items, 1);
        assert_eq!(p.assignment, vec![0; 6]);
        assert_eq!(p.cut_bytes, 0);
        assert_eq!(p.parts, 1);
    }

    #[test]
    fn oversized_component_splits_contiguously_with_one_cut_value() {
        // One 8-item chain, 2 nodes: BFS growth from vertex 0 absorbs
        // the chain in order, so the split is contiguous and exactly one
        // shared value crosses.
        let items = chain(8, 0, MIB);
        let p = partition_batch(&items, 2);
        assert_eq!(p.parts, 2);
        let flips = p.assignment.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(flips, 1, "chain split in one place: {:?}", p.assignment);
        assert_eq!(p.cut_bytes, MIB, "exactly the boundary value crosses");
    }

    #[test]
    fn assignment_is_invariant_under_value_id_relabeling() {
        // Relabeling value ids scrambles HashMap bucket order; the
        // assignment must not move (all tie-breaks are on vertex id).
        let mut items = chain(5, 0, MIB);
        items.extend(chain(3, 50, 2 * MIB));
        items.push(vec![(200, 512)]);
        let relabeled: Vec<Vec<(u64, usize)>> = items
            .iter()
            .map(|args| {
                args.iter()
                    .map(|&(v, b)| (v.wrapping_mul(1_000_003).wrapping_add(17), b))
                    .collect()
            })
            .collect();
        for nodes in [2, 3, 4] {
            let a = partition_batch(&items, nodes);
            let b = partition_batch(&relabeled, nodes);
            assert_eq!(a, b, "nodes={nodes}");
        }
    }

    #[test]
    fn node_aware_honors_the_hint_and_delegates_without_one() {
        let mut p = NodeAware::new();
        let node_of = [0, 0, 1, 1];
        // Device 0 is globally cheapest, but the hint pins node 1.
        let ctx = PlacementCtx {
            device_count: 4,
            parent_devices: &[0, 3],
            resident_bytes: &[0, 0, 0, 4096],
            est_transfer_time: &[0.0, 1e-3, 2e-3, 1e-3],
            inflight: &[0, 0, 5, 0],
            free_bytes: &[usize::MAX; 4],
            arg_bytes: 0,
            kernel: "k",
            duration_prior: None,
            node_hint: Some(1),
            node_of: &node_of,
        };
        assert_eq!(p.select(&ctx), 3, "cheapest GPU within the hinted node");
        let unhinted = PlacementCtx {
            node_hint: None,
            ..ctx
        };
        assert_eq!(p.select(&unhinted), 0, "no hint: plain transfer-aware");
    }

    #[test]
    fn node_aware_falls_back_when_the_hint_names_no_device() {
        let mut p = NodeAware::new();
        let ctx = PlacementCtx {
            device_count: 2,
            parent_devices: &[],
            resident_bytes: &[0, 0],
            est_transfer_time: &[1e-3, 0.0],
            inflight: &[0, 0],
            free_bytes: &[usize::MAX; 2],
            arg_bytes: 0,
            kernel: "k",
            duration_prior: None,
            node_hint: Some(7),
            node_of: &[0, 0],
        };
        assert_eq!(p.select(&ctx), 1, "unknown node: machine-wide choice");
    }
}
